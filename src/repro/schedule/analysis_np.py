"""Vectorized (numpy) schedule analysis for large schedules.

The pure-Python helpers in :mod:`repro.schedule.analysis` are fine for
the paper-scale instances; sweeping thousands of processors or long
continuous windows (hundreds of thousands of sends) wants vectorization.
These functions return the same values as their scalar counterparts
(property-tested) but operate on column arrays.  Routing between the
scalar and vectorized paths is owned by :mod:`repro.dispatch` (one
:class:`~repro.dispatch.DispatchPolicy` for the whole library).

Columns live in :mod:`repro.schedule.columnar` and are cached *on the
schedule* (:meth:`repro.schedule.ops.Schedule.columns`), so repeated
queries — and the validator — share one conversion; array-backed
schedules never convert at all.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.schedule.columnar import ScheduleColumns
from repro.schedule.ops import Schedule

__all__ = [
    "ScheduleColumns",
    "columns",
    "availability_arrays",
    "availability_np",
    "item_completion_times_np",
    "broadcast_delay_np",
    "completion_time_np",
    "per_proc_first_arrival_np",
    "per_item_completion_np",
    "send_load_np",
    "in_transit_profile",
    "per_proc_egress_peak",
]

def columns(schedule: Schedule) -> ScheduleColumns:
    """The schedule's cached column view (see :meth:`Schedule.columns`)."""
    return schedule.columns()


def availability_arrays(
    schedule: Schedule, cols: ScheduleColumns | None = None
) -> tuple[np.ndarray, np.ndarray, dict[Hashable, int], int]:
    """Struct-of-arrays availability: the kernel behind the dict helpers.

    Returns ``(keys, times, item_ids, n_items)`` where ``keys`` is a sorted
    array of encoded ``proc * n_items + item_id`` keys, ``times[i]`` is the
    earliest cycle that (proc, item) pair holds the item, and ``item_ids``
    extends ``cols.item_ids`` with any items that appear only in the
    initial placement.  Consumers look up pairs with ``np.searchsorted``.
    """
    if cols is None:
        cols = columns(schedule)
    item_ids = dict(cols.item_ids)
    init_entries: list[tuple[int, int, int]] = []
    for proc, items in schedule.initial.items():
        for item in items:
            if item not in item_ids:
                item_ids[item] = len(item_ids)
            init_entries.append(
                (proc, item_ids[item], schedule.item_creation_time(item))
            )
    n_items = len(item_ids)
    if n_items == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, item_ids, 0
    init_arr = np.array(init_entries, dtype=np.int64).reshape(-1, 3)
    keys = np.concatenate(
        [init_arr[:, 0] * n_items + init_arr[:, 1], cols.dsts * n_items + cols.items]
    )
    vals = np.concatenate([init_arr[:, 2], cols.arrivals])
    order = np.argsort(keys, kind="stable")
    sk, sv = keys[order], vals[order]
    starts = np.flatnonzero(np.concatenate(([True], sk[1:] != sk[:-1])))
    return sk[starts], np.minimum.reduceat(sv, starts), item_ids, n_items


def _id_to_item(item_ids: dict[Hashable, int]) -> list[Hashable]:
    out: list[Hashable] = [None] * len(item_ids)
    for item, idx in item_ids.items():
        out[idx] = item
    return out


def availability_np(schedule: Schedule) -> dict[tuple[int, Hashable], int]:
    """Vectorized :func:`repro.schedule.analysis.availability` (same dict)."""
    keys, times, item_ids, n_items = availability_arrays(schedule)
    if n_items == 0:
        return {}
    rev = _id_to_item(item_ids)
    procs = (keys // n_items).tolist()
    iids = (keys % n_items).tolist()
    return {
        (proc, rev[iid]): when
        for proc, iid, when in zip(procs, iids, times.tolist())
    }


def item_completion_times_np(
    schedule: Schedule, procs: set[int] | None = None
) -> dict[Hashable, int]:
    """Vectorized :func:`repro.schedule.analysis.item_completion_times`."""
    if procs is None:
        procs = schedule.processors()
    keys, times, item_ids, n_items = availability_arrays(schedule)
    items = schedule.items()
    if not items:
        return {}
    if not procs:
        return {item: 0 for item in items}
    procs_arr = np.fromiter(sorted(procs), dtype=np.int64, count=len(procs))
    kp = keys // n_items
    ki = keys % n_items
    mask = np.isin(kp, procs_arr)
    kp, ki, kt = kp[mask], ki[mask], times[mask]
    counts = np.zeros(n_items, dtype=np.int64)
    np.add.at(counts, ki, 1)
    worst = np.zeros(n_items, dtype=np.int64)
    np.maximum.at(worst, ki, kt)
    out: dict[Hashable, int] = {}
    for item in items:
        iid = item_ids[item]
        if counts[iid] != len(procs):
            held = set(kp[ki == iid].tolist())
            missing = min(p for p in procs if p not in held)
            raise ValueError(f"item {item!r} never reaches processor {missing}")
        out[item] = int(worst[iid])
    return out


def broadcast_delay_np(schedule: Schedule, item: Hashable = 0) -> dict[int, int]:
    """Vectorized :func:`repro.schedule.analysis.broadcast_delay_per_proc`."""
    keys, times, item_ids, n_items = availability_arrays(schedule)
    iid = item_ids.get(item)
    if iid is None:
        return {}
    mask = (keys % n_items) == iid
    return {
        proc: when
        for proc, when in zip((keys[mask] // n_items).tolist(), times[mask].tolist())
    }


def completion_time_np(cols: ScheduleColumns) -> int:
    """Last arrival cycle (0 for an empty schedule)."""
    return int(cols.arrivals.max(initial=0))


def per_proc_first_arrival_np(cols: ScheduleColumns, item: Hashable = 0) -> np.ndarray:
    """First arrival of ``item`` at each processor (``-1`` = never).

    Vectorized equivalent of
    :func:`repro.schedule.analysis.broadcast_delay_per_proc` for the
    non-initial processors.
    """
    out = np.full(cols.num_procs, -1, dtype=np.int64)
    item_id = cols.item_ids.get(item)
    if item_id is None:
        return out
    mask = cols.items == item_id
    dsts = cols.dsts[mask]
    arrivals = cols.arrivals[mask]
    order = np.argsort(arrivals)[::-1]  # later arrivals first, overwritten
    out[dsts[order]] = arrivals[order]
    return out


def per_item_completion_np(cols: ScheduleColumns) -> np.ndarray:
    """Completion (max arrival) per dense item id."""
    n_items = len(cols.item_ids)
    out = np.zeros(n_items, dtype=np.int64)
    np.maximum.at(out, cols.items, cols.arrivals)
    return out


def send_load_np(cols: ScheduleColumns) -> np.ndarray:
    """Messages sent per processor (the communicator's load profile)."""
    out = np.zeros(cols.num_procs, dtype=np.int64)
    np.add.at(out, cols.srcs, 1)
    return out


def in_transit_profile(cols: ScheduleColumns, L: int, o: int = 0) -> np.ndarray:
    """Messages in flight at each cycle (network occupancy over time).

    A message occupies the network during ``[time + o, time + o + L)``.
    Returns an array indexed by cycle, length = horizon + 1.
    """
    if len(cols.times) == 0:
        return np.zeros(1, dtype=np.int64)
    starts = cols.times + o
    ends = starts + L
    horizon = int(ends.max())
    deltas = np.zeros(horizon + 2, dtype=np.int64)
    np.add.at(deltas, starts, 1)
    np.add.at(deltas, ends, -1)
    return np.cumsum(deltas)[: horizon + 1]


def per_proc_egress_peak(cols: ScheduleColumns, L: int, o: int = 0) -> np.ndarray:
    """Peak simultaneous in-flight messages *from* each processor.

    The LogP capacity constraint bounds this by ``ceil(L/g)``; the
    returned profile lets benchmarks confirm optimal schedules saturate
    it while baselines underuse the network.
    """
    peaks = np.zeros(cols.num_procs, dtype=np.int64)
    if len(cols.times) == 0:
        return peaks
    horizon = int((cols.times + o + L).max())
    for proc in np.unique(cols.srcs):
        mask = cols.srcs == proc
        starts = cols.times[mask] + o
        ends = starts + L
        deltas = np.zeros(horizon + 2, dtype=np.int64)
        np.add.at(deltas, starts, 1)
        np.add.at(deltas, ends, -1)
        peaks[proc] = int(np.cumsum(deltas).max())
    return peaks
