"""Keeps the generated API index in sync with the package."""

import pathlib

from repro.tools import MODULES, generate_api_doc


def test_api_doc_up_to_date():
    committed = pathlib.Path(__file__).resolve().parents[1] / "docs" / "API.md"
    assert committed.read_text() == generate_api_doc(), (
        "docs/API.md is stale; regenerate with `python -m repro.tools`"
    )


def test_every_module_importable_with_all():
    import importlib

    for name in MODULES:
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), (name, symbol)
