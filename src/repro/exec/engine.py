"""The per-rank program interpreter shared by every transport.

A transport's job is only to move ``(src, item_code, payload)``
envelopes between ranks; *what a rank does* — the instruction walk,
matched-receive buffering, payload stores and reduction folds — lives
here once, so ``inproc``, ``mp`` and ``mpi`` cannot drift apart
semantically.

Two payload disciplines:

* **store mode** (default): each rank keeps ``{item_code: payload}``;
  sends read the store, receives write it, reductions fold operand
  payloads with ``reduce_op``.  With no payloads given, every item's
  payload is its own code — "token mode", enough to drive and trace
  the full message pattern.
* **combine mode** (``combine`` given): the rank keeps one running
  accumulator seeded from ``accumulator``; every receive folds into
  it and every send ships its current value.  This is the semantics
  of the paper's reduction/combining schedules, where an item name
  identifies a *slot* in the combining tree, not a distinct datum.
"""

from __future__ import annotations

import functools
import time
from collections import deque
from typing import Any, Callable, Protocol

from repro.exec.program import KIND_RECV, KIND_SEND, RankProgram

__all__ = ["Endpoint", "RankOutcome", "RankBlocked", "run_rank"]

Envelope = tuple[int, int, Any]  # (src rank, item code, payload)


class Endpoint(Protocol):
    """A rank's view of the transport: point-to-point send + blocking
    receive of the next inbound envelope (any source)."""

    def send(self, dst: int, envelope: Envelope) -> None: ...

    def recv(self, timeout: float) -> Envelope | None:
        """Next inbound envelope, or ``None`` on timeout."""
        ...


class RankBlocked(Exception):
    """Internal signal: a rank's matched receive hit the deadline.

    Transports convert the collected signals into one
    :class:`~repro.exec.errors.ExecTimeout` with the simulator's
    blocked-rank formatting; this exception never escapes the package.
    """

    def __init__(
        self, rank: int, instr: int, total: int, src: int, code: int
    ) -> None:
        super().__init__(
            f"rank {rank} blocked at instruction {instr + 1}/{total}"
        )
        self.rank = rank
        self.instr = instr
        self.total = total
        self.src = src
        self.code = code


class RankOutcome:
    """What one rank produced: delivered ``(src, code)`` pairs in
    program order, plus its final store or accumulator."""

    __slots__ = ("rank", "delivered", "value")

    def __init__(
        self, rank: int, delivered: list[tuple[int, int]], value: Any
    ) -> None:
        self.rank = rank
        self.delivered = delivered
        self.value = value


def run_rank(
    rank: int,
    program: RankProgram,
    endpoint: Endpoint,
    *,
    store: dict[int, Any],
    combine: Callable[[Any, Any], Any] | None,
    accumulator: Any,
    reduce_op: Callable[[Any, Any], Any] | None,
    deadline: float,
) -> RankOutcome:
    """Execute one rank's program to completion.

    Raises :class:`RankBlocked` when a matched receive outlives the
    absolute ``deadline`` (``time.monotonic()`` clock).
    """
    kinds = program.kinds
    peers = program.peers
    items = program.items
    total = len(program)
    delivered: list[tuple[int, int]] = []
    # unmatched envelopes, keyed (src, code); a deque holds duplicates
    # (the same pair may legitimately be sent more than once)
    pending: dict[tuple[int, int], deque[Any]] = {}
    for i in range(total):
        kind = int(kinds[i])
        if kind == KIND_SEND:
            code = int(items[i])
            payload = accumulator if combine is not None else store[code]
            endpoint.send(int(peers[i]), (rank, code, payload))
        elif kind == KIND_RECV:
            want = (int(peers[i]), int(items[i]))
            payload = _matched_recv(
                pending, endpoint, want, rank, i, total, deadline
            )
            delivered.append(want)
            if combine is not None:
                accumulator = combine(accumulator, payload)
            else:
                store[want[1]] = payload
        else:  # KIND_REDUCE
            code = int(items[i])
            # ambient local operands (never received or produced) fall
            # back to their token value unless the caller seeded them
            operand_payloads = [
                store.get(c, c) for c in program.reduce_operands[i]
            ]
            if reduce_op is not None:
                store[code] = functools.reduce(reduce_op, operand_payloads)
            else:
                store[code] = code  # token mode: the result is its name
    return RankOutcome(
        rank, delivered, accumulator if combine is not None else store
    )


def _matched_recv(
    pending: dict[tuple[int, int], deque[Any]],
    endpoint: Endpoint,
    want: tuple[int, int],
    rank: int,
    instr: int,
    total: int,
    deadline: float,
) -> Any:
    queue = pending.get(want)
    if queue:
        payload = queue.popleft()
        if not queue:
            del pending[want]
        return payload
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise RankBlocked(rank, instr, total, want[0], want[1])
        envelope = endpoint.recv(min(remaining, 0.2))
        if envelope is None:
            continue
        src, code, payload = envelope
        if (src, code) == want:
            return payload
        pending.setdefault((src, code), deque()).append(payload)
