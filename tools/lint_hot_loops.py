#!/usr/bin/env python3
"""AST gate: no Python-level loops over sends in the vectorized hot path.

The whole point of the columnar IR (``repro.schedule.columnar``) is that
large schedules are processed as ``int64`` arrays, never as per-send
``SendOp`` objects.  A single innocuous ``for op in schedule.sends:``
inside one of the vectorized modules silently reintroduces the O(n)
Python interpreter loop — and at P=1024 all-to-all scale (~1M sends)
turns a sub-second rule sweep into minutes.

This checker walks the AST of the allowlisted hot modules and fails if
it finds, anywhere inside them:

* a ``for`` statement or comprehension iterating over an expression
  whose iterable is an attribute access ending in ``.sends``;
* a call to one of the materializing accessors ``sorted_sends()``,
  ``sends_by_proc()`` or ``receives_by_proc()``.

``.tolist()`` / ``zip(...)`` over already-reduced numpy results is fine
(and common) — the gate only targets the per-send object path.

A second gate protects the dispatch policy: the objects-vs-numpy
routing decision lives in :mod:`repro.dispatch` and nowhere else, so
any comparison against ``FAST_PATH_THRESHOLD`` in the rest of
``src/repro`` (the scattered ``schedule.num_sends >= FAST_PATH_THRESHOLD``
pattern this repo used to have) is a violation — call
``repro.dispatch.use_numpy(...)`` instead.

Usage::

    python tools/lint_hot_loops.py            # check the default allowlist
    python tools/lint_hot_loops.py src/a.py   # check specific files

Exit code 0 = clean, 1 = violations found, 2 = a listed file is missing.
Stdlib only, so it runs anywhere (CI and the bare container alike).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Modules that must stay free of per-send Python loops.  These are the
#: vectorized kernels plus everything the < 1 s lint acceptance test
#: routes through.
HOT_MODULES = [
    "src/repro/schedule/columnar.py",
    "src/repro/schedule/analysis_np.py",
    "src/repro/schedule/implicit.py",
    "src/repro/sim/validate_np.py",
    "src/repro/analyze/context.py",
    "src/repro/analyze/rules.py",
    "src/repro/analyze/engine.py",
    "src/repro/analyze/chunked.py",
]

#: Whole packages that must stay free of per-send Python loops.  The
#: pass framework promises zero SendOp materialization end to end, so
#: every module under it is hot (the objects oracles live outside, in
#: ``repro.schedule.transform``).
HOT_PACKAGES = [
    "src/repro/passes",
]

#: Calling any of these materializes / iterates SendOp objects.
BANNED_CALLS = {"sorted_sends", "sends_by_proc", "receives_by_proc"}

#: The one module allowed to compare against the dispatch threshold.
DISPATCH_OWNER = "src/repro/dispatch.py"

#: The policy knob whose comparisons must stay inside DISPATCH_OWNER.
THRESHOLD_NAME = "FAST_PATH_THRESHOLD"


def _is_sends_attr(node: ast.expr) -> bool:
    """True for any expression shaped ``<something>.sends``."""
    return isinstance(node, ast.Attribute) and node.attr == "sends"


class HotLoopChecker(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.problems: list[str] = []

    def _flag(self, node: ast.AST, what: str) -> None:
        self.problems.append(f"{self.path}:{node.lineno}: {what}")

    def _check_iter(self, node: ast.AST, iterable: ast.expr) -> None:
        if _is_sends_attr(iterable):
            self._flag(
                node,
                "python loop over `.sends` in a hot module "
                "(use the columnar arrays)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node, node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iter(node, node.iter)
        self.generic_visit(node)

    def _visit_comp(
        self, node: ast.ListComp | ast.SetComp | ast.DictComp | ast.GeneratorExp
    ) -> None:
        for gen in node.generators:
            self._check_iter(node, gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in BANNED_CALLS:
            self._flag(
                node,
                f"call to `{func.attr}()` materializes SendOp objects "
                "in a hot module (use the columnar arrays)",
            )
        self.generic_visit(node)


def _mentions_threshold(node: ast.expr) -> bool:
    """True if any sub-expression references the threshold knob."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id == THRESHOLD_NAME:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == THRESHOLD_NAME:
            return True
    return False


class DispatchGateChecker(ast.NodeVisitor):
    """Flag threshold comparisons outside the dispatch policy module."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.problems: list[str] = []

    def visit_Compare(self, node: ast.Compare) -> None:
        if any(
            _mentions_threshold(expr)
            for expr in [node.left, *node.comparators]
        ):
            self.problems.append(
                f"{self.path}:{node.lineno}: comparison against "
                f"{THRESHOLD_NAME} outside repro.dispatch "
                "(call repro.dispatch.use_numpy() instead)"
            )
        self.generic_visit(node)


def _is_dispatch_owner(path: Path, root: Path) -> bool:
    try:
        return path.resolve() == (root / DISPATCH_OWNER).resolve()
    except OSError:  # pragma: no cover - unresolvable path
        return False


def dispatch_gate_targets(root: Path) -> list[Path]:
    """Every package module except the dispatch policy itself."""
    return sorted(
        p
        for p in (root / "src" / "repro").rglob("*.py")
        if not _is_dispatch_owner(p, root)
    )


def check_file(path: Path, root: Path | None = None) -> list[str]:
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    problems: list[str] = []
    posix = path.as_posix()
    hot = any(posix.endswith(mod) for mod in HOT_MODULES) or any(
        f"{pkg}/" in posix for pkg in HOT_PACKAGES
    )
    if hot:
        checker = HotLoopChecker(str(path))
        checker.visit(tree)
        problems.extend(checker.problems)
    if root is None or not _is_dispatch_owner(path, root):
        gate = DispatchGateChecker(str(path))
        gate.visit(tree)
        problems.extend(gate.problems)
    return problems


def main(argv: list[str]) -> int:
    root = Path(__file__).resolve().parent.parent
    if argv:
        targets = [Path(arg) for arg in argv]
    else:
        hot = [root / mod for mod in HOT_MODULES]
        for pkg in HOT_PACKAGES:
            hot.extend(sorted((root / pkg).rglob("*.py")))
        targets = hot + [
            p for p in dispatch_gate_targets(root) if p not in hot
        ]
    missing = [str(p) for p in targets if not p.is_file()]
    if missing:
        print("lint-hot-loops: missing files:", ", ".join(missing))
        return 2
    problems: list[str] = []
    for path in targets:
        problems.extend(check_file(path, root))
    if problems:
        print(f"lint-hot-loops: {len(problems)} violation(s):")
        for line in problems:
            print(f"  {line}")
        return 1
    print(f"lint-hot-loops: {len(targets)} module(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
