"""Execute lowered plans on a transport and collect results + trace.

:func:`execute` is the one entry point: give it a schedule (columnar
or implicit) or an already-lowered :class:`ExecPlan`, pick a transport
by name or instance, optionally attach real payloads, and get back an
:class:`ExecResult` — per-rank values, the delivered-items
:class:`ExecTrace`, and the wall-clock cost.  ``verify=True`` asserts
the delivered multiset matches the simulator byte-for-byte before
returning.

Payload disciplines (see :mod:`repro.exec.engine`): *store mode* maps
items to payloads per rank (token payloads by default), *combine mode*
(``combine=`` + ``accumulators=``) folds every delivery into one
running value per rank, matching the paper's reduction semantics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Union

from repro.exec.errors import ExecError
from repro.exec.lower import lower_schedule
from repro.exec.program import ExecPlan
from repro.exec.trace import ExecTrace, Triple, verify_against_sim
from repro.exec.transport import Transport, get_transport
from repro.schedule.implicit import ImplicitSchedule
from repro.schedule.ops import Item, Schedule

__all__ = ["ExecResult", "execute"]

DEFAULT_TIMEOUT_S = 30.0

Combine = Callable[[Any, Any], Any]
Source = Union[Schedule, ImplicitSchedule, ExecPlan]


@dataclass
class ExecResult:
    """Outcome of one execution."""

    transport: str
    trace: ExecTrace
    values: dict[int, Any]
    wall_s: float

    @property
    def num_delivered(self) -> int:
        return self.trace.num_delivered


def _resolve(source: Source) -> ExecPlan:
    if isinstance(source, ExecPlan):
        return source
    return lower_schedule(source)


def _initial_stores(
    plan: ExecPlan, payloads: dict[int, dict[Item, Any]] | None
) -> dict[int, dict[int, Any]]:
    """Per-rank ``{code: payload}`` stores: token payloads (an item's
    payload is its own code) for every initially held item, overridden
    by the caller's ``payloads``."""
    stores: dict[int, dict[int, Any]] = {
        rank: {code: code for code in codes}
        for rank, codes in plan.initial.items()
    }
    for rank, mapping in (payloads or {}).items():
        store = stores.setdefault(rank, {})
        for item, value in mapping.items():
            store[plan.encode(item)] = value
    return stores


def execute(
    source: Source,
    *,
    transport: str | Transport = "inproc",
    payloads: dict[int, dict[Item, Any]] | None = None,
    combine: Combine | None = None,
    accumulators: dict[int, Any] | None = None,
    reduce_op: Combine | None = None,
    timeout: float = DEFAULT_TIMEOUT_S,
    verify: bool = False,
) -> ExecResult:
    """Lower (if needed) and execute ``source`` on a transport.

    ``verify=True`` requires a schedule source (the simulator side of
    the comparison needs the schedule, not just the lowered plan) and
    raises :class:`~repro.exec.errors.ExecVerificationError` if the
    transport's delivered multiset diverges from the simulator's.
    """
    if combine is not None and accumulators is None:
        raise ExecError(
            "execute: combine= needs accumulators= (the per-rank seed "
            "values the deliveries fold into)"
        )
    schedule: Schedule | None = None
    if verify:
        if isinstance(source, ImplicitSchedule):
            schedule = source.materialize()
        elif isinstance(source, Schedule):
            schedule = source
        else:
            raise ExecError(
                "execute: verify=True needs a Schedule (or implicit "
                "schedule) source; an ExecPlan no longer carries the "
                "timed schedule the simulator replays"
            )
    plan = _resolve(source)
    if isinstance(transport, str):
        transport = get_transport(transport)
    stores = _initial_stores(plan, payloads)
    started = time.monotonic()
    run = transport.run(
        plan,
        stores=stores,
        combine=combine,
        accumulators=dict(accumulators or {}),
        reduce_op=reduce_op,
        timeout=timeout,
    )
    wall_s = time.monotonic() - started
    decode = plan.table.decode
    triples: list[Triple] = [
        (src, rank, decode(code))
        for rank in sorted(run.delivered)
        for src, code in run.delivered[rank]
    ]
    trace = ExecTrace(
        params=plan.params,
        transport=transport.name,
        delivered=tuple(triples),
    )
    values: dict[int, Any] = {}
    if combine is None:
        # ranks with no instructions never ran; their value is just the
        # initial store (mp workers return copies, inproc the originals)
        for rank, store in stores.items():
            values[rank] = store
        for rank, value in run.values.items():
            values[rank] = value
        values = {
            rank: {decode(code): payload for code, payload in store.items()}
            for rank, store in sorted(values.items())
        }
    else:
        for rank, seed in sorted((accumulators or {}).items()):
            values[rank] = seed
        for rank, value in run.values.items():
            values[rank] = value
    result = ExecResult(
        transport=transport.name,
        trace=trace,
        values=values,
        wall_s=wall_s,
    )
    if schedule is not None:
        verify_against_sim(schedule, trace)
    return result
