"""Planted REPRO004: counters mutated outside the lock that guards them."""

import threading


class Counters:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def record_hit(self):
        with self._lock:
            self.hits += 1

    def record_miss(self):
        self.misses += 1
        with self._lock:
            self.misses += 1

    def reset(self):
        self.hits = 0
