"""Reception tables (Figures 2, 4 and 5).

A reception table has one row per time step and one column per
processor; the entry is the item received at that step (the paper's
absolute addressing: item indices, 1-based in the figures, 0-based
here).  Active (internal-node / uppercase) receptions are wrapped in
``(...)``, buffered-then-delayed receptions (Figure 5's boxed entries)
in ``[...]``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable

from repro.core.kitem.buffered import BufferedSchedule
from repro.schedule.ops import Schedule

__all__ = ["reception_table", "render_reception_table", "buffered_reception_table"]


def reception_table(
    schedule: Schedule, actives: set[tuple[int, Hashable]] | None = None
) -> dict[int, dict[int, str]]:
    """Map ``step -> proc -> entry`` from an explicit schedule.

    ``actives`` optionally marks ``(proc, item)`` receptions to highlight.
    """
    table: dict[int, dict[int, str]] = defaultdict(dict)
    for op in schedule.sorted_sends():
        when = op.arrival(schedule.params)
        entry = str(op.item)
        if actives and (op.dst, op.item) in actives:
            entry = f"({entry})"
        table[when][op.dst] = entry
    return dict(table)


def buffered_reception_table(schedule: BufferedSchedule) -> dict[int, dict[int, str]]:
    """Figure 5's table: ``(i)`` marks active items, ``[i]`` delayed ones."""
    table: dict[int, dict[int, str]] = defaultdict(dict)
    for (proc, item), (arrival, recv, active) in schedule.receptions.items():
        if active:
            entry = f"({item})"
        elif recv > arrival:
            entry = f"[{item}]"
        else:
            entry = str(item)
        table[recv][proc] = entry
    return dict(table)


def render_reception_table(
    table: dict[int, dict[int, str]],
    procs: list[int] | None = None,
    time_range: tuple[int, int] | None = None,
) -> str:
    """Render a ``step -> proc -> entry`` mapping as an aligned text grid."""
    if not table:
        return "(empty)"
    if procs is None:
        procs = sorted({p for row in table.values() for p in row})
    if time_range is None:
        time_range = (min(table), max(table))
    width = max(
        [len(str(e)) for row in table.values() for e in row.values()] + [4]
    )
    lines = [
        "time " + "".join(f"P{p:<{width}}" for p in procs)
    ]
    for step in range(time_range[0], time_range[1] + 1):
        row = table.get(step, {})
        cells = "".join(f" {row.get(p, '·'):<{width}}" for p in procs)
        lines.append(f"{step:>4} {cells}")
    return "\n".join(lines)
