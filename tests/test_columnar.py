"""Tests for the columnar schedule storage (repro.schedule.columnar)."""

import numpy as np
import pytest

from repro.core.all_to_all import (
    all_to_all_personalized_schedule,
    all_to_all_schedule,
    k_item_all_to_all_schedule,
)
from repro.core.single_item import schedule_from_tree
from repro.core.tree import optimal_tree
from repro.params import LogPParams, postal
from repro.schedule.columnar import (
    ItemTable,
    arrays_to_columns,
    materialize_sends,
    sort_order,
)
from repro.schedule.ops import Schedule, SendOp
from repro.schedule.serialize import schedule_from_json, schedule_to_json
from repro.sim.validate import violations


class TestItemTable:
    def test_insertion_order_interning(self):
        table = ItemTable()
        assert table.intern("b") == 0
        assert table.intern("a") == 1
        assert table.intern("b") == 0  # idempotent
        assert table.items == ["b", "a"]
        assert table.codes == {"b": 0, "a": 1}

    def test_mixed_tuple_and_int_items(self):
        # interning must not require items to be mutually orderable —
        # int < tuple raises TypeError, but hashing is enough
        stream = [0, ("blk", 1), 0, ("blk", 1), 1, ("blk", 0, 2)]
        table = ItemTable()
        codes = table.encode(stream)
        assert codes.tolist() == [0, 1, 0, 1, 2, 3]
        assert table.items == [0, ("blk", 1), 1, ("blk", 0, 2)]
        # same stream -> same table, deterministically
        again = ItemTable()
        assert again.encode(stream).tolist() == codes.tolist()
        assert again.items == table.items

    def test_decode_roundtrip(self):
        table = ItemTable([("a2a", i) for i in range(5)])
        for i in range(5):
            assert table[table.intern(("a2a", i))] == ("a2a", i)
        assert len(table) == 5
        assert ("a2a", 3) in table
        assert list(table) == [("a2a", i) for i in range(5)]

    def test_copy_is_independent(self):
        table = ItemTable(["x"])
        clone = table.copy()
        clone.intern("y")
        assert len(table) == 1
        assert len(clone) == 2

    def test_corrupt_codes_raise_index_error(self):
        # corrupted/foreign columns used to wrap around via Python's
        # negative indexing (-1 silently decoded to the *last* item)
        table = ItemTable(["a", "b", "c"])
        for bad in (-1, -3, 3, 10):
            with pytest.raises(IndexError, match="out of range"):
                table.decode(bad)
            with pytest.raises(IndexError, match="out of range"):
                table[bad]
        with pytest.raises(IndexError, match=r"table of 0 item"):
            ItemTable().decode(0)


class TestArraysToColumns:
    def test_shape_mismatch_rejected(self):
        p = postal(P=3, L=2)
        with pytest.raises(ValueError, match="identical length"):
            arrays_to_columns(
                p,
                np.arange(3),
                np.arange(2),
                np.arange(3),
                None,
                None,
                {0: {0}},
            )

    def test_codes_without_table_rejected(self):
        p = postal(P=3, L=2)
        with pytest.raises(ValueError, match="without an item_table"):
            arrays_to_columns(
                p, np.arange(2), np.zeros(2), np.ones(2), np.zeros(2), None, {}
            )

    def test_out_of_range_codes_rejected(self):
        p = postal(P=3, L=2)
        with pytest.raises(ValueError, match="item codes"):
            arrays_to_columns(
                p,
                np.arange(2),
                np.zeros(2),
                np.ones(2),
                np.array([0, 5]),
                ItemTable([0, 1]),
                {},
            )

    def test_negative_proc_rejected(self):
        p = postal(P=3, L=2)
        with pytest.raises(ValueError, match="non-negative"):
            arrays_to_columns(
                p, np.zeros(1), np.array([-1]), np.zeros(1), None, None, {}
            )

    def test_int64_arrays_are_zero_copy(self):
        p = postal(P=4, L=2)
        times = np.array([0, 1, 2], dtype=np.int64)
        cols = arrays_to_columns(
            p, times, np.zeros(3, np.int64), np.arange(1, 4), None, None, {0: {0}}
        )
        assert cols.times is times
        assert cols.num_procs == 4
        assert cols.arrivals.tolist() == [2, 3, 4]


class TestFromArrays:
    def _small(self):
        p = postal(P=3, L=2)
        table = ItemTable(["m0", "m1"])
        return Schedule.from_arrays(
            p,
            np.array([0, 1, 0]),
            np.array([0, 0, 1]),
            np.array([1, 2, 2]),
            item_codes=np.array([0, 0, 1]),
            item_table=table,
            initial={0: {"m0"}, 1: {"m1"}},
        )

    def test_lazy_materialization(self):
        s = self._small()
        assert s.is_array_backed
        assert s.num_sends == len(s) == 3
        # queries that have vectorized paths do not materialize
        assert s.items() == {"m0", "m1"}
        assert s.processors() == {0, 1, 2}
        assert s.is_array_backed
        # touching .sends materializes, preserving storage order
        assert s.sends == [
            SendOp(0, 0, 1, "m0"),
            SendOp(1, 0, 2, "m0"),
            SendOp(0, 1, 2, "m1"),
        ]
        assert not s.is_array_backed

    def test_materialized_equals_object_built(self):
        s = self._small()
        o = Schedule(
            params=s.params, initial={0: {"m0"}, 1: {"m1"}}
        )
        o.add(0, 0, 1, "m0")
        o.add(1, 0, 2, "m0")
        o.add(0, 1, 2, "m1")
        assert s == o

    def test_default_single_item_table(self):
        p = postal(P=2, L=1)
        s = Schedule.from_arrays(p, np.array([0]), np.array([0]), np.array([1]))
        assert s.sends == [SendOp(0, 0, 1, 0)]

    def test_add_after_materialization_invalidates_columns(self):
        s = self._small()
        cols = s.columns()
        s.add(5, 2, 0, "m1")
        cols2 = s.columns()
        assert cols2 is not cols
        assert len(cols2) == 4
        assert cols2.times.tolist()[-1] == 5


class TestScheduleCaches:
    def _sched(self):
        s = Schedule(params=postal(P=4, L=2))
        s.add(3, 0, 1)
        s.add(0, 0, 2)
        s.add(1, 0, 3)
        return s

    def test_sorted_sends_cached_and_invalidated(self):
        s = self._sched()
        first = s.sorted_sends()
        assert first is s.sorted_sends()  # cached
        s.add(2, 0, 1)
        second = s.sorted_sends()
        assert second is not first
        assert [op.time for op in second] == [0, 1, 2, 3]

    def test_extend_invalidates(self):
        s = self._sched()
        by = s.sends_by_proc()
        assert by is s.sends_by_proc()
        s.extend([SendOp(9, 1, 2)])
        assert [op.time for op in s.sends_by_proc()[1]] == [9]

    def test_sends_setter_invalidates(self):
        s = self._sched()
        s.sorted_sends()
        s.columns()
        s.sends = [SendOp(7, 2, 3)]
        assert [op.time for op in s.sorted_sends()] == [7]
        assert s.columns().times.tolist() == [7]

    def test_external_append_detected_by_length(self):
        # direct mutation of the list bypasses add(); the length check
        # still catches it on the next derived-view call
        s = self._sched()
        s.sorted_sends()
        s.columns()
        s.sends.append(SendOp(10, 1, 0))
        assert len(s.sorted_sends()) == 4
        assert len(s.columns()) == 4

    def test_columns_cached_for_object_backed(self):
        s = self._sched()
        assert s.columns() is s.columns()

    def test_mixed_item_ties_do_not_crash_sort(self):
        # two sends at identical (time, src, dst) carrying int vs tuple
        # items: SendOp's own ordering would raise TypeError
        s = Schedule(params=postal(P=3, L=1), initial={0: {0, ("blk", 1)}})
        s.add(0, 0, 1, item=0)
        s.add(0, 0, 1, item=("blk", 1))
        ops = s.sorted_sends()
        assert [op.item for op in ops] == [0, ("blk", 1)]  # stable, by position
        assert list(s) == ops

    def test_sort_order_matches_python_sort(self):
        s = self._sched()
        order = sort_order(s.columns())
        materialized = materialize_sends(s.columns())
        assert [materialized[i] for i in order.tolist()] == s.sorted_sends()


class TestBuilderEquivalence:
    @pytest.mark.parametrize("P,L", [(2, 1), (5, 3), (9, 2)])
    def test_all_to_all_backends_agree(self, P, L):
        params = postal(P=P, L=L)
        fast = all_to_all_schedule(params)
        oracle = all_to_all_schedule(params, backend="objects")
        assert fast.sends == oracle.sends
        assert fast.initial == oracle.initial
        assert violations(fast) == violations(oracle) == []

    def test_all_to_all_custom_orders(self):
        P = 5
        params = postal(P=P, L=2)
        orders = [[(i + d) % P for d in range(1, P)] for i in range(P)]
        fast = all_to_all_schedule(params, orders)
        oracle = all_to_all_schedule(params, orders, backend="objects")
        assert fast.sends == oracle.sends

    def test_all_to_all_bad_orders_still_validated(self):
        params = postal(P=3, L=2)
        with pytest.raises(ValueError):
            all_to_all_schedule(params, [[1, 2], [0, 2], [1, 0]])

    @pytest.mark.parametrize("P", [2, 4, 7])
    def test_personalized_backends_agree(self, P):
        params = postal(P=P, L=3)
        fast = all_to_all_personalized_schedule(params)
        oracle = all_to_all_personalized_schedule(params, backend="objects")
        assert fast.sends == oracle.sends
        assert fast.initial == oracle.initial

    @pytest.mark.parametrize("P,k", [(2, 1), (5, 3), (4, 2)])
    def test_kitem_backends_agree(self, P, k):
        params = postal(P=P, L=2)
        fast = k_item_all_to_all_schedule(params, k)
        oracle = k_item_all_to_all_schedule(params, k, backend="objects")
        assert fast.sends == oracle.sends
        assert fast.initial == oracle.initial

    @pytest.mark.parametrize(
        "params",
        [postal(P=13, L=3), LogPParams(P=8, L=6, o=2, g=4)],
    )
    def test_tree_emitter_backends_agree(self, params):
        tree = optimal_tree(params)
        fast = schedule_from_tree(tree, item=("bcast", 0), start_time=4)
        oracle = schedule_from_tree(
            tree, item=("bcast", 0), start_time=4, backend="objects"
        )
        assert fast.sends == oracle.sends
        assert fast.initial == oracle.initial
        assert fast.source_items == oracle.source_items

    def test_tree_emitter_proc_map(self):
        params = postal(P=9, L=2)
        tree = optimal_tree(params)
        mapping = {i: (i + 3) % 9 for i in range(9)}
        fast = schedule_from_tree(tree, proc_map=mapping)
        oracle = schedule_from_tree(tree, proc_map=mapping, backend="objects")
        assert fast.sends == oracle.sends
        assert fast.initial == oracle.initial

    def test_unknown_backend_rejected(self):
        params = postal(P=3, L=2)
        with pytest.raises(ValueError, match="unknown backend"):
            all_to_all_schedule(params, backend="cuda")


class TestSerializeColumnar:
    def test_array_backed_serializes_without_materializing(self):
        s = all_to_all_schedule(postal(P=6, L=2))
        assert s.is_array_backed
        text = schedule_to_json(s)
        assert s.is_array_backed  # serialization stayed in the arrays
        r = schedule_from_json(text)
        assert r.sorted_sends() == s.sorted_sends()
        assert r.initial == s.initial

    def test_backends_serialize_identically(self):
        params = postal(P=7, L=3)
        fast = all_to_all_schedule(params)
        oracle = all_to_all_schedule(params, backend="objects")
        assert schedule_to_json(fast) == schedule_to_json(oracle)
