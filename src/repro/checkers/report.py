"""Render check reports: human text and SARIF-shaped JSON.

Mirrors :mod:`repro.analyze.report` one tier up.  The text form is
byte-stable (sorted diagnostics, fixed field order, no timestamps or
elapsed times) so the corpus tests in ``tests/test_check_corpus.py``
can pin it verbatim.  The SARIF form differs from the schedule lint's
in exactly one way: code findings have files and line numbers, so
results carry *physical* locations (``artifactLocation`` + ``region``)
instead of send-index logical locations.
"""

from __future__ import annotations

import json
from typing import Any

from repro.checkers.diagnostics import (
    UNUSED_SUPPRESSION,
    CheckReport,
    Severity,
)
from repro.checkers.registry import CHECKERS

__all__ = ["render_text", "to_sarif", "sarif_json"]

_META_RULES = [
    {
        "id": UNUSED_SUPPRESSION,
        "name": "unused-suppression",
        "shortDescription": {
            "text": "a # repro: ignore[...] comment matched nothing"
        },
        "defaultConfiguration": {"level": Severity.WARNING.sarif_level},
    }
]


def render_text(report: CheckReport, verbose: bool = False) -> str:
    """One line per diagnostic plus a summary (stable across runs)."""
    lines = [
        f"repro-check: {report.files_checked} files, "
        f"{len(report.rules_run)} rules run"
    ]
    for diag in report.diagnostics:
        lines.append(diag.render())
        if verbose and diag.fixit:
            lines.append(f"    fix: {diag.fixit}")
    errors = report.count(Severity.ERROR)
    warnings = report.count(Severity.WARNING)
    infos = report.count(Severity.INFO)
    lines.append(f"summary: {errors} errors, {warnings} warnings, {infos} info")
    return "\n".join(lines)


def to_sarif(report: CheckReport) -> dict[str, Any]:
    """The report as a SARIF-2.1.0-shaped dict."""
    ran = set(report.rules_run)
    rules_meta = [
        {
            "id": checker.id,
            "name": checker.name,
            "shortDescription": {"text": checker.summary},
            "defaultConfiguration": {"level": checker.severity.sarif_level},
        }
        for checker in CHECKERS
        if checker.id in ran
    ]
    fired = {d.rule for d in report.diagnostics}
    if UNUSED_SUPPRESSION in fired:
        rules_meta.extend(_META_RULES)
    results = []
    for diag in report.diagnostics:
        result: dict[str, Any] = {
            "ruleId": diag.rule,
            "level": diag.severity.sarif_level,
            "message": {"text": diag.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": diag.path},
                        "region": {"startLine": diag.line},
                    }
                }
            ],
        }
        if diag.fixit:
            result["fixes"] = [{"description": {"text": diag.fixit}}]
        results.append(result)
    return {
        "version": "2.1.0",
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-check",
                        "informationUri": (
                            "https://doi.org/10.1145/165231.165250"
                        ),
                        "rules": rules_meta,
                    }
                },
                "results": results,
                "properties": {
                    "filesChecked": report.files_checked,
                    "rulesRun": report.rules_run,
                    "ruleTotals": report.rule_totals,
                },
            }
        ],
    }


def sarif_json(report: CheckReport, indent: int | None = 2) -> str:
    """The SARIF dict serialized to JSON text."""
    return json.dumps(to_sarif(report), indent=indent, sort_keys=False)
