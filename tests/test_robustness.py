"""Tests for the latency-jitter robustness study."""

import numpy as np
import pytest

from repro.baselines.trees import baseline_broadcast
from repro.core.single_item import optimal_broadcast_schedule
from repro.experiments.robustness import (
    jittered_makespans,
    robustness_study,
    tree_structure,
)
from repro.params import LogPParams, postal
from repro.schedule.ops import Schedule


class TestTreeStructure:
    def test_edges_cover_all_nonroot(self):
        s = optimal_broadcast_schedule(postal(P=9, L=3))
        edges = tree_structure(s)
        assert len(edges) == 8
        assert {e.child for e in edges} == set(range(1, 9))

    def test_ranks_count_per_parent_sends(self):
        s = optimal_broadcast_schedule(postal(P=9, L=3))
        edges = tree_structure(s)
        root_edges = [e for e in edges if e.parent == 0]
        assert [e.rank for e in root_edges] == list(range(len(root_edges)))

    def test_rejects_non_tree(self):
        s = Schedule(params=postal(P=3, L=2))
        s.add(0, 0, 1)
        s.add(3, 0, 1)
        with pytest.raises(ValueError):
            tree_structure(s)


class TestJitteredMakespans:
    def test_zero_jitter_is_deterministic(self):
        params = LogPParams(P=8, L=6, o=2, g=4)
        spans = jittered_makespans(optimal_broadcast_schedule(params), 0.0, trials=16)
        assert np.all(spans == 24)

    def test_jitter_only_increases(self):
        params = postal(P=16, L=4)
        base = jittered_makespans(optimal_broadcast_schedule(params), 0.0, trials=8)
        noisy = jittered_makespans(optimal_broadcast_schedule(params), 0.5, trials=500)
        assert noisy.min() >= base[0]

    def test_reproducible_with_seed(self):
        s = optimal_broadcast_schedule(postal(P=8, L=3))
        a = jittered_makespans(s, 0.3, trials=64, seed=42)
        b = jittered_makespans(s, 0.3, trials=64, seed=42)
        assert np.array_equal(a, b)

    def test_binomial_deterministic_matches_schedule(self):
        params = LogPParams(P=8, L=6, o=2, g=4)
        s = baseline_broadcast("binomial", params)
        spans = jittered_makespans(s, 0.0, trials=4)
        assert np.all(spans == 30)


class TestStudy:
    def test_optimal_keeps_lead_at_moderate_jitter(self):
        rows = robustness_study(
            params=LogPParams(P=16, L=12, o=1, g=2),
            jitters=(0.0, 0.25),
            trials=800,
        )
        for row in rows:
            assert row["optimal_mean"] <= row["binomial_mean"]

    def test_jitter_column_monotone(self):
        rows = robustness_study(jitters=(0.0, 0.5), trials=400)
        assert rows[0]["optimal_mean"] <= rows[1]["optimal_mean"]
