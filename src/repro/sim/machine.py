"""Cycle-stepped LogP machine simulator.

Two entry points:

* :func:`replay` — re-execute an explicit :class:`Schedule`, verifying all
  LogP constraints and returning the execution :class:`Trace`.  This is the
  oracle against which every constructive algorithm in the library is
  checked.
* :class:`Machine` — run *reactive programs* (one per processor) under
  earliest-available semantics.  Programs queue send intents; the engine
  assigns actual cycle-accurate start times.  A send departs only when the
  LogP model permits it end to end: the sender's gap and overhead, the
  *receiver's* gap and overhead at the implied arrival slot (slots are
  reserved at send time, like a circuit-switched admission check), and
  thus also the network capacity.  The realized :class:`Schedule` therefore
  always replays cleanly on the strict validator.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Hashable, Protocol

from repro.params import LogPParams
from repro.schedule.ops import Schedule, SendOp
from repro.sim.trace import Trace, trace_from_schedule
from repro.sim.validate import assert_valid

__all__ = ["replay", "Machine", "Program", "Context"]

Item = Hashable


def replay(schedule: Schedule, check_capacity: bool = True) -> Trace:
    """Validate ``schedule`` against the LogP model and return its trace.

    Raises ``ValueError`` (with every violation listed) if the schedule is
    not a legal execution.
    """
    assert_valid(schedule, check_capacity=check_capacity)
    return trace_from_schedule(schedule)


class Context:
    """Handle given to program callbacks for interacting with the machine."""

    def __init__(self, machine: "Machine", proc: int, time: int):
        self._machine = machine
        self.proc = proc
        self.time = time

    def send(self, dst: int, item: Item) -> None:
        """Queue a message; it departs as soon as the LogP model permits."""
        self._machine._enqueue_send(self.proc, dst, item)

    def has(self, item: Item) -> bool:
        return item in self._machine._states[self.proc].held

    def held_items(self) -> frozenset[Item]:
        return frozenset(self._machine._states[self.proc].held)

    @property
    def params(self) -> LogPParams:
        return self._machine.params


class Program(Protocol):
    """Per-processor reactive behaviour.

    ``on_start`` fires at cycle 0; ``on_receive`` fires at the cycle the
    item becomes available (end of the receive overhead).
    """

    def on_start(self, ctx: Context) -> None: ...

    def on_receive(self, ctx: Context, item: Item, src: int) -> None: ...


@dataclass
class _ProcState:
    held: set[Item] = field(default_factory=set)
    outbox: deque = field(default_factory=deque)  # (dst, item)
    last_send_start: int | None = None
    recv_slots: set[int] = field(default_factory=set)  # booked receive starts
    inbox: list = field(default_factory=list)  # heap of (recv_start, seq, src, item)


class Machine:
    """Earliest-available cycle-stepped execution of reactive programs.

    Per cycle each processor attempts to start at most one send (head of
    its FIFO outbox).  A send at cycle ``t`` is admitted only if

    * the item is held and the last send started >= ``g`` cycles ago,
    * (``o > 0``) the sender's overhead ``[t, t+o)`` does not overlap any
      of its reserved incoming receive overheads,
    * the receive slot ``t + o + L`` at the destination is >= ``g`` away
      from every already-reserved slot there.

    Receptions happen exactly at their reserved slots, so the realized
    schedule satisfies the strict LogP validator by construction.
    """

    def __init__(
        self,
        params: LogPParams,
        programs: dict[int, Program],
        initial: dict[int, set[Item]] | None = None,
        max_cycles: int = 1_000_000,
    ):
        self.params = params
        self.programs = programs
        self.max_cycles = max_cycles
        self._states: dict[int, _ProcState] = {
            p: _ProcState() for p in range(params.P)
        }
        init = initial if initial is not None else {0: {0}}
        for proc, items in init.items():
            self._states[proc].held |= set(items)
        self._initial = {p: set(s.held) for p, s in self._states.items() if s.held}
        self._sends: list[SendOp] = []
        self._seq = 0

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _enqueue_send(self, src: int, dst: int, item: Item) -> None:
        if dst == src:
            raise ValueError(f"proc {src} cannot send to itself")
        if not (0 <= dst < self.params.P):
            raise ValueError(f"destination {dst} out of range")
        self._states[src].outbox.append((dst, item))

    def _send_admissible(self, proc: int, t: int) -> bool:
        params = self.params
        state = self._states[proc]
        if not state.outbox:
            return False
        dst, item = state.outbox[0]
        if item not in state.held:
            return False
        if state.last_send_start is not None and t - state.last_send_start < params.g:
            return False
        if params.o > 0:
            # the sender's overhead [t, t+o) must not overlap any reserved
            # incoming receive overhead [r, r+o)
            for r in state.recv_slots:
                if abs(r - t) < params.o:
                    return False
        slot = t + params.o + params.L
        dst_slots = self._states[dst].recv_slots
        for r in dst_slots:
            if abs(r - slot) < params.g:
                return False
        return True

    def run(self) -> Schedule:
        """Run all programs to quiescence and return the realized schedule."""
        params = self.params
        o = params.o
        # pending callbacks: heap of (fire_time, seq, kind, proc, payload)
        pending: list[tuple[int, int, str, int, tuple]] = []
        for proc in sorted(self.programs):
            heapq.heappush(pending, (0, self._next_seq(), "start", proc, ()))

        def drain_callbacks(t: int) -> None:
            while pending and pending[0][0] <= t:
                fire_time, _seq, kind, proc, payload = heapq.heappop(pending)
                prog = self.programs.get(proc)
                if prog is None:
                    continue
                ctx = Context(self, proc, max(fire_time, t))
                if kind == "start":
                    prog.on_start(ctx)
                else:
                    item, src = payload
                    prog.on_receive(ctx, item, src)

        t = 0
        while t <= self.max_cycles:
            drain_callbacks(t)

            # phase 1: receptions due this cycle (slots are pre-validated)
            for proc in range(params.P):
                state = self._states[proc]
                if state.inbox and state.inbox[0][0] <= t:
                    recv_start, _sq, src, item = heapq.heappop(state.inbox)
                    assert recv_start == t, "reserved slot must fire on time"
                    state.held.add(item)
                    heapq.heappush(
                        pending,
                        (t + o, self._next_seq(), "recv", proc, (item, src)),
                    )

            # with o == 0 the payload is usable this very cycle, and the
            # postal model is full duplex: fire handlers before the send
            # phase so a just-informed processor can relay immediately
            if o == 0:
                drain_callbacks(t)

            # phase 2: sends
            for proc in range(params.P):
                if self._send_admissible(proc, t):
                    state = self._states[proc]
                    dst, item = state.outbox.popleft()
                    state.last_send_start = t
                    self._sends.append(SendOp(time=t, src=proc, dst=dst, item=item))
                    slot = t + o + params.L
                    dst_state = self._states[dst]
                    dst_state.recv_slots.add(slot)
                    heapq.heappush(
                        dst_state.inbox, (slot, self._next_seq(), proc, item)
                    )

            if not pending and not any(
                s.outbox or s.inbox for s in self._states.values()
            ):
                break
            t += 1
        else:
            raise RuntimeError(f"simulation exceeded {self.max_cycles} cycles")

        return Schedule(
            params=params, sends=sorted(self._sends), initial=self._initial
        )

    def held(self, proc: int) -> frozenset[Item]:
        return frozenset(self._states[proc].held)
