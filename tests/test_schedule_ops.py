"""Tests for the schedule IR."""

import pytest

from repro.params import LogPParams, postal
from repro.schedule.ops import ComputeOp, Schedule, SendOp


class TestSendOp:
    def test_arrival_postal(self):
        op = SendOp(time=5, src=0, dst=1, item=0)
        assert op.arrival(postal(P=2, L=3)) == 8

    def test_arrival_with_overhead(self):
        op = SendOp(time=0, src=0, dst=1)
        p = LogPParams(P=2, L=6, o=2, g=4)
        assert op.receive_start(p) == 8  # o + L after send start
        assert op.arrival(p) == 10  # L + 2o

    def test_ordering_chronological(self):
        ops = [SendOp(time=3, src=0, dst=1), SendOp(time=1, src=2, dst=0), SendOp(time=1, src=0, dst=2)]
        s = sorted(ops)
        assert [o.time for o in s] == [1, 1, 3]
        assert s[0].src == 0  # ties broken by src

    def test_frozen(self):
        op = SendOp(time=0, src=0, dst=1)
        with pytest.raises(AttributeError):
            op.time = 5


class TestSchedule:
    def test_default_initial(self):
        s = Schedule(params=postal(P=2, L=1))
        assert s.initial == {0: {0}}

    def test_add_and_iter(self):
        s = Schedule(params=postal(P=3, L=1))
        s.add(2, 0, 1, item=0)
        s.add(0, 0, 2, item=0)
        assert [op.time for op in s] == [0, 2]
        assert len(s) == 2

    def test_sends_by_proc_sorted(self):
        s = Schedule(params=postal(P=3, L=2))
        s.add(4, 0, 1)
        s.add(0, 0, 2)
        s.add(1, 1, 2)
        by = s.sends_by_proc()
        assert [op.time for op in by[0]] == [0, 4]
        assert [op.time for op in by[1]] == [1]

    def test_receives_by_proc_ordered_by_arrival(self):
        s = Schedule(params=postal(P=3, L=5))
        s.add(3, 0, 2)
        s.add(0, 1, 2)
        by = s.receives_by_proc()
        assert [op.src for op in by[2]] == [1, 0]

    def test_items_and_processors(self):
        s = Schedule(params=postal(P=4, L=1), initial={0: {"a", "b"}})
        s.add(0, 0, 3, item="a")
        assert s.items() == {"a", "b"}
        assert s.processors() == {0, 3}

    def test_item_creation_time(self):
        s = Schedule(params=postal(P=2, L=1), source_items={7: 3})
        assert s.item_creation_time(7) == 3
        assert s.item_creation_time(0) == 0

    def test_extend(self):
        s = Schedule(params=postal(P=3, L=1))
        s.extend([SendOp(time=0, src=0, dst=1), SendOp(time=1, src=0, dst=2)])
        assert len(s) == 2


class TestComputeOp:
    def test_fields(self):
        c = ComputeOp(time=3, proc=1, result=("acc", 1), operands=(("x", 0),))
        assert c.duration == 1
        assert c.operands == (("x", 0),)

    def test_ordering(self):
        a = ComputeOp(time=1, proc=0)
        b = ComputeOp(time=0, proc=5)
        assert sorted([a, b])[0] is b
