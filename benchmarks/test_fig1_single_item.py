"""FIG1: optimal single-item broadcast, P=8, L=6, g=4, o=2 (Figure 1).

Regenerates the optimal broadcast tree and the per-processor activity
timeline; asserts the paper's completion time B(8) = 24 and the exact
node delays visible in the figure.
"""

from repro.experiments.figures import fig1_single_item


def test_fig1(benchmark):
    result = benchmark(fig1_single_item)
    assert result.measured["B(P)"] == result.measured["paper_B(P)"] == 24
    assert result.measured["node_delays"] == [0, 10, 14, 18, 20, 22, 24, 24]
    print()
    print(result)
