"""Verified schedule-transformation passes over the columnar IR (S33).

The package unifies every schedule-to-schedule rewrite behind one
MLIR/xdsl-shaped framework:

- :mod:`repro.passes.base` — the :class:`SchedulePass` contract, declared
  invariants, and the pass registry (``register_pass`` / ``make_pass``).
- :mod:`repro.passes.kernels` — vectorized columnar kernels (no SendOp
  materialization; the AST gate enforces it).
- :mod:`repro.passes.library` — the built-in passes: the five ported
  transforms (shift/remap/reverse/concat/restrict) plus the three
  normalizers (canonicalize / prune-dead-sends / compact-time).
- :mod:`repro.passes.lowering` — the ``lower`` pass bridging to the
  execution stack (:mod:`repro.exec`): schedule in, schedule out, with
  the compiled per-rank programs stashed on the pass instance.
- :mod:`repro.passes.pipeline` — textual pipeline parsing
  (``"shift{offset=5},canonicalize"``).
- :mod:`repro.passes.manager` — :class:`PassManager` with differential
  lint verification between passes (``verify=errors|all|off``).

Quick start::

    from repro.passes import run_pipeline
    fast = run_pipeline("reverse,canonicalize,prune-dead-sends",
                        schedule, verify="errors")
"""

from repro.passes.base import (
    PassSpec,
    SchedulePass,
    get_pass_cls,
    get_pass_spec,
    make_pass,
    pass_names,
    pass_specs,
    register_pass,
)
from repro.passes.library import (
    CanonicalizePass,
    CompactTimePass,
    ConcatPass,
    HealPass,
    PruneDeadSendsPass,
    RemapPass,
    RestrictPass,
    ReversePass,
    ShiftPass,
)
from repro.passes.lowering import LowerPass
from repro.passes.manager import (
    ERROR_RULES,
    PassManager,
    PassRecord,
    PassVerificationError,
    run_pipeline,
)
from repro.passes.pipeline import format_pipeline, parse_pipeline

__all__ = [
    "SchedulePass",
    "PassSpec",
    "register_pass",
    "get_pass_cls",
    "get_pass_spec",
    "pass_names",
    "pass_specs",
    "make_pass",
    "ShiftPass",
    "RemapPass",
    "ReversePass",
    "ConcatPass",
    "RestrictPass",
    "HealPass",
    "CanonicalizePass",
    "PruneDeadSendsPass",
    "CompactTimePass",
    "LowerPass",
    "parse_pipeline",
    "format_pipeline",
    "PassManager",
    "PassRecord",
    "PassVerificationError",
    "ERROR_RULES",
    "run_pipeline",
]
