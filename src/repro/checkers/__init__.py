"""Codebase static analysis: the REPRO001-REPRO008 convention checkers.

:mod:`repro.analyze` lints *schedules* (the paper's objects);
this package lints *the codebase that produces them*.  The conventions
it enforces are the ones this repository's performance and correctness
story actually rests on: the columnar hot path stays loop-free
(REPRO001), objects-vs-numpy routing stays inside :mod:`repro.dispatch`
(REPRO002), caches declare capacities (REPRO003), lock-guarded state
stays lock-guarded (REPRO004), content-addressed bytes stay canonical
and deterministic (REPRO005/006), registered passes declare their
invariants (REPRO007), and CLI-reachable errors carry messages
(REPRO008).

The architecture deliberately mirrors :mod:`repro.analyze` one tier up:
a decorator registry (:mod:`repro.checkers.registry`), a parse-once
per-file context (:mod:`repro.checkers.context`), pure rule functions
(:mod:`repro.checkers.rules`), an engine that stamps/suppresses/sorts
(:mod:`repro.checkers.engine`) and byte-stable text + SARIF renderers
(:mod:`repro.checkers.report`).  The severity scale *is*
:class:`repro.analyze.diagnostics.Severity` — one ``--fail-on`` grammar
across both tiers.

Quick start::

    from repro.checkers import check_paths, render_text

    report = check_paths(["src/repro"])
    assert not report.errors
    print(render_text(report))

Command line::

    python -m repro.cli check src/repro
    python -m repro.cli check --select REPRO001,REPRO002 src/repro/passes

Findings are suppressed per line with ``# repro: ignore[REPRO005]``;
stale suppressions surface as REPRO000 warnings.
"""

from repro.checkers.context import FileContext, parse_suppressions
from repro.checkers.diagnostics import (
    UNUSED_SUPPRESSION,
    CheckDiagnostic,
    CheckReport,
    Severity,
)
from repro.checkers.engine import check_context, check_paths, expand_paths
from repro.checkers.profiles import classify, pragma_profiles
from repro.checkers.registry import (
    CHECKERS,
    Checker,
    Finding,
    checker_ids,
    get_checker,
    register_checker,
    resolve_checkers,
)
from repro.checkers.report import render_text, sarif_json, to_sarif

__all__ = [
    "Severity",
    "CheckDiagnostic",
    "CheckReport",
    "UNUSED_SUPPRESSION",
    "FileContext",
    "parse_suppressions",
    "classify",
    "pragma_profiles",
    "CHECKERS",
    "Checker",
    "Finding",
    "register_checker",
    "checker_ids",
    "get_checker",
    "resolve_checkers",
    "check_context",
    "check_paths",
    "expand_paths",
    "render_text",
    "to_sarif",
    "sarif_json",
]
