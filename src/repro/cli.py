"""Command-line interface.

Usage::

    python -m repro.cli builders   [--names]
    python -m repro.cli plan <collective> --P 8 --L 6 --o 2 --g 4 [--k N]
    python -m repro.cli plan-bcast --P 8 --L 6 --o 2 --g 4 [--show-tree]
    python -m repro.cli plan-kitem --P 10 --L 3 --k 8 [--table]
    python -m repro.cli plan-sum   --P 8 --L 5 --o 2 --g 4 --n 79
    python -m repro.cli plan-allreduce --P 9 --L 3
    python -m repro.cli figures    [--only 1 2 ...]
    python -m repro.cli sweeps
    python -m repro.cli bench      [--out BENCH.json] [--repeat N] [--quick]
    python -m repro.cli serve      [--port 8040] [--capacity N] [--cache-dir DIR]
    python -m repro.cli lint       <schedule.json> [--format text|json]
    python -m repro.cli lint       --builder bcast --P 8 --L 6 --o 2 --g 4
    python -m repro.cli check      src/repro [--format text|sarif]
    python -m repro.cli check      --select REPRO001,REPRO002 src/repro/passes
    python -m repro.cli opt        <schedule.json> --pipeline "shift{offset=5}"
    python -m repro.cli opt        --builder all-to-all -P 1024 \
                                   --pipeline "reverse,canonicalize" --verify-each
    python -m repro.cli opt        --list-passes
    python -m repro.cli run        <schedule.json> [--transport inproc|mp|mpi]
    python -m repro.cli run        --builder bcast -P 8 -L 6 --o 2 --g 4 --verify

The builder tables behind ``plan``, ``figures`` and ``lint --builder``
are not written here: they come from the collective registry
(:mod:`repro.registry`), so a collective registered there is planable,
lintable and figure-capable with no CLI change.  ``builders`` lists the
registered specs with their optimality-theorem tags.

All plans are validated on the LogP simulator before being printed, so
any output you see corresponds to a legal execution.  The ``lint``
subcommand is the exception by design: it runs the *static* rule sweep
(:mod:`repro.analyze`) over a schedule — from a JSON file or built
fresh with any registered builder — with no simulation, and exits
non-zero if anything at or above ``--fail-on`` (default: ``error``)
fires.

``check`` is the same idea one tier up: the REPRO001-REPRO008 codebase
checkers (:mod:`repro.checkers`) sweep Python *source files* for the
conventions this repository's performance story rests on, defaulting to
``--fail-on warning`` so a clean tree stays clean.

``opt`` drives the pass framework (:mod:`repro.passes`): it parses a
textual pipeline, runs it through the :class:`~repro.passes.PassManager`
(``--verify-each`` re-lints SCHED001-003 between passes), reports
per-pass send/makespan deltas, and can write the result (``--out``) or
emit the final lint as SARIF (``--format json``).  A verification
failure exits 1 with a one-line diagnostic.

``run`` leaves the simulator entirely: it lowers the schedule to
per-rank programs (:mod:`repro.exec`) and executes them on a real
transport — ``inproc`` threads (deterministic default), ``mp``
processes, or ``mpi`` when mpi4py is installed.  ``--verify`` replays
the same schedule on the simulator and asserts the delivered
(src, dst, item) multisets are byte-identical; divergence or a runtime
failure (timeout, dead worker) exits 1 with a ``repro: error:`` line.

Usage errors (unknown collective, malformed schedule JSON, conflicting
inputs, out-of-domain parameters) exit with status 2 after a one-line
``repro: error: ...`` diagnostic on stderr.
"""

from __future__ import annotations

import argparse
import sys

from repro import registry
from repro.baselines.trees import baseline_broadcast
from repro.core.combining import combining_time, simulate_combining
from repro.core.fib import kitem_lower_bound
from repro.core.kitem.bounds import kitem_upper_bound, single_sending_lower_bound
from repro.core.kitem.single_sending import single_sending_schedule
from repro.core.single_item import optimal_broadcast_schedule
from repro.core.summation.capacity import min_summation_time, operand_distribution
from repro.core.summation.schedule import summation_schedule, verify_summation
from repro.core.tree import optimal_tree
from repro.params import LogPParams, postal
from repro.schedule.analysis import broadcast_delay_per_proc, item_completion_times
from repro.sim.machine import replay
from repro.viz.ascii import render_schedule_activity, render_tree
from repro.viz.tables import reception_table, render_reception_table

__all__ = ["main"]


def _machine(args: argparse.Namespace) -> LogPParams:
    return LogPParams(P=args.P, L=args.L, o=args.o, g=args.g)


def _machine_model(args: argparse.Namespace):
    """The ``--machine`` topology, parsed, or ``None`` for the flat model.

    Raises ``ValueError`` for a malformed spec string.  The flat
    ``--P/--L/--o/--g`` flags only feed a ``flat`` spec; ``hier:...``
    specs carry their own level parameters.
    """
    spec = getattr(args, "machine", None)
    if spec is None:
        return None
    from repro.machine.model import machine_from_spec

    params = None
    if getattr(args, "P", None) is not None and getattr(args, "L", None) is not None:
        params = _machine(args)
    return machine_from_spec(spec, params)


def _usage_error(msg: str) -> int:
    """One-line diagnostic on stderr, exit status 2 (argparse convention)."""
    print(f"repro: error: {msg}", file=sys.stderr)
    return 2


def _spec_extra(
    spec: registry.CollectiveSpec, args: argparse.Namespace
) -> dict[str, int]:
    """Collect the spec's extra parameters from the parsed CLI flags.

    Summation's ``n``/``t`` pair is mutually exclusive: an explicit
    ``--t`` wins over the (possibly defaulted) ``--n``.
    """
    names = {p.name for p in spec.extra_params}
    extra: dict[str, int] = {}
    if "k" in names and getattr(args, "k", None) is not None:
        extra["k"] = args.k
    if "t" in names and getattr(args, "t", None) is not None:
        extra["t"] = args.t
    elif "n" in names and getattr(args, "n", None) is not None:
        extra["n"] = args.n
    return extra


def cmd_builders(args: argparse.Namespace) -> int:
    """List the registered collective builders (the registry, rendered)."""
    if args.names:
        for spec in registry.specs():
            print(spec.name)
        return 0
    for spec in registry.specs():
        extras = " ".join(f"--{p.name}" for p in spec.extra_params)
        aliases = f" (aka {', '.join(spec.aliases)})" if spec.aliases else ""
        print(f"{spec.name:<11} [{spec.theorem}] {spec.summary}{aliases}")
        detail = f"    {spec.paper}; backends: {', '.join(spec.backends)}"
        if extras:
            detail += f"; extra flags: {extras}"
        print(detail)
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    """Build any registered collective and report completion vs. bound."""
    try:
        model = _machine_model(args)
        if model is None:
            if args.P is None or args.L is None:
                raise ValueError(
                    f"{args.collective}: --P and --L are required "
                    f"(or give --machine SPEC)"
                )
            params = _machine(args)
        else:
            params = model.flat_params
        spec = registry.get_spec(args.collective)
        extra = _spec_extra(spec, args)
        schedule = registry.plan(spec.name, params, machine=model, **extra)
        bound = registry.lower_bound(spec.name, params, **extra)
    except ValueError as exc:
        return _usage_error(str(exc))
    replay(schedule)
    done = registry.completion(schedule)
    extras = ", ".join(f"{k}={v}" for k, v in extra.items())
    target = params if model is None else model
    line = f"{spec.name} on {target}"
    if extras:
        line += f" ({extras})"
    print(line)
    print(f"  completes in {done} cycles")
    if bound is not None:
        gap = done - bound
        verdict = "matches" if gap == 0 else f"{gap} above"
        print(f"  {verdict} the {spec.theorem} lower bound of {bound}")
    if args.timeline:
        print()
        print(render_schedule_activity(schedule))
    return 0


def cmd_plan_bcast(args: argparse.Namespace) -> int:
    machine = _machine(args)
    schedule = optimal_broadcast_schedule(machine)
    replay(schedule)
    delays = broadcast_delay_per_proc(schedule)
    print(f"optimal broadcast on {machine}: B(P) = {max(delays.values())} cycles")
    for name in ("binomial", "binary", "flat"):
        base = baseline_broadcast(name, machine)
        replay(base)
        print(f"  {name:<9} would take {max(broadcast_delay_per_proc(base).values())}")
    if args.show_tree:
        print()
        print(render_tree(optimal_tree(machine)))
    if args.timeline:
        print()
        print(render_schedule_activity(schedule))
    return 0


def cmd_plan_kitem(args: argparse.Namespace) -> int:
    schedule = single_sending_schedule(args.k, args.P, args.L)
    replay(schedule)
    done = max(item_completion_times(schedule, set(range(args.P))).values())
    print(
        f"k-item broadcast: k={args.k}, P={args.P}, L={args.L} "
        f"(postal model)\n"
        f"  completion:             {done} steps\n"
        f"  Thm 3.1 lower bound:    {kitem_lower_bound(args.P, args.L, args.k)}\n"
        f"  single-sending bound:   {single_sending_lower_bound(args.P, args.L, args.k)}\n"
        f"  Thm 3.6 upper bound:    {kitem_upper_bound(args.P, args.L, args.k)}"
    )
    if args.table:
        print()
        print(render_reception_table(reception_table(schedule)))
    return 0


def cmd_plan_sum(args: argparse.Namespace) -> int:
    machine = _machine(args)
    if args.t is not None:
        t = args.t
    else:
        t = min_summation_time(args.n, machine)
    plan = summation_schedule(t, machine)
    total = verify_summation(plan)
    replay(plan.to_schedule())
    print(
        f"optimal summation on {machine}:\n"
        f"  n = {plan.n} operands in t = {t} cycles "
        f"(functionally verified, total={total})\n"
        f"  operand distribution: {[len(ops) for ops in plan.operands]}"
    )
    if args.timeline:
        print()
        print(render_schedule_activity(plan.to_schedule()))
    return 0


def cmd_plan_allreduce(args: argparse.Namespace) -> int:
    T = combining_time(args.P, args.L)
    run = simulate_combining(T, args.L)
    replay(run.schedule)
    assert run.complete()
    print(
        f"combining broadcast (all-reduce): P={args.P}, L={args.L}\n"
        f"  completes in T = {T} postal steps on P(T) = {run.P} processors\n"
        f"  (reduce-then-broadcast would take {2 * T})"
    )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.report import machine_report

    print(machine_report(_machine(args)))
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    builders = registry.figure_builders()
    wanted = args.only or sorted(builders)
    for key in wanted:
        fig = builders.get(str(key))
        if fig is None:
            return _usage_error(
                f"unknown figure {key!r} (known: {', '.join(sorted(builders))})"
            )
        print(fig())
    return 0


def cmd_sweeps(_args: argparse.Namespace) -> int:
    from repro.experiments import sweeps

    sweeps._print(sweeps.pt_recurrence_sweep(), "P(t) vs f_t (Thm 2.2)")
    sweeps._print(sweeps.broadcast_vs_baselines(), "broadcast vs baselines")
    sweeps._print(sweeps.reduction_vs_baselines(), "reduction vs baselines (§4.2)")
    sweeps._print(sweeps.kitem_bounds_sweep(), "k-item bounds (Thms 3.1/3.6)")
    sweeps._print(sweeps.combining_sweep(), "combining broadcast (Thm 4.1)")
    sweeps._print(sweeps.summation_capacity_sweep(), "summation capacity (Lem 5.1)")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import run_bench, write_bench

    if args.quick:
        sizes, a2a_sizes, kitem, transform_P = (64, 128), (64,), (64, 2), 128
        implicit_sizes: tuple[int, ...] = (10_000,)
        serve_points: int | None = 200
        serve_draws = 3_000
        exec_P = 64
        hier_P = 64
    else:
        sizes, a2a_sizes, kitem, transform_P = (
            (256, 1024, 4096),
            (256, 1024),
            (256, 4),
            1024,
        )
        implicit_sizes = (100_000, 1_000_000)
        serve_points = None
        serve_draws = 16_000
        exec_P = 256
        hier_P = 512
    total = len(sizes) + len(a2a_sizes) + len(implicit_sizes) + 6
    print(f"running {total} benchmark scenarios...")
    results = run_bench(
        sizes=sizes,
        a2a_sizes=a2a_sizes,
        kitem=kitem,
        transform_P=transform_P,
        implicit_sizes=implicit_sizes,
        serve_points=serve_points,
        serve_draws=serve_draws,
        exec_P=exec_P,
        hier_P=hier_P,
        repeat=args.repeat,
        verbose=True,
    )
    write_bench(results, args.out)
    print(f"wrote {args.out}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the plan service's HTTP front end until interrupted."""
    from repro.serve import PlanService, serve_http

    try:
        service = PlanService(
            capacity=args.capacity, directory=args.cache_dir
        )
        server = serve_http(
            host=args.host, port=args.port, service=service,
            verbose=args.verbose,
        )
    except (OSError, ValueError) as exc:
        return _usage_error(str(exc))
    host, port = server.server_address[:2]
    tiers = f"memory lru capacity={args.capacity}"
    if args.cache_dir:
        tiers += f", disk tier at {args.cache_dir}"
    print(
        f"repro serve: listening on http://{host}:{port} "
        f"(POST /plan, POST /plan_many, GET /stats; {tiers})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    stats = service.stats()
    print(
        f"repro serve: shut down after {stats['requests']} requests "
        f"({stats['planned']} planned, "
        f"{stats['memory']['hits']} memory hits)"
    )
    return 0


def _lint_target(args: argparse.Namespace):
    """The schedule to lint: loaded from JSON or built via the registry.

    Raises ``ValueError`` with a one-line message for every usage
    problem (conflicting inputs, unknown builder, malformed file,
    out-of-domain parameters).
    """
    if args.schedule is not None and args.builder is not None:
        raise ValueError(
            "give a schedule file or --builder, not both "
            f"(got {args.schedule!r} and --builder {args.builder})"
        )
    if args.schedule is not None:
        import json

        from repro.schedule.serialize import load_schedule

        if getattr(args, "machine", None) is not None:
            raise ValueError(
                "--machine only applies to --builder plans (serialized "
                "schedules carry their machine in the JSON payload)"
            )
        try:
            return load_schedule(args.schedule)
        except FileNotFoundError:
            raise ValueError(f"{args.schedule}: no such file") from None
        except json.JSONDecodeError as exc:
            raise ValueError(f"{args.schedule}: malformed JSON: {exc}") from None
    if args.builder is None:
        raise ValueError("give a schedule JSON file or --builder NAME")
    spec = registry.get_spec(args.builder)
    model = _machine_model(args)
    if model is not None:
        # topology specs carry their own parameters; flat flags only
        # feed a 'flat' spec (resolved inside _machine_model)
        return registry.plan(
            spec.name, machine=model, **_spec_extra(spec, args)
        )
    return registry.plan(spec.name, _machine(args), **_spec_extra(spec, args))


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analyze import Severity, lint_schedule, render_text, sarif_json

    if args.implicit:
        from repro.analyze.chunked import WHOLE_SCHEDULE_RULES, lint_implicit
        from repro.schedule.implicit import DEFAULT_CHUNK_SENDS

        if args.schedule is not None or args.builder is None:
            return _usage_error(
                "--implicit lints a closed-form builder plan; give "
                "--builder NAME (not a schedule file)"
            )
        try:
            spec = registry.get_spec(args.builder)
            implicit = registry.plan(
                spec.name,
                _machine(args),
                storage="implicit",
                family=args.family,
                **_spec_extra(spec, args),
            )
            report = lint_implicit(
                implicit,
                max_sends=args.chunk_sends or DEFAULT_CHUNK_SENDS,
                select=args.select or None,
                ignore=args.ignore or None,
            )
        except ValueError as exc:
            return _usage_error(str(exc))
        if args.format == "json":
            print(sarif_json(report))
        else:
            print(render_text(report, verbose=args.verbose))
            skipped = ", ".join(sorted(WHOLE_SCHEDULE_RULES))
            print(
                f"note: implicit (chunked) sweep — whole-schedule rules "
                f"skipped: {skipped}"
            )
        if args.fail_on == "never":
            return 0
        return 1 if report.at_least(Severity.parse(args.fail_on)) else 0
    try:
        schedule = _lint_target(args)
    except ValueError as exc:
        return _usage_error(str(exc))
    report = lint_schedule(
        schedule, select=args.select or None, ignore=args.ignore or None
    )
    if args.format == "json":
        print(sarif_json(report))
    else:
        print(render_text(report, verbose=args.verbose))
    if args.fail_on == "never":
        return 0
    return 1 if report.at_least(Severity.parse(args.fail_on)) else 0


def _rule_list(value: str | None) -> list[str] | None:
    """Split a ``--select REPRO001,REPRO002`` spelling into rule keys."""
    if not value:
        return None
    return [part.strip() for part in value.split(",") if part.strip()]


def cmd_check(args: argparse.Namespace) -> int:
    """Run the REPRO codebase checkers over files / directories."""
    from repro.checkers import Severity, check_paths, render_text, sarif_json

    try:
        report = check_paths(
            args.paths,
            select=_rule_list(args.select),
            ignore=_rule_list(args.ignore),
        )
    except ValueError as exc:
        return _usage_error(str(exc))
    if args.format == "sarif":
        print(sarif_json(report))
    else:
        print(render_text(report, verbose=args.verbose))
    if args.fail_on == "never":
        return 0
    return 1 if report.at_least(Severity.parse(args.fail_on)) else 0


def cmd_opt(args: argparse.Namespace) -> int:
    from repro.passes import PassManager, PassVerificationError, pass_specs

    if args.list_passes:
        for spec in pass_specs():
            flags = "".join(
                (
                    "L" if spec.preserves_legality else "-",
                    "C" if spec.preserves_completion else "-",
                )
            )
            params = f"  ({spec.params_doc})" if spec.params_doc else ""
            print(f"{spec.name:<17} [{flags}] {spec.summary}{params}")
        return 0
    if args.pipeline is None:
        return _usage_error("opt requires --pipeline (or --list-passes)")
    verify = args.verify or ("errors" if args.verify_each else "off")
    try:
        schedule = _lint_target(args)
        manager = PassManager(args.pipeline, verify=verify, backend=args.backend)
    except ValueError as exc:
        return _usage_error(str(exc))
    try:
        result = manager.run(schedule)
    except (PassVerificationError, ValueError) as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 1
    if args.format == "text":
        for rec in manager.records:
            stats = "".join(
                f", {key}={value}" for key, value in sorted(rec.stats.items())
            )
            verified = " [verified]" if rec.report is not None else ""
            print(
                f"[{rec.index + 1}] {rec.description}: "
                f"sends {rec.sends_before} -> {rec.sends_after}, "
                f"makespan {rec.makespan_before} -> {rec.makespan_after}"
                f"{stats} ({rec.elapsed_s * 1e3:.1f} ms){verified}"
            )
        print(
            f"pipeline: {len(manager.records)} passes, "
            f"sends {schedule.num_sends} -> {result.num_sends}, "
            f"verify={verify}"
        )
    if args.out is not None:
        from repro.schedule.serialize import dump_schedule

        dump_schedule(result, args.out)
        if args.format == "text":
            print(f"wrote {args.out}")
    if args.format == "json" or args.fail_on != "never":
        from repro.analyze import Severity, lint_schedule, sarif_json

        report = lint_schedule(result)
        if args.format == "json":
            print(sarif_json(report))
        if args.fail_on != "never" and report.at_least(
            Severity.parse(args.fail_on)
        ):
            return 1
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Execute a schedule on a real transport (S37)."""
    from repro.exec import ExecError, TransportUnavailable, execute

    try:
        schedule = _lint_target(args)
    except ValueError as exc:
        return _usage_error(str(exc))
    heal_stats = None
    if schedule.machine is not None and getattr(schedule.machine, "dead", ()):
        # fault-masked plans carry their dead-rank traffic for lint;
        # running one means running the repaired survivor plan
        from repro.machine import heal_columns

        try:
            schedule, heal_stats = heal_columns(schedule)
        except ValueError as exc:
            return _usage_error(str(exc))
    try:
        result = execute(
            schedule,
            transport=args.transport,
            verify=args.verify,
            timeout=args.timeout,
        )
    except (ValueError, TransportUnavailable) as exc:
        return _usage_error(str(exc))
    except ExecError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 1
    params = schedule.params
    makespan = registry.completion(schedule)
    print(
        f"executed {schedule.num_sends} sends across {params.P} ranks "
        f"on {result.transport}"
    )
    if heal_stats is not None:
        dead = schedule.machine.dead
        print(
            f"  healed around {len(dead)} dead rank(s) "
            f"{'+'.join(str(r) for r in dead)}: "
            f"{heal_stats.dropped_sends} send(s) dropped, "
            f"{heal_stats.healed_sends} re-inform(s) added"
        )
    print(
        f"  delivered {result.num_delivered} messages in "
        f"{result.wall_s * 1e3:.1f} ms wall "
        f"(simulated makespan: {makespan} cycles at "
        f"L={params.L}, o={params.o}, g={params.g})"
    )
    if args.verify:
        print(
            "  verified: delivered multiset matches the simulator "
            "byte-for-byte"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Optimal LogP collectives (SPAA'93 reproduction)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def machine_args(
        p: argparse.ArgumentParser, required: bool = True
    ) -> None:
        p.add_argument("--P", type=int, required=required, help="processors")
        p.add_argument(
            "--L", type=int, required=required, help="latency (cycles)"
        )
        p.add_argument("--o", type=int, default=0, help="overhead (cycles)")
        p.add_argument("--g", type=int, default=1, help="gap (cycles)")

    def machine_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--machine",
            metavar="SPEC",
            default=None,
            help=(
                "machine topology: 'flat' (priced by --P/--L/--o/--g), "
                "'hier:NxC:L/o/g:L/o/g' (N nodes x C cores, inter then "
                "intra level), optionally ':dead=a+b' to mask failed "
                "ranks; hier specs carry their own parameters"
            ),
        )

    p = sub.add_parser("builders", help="list the registered collectives")
    p.add_argument(
        "--names", action="store_true", help="canonical names only, one per line"
    )
    p.set_defaults(func=cmd_builders)

    p = sub.add_parser("plan", help="build any registered collective")
    p.add_argument(
        "collective",
        help="collective name or alias (see `repro builders`)",
    )
    machine_args(p, required=False)
    machine_flag(p)
    p.add_argument("--k", type=int, default=None, help="items (k-item/continuous)")
    p.add_argument("--n", type=int, default=None, help="operands (summation)")
    p.add_argument("--t", type=int, default=None, help="time budget (summation)")
    p.add_argument("--timeline", action="store_true")
    p.set_defaults(func=cmd_plan)

    p = sub.add_parser("plan-bcast", help="optimal single-item broadcast")
    machine_args(p)
    p.add_argument("--show-tree", action="store_true")
    p.add_argument("--timeline", action="store_true")
    p.set_defaults(func=cmd_plan_bcast)

    p = sub.add_parser("plan-kitem", help="k-item broadcast (postal model)")
    p.add_argument("--P", type=int, required=True)
    p.add_argument("--L", type=int, required=True)
    p.add_argument("--k", type=int, required=True)
    p.add_argument("--table", action="store_true", help="print reception table")
    p.set_defaults(func=cmd_plan_kitem)

    p = sub.add_parser("plan-sum", help="optimal summation")
    machine_args(p)
    group = p.add_mutually_exclusive_group(required=True)
    group.add_argument("--n", type=int, help="number of operands")
    group.add_argument("--t", type=int, help="time budget (cycles)")
    p.add_argument("--timeline", action="store_true")
    p.set_defaults(func=cmd_plan_sum)

    p = sub.add_parser("plan-allreduce", help="combining broadcast")
    p.add_argument("--P", type=int, required=True)
    p.add_argument("--L", type=int, required=True)
    p.set_defaults(func=cmd_plan_allreduce)

    p = sub.add_parser("report", help="full Markdown report for a machine")
    machine_args(p)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("figures", help="regenerate the paper's figures")
    p.add_argument("--only", nargs="*", help="figure numbers (1-6)")
    p.set_defaults(func=cmd_figures)

    p = sub.add_parser("sweeps", help="run the theorem-validation sweeps")
    p.set_defaults(func=cmd_sweeps)

    p = sub.add_parser("bench", help="time build/validate/simulate at scale")
    p.add_argument("--out", default="BENCH.json", help="output JSON path")
    p.add_argument("--repeat", type=int, default=1, help="best-of repetitions")
    p.add_argument("--quick", action="store_true", help="small sizes (smoke test)")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "serve", help="HTTP plan service (cached, batched planning)"
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--port", type=int, default=8040, help="bind port (0 = ephemeral)"
    )
    p.add_argument(
        "--capacity",
        type=int,
        default=1024,
        help="in-memory LRU capacity (plans)",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="enable the on-disk cache tier under DIR",
    )
    p.add_argument(
        "--verbose", action="store_true", help="log each HTTP request"
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("lint", help="static rule sweep over a schedule")
    p.add_argument(
        "schedule",
        nargs="?",
        default=None,
        help="schedule JSON file (logp-schedule/1); omit when using --builder",
    )
    p.add_argument(
        "--builder",
        metavar="NAME",
        help=(
            "lint a freshly built paper schedule instead of a file; "
            "any registered collective name or alias "
            f"({', '.join(registry.spec_names())})"
        ),
    )
    p.add_argument("-P", "--P", type=int, default=8, help="processors (builders)")
    p.add_argument("-L", "--L", type=int, default=6, help="latency (builders)")
    p.add_argument("--o", type=int, default=0, help="overhead (builders)")
    p.add_argument("--g", type=int, default=1, help="gap (builders)")
    machine_flag(p)
    p.add_argument("--k", type=int, default=4, help="items (kitem builder)")
    p.add_argument("--n", type=int, default=32, help="operands (summation builder)")
    p.add_argument("--t", type=int, default=None, help="time budget (summation)")
    p.add_argument(
        "--implicit",
        action="store_true",
        help=(
            "lint the builder's closed-form (implicit) plan in streamed "
            "chunks — memory bounded by --chunk-sends, not P; "
            "whole-schedule rules are skipped (noted in text output)"
        ),
    )
    p.add_argument(
        "--chunk-sends",
        type=int,
        default=None,
        metavar="N",
        help="streamed chunk size for --implicit (default 65536)",
    )
    p.add_argument(
        "--family",
        choices=("optimal", "binomial"),
        default="optimal",
        help="tree family for --implicit plans",
    )
    p.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="text report or SARIF-shaped JSON",
    )
    p.add_argument(
        "--fail-on",
        choices=("error", "warning", "info", "never"),
        default="error",
        help="minimum severity that makes the exit code non-zero",
    )
    p.add_argument(
        "--select",
        nargs="*",
        metavar="RULE",
        help="run only these rules (ids or names)",
    )
    p.add_argument(
        "--ignore",
        nargs="*",
        metavar="RULE",
        help="drop these rules from the sweep",
    )
    p.add_argument(
        "--verbose", action="store_true", help="include fix-it hints in text output"
    )
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "check", help="REPRO codebase checkers over Python sources"
    )
    p.add_argument(
        "paths",
        nargs="+",
        metavar="PATH",
        help="Python files and/or directories (recursed) to check",
    )
    p.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rules to run (REPRO ids or names)",
    )
    p.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rules to drop from the sweep",
    )
    p.add_argument(
        "--format",
        choices=("text", "sarif"),
        default="text",
        help="text report or SARIF 2.1.0 JSON",
    )
    p.add_argument(
        "--fail-on",
        choices=("error", "warning", "info", "never"),
        default="warning",
        help="minimum severity that makes the exit code non-zero",
    )
    p.add_argument(
        "--verbose", action="store_true", help="include fix-it hints in text output"
    )
    p.set_defaults(func=cmd_check)

    p = sub.add_parser(
        "opt", help="run a verified pass pipeline over a schedule"
    )
    p.add_argument(
        "schedule",
        nargs="?",
        default=None,
        help="schedule JSON file (logp-schedule/1); omit when using --builder",
    )
    p.add_argument(
        "--builder",
        metavar="NAME",
        help=(
            "transform a freshly built paper schedule instead of a file; "
            "any registered collective name or alias "
            f"({', '.join(registry.spec_names())})"
        ),
    )
    p.add_argument("-P", "--P", type=int, default=8, help="processors (builders)")
    p.add_argument("-L", "--L", type=int, default=6, help="latency (builders)")
    p.add_argument("--o", type=int, default=0, help="overhead (builders)")
    p.add_argument("--g", type=int, default=1, help="gap (builders)")
    machine_flag(p)
    p.add_argument("--k", type=int, default=4, help="items (kitem builder)")
    p.add_argument("--n", type=int, default=32, help="operands (summation builder)")
    p.add_argument("--t", type=int, default=None, help="time budget (summation)")
    p.add_argument(
        "--pipeline",
        metavar="SPEC",
        help='pass pipeline text, e.g. "shift{offset=5},canonicalize"',
    )
    p.add_argument(
        "--verify-each",
        action="store_true",
        help="re-lint SCHED001-003 after every pass (verify=errors)",
    )
    p.add_argument(
        "--verify",
        choices=("errors", "all", "off"),
        default=None,
        help="verification mode (overrides --verify-each)",
    )
    p.add_argument(
        "--backend",
        choices=("objects", "numpy", "columnar"),
        default=None,
        help="force the dispatch backend for every pass",
    )
    p.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="write the transformed schedule JSON here",
    )
    p.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="per-pass text report or SARIF-shaped JSON of the final lint",
    )
    p.add_argument(
        "--fail-on",
        choices=("error", "warning", "info", "never"),
        default="error",
        help="minimum post-pipeline lint severity that fails the run",
    )
    p.add_argument(
        "--list-passes",
        action="store_true",
        help="list the registered passes and exit",
    )
    p.set_defaults(func=cmd_opt)

    p = sub.add_parser(
        "run", help="execute a schedule on a real transport"
    )
    p.add_argument(
        "schedule",
        nargs="?",
        default=None,
        help="schedule JSON file (logp-schedule/1); omit when using --builder",
    )
    p.add_argument(
        "--builder",
        metavar="NAME",
        help=(
            "execute a freshly built paper schedule instead of a file; "
            "any registered collective name or alias "
            f"({', '.join(registry.spec_names())})"
        ),
    )
    p.add_argument("-P", "--P", type=int, default=8, help="processors (builders)")
    p.add_argument("-L", "--L", type=int, default=6, help="latency (builders)")
    p.add_argument("--o", type=int, default=0, help="overhead (builders)")
    p.add_argument("--g", type=int, default=1, help="gap (builders)")
    machine_flag(p)
    p.add_argument("--k", type=int, default=4, help="items (kitem builder)")
    p.add_argument("--n", type=int, default=32, help="operands (summation builder)")
    p.add_argument("--t", type=int, default=None, help="time budget (summation)")
    p.add_argument(
        "--transport",
        choices=("inproc", "mp", "mpi"),
        default="inproc",
        help="execution backend (default: inproc threads)",
    )
    p.add_argument(
        "--verify",
        action="store_true",
        help=(
            "assert the delivered (src, dst, item) multiset matches the "
            "simulator byte-for-byte"
        ),
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="per-run wall-clock deadline (default: 30)",
    )
    p.set_defaults(func=cmd_run)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
