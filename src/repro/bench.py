"""Performance benchmark harness (PR-4: registry + dispatch trajectory).

Times the three phases of the pipeline — *build* a schedule (columnar
struct-of-arrays backend vs the object-path oracle, both resolved
through :func:`repro.registry.plan` with a pinned ``backend=``), *validate*
it (scalar vs vectorized engines, consuming the schedule's cached
columns), and *simulate* it on the event-driven
:class:`~repro.sim.machine.Machine` — at processor counts well beyond
the paper's figures (``P`` in {256, 1024, 4096}) and on the
quadratic-message workloads (all-to-all, k-item all-to-all) that
motivated the numpy fast paths.  The k-item all-to-all workload is a
bench-only stressor with no registered collective, so it calls its
builder directly.

Each quadratic-workload row also records the storage footprint of both
backends as *bytes per send*: exact for the four ``int64`` columns,
a shallow ``sys.getsizeof`` estimate (list slot + ``SendOp`` instance;
shared item payloads excluded) for the object path.

PR 7 adds the ``serve`` scenario: a Zipf load generator over the plan
service (:mod:`repro.serve`) measuring cold vs hot plans/sec and the
cache hit rate under real LRU eviction pressure.

PR 9 adds the ``exec`` scenario: the P=256 optimal broadcast is
lowered to per-rank programs (:mod:`repro.exec`) and executed on every
available real transport with simulator verification on, recording
wall-clock seconds per transport next to the simulated makespan in
cycles.

Run via ``python -m repro.cli bench`` (or ``make bench``), which writes
``BENCH.json`` by default (the checked-in ``BENCH_PR<N>.json`` files
are per-PR reference baselines; :func:`latest_baseline` picks the
newest as the comparison point so the recorded gates never trail the
repo); ``benchmarks/test_perf_regression.py`` asserts the headline
speedups so they cannot silently regress.
"""

from __future__ import annotations

import json
import platform
import re
import sys
import time
from pathlib import Path
from typing import Any, Callable

from repro import registry
from repro.core.all_to_all import k_item_all_to_all_schedule
from repro.params import LogPParams, postal
from repro.schedule.ops import Schedule
from repro.sim.machine import Context, Machine
from repro.sim.validate import violations
from repro.sim.validate_np import violations_np

__all__ = [
    "time_call",
    "latest_baseline",
    "bench_broadcast",
    "bench_all_to_all",
    "bench_kitem_all_to_all",
    "bench_transforms",
    "bench_implicit_lint",
    "serve_request_points",
    "bench_serve",
    "bench_exec",
    "bench_hier",
    "bench_heal",
    "run_bench",
    "write_bench",
]


def latest_baseline(root: Path | None = None) -> str | None:
    """The newest checked-in ``BENCH_PR<N>.json``, by numeric ``N``.

    The results document names this file as its comparison baseline;
    auto-detection replaces the hardcoded name that silently went stale
    whenever a PR landed a new reference file.  ``root`` defaults to the
    current directory (where ``repro.cli bench`` runs) with the
    repository root as fallback for checkouts driven from elsewhere.
    """
    candidates = [Path.cwd()] if root is None else [Path(root)]
    if root is None:
        candidates.append(Path(__file__).resolve().parents[2])
    for directory in candidates:
        best: tuple[int, str] | None = None
        for path in directory.glob("BENCH_PR*.json"):
            match = re.fullmatch(r"BENCH_PR(\d+)\.json", path.name)
            if match and (best is None or int(match.group(1)) > best[0]):
                best = (int(match.group(1)), path.name)
        if best is not None:
            return best[1]
    return None


def time_call(fn: Callable[[], Any], repeat: int = 1) -> tuple[float, Any]:
    """Best-of-``repeat`` wall-clock seconds for ``fn()`` plus its result."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


class _ChainRelay:
    """Forward the broadcast item one hop down the line (P-1 sends total)."""

    def on_start(self, ctx: Context) -> None:
        if ctx.proc == 0 and ctx.has(0):
            ctx.send(1, 0)

    def on_receive(self, ctx: Context, item, src) -> None:
        if ctx.proc + 1 < ctx.params.P:
            ctx.send(ctx.proc + 1, item)


class _AllToAll:
    """Each processor offers its own item to everyone else, cyclically."""

    def on_start(self, ctx: Context) -> None:
        P = ctx.params.P
        for d in range(1, P):
            ctx.send((ctx.proc + d) % P, ("a2a", ctx.proc))

    def on_receive(self, ctx: Context, item, src) -> None:
        pass


def _validate_timings(
    schedule: Schedule, repeat: int, scalar_limit: int
) -> dict[str, Any]:
    out: dict[str, Any] = {}
    np_s, np_result = time_call(lambda: violations_np(schedule), repeat)
    assert np_result == [], "benchmark schedule must be legal"
    out["validate_np_s"] = np_s
    if schedule.num_sends <= scalar_limit:
        scalar_s, scalar_result = time_call(
            lambda: violations(schedule, force_scalar=True), repeat
        )
        assert scalar_result == []
        out["validate_scalar_s"] = scalar_s
        out["validate_speedup"] = scalar_s / np_s if np_s > 0 else float("inf")
    return out


def _build_timings(
    columnar_build: Callable[[], Schedule],
    objects_build: Callable[[], Schedule],
    repeat: int,
) -> tuple[dict[str, Any], Schedule]:
    """Time both storage backends of a builder; returns the columnar result.

    The row gains ``build_s`` (columnar, the default pipeline),
    ``build_objects_s`` (per-``SendOp`` oracle path), the
    ``build_speedup`` ratio, and the bytes-per-send footprint of each
    storage mode.
    """
    build_s, schedule = time_call(columnar_build, repeat)
    objects_s, objects_schedule = time_call(objects_build, repeat)
    n = schedule.num_sends
    row: dict[str, Any] = {
        "build_s": build_s,
        "build_objects_s": objects_s,
        "build_speedup": objects_s / build_s if build_s > 0 else float("inf"),
    }
    if n:
        row["columnar_bytes_per_send"] = schedule.columns().nbytes / n
        sends = objects_schedule.sends
        row["object_bytes_per_send"] = (
            sys.getsizeof(sends) / n + sys.getsizeof(sends[0])
        )
    return row, schedule


def bench_broadcast(
    P: int, L: int = 4, o: int = 1, g: int = 2, repeat: int = 1
) -> dict[str, Any]:
    """Build/validate/simulate an optimal single-item broadcast at ``P``."""
    params = LogPParams(P=P, L=L, o=o, g=g)
    build_row, schedule = _build_timings(
        lambda: registry.plan("broadcast", params, backend="columnar"),
        lambda: registry.plan("broadcast", params, backend="objects"),
        repeat,
    )
    row: dict[str, Any] = {
        "workload": "broadcast",
        "P": P,
        "params": [params.P, params.L, params.o, params.g],
        "sends": schedule.num_sends,
        **build_row,
        "validate_s": time_call(lambda: violations(schedule), repeat)[0],
    }

    def simulate() -> Schedule:
        machine = Machine(
            params, {p: _ChainRelay() for p in range(P)}, max_cycles=10**9
        )
        return machine.run()

    sim_s, realized = time_call(simulate, repeat)
    row["simulate_machine_s"] = sim_s
    row["simulate_sends"] = len(realized.sends)
    return row


def bench_all_to_all(
    P: int,
    L: int = 4,
    repeat: int = 1,
    scalar_limit: int = 100_000,
    simulate_limit: int = 70_000,
) -> dict[str, Any]:
    """Build/validate/simulate the P-way all-to-all broadcast (P(P-1) sends)."""
    params = postal(P=P, L=L)
    build_row, schedule = _build_timings(
        lambda: registry.plan("all-to-all", params, backend="columnar"),
        lambda: registry.plan("all-to-all", params, backend="objects"),
        repeat,
    )
    row: dict[str, Any] = {
        "workload": "all-to-all",
        "P": P,
        "params": [params.P, params.L, params.o, params.g],
        "sends": schedule.num_sends,
        **build_row,
    }
    row.update(_validate_timings(schedule, repeat, scalar_limit))
    if schedule.num_sends <= simulate_limit:

        def simulate() -> Schedule:
            machine = Machine(
                params,
                {p: _AllToAll() for p in range(P)},
                initial={p: {("a2a", p)} for p in range(P)},
                max_cycles=10**9,
            )
            return machine.run()

        sim_s, realized = time_call(simulate, repeat)
        row["simulate_machine_s"] = sim_s
        row["simulate_sends"] = len(realized.sends)
    return row


def bench_kitem_all_to_all(
    P: int, k: int, L: int = 4, repeat: int = 1, scalar_limit: int = 100_000
) -> dict[str, Any]:
    """Build/validate the k-item all-to-all workload (k * P(P-1) sends)."""
    params = postal(P=P, L=L)
    build_row, schedule = _build_timings(
        lambda: k_item_all_to_all_schedule(params, k),
        lambda: k_item_all_to_all_schedule(params, k, backend="objects"),
        repeat,
    )
    row: dict[str, Any] = {
        "workload": "k-item-all-to-all",
        "P": P,
        "k": k,
        "params": [params.P, params.L, params.o, params.g],
        "sends": schedule.num_sends,
        **build_row,
    }
    row.update(_validate_timings(schedule, repeat, scalar_limit))
    return row


def bench_transforms(
    P: int = 1024,
    L: int = 4,
    repeat: int = 1,
    pipeline: str = "reverse,canonicalize,prune-dead-sends",
) -> dict[str, Any]:
    """Transform throughput: a pass pipeline over the P-way all-to-all.

    Times the PR-5 pass framework on both dispatch backends — the
    vectorized columnar kernels against the per-``SendOp`` objects
    oracle — plus the verified variant (``verify=errors`` re-lints
    SCHED001-003 between passes).  The kernel run also asserts the
    headline property: every intermediate schedule stays array-backed,
    i.e. zero ``SendOp`` objects are materialized end to end.
    """
    from repro.passes import PassManager, parse_pipeline

    params = postal(P=P, L=L)
    schedule = registry.plan("all-to-all", params, backend="columnar")

    def run_numpy() -> Schedule:
        current = schedule
        for p in parse_pipeline(pipeline):
            p.backend = "numpy"
            current = p.run(current)
            assert current.is_array_backed, f"pass {p.name} materialized SendOps"
        return current

    np_s, np_result = time_call(run_numpy, repeat)
    assert schedule.is_array_backed, "pipeline materialized the input schedule"
    objects_s, _ = time_call(
        lambda: PassManager(pipeline, verify="off", backend="objects").run(
            schedule
        ),
        repeat,
    )
    verify_s, _ = time_call(
        lambda: PassManager(pipeline, verify="errors", backend="numpy").run(
            schedule
        ),
        repeat,
    )
    return {
        "workload": "transform-pipeline",
        "P": P,
        "params": [params.P, params.L, params.o, params.g],
        "sends": schedule.num_sends,
        "pipeline": pipeline,
        "transform_np_s": np_s,
        "transform_objects_s": objects_s,
        "transform_speedup": objects_s / np_s if np_s > 0 else float("inf"),
        "verify_each_s": verify_s,
        "materialized_sendops": 0 if np_result.is_array_backed else 1,
    }


def bench_implicit_lint(
    P: int,
    L: int = 4,
    o: int = 1,
    g: int = 2,
    chunk_sends: int | None = None,
    repeat: int = 1,
) -> dict[str, Any]:
    """Chunk-streamed lint of an implicit broadcast plan at ``P`` (PR-6).

    The headline scenario: a P=10^6 plan never materializes its ~10^6
    send columns, so ``tracemalloc`` peak memory is bounded by the chunk
    size, not by ``P`` — the perf gate pins both the wall-clock time and
    the peak-bytes ceiling.
    """
    import tracemalloc

    from repro.analyze.chunked import lint_implicit
    from repro.schedule.implicit import DEFAULT_CHUNK_SENDS

    chunk = chunk_sends or DEFAULT_CHUNK_SENDS
    params = LogPParams(P=P, L=L, o=o, g=g)
    build_s, implicit = time_call(
        lambda: registry.plan("broadcast", params, storage="implicit"), repeat
    )
    # warm-up outside the traced window so lazy imports and numpy
    # first-call internals do not count against the chunk-bounded peak
    lint_implicit(implicit, max_sends=chunk)
    tracemalloc.start()
    lint_s, report = time_call(
        lambda: lint_implicit(implicit, max_sends=chunk), repeat
    )
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return {
        "workload": "implicit-lint",
        "P": P,
        "params": [params.P, params.L, params.o, params.g],
        "sends": report.num_sends,
        "chunk_sends": chunk,
        "build_s": build_s,
        "lint_s": lint_s,
        "lint_peak_bytes": peak,
        "lint_errors": sum(
            report.rule_totals.get(rule, 0) for rule in report.rules_run
        ),
        "rules_run": len(report.rules_run),
    }


def serve_request_points(limit: int | None = None) -> list[dict[str, Any]]:
    """The serve bench's request population: recurring (collective,
    machine) points across six collectives — the workload shape the
    cache is built for (a service sees a few thousand distinct points,
    most traffic concentrated on a few).  Deterministic; ``limit``
    truncates for quick runs.
    """
    machines = ((4, 1, 2), (6, 2, 4), (3, 0, 1))
    points: list[dict[str, Any]] = []
    for L, o, g in machines:
        for P in range(2, 514):
            points.append(
                {"collective": "broadcast", "P": P, "L": L, "o": o, "g": g}
            )
        for P in range(2, 130):
            points.append(
                {"collective": "reduction", "P": P, "L": L, "o": o, "g": g}
            )
    for P in range(2, 34):
        points.append({"collective": "all-to-all", "P": P, "L": 4})
    for P in (4, 8, 16):
        for n in (16, 32, 64, 79, 128):
            points.append(
                {"collective": "summation", "P": P, "L": 5, "o": 2, "g": 4, "n": n}
            )
    for P in (5, 10, 15):
        for k in (2, 4, 8):
            points.append({"collective": "kitem", "P": P, "L": 3, "k": k})
    for P in range(3, 30):
        for L in (2, 3, 4):
            points.append({"collective": "allreduce", "P": P, "L": L})
    return points[:limit] if limit is not None else points


def bench_serve(
    points: int | None = None,
    draws: int = 16_000,
    capacity: int = 1024,
    zipf_s: float = 1.4,
    seed: int = 7,
) -> dict[str, Any]:
    """Load-generator scenario for the PR-7 plan service.

    Three phases over the same request population:

    * **cold** — a fresh :class:`~repro.serve.PlanService` plans every
      distinct point once (all misses; the planner is the bottleneck);
    * **hot** — ``draws`` requests Zipf-distributed over the population
      (exponent ``zipf_s``, rank order shuffled so popularity is not
      correlated with plan size) against the warm bounded LRU;
    * **batch** — one ``plan_many`` call over the same drawn mix,
      measuring the dedup-before-plan path.

    The acceptance gate holds ``hot_plans_per_s >= 20x
    cold_plans_per_s`` at a ``>= 90%`` hit rate — planning must be the
    cold path's cost, and the cache must actually absorb a skewed mix
    under real eviction pressure (capacity < population).
    """
    import random

    from repro.serve import PlanService

    population = serve_request_points(points)
    rng = random.Random(seed)
    order = list(range(len(population)))
    rng.shuffle(order)
    weights = [1.0 / (rank + 1) ** zipf_s for rank in range(len(order))]
    drawn = [population[i] for i in rng.choices(order, weights=weights, k=draws)]

    cold_service = PlanService(capacity=capacity)
    cold_s, _ = time_call(
        lambda: [cold_service.plan_json(p) for p in population]
    )
    assert cold_service.planned == len(population)

    hot_service = PlanService(capacity=capacity)
    for p in drawn[: min(draws, 4 * capacity)]:
        hot_service.plan_json(p)  # warm the LRU with the mix's head
    warm_planned = hot_service.planned
    warm_requests = hot_service.requests
    hot_s, _ = time_call(lambda: [hot_service.plan_json(p) for p in drawn])
    hot_requests = hot_service.requests - warm_requests
    hot_misses = hot_service.planned - warm_planned
    hit_rate = 1.0 - hot_misses / hot_requests

    batch_s, batch_result = time_call(
        lambda: hot_service.plan_many_json(drawn)
    )
    assert len(batch_result) == draws

    cold_rate = len(population) / cold_s if cold_s > 0 else float("inf")
    hot_rate = draws / hot_s if hot_s > 0 else float("inf")
    return {
        "workload": "serve",
        "P": max(p["P"] for p in population),
        "points": len(population),
        "draws": draws,
        "capacity": capacity,
        "zipf_s": zipf_s,
        "sends": draws,  # requests served in the hot phase
        "cold_s": cold_s,
        "cold_plans_per_s": cold_rate,
        "hot_s": hot_s,
        "hot_plans_per_s": hot_rate,
        "hot_hit_rate": hit_rate,
        "hot_speedup": hot_rate / cold_rate,
        "batch_s": batch_s,
        "batch_plans_per_s": draws / batch_s if batch_s > 0 else float("inf"),
        "memory_stats": hot_service.stats()["memory"],
    }


def bench_exec(
    P: int = 256, L: int = 4, o: int = 1, g: int = 2, repeat: int = 1
) -> dict[str, Any]:
    """Lower + execute the optimal broadcast on every available transport.

    PR-9 scenario: the same P-rank broadcast schedule is compiled once
    to per-rank programs (``lower_s``; columnar fast path, no per-SendOp
    objects) and then actually run — real sends over real channels —
    on each transport :func:`repro.exec.available_transports` reports
    (``exec_<name>_s``), with verification against the simulator's
    delivered multiset folded into the timed run.  ``makespan_cycles``
    records the simulated completion time so the row reads as
    wall-clock vs model time.
    """
    from repro.exec import available_transports, execute, lower_schedule

    params = LogPParams(P=P, L=L, o=o, g=g)
    schedule = registry.plan("broadcast", params, backend="columnar")
    lower_s, plan = time_call(lambda: lower_schedule(schedule), repeat)
    row: dict[str, Any] = {
        "workload": "exec",
        "P": P,
        "params": [params.P, params.L, params.o, params.g],
        "sends": schedule.num_sends,
        "lower_s": lower_s,
        "instrs": plan.num_instrs,
        "makespan_cycles": registry.completion(schedule),
        "transports": available_transports(),
    }
    for name in available_transports():
        wall_s, result = time_call(
            lambda name=name: execute(schedule, transport=name, verify=True),
            repeat,
        )
        assert result.num_delivered == schedule.num_sends
        row[f"exec_{name}_s"] = wall_s
    return row


def bench_hier(
    P: int = 512, L: int = 8, o: int = 1, g: int = 2, repeat: int = 1
) -> dict[str, Any]:
    """Two-level machine planning + lint against the flat baseline (PR-10).

    The same flat envelope ``(P, L, o, g)`` is planned twice: the classic
    flat broadcast, and ``hier-bcast`` on the default squarest
    nodes x cores factoring with a fast intra level.  The gate is that
    per-edge pricing does not cost planning its speed — building and
    linting the hierarchical plan stays within the flat plan+lint budget
    and never materializes a ``SendOp`` — while the composed plan's
    makespan beats the flat envelope's.
    """
    from repro.analyze import lint_schedule
    from repro.machine.model import default_hier_machine
    from repro.schedule.analysis import completion_time

    params = LogPParams(P=P, L=L, o=o, g=g)
    machine = default_hier_machine(params)

    flat_build_s, flat = time_call(
        lambda: registry.plan("broadcast", params, backend="columnar"), repeat
    )
    flat_lint_s, flat_report = time_call(lambda: lint_schedule(flat), repeat)
    assert flat_report.max_severity is None

    build_s, hier = time_call(
        lambda: registry.plan("hier-bcast", machine=machine), repeat
    )
    assert hier.is_array_backed, "hier planning materialized SendOps"
    lint_s, report = time_call(lambda: lint_schedule(hier), repeat)
    assert report.max_severity is None
    assert hier.is_array_backed, "hier lint materialized SendOps"

    flat_budget = flat_build_s + flat_lint_s
    hier_cost = build_s + lint_s
    return {
        "workload": "hier",
        "P": P,
        "params": [params.P, params.L, params.o, params.g],
        "nodes": machine.nodes,
        "cores": machine.cores,
        "sends": hier.num_sends,
        "build_s": build_s,
        "lint_s": lint_s,
        "flat_build_s": flat_build_s,
        "flat_lint_s": flat_lint_s,
        "plan_lint_ratio": (
            hier_cost / flat_budget if flat_budget > 0 else float("inf")
        ),
        "makespan_cycles": completion_time(hier),
        "flat_makespan_cycles": completion_time(flat),
    }


def bench_heal(
    P: int = 512,
    L: int = 8,
    o: int = 1,
    g: int = 2,
    dead_every: int = 57,
    repeat: int = 1,
) -> dict[str, Any]:
    """Fault-masked replanning: kill ranks, heal, re-lint (PR-10).

    A ``hier-bcast`` plan is built on a :class:`FaultMaskedMachine`
    (every ``dead_every``-th rank dead, leaders included, so whole
    subtrees orphan), healed with :func:`repro.machine.heal.heal_columns`,
    and the healed schedule is re-linted.  Asserts the healed plan covers
    every survivor, stays array-backed, and lints error-free.
    """
    from repro.analyze import Severity, lint_schedule
    from repro.machine.heal import heal_columns
    from repro.machine.model import FaultMaskedMachine, default_hier_machine
    from repro.schedule.analysis import completion_time

    params = LogPParams(P=P, L=L, o=o, g=g)
    base = default_hier_machine(params)
    dead = tuple(range(3, P, dead_every))
    machine = FaultMaskedMachine(base=base, dead=dead)
    schedule = registry.plan("hier-bcast", machine=machine)

    heal_s, healed_pair = time_call(lambda: heal_columns(schedule), repeat)
    healed, stats = healed_pair
    assert stats.uncovered_after == 0, "healed plan leaves orphans"
    assert healed.is_array_backed, "healing materialized SendOps"
    lint_s, report = time_call(lambda: lint_schedule(healed), repeat)
    assert not report.at_least(Severity.ERROR), "healed plan lints dirty"
    return {
        "workload": "heal",
        "P": P,
        "params": [params.P, params.L, params.o, params.g],
        "nodes": base.nodes,
        "cores": base.cores,
        "dead": len(dead),
        "sends": healed.num_sends,
        "heal_s": heal_s,
        "lint_s": lint_s,
        "dropped_sends": stats.dropped_sends,
        "healed_sends": stats.healed_sends,
        "uncovered_before": stats.uncovered_before,
        "makespan_before": stats.makespan_before,
        "makespan_cycles": completion_time(healed),
    }


def run_bench(
    sizes: tuple[int, ...] = (256, 1024, 4096),
    a2a_sizes: tuple[int, ...] = (256, 1024),
    kitem: tuple[int, int] = (256, 4),
    transform_P: int = 1024,
    implicit_sizes: tuple[int, ...] = (100_000, 1_000_000),
    serve_points: int | None = None,
    serve_draws: int = 16_000,
    exec_P: int = 256,
    hier_P: int = 512,
    repeat: int = 1,
    verbose: bool = False,
) -> dict[str, Any]:
    """Run every benchmark scenario and return the results document."""
    scenarios: list[dict[str, Any]] = []

    def record(row: dict[str, Any]) -> None:
        scenarios.append(row)
        if verbose:
            keys = [
                k for k in ("build_s", "build_objects_s", "build_speedup",
                            "validate_s", "validate_scalar_s",
                            "validate_np_s", "simulate_machine_s",
                            "transform_np_s", "transform_objects_s",
                            "transform_speedup", "verify_each_s", "lint_s",
                            "cold_plans_per_s", "hot_plans_per_s",
                            "hot_hit_rate", "hot_speedup",
                            "lower_s", "exec_inproc_s", "exec_mp_s",
                            "exec_mpi_s", "plan_lint_ratio", "heal_s")
                if k in row
            ]
            timings = ", ".join(f"{k}={row[k]:.4f}" for k in keys)
            print(
                f"  {row['workload']} P={row['P']}"
                + (f" k={row['k']}" if "k" in row else "")
                + f" sends={row['sends']}: {timings}",
                flush=True,
            )

    for P in sizes:
        record(bench_broadcast(P, repeat=repeat))
    for P in a2a_sizes:
        record(bench_all_to_all(P, repeat=repeat))
    record(bench_kitem_all_to_all(*kitem, repeat=repeat))
    record(bench_transforms(transform_P, repeat=repeat))
    for P in implicit_sizes:
        record(bench_implicit_lint(P, repeat=repeat))
    record(bench_serve(points=serve_points, draws=serve_draws))
    record(bench_exec(exec_P, repeat=repeat))
    record(bench_hier(hier_P, repeat=repeat))
    record(bench_heal(hier_P, repeat=repeat))
    import numpy

    return {
        "bench": "PR-10 hierarchical machine model + fault-aware healing",
        "baseline": latest_baseline(),
        "command": "python -m repro.cli bench",
        "python": sys.version.split()[0],
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "unix_time": int(time.time()),
        "repeat": repeat,
        "scenarios": scenarios,
    }


def write_bench(results: dict[str, Any], path: str) -> None:
    """Write a benchmark results document as indented JSON."""
    with open(path, "w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")
