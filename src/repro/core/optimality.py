"""Independent optimality certification by exhaustive search.

The constructions elsewhere in this library *achieve* the paper's bounds;
this module certifies — without using any of the paper's structural
insight — that the bounds cannot be beaten, by exploring the space of
*all* legal postal-model schedules on small instances:

* :func:`max_informed_dp` — exact dynamic program over per-step send
  counts for single-item broadcast.  Theorem 2.2 (``P(t) = f_t``) falls
  out of an optimization over *every* send-count sequence, not the greedy
  argument.
* :func:`max_items_by_counting` — the Theorem 3.1 counting bound on how
  many items can be fully broadcast by a deadline, and
  :func:`counting_kitem_lower_bound`, its inversion.
* :func:`min_kitem_time_exhaustive` — a complete IDA* search over k-item
  broadcast schedules (tiny instances only): states are item-holdings
  plus in-flight messages, with item- and processor-symmetry reduction.
  The returned makespan is the true optimum, so comparing it with the
  library's schedules certifies them exactly optimal on those instances.

Everything here is postal-model (``o = 0, g = 1``), the setting of the
paper's Sections 2-3 lower bounds.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.fib import broadcast_time_postal, fib, fib_sequence

__all__ = [
    "max_informed_dp",
    "broadcast_time_certified",
    "max_items_by_counting",
    "counting_kitem_lower_bound",
    "min_kitem_time_exhaustive",
]


def max_informed_dp(t: int, L: int) -> int:
    """Maximum processors informable in ``t`` steps, by exact DP.

    A schedule is abstracted by its per-step send counts ``x_0..x_{t-L}``
    (sends after ``t - L`` cannot land).  The abstraction is sound and
    complete in the postal model: processors are interchangeable, a send
    is only useful toward an uninformed processor, and ``x_s`` is capped
    by the number informed at ``s`` (each may send one message per step,
    receiving never blocks sending).  The DP maximizes over *all* count
    sequences — no greedy assumption.
    """
    if t < 0:
        raise ValueError(f"t must be >= 0, got {t}")

    # Bounded since PR 7 so a pathological (t, L) cannot pin unbounded
    # memory for the call's duration: full-history states are visited
    # once each, so eviction costs recomputation, never correctness, and
    # the bench's certified range (t <= 30) stays far below the cap.
    @lru_cache(maxsize=1 << 16)
    def best(step: int, history: tuple[int, ...]) -> int:
        # history[i] = sends issued at step i; informed at `step` counts
        # the source plus every arrival at steps <= step
        informed_now = 1 + sum(history[i] for i in range(len(history)) if i + L <= step)
        if step > t - L:
            # no further useful sends; final informed count at time t
            return 1 + sum(history)
        best_value = 0
        for x in range(informed_now + 1):
            best_value = max(best_value, best(step + 1, history + (x,)))
        return best_value

    if t < L:
        return 1
    return best(0, ())


def broadcast_time_certified(P: int, L: int, t_max: int = 30) -> int:
    """The exact single-item broadcast optimum found by the DP.

    Certifies ``B(P)`` from first principles (agrees with
    :func:`repro.core.fib.broadcast_time_postal` — that agreement is the
    test-suite's independent confirmation of Theorems 2.1/2.2).
    """
    for t in range(t_max + 1):
        if max_informed_dp(t, L) >= P:
            return t
    raise RuntimeError(f"no broadcast of {P} processors within {t_max} steps")


def max_items_by_counting(P: int, L: int, deadline: int) -> int:
    """Theorem 3.1's counting argument, forward direction (re-exported
    from :func:`repro.core.fib.kitem_items_by_deadline`)."""
    from repro.core.fib import kitem_items_by_deadline

    return kitem_items_by_deadline(P, L, deadline)


def counting_kitem_lower_bound(P: int, L: int, k: int) -> int:
    """Smallest deadline whose counting capacity reaches ``k`` items.

    For ``k > k*`` this equals Theorem 3.1's closed form
    ``B(P-1) + L + (k-1) - k*`` (asserted across a grid by the test
    suite — an independent check of the algebra in the paper's proof);
    for ``k <= k*`` it is strictly smaller, which is the correct general
    bound (see :func:`repro.core.fib.kitem_lower_bound`).
    """
    deadline = 0
    while max_items_by_counting(P, L, deadline) < k:
        deadline += 1
    return deadline


# --------------------------------------------------------------------------
# exhaustive k-item search (tiny instances)
# --------------------------------------------------------------------------


def _canonical(holdings: tuple[frozenset, ...], inflight: frozenset) -> tuple:
    """Canonicalize a state under relabeling of non-source processors.

    Items are *not* relabeled (they become distinguishable once partially
    delivered), but non-source processors with identical situations are
    interchangeable, so we sort their (holding, incoming) signatures.
    """
    P = len(holdings)
    incoming: dict[int, list] = {p: [] for p in range(P)}
    for arrival, dst, item in inflight:
        incoming[dst].append((arrival, item))
    signature = sorted(
        (tuple(sorted(holdings[p])), tuple(sorted(incoming[p])))
        for p in range(1, P)
    )
    return (
        tuple(sorted(holdings[0])),
        tuple(sorted(incoming[0])),
        tuple(signature),
    )


def min_kitem_time_exhaustive(
    P: int,
    L: int,
    k: int,
    upper_bound: int | None = None,
    node_limit: int = 2_000_000,
) -> int:
    """Exact optimal k-item broadcast time by complete search.

    Iterative-deepening DFS over full system states.  Only meant for tiny
    instances (``P <= 4, k <= 3, L <= 3``-ish); raises ``RuntimeError``
    when the node budget is exhausted.  The source is processor 0 and is
    *not* restricted to single-sending — the returned value is the true
    optimum over all schedules, making it a valid referee for both the
    lower bounds and the constructions.
    """
    if P < 2 or k < 1:
        return 0
    from repro.core.fib import kitem_lower_bound

    all_items = frozenset(range(k))
    start_holdings = (all_items,) + (frozenset(),) * (P - 1)
    target = tuple([all_items] * P)

    if upper_bound is None:
        upper_bound = broadcast_time_postal(P - 1, L) + 2 * L + k - 2 + L

    nodes = [0]

    def finished(holdings: tuple[frozenset, ...]) -> bool:
        return all(h == all_items for h in holdings)

    def remaining_receptions(holdings, inflight) -> int:
        have = sum(len(h) for h in holdings) + len(inflight)
        return P * k - have

    def search(t: int, holdings, inflight, deadline: int, seen: dict) -> bool:
        if finished(holdings):
            return True
        nodes[0] += 1
        if nodes[0] > node_limit:
            raise RuntimeError("node limit exhausted in exhaustive search")
        # admissible pruning: every missing reception needs >= L steps, and
        # at most P receptions can land per step
        missing = remaining_receptions(holdings, inflight)
        pending_latest = max((a for a, _d, _i in inflight), default=t)
        eta = max(
            pending_latest,
            t + L if missing > 0 else t,
            t + (missing + P - 1) // P,
        )
        if eta > deadline:
            return False
        key = _canonical(holdings, inflight)
        prior = seen.get(key)
        if prior is not None and prior <= t:
            return False
        seen[key] = t

        # deliveries landing at t+1 .. handled when stepping: step to t+1
        # after choosing this step's sends.
        # enumerate send choices per processor: None or (dst, item)
        choices: list[list[tuple[int, int] | None]] = []
        for p in range(P):
            opts: list[tuple[int, int] | None] = [None]
            for item in sorted(holdings[p]):
                for dst in range(P):
                    if dst == p or item in holdings[dst]:
                        continue
                    if any(d == dst and i == item for _a, d, i in inflight):
                        continue
                    opts.append((dst, item))
            choices.append(opts)

        def assign(p: int, chosen: list[tuple[int, int] | None]) -> bool:
            if p == P:
                # collision check: one arrival per (dst, step)
                arrivals = [c for c in chosen if c is not None]
                landing = {}
                for dst, item in arrivals:
                    if dst in landing:
                        return False
                    landing[dst] = item
                for a, d, _i in inflight:
                    if a == t + L and d in landing:
                        return False
                new_inflight = set(inflight)
                for dst, item in arrivals:
                    new_inflight.add((t + L, dst, item))
                # advance to t+1: deliver messages with arrival == t+1
                new_holdings = list(holdings)
                remaining = set()
                for a, d, i in new_inflight:
                    if a == t + 1:
                        new_holdings[d] = new_holdings[d] | {i}
                    else:
                        remaining.add((a, d, i))
                return search(
                    t + 1,
                    tuple(new_holdings),
                    frozenset(remaining),
                    deadline,
                    seen,
                )
            for choice in choices[p]:
                if choice is not None:
                    # avoid two processors targeting the same (dst,item)
                    if any(
                        c is not None and c == choice for c in chosen
                    ):
                        continue
                if assign(p + 1, chosen + [choice]):
                    return True
            return False

        return assign(0, [])

    lb = kitem_lower_bound(P, L, k)
    for deadline in range(lb, upper_bound + 1):
        nodes[0] = 0
        if search(0, start_holdings, frozenset(), deadline, {}):
            return deadline
    raise RuntimeError(f"no schedule within {upper_bound} steps (?)")
