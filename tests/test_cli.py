"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_machine_args(self):
        args = build_parser().parse_args(
            ["plan-bcast", "--P", "8", "--L", "6", "--o", "2", "--g", "4"]
        )
        assert (args.P, args.L, args.o, args.g) == (8, 6, 2, 4)

    def test_sum_requires_n_or_t(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan-sum", "--P", "4", "--L", "2"])


class TestCommands:
    def test_plan_bcast(self, capsys):
        assert main(["plan-bcast", "--P", "8", "--L", "6", "--o", "2", "--g", "4"]) == 0
        out = capsys.readouterr().out
        assert "B(P) = 24" in out
        assert "binomial" in out

    def test_plan_bcast_tree_and_timeline(self, capsys):
        main(["plan-bcast", "--P", "4", "--L", "2", "--show-tree", "--timeline"])
        out = capsys.readouterr().out
        assert "P0 @0" in out  # tree
        assert "P0 " in out    # timeline rows

    def test_plan_kitem(self, capsys):
        assert main(["plan-kitem", "--P", "10", "--L", "3", "--k", "8"]) == 0
        out = capsys.readouterr().out
        assert "completion:             17" in out
        assert "lower bound:    15" in out

    def test_plan_kitem_table(self, capsys):
        main(["plan-kitem", "--P", "5", "--L", "2", "--k", "3", "--table"])
        out = capsys.readouterr().out
        assert "time" in out

    def test_plan_sum_by_n(self, capsys):
        assert main([
            "plan-sum", "--P", "8", "--L", "5", "--o", "2", "--g", "4", "--n", "79",
        ]) == 0
        out = capsys.readouterr().out
        assert "t = 28 cycles" in out

    def test_plan_sum_by_t(self, capsys):
        main(["plan-sum", "--P", "4", "--L", "2", "--t", "10"])
        out = capsys.readouterr().out
        assert "operands" in out

    def test_plan_allreduce(self, capsys):
        assert main(["plan-allreduce", "--P", "9", "--L", "3"]) == 0
        out = capsys.readouterr().out
        assert "T = 7" in out

    def test_figures_single(self, capsys):
        assert main(["figures", "--only", "1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "B(P) = 24" in out

    def test_report(self, capsys):
        assert main(["report", "--P", "8", "--L", "6", "--o", "2", "--g", "4"]) == 0
        out = capsys.readouterr().out
        assert "# LogP collectives report" in out
        assert "B(P) = 24" in out
        assert "Summation" in out
