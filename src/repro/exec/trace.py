"""Delivered-items traces and exec-vs-simulator verification.

An :class:`ExecTrace` records what a real transport actually delivered
— the multiset of ``(src, dst, item)`` triples — in the same canonical
JSON shape the simulator's realized schedule reduces to, so the two
can be compared *byte for byte*: :func:`verify_against_sim` renders
both sides with the schedule serializer's item encoding and
``CANONICAL_DUMPS`` and asserts equality.

This is a keying module (REPRO005/006): every ``json.dumps`` is
canonical and nothing here may consult clocks or randomness — a trace
for a given execution outcome is one exact byte sequence.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from typing import Any

from repro.exec.errors import ExecVerificationError
from repro.params import LogPParams
from repro.schedule.ops import Item, Schedule
from repro.schedule.serialize import CANONICAL_DUMPS, encode_item

__all__ = [
    "TRACE_FORMAT",
    "ExecTrace",
    "delivered_json",
    "sim_delivered",
    "verify_against_sim",
]

TRACE_FORMAT = "logp-exec-trace/1"

Triple = tuple[int, int, Item]


def _triple_doc(triple: Triple) -> list[Any]:
    src, dst, item = triple
    return [src, dst, encode_item(item)]


def _triple_key(triple: Triple) -> tuple[int, int, str]:
    src, dst, item = triple
    return (src, dst, json.dumps(encode_item(item), **CANONICAL_DUMPS))


def delivered_json(params: LogPParams, triples: list[Triple]) -> str:
    """Canonical JSON of a delivered multiset.

    The triples are sorted by ``(src, dst, canonical item JSON)``, so
    any two executions delivering the same multiset — simulator or real
    transport, any thread interleaving — produce identical bytes.
    """
    payload = {
        "format": TRACE_FORMAT,
        "params": {
            "P": params.P,
            "L": params.L,
            "o": params.o,
            "g": params.g,
        },
        "delivered": [
            _triple_doc(t) for t in sorted(triples, key=_triple_key)
        ],
    }
    return json.dumps(payload, **CANONICAL_DUMPS)


@dataclass(frozen=True)
class ExecTrace:
    """What one execution delivered, plus which transport ran it."""

    params: LogPParams
    transport: str
    delivered: tuple[Triple, ...]

    @property
    def num_delivered(self) -> int:
        return len(self.delivered)

    def to_json(self) -> str:
        """Canonical JSON (transport-independent by design: the same
        plan on ``inproc`` and ``mp`` must yield identical bytes)."""
        return delivered_json(self.params, list(self.delivered))


def sim_delivered(schedule: Schedule) -> list[Triple]:
    """The simulator's delivered multiset for a schedule.

    For a schedule that passes the LogP validator, the realized
    execution delivers exactly one ``(src, dst, item)`` per send — this
    reads it off the columnar storage without materializing ``SendOp``
    objects.  Invalid schedules are rejected first (``ValueError`` from
    the validator), so the result genuinely is what :func:`replay`
    would realize.
    """
    from repro.sim.validate_np import violations_np

    problems = violations_np(schedule)
    if problems:
        raise ValueError(
            f"schedule is not a legal LogP execution "
            f"({len(problems)} violation(s)); first: {problems[0]}"
        )
    cols = schedule.columns()
    items = cols.table.items
    return [
        (int(src), int(dst), items[int(code)])
        for src, dst, code in zip(cols.srcs, cols.dsts, cols.items)
    ]


def verify_against_sim(schedule: Schedule, trace: ExecTrace) -> None:
    """Assert the trace's delivered multiset matches the simulator's,
    byte for byte in canonical form.

    Raises :class:`ExecVerificationError` with a counted diff (missing
    and unexpected triples) on divergence.
    """
    expected = delivered_json(schedule.params, sim_delivered(schedule))
    actual = trace.to_json()
    if expected == actual:
        return
    want = Counter(_triple_key(t) for t in sim_delivered(schedule))
    got = Counter(_triple_key(t) for t in trace.delivered)
    missing = want - got
    extra = got - want
    parts = [
        f"delivered multiset diverges from the simulator on "
        f"{trace.transport}: {sum(missing.values())} missing, "
        f"{sum(extra.values())} unexpected"
    ]
    if missing:
        src, dst, item = min(missing)
        parts.append(f"first missing: {src} -> {dst} item {item}")
    if extra:
        src, dst, item = min(extra)
        parts.append(f"first unexpected: {src} -> {dst} item {item}")
    raise ExecVerificationError("; ".join(parts))
