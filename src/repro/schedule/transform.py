"""Schedule transformations: shift, remap, reverse, compose, restrict.

Algebraic operations on schedules that preserve LogP legality (each is
documented with the property it preserves; the test suite verifies them
by replaying transformed schedules):

* :func:`shift` — translate all send times by a constant (legality is
  translation-invariant);
* :func:`remap` — rename processors by a bijection (legality is
  permutation-invariant);
* :func:`reverse` — time-reverse a schedule around its completion time,
  swapping senders and receivers.  Send gaps become receive gaps and
  vice versa, so legality is preserved; this is exactly the paper's
  broadcast-to-reduction correspondence (Section 4.2) and the
  summation correspondence (Section 5);
* :func:`concat` — run one schedule after another with a safety spacing
  of ``max(g, o)`` so boundary gaps hold;
* :func:`restrict` — keep only traffic within a processor subset
  (legality restricts; completeness of a collective generally does not —
  the caller asserts what survives).
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Mapping

from repro.schedule.ops import Schedule, SendOp

__all__ = ["shift", "remap", "reverse", "concat", "restrict"]


def shift(schedule: Schedule, offset: int) -> Schedule:
    """Translate every send (and source-item creation) by ``offset``.

    ``offset`` may be negative as long as no send starts before cycle 0.
    """
    if schedule.sends and min(op.time for op in schedule.sends) + offset < 0:
        raise ValueError("shift would move a send before cycle 0")
    return Schedule(
        params=schedule.params,
        sends=[
            SendOp(time=op.time + offset, src=op.src, dst=op.dst, item=op.item)
            for op in schedule.sends
        ],
        initial={p: set(items) for p, items in schedule.initial.items()},
        source_items={
            item: when + offset for item, when in schedule.source_items.items()
        },
    )


def remap(schedule: Schedule, mapping: Mapping[int, int]) -> Schedule:
    """Rename processors; ``mapping`` must be injective on those used."""
    used = schedule.processors()
    image = {mapping.get(p, p) for p in used}
    if len(image) != len(used):
        raise ValueError("processor mapping is not injective on used processors")

    def m(p: int) -> int:
        return mapping.get(p, p)

    return Schedule(
        params=schedule.params,
        sends=[
            SendOp(time=op.time, src=m(op.src), dst=m(op.dst), item=op.item)
            for op in schedule.sends
        ],
        initial={m(p): set(items) for p, items in schedule.initial.items()},
        source_items=dict(schedule.source_items),
    )


def reverse(
    schedule: Schedule,
    item_of: Callable[[SendOp], Hashable] | None = None,
    initial: dict[int, set] | None = None,
) -> Schedule:
    """Time-reverse around the completion time, swapping directions.

    A message sent at ``s`` (received at ``s + L + 2o``) becomes one sent
    at ``C - (s + L + 2o)`` from the old receiver to the old sender,
    where ``C`` is the completion time.  ``item_of`` relabels items (the
    default tags them ``("rev", old_dst)`` — the partial-sum convention
    of the reduction correspondence); ``initial`` overrides the reversed
    schedule's initial placement (default: every processor holds the
    items it will send).
    """
    params = schedule.params
    if not schedule.sends:
        return Schedule(params=params, initial=initial or dict(schedule.initial))
    completion = max(op.arrival(params) for op in schedule.sends)

    def default_item(op: SendOp) -> Hashable:
        return ("rev", op.dst)

    label = item_of or default_item
    sends = [
        SendOp(
            time=completion - op.arrival(params),
            src=op.dst,
            dst=op.src,
            item=label(op),
        )
        for op in schedule.sends
    ]
    if initial is None:
        initial = {}
        for op in sends:
            initial.setdefault(op.src, set()).add(op.item)
    return Schedule(params=params, sends=sorted(sends), initial=initial)


def concat(first: Schedule, second: Schedule) -> Schedule:
    """Sequential composition: ``second`` starts after ``first`` finishes.

    The boundary spacing is ``max(g, o)`` cycles after the last arrival,
    which suffices for every per-processor gap/overhead constraint to
    hold across the seam.  Initial placements of ``second`` are assumed
    to be satisfied by ``first``'s effects (the caller's responsibility —
    items are merged into the combined initial set so causality checks
    pass only if that is true or items differ).
    """
    if first.params != second.params:
        raise ValueError("cannot concatenate schedules for different machines")
    params = first.params
    finish = max((op.arrival(params) for op in first.sends), default=0)
    offset = finish + max(params.g, params.o, 1)
    moved = shift(second, offset)
    initial = {p: set(items) for p, items in first.initial.items()}
    for p, items in moved.initial.items():
        initial.setdefault(p, set()).update(items)
    return Schedule(
        params=params,
        sends=sorted(first.sends + moved.sends),
        initial=initial,
        source_items={**first.source_items, **moved.source_items},
    )


def restrict(schedule: Schedule, procs: Iterable[int]) -> Schedule:
    """Keep only messages whose both endpoints lie in ``procs``."""
    keep = set(procs)
    return Schedule(
        params=schedule.params,
        sends=[
            op for op in schedule.sends if op.src in keep and op.dst in keep
        ],
        initial={
            p: set(items) for p, items in schedule.initial.items() if p in keep
        },
        source_items=dict(schedule.source_items),
    )
