"""Module classification: which conventions apply to which files.

Every REPRO rule targets a *profile* — a convention surface, not a
hard-coded path list scattered through the rules.  A file's profiles
are derived from its repository-relative path (suffix matching, so the
classification works from any checkout root and on explicitly listed
files), or overridden by an in-file pragma::

    # repro: profile=hot,keying

placed in the first :data:`PRAGMA_SCAN_LINES` lines.  The pragma is how
the fixture corpus under ``tests/data/check_corpus/`` opts small
standalone files into the conventions of real modules.

Profiles:

``hot``
    The vectorized hot path: columnar kernels and everything the < 1 s
    lint acceptance test routes through.  No Python-level loops over
    sends (REPRO001).
``dispatch-owner``
    :mod:`repro.dispatch` — the one module allowed to compare against
    ``FAST_PATH_THRESHOLD``.  Everything *else* is subject to REPRO002.
``keying``
    Serialization / content-addressing modules whose output bytes feed
    sha-256 keys: canonical JSON only (REPRO005), no nondeterminism
    (REPRO006).
``cli``
    CLI-reachable surfaces whose exceptions become user-facing
    ``repro: error:`` one-liners (REPRO008).

Rules that police a convention *everywhere* (bounded caches, lock
discipline, pass invariant declarations) declare no profile at all.
"""

from __future__ import annotations

from pathlib import Path

__all__ = [
    "HOT_MODULES",
    "HOT_PACKAGES",
    "KEYING_MODULES",
    "CLI_MODULES",
    "CLI_PACKAGES",
    "DISPATCH_OWNER",
    "BANNED_CALLS",
    "THRESHOLD_NAME",
    "PRAGMA_SCAN_LINES",
    "classify",
    "pragma_profiles",
]

#: Modules that must stay free of per-send Python loops.  These are the
#: vectorized kernels plus everything the < 1 s lint acceptance test
#: routes through.
HOT_MODULES = [
    "src/repro/schedule/columnar.py",
    "src/repro/schedule/analysis_np.py",
    "src/repro/schedule/implicit.py",
    "src/repro/sim/validate_np.py",
    "src/repro/analyze/context.py",
    "src/repro/analyze/rules.py",
    "src/repro/analyze/engine.py",
    "src/repro/analyze/chunked.py",
    "src/repro/exec/lower.py",
]

#: Whole packages that must stay free of per-send Python loops.  The
#: pass framework promises zero SendOp materialization end to end, so
#: every module under it is hot (the objects oracles live outside, in
#: ``repro.schedule.transform``).
HOT_PACKAGES = [
    "src/repro/passes",
    # per-edge pricing, composition and healing run inside the plan/lint
    # budget gates, so the whole machine layer is hot
    "src/repro/machine",
]

#: Modules whose serialized bytes feed content hashing / cache keys.
KEYING_MODULES = [
    "src/repro/schedule/serialize.py",
    "src/repro/serve/keys.py",
    "src/repro/serve/cache.py",
    "src/repro/exec/trace.py",
]

#: Single modules on the CLI-reachable error surface.
CLI_MODULES = [
    "src/repro/cli.py",
]

#: Whole packages on the CLI-reachable error surface (their
#: ``ValueError``\ s become one-line ``repro: error:`` diagnostics).
CLI_PACKAGES = [
    "src/repro/registry",
    "src/repro/serve",
    "src/repro/passes",
    "src/repro/analyze",
    "src/repro/checkers",
    "src/repro/exec",
    "src/repro/machine",
]

#: The one module allowed to compare against the dispatch threshold.
DISPATCH_OWNER = "src/repro/dispatch.py"

#: Calling any of these materializes / iterates SendOp objects.
BANNED_CALLS = frozenset({"sorted_sends", "sends_by_proc", "receives_by_proc"})

#: The policy knob whose comparisons must stay inside DISPATCH_OWNER.
THRESHOLD_NAME = "FAST_PATH_THRESHOLD"

#: How many leading source lines may carry a ``# repro: profile=`` pragma.
PRAGMA_SCAN_LINES = 10


def _in_package(posix: str, package: str) -> bool:
    return f"{package}/" in posix


def classify(path: str | Path) -> frozenset[str]:
    """The profiles a path belongs to, by repo-relative suffix match."""
    posix = Path(path).as_posix()
    profiles = set()
    if any(posix.endswith(mod) for mod in HOT_MODULES) or any(
        _in_package(posix, pkg) for pkg in HOT_PACKAGES
    ):
        profiles.add("hot")
    if posix.endswith(DISPATCH_OWNER):
        profiles.add("dispatch-owner")
    if any(posix.endswith(mod) for mod in KEYING_MODULES):
        profiles.add("keying")
    if any(posix.endswith(mod) for mod in CLI_MODULES) or any(
        _in_package(posix, pkg) for pkg in CLI_PACKAGES
    ):
        profiles.add("cli")
    return frozenset(profiles)


def pragma_profiles(source: str) -> frozenset[str] | None:
    """The ``# repro: profile=...`` override, or ``None`` if absent.

    Only the first :data:`PRAGMA_SCAN_LINES` lines are scanned; the
    pragma replaces path classification entirely (``profile=`` with an
    empty list is a valid way to opt a file out of every profile).
    """
    for line in source.splitlines()[:PRAGMA_SCAN_LINES]:
        stripped = line.strip()
        if not stripped.startswith("#"):
            continue
        body = stripped.lstrip("#").strip()
        if not body.startswith("repro:"):
            continue
        directive = body[len("repro:") :].strip()
        if not directive.startswith("profile="):
            continue
        names = directive[len("profile=") :]
        return frozenset(
            part.strip() for part in names.split(",") if part.strip()
        )
    return None
