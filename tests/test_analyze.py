"""Unit tests for the static lint engine (:mod:`repro.analyze`)."""

import json
import os
import subprocess
import sys

import pytest

from repro.analyze import (
    MAX_EMITTED_PER_RULE,
    RULES,
    LintContext,
    Severity,
    Workload,
    assert_lint_clean,
    detect_workload,
    get_rule,
    lint_schedule,
    render_text,
    resolve_rules,
    sarif_json,
    to_sarif,
)
from repro.core.kitem.single_sending import single_sending_schedule
from repro.core.single_item import optimal_broadcast_schedule
from repro.params import LogPParams, postal
from repro.schedule.ops import Schedule, SendOp

FIG1 = LogPParams(P=8, L=6, o=2, g=4)


def bcast(*sends, P=4, L=2, initial=None):
    """A small postal schedule holding item 0 at proc 0 by default."""
    return Schedule(
        params=postal(P, L),
        sends=[SendOp(*s) for s in sends],
        initial=initial if initial is not None else {0: {0}},
    )


class TestWorkloadDetection:
    def test_empty(self):
        # NB: a falsy initial dict re-defaults to {0: {0}} in Schedule,
        # so "truly empty" is spelled with an explicit empty holding
        sched = Schedule(postal(4, 2), sends=[], initial={0: set()})
        assert detect_workload(sched) == Workload.EMPTY

    def test_broadcast(self):
        assert detect_workload(bcast()) == Workload.BROADCAST

    def test_kitem(self):
        sched = bcast(initial={0: {0, 1, 2}})
        assert detect_workload(sched) == Workload.KITEM

    def test_scattered(self):
        sched = bcast(initial={0: {"a"}, 1: {"b"}, 2: {"c"}})
        assert detect_workload(sched) == Workload.SCATTERED

    def test_overlapping_placement_is_unknown(self):
        sched = bcast(initial={0: {0}, 1: {0}})
        assert detect_workload(sched) == Workload.UNKNOWN


class TestRuleRegistry:
    def test_ids_are_unique_and_sorted(self):
        ids = [rule.id for rule in RULES]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    def test_get_rule(self):
        assert get_rule("SCHED001").name == "non-causal"
        with pytest.raises(KeyError):
            get_rule("SCHED999")

    def test_resolve_select_by_id_and_name(self):
        rules = resolve_rules(select=["dead-send", "SCHED001"])
        assert [r.id for r in rules] == ["SCHED001", "SCHED004"]

    def test_resolve_ignore(self):
        rules = resolve_rules(ignore=["idle-slack"])
        assert "SCHED007" not in [r.id for r in rules]

    def test_resolve_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            resolve_rules(select=["SCHED042"])


class TestCleanSchedules:
    def test_fig1_broadcast_is_clean(self):
        report = lint_schedule(optimal_broadcast_schedule(FIG1))
        assert len(report) == 0
        assert report.max_severity is None
        assert report.workload == Workload.BROADCAST
        assert "SCHED001" in report.rules_run

    def test_kitem_builder_is_clean(self):
        report = lint_schedule(single_sending_schedule(8, 10, 3))
        assert len(report) == 0
        assert report.workload == Workload.KITEM

    def test_empty_schedule_runs_no_rules(self):
        report = lint_schedule(Schedule(postal(4, 2), sends=[], initial={0: set()}))
        assert report.rules_run == []
        assert len(report) == 0

    def test_schedule_lint_method(self):
        report = optimal_broadcast_schedule(FIG1).lint()
        assert report.max_severity is None


class TestErrorRules:
    def test_sched001_never_held(self):
        report = lint_schedule(bcast((0, 1, 2, 0)))  # proc 1 never holds item 0
        assert "SCHED001" in report.rule_ids()
        (diag,) = [d for d in report if d.rule == "SCHED001"]
        assert diag.severity is Severity.ERROR
        assert diag.data["holds_from"] is None

    def test_sched001_held_too_late(self):
        # 0->1 arrives at t=2; 1 forwards at t=1, one cycle too early
        report = lint_schedule(bcast((0, 0, 1, 0), (1, 1, 2, 0)))
        (diag,) = [d for d in report if d.rule == "SCHED001"]
        assert diag.data["holds_from"] == 2
        assert "t>=2" in diag.fixit

    def test_sched002_self_send(self):
        report = lint_schedule(bcast((0, 0, 0, 0)))
        assert "SCHED002" in report.rule_ids()

    def test_sched003_negative_time(self):
        report = lint_schedule(bcast((-1, 0, 1, 0)))
        assert "SCHED003" in report.rule_ids()

    def test_assert_lint_clean_raises(self):
        with pytest.raises(ValueError, match="fails lint"):
            assert_lint_clean(bcast((0, 1, 2, 0)))

    def test_assert_lint_clean_passes_and_returns_report(self):
        report = assert_lint_clean(optimal_broadcast_schedule(FIG1))
        assert report.num_sends == 7


class TestWarningRules:
    def test_sched004_dead_send(self):
        # 2 holds item 0 initially, so 0->2 informs nobody
        sched = bcast((0, 0, 1, 0), (2, 0, 2, 0), initial={0: {0}, 2: {0}})
        report = lint_schedule(sched)
        assert "SCHED004" in report.rule_ids()

    def test_sched005_duplicate_delivery(self):
        # proc 1 is delivered item 0 twice (second copy also a dead send)
        report = lint_schedule(bcast((0, 0, 1, 0), (4, 0, 1, 0)))
        ids = report.rule_ids()
        assert "SCHED005" in ids
        assert "SCHED004" in ids

    def test_sched008_broadcast_gap(self):
        # P=2 postal L=2: bound is 2, this completes in 5
        report = lint_schedule(bcast((0, 0, 1, 0), P=2), select=["SCHED008"])
        assert report.rule_ids() == []  # send at 0 arrives at 2 = bound
        late = lint_schedule(bcast((3, 0, 1, 0), P=2), select=["SCHED008"])
        assert late.rule_ids() == []  # shift-invariant: still 2 cycles
        slow = bcast((0, 0, 1, 0), (5, 0, 2, 0), P=3, L=2)  # B(3)=3, takes 7
        gap = lint_schedule(slow, select=["SCHED008"])
        (diag,) = list(gap)
        assert diag.data == {"makespan": 7, "bound": 3, "gap": 4}

    def test_sched010_coverage(self):
        # proc 2 participates (it sends, acausally) but never holds item 0
        report = lint_schedule(bcast((0, 0, 1, 0), (0, 2, 1, 1)))
        assert "SCHED010" in report.rule_ids()


class TestInfoRules:
    def test_sched006_source_resends(self):
        # item 0 leaves the source twice; item 1 goes out once and is relayed
        sched = bcast(
            (0, 0, 1, 0),
            (1, 0, 2, 0),
            (2, 0, 1, 1),
            (4, 1, 2, 1),
            initial={0: {0, 1}},
        )
        report = lint_schedule(sched, select=["single-sending"])
        (diag,) = list(report)
        assert diag.severity is Severity.INFO
        assert diag.data["times_sent"] == 2

    def test_sched007_idle_slack(self):
        # the forward at t=9 could have happened at t=2
        report = lint_schedule(
            bcast((0, 0, 1, 0), (9, 1, 2, 0)), select=["idle-slack"]
        )
        (diag,) = list(report)
        assert diag.data["max_slack"] == 7

    def test_sched007_clean_on_tight_chain(self):
        report = lint_schedule(
            bcast((0, 0, 1, 0), (2, 1, 2, 0)), select=["idle-slack"]
        )
        assert len(report) == 0

    def test_sched009_endgame_repeat(self):
        # source's first k=2 sends repeat item 0 before item 1 ever goes out
        sched = bcast(
            (0, 0, 1, 0),
            (1, 0, 2, 0),
            (2, 0, 1, 1),
            (3, 0, 2, 1),
            initial={0: {0, 1}},
        )
        report = lint_schedule(sched, select=["endgame-structure"])
        (diag,) = list(report)
        assert diag.data == {"k": 2, "distinct_in_prefix": 1}


class TestCapping:
    def test_emission_capped_totals_uncapped(self):
        n = MAX_EMITTED_PER_RULE + 10
        sched = bcast(*[(t, 0, 0, 0) for t in range(0, 2 * n, 2)])
        report = lint_schedule(sched, select=["self-send"])
        assert len(report) == MAX_EMITTED_PER_RULE
        assert report.rule_totals["SCHED002"] == n
        assert report.count(Severity.ERROR) == n


class TestReporting:
    def test_render_text_clean(self):
        text = render_text(lint_schedule(optimal_broadcast_schedule(FIG1)))
        assert "summary: 0 errors, 0 warnings, 0 info" in text

    def test_render_text_verbose_includes_fixit(self):
        report = lint_schedule(bcast((0, 1, 2, 0)))
        text = render_text(report, verbose=True)
        assert "SCHED001 error:" in text
        assert "fix:" in text

    def test_sarif_shape(self):
        report = lint_schedule(bcast((0, 1, 2, 0)))
        doc = to_sarif(report)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-schedule-lint"
        rule_meta = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert rule_meta == set(report.rules_run)
        result = next(
            r for r in run["results"] if r["ruleId"] == "SCHED001"
        )
        assert result["level"] == "error"
        locs = result["locations"][0]["logicalLocations"]
        assert locs[0]["name"].startswith("send[")

    def test_sarif_json_round_trips(self):
        report = lint_schedule(optimal_broadcast_schedule(FIG1))
        doc = json.loads(sarif_json(report))
        assert doc["runs"][0]["results"] == []


class TestZeroCopy:
    def test_array_backed_schedule_never_materializes(self):
        from repro.core.all_to_all import all_to_all_schedule

        sched = all_to_all_schedule(postal(32, 4))
        assert sched.is_array_backed
        report = lint_schedule(sched)
        assert sched.is_array_backed  # lint never touched .sends
        assert report.max_severity is None


class TestDispatchThreshold:
    def test_env_var_overrides_threshold(self):
        code = (
            "from repro import dispatch;"
            "print(dispatch.get_policy().threshold)"
        )
        env = dict(os.environ, REPRO_FAST_PATH_THRESHOLD="7", PYTHONPATH="src")
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert out.stdout.strip() == "7"

    def test_env_var_overrides_mode(self):
        code = "from repro import dispatch; print(dispatch.get_policy().mode)"
        env = dict(os.environ, REPRO_DISPATCH="numpy", PYTHONPATH="src")
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert out.stdout.strip() == "numpy"

    @pytest.mark.parametrize("raw", ["abc", "", "-1"])
    def test_bad_env_threshold_is_a_one_line_config_error(
        self, monkeypatch, raw
    ):
        # this path runs at `import repro` time; a bare int() ValueError
        # would blame the importer instead of the configuration
        from repro import dispatch

        monkeypatch.setenv("REPRO_FAST_PATH_THRESHOLD", raw)
        with pytest.raises(ValueError) as excinfo:
            dispatch._policy_from_env()
        message = str(excinfo.value)
        assert "REPRO_FAST_PATH_THRESHOLD" in message
        assert repr(raw) in message
        assert "\n" not in message

    def test_bad_env_threshold_import_crash_names_the_variable(self):
        code = "import repro"
        env = dict(os.environ, REPRO_FAST_PATH_THRESHOLD="abc", PYTHONPATH="src")
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert out.returncode != 0
        assert "REPRO_FAST_PATH_THRESHOLD='abc'" in out.stderr

    def test_dispatch_reads_policy_dynamically(self, monkeypatch):
        from repro import dispatch
        from repro.sim import validate, validate_np

        calls = []
        real = validate_np.violations_np

        def spy(schedule, check_capacity=True):
            calls.append(schedule.num_sends)
            return real(schedule, check_capacity=check_capacity)

        monkeypatch.setattr(validate_np, "violations_np", spy)
        sched = optimal_broadcast_schedule(FIG1)  # 7 sends, below default
        monkeypatch.setattr(
            dispatch, "_POLICY", dispatch.DispatchPolicy(threshold=0)
        )
        assert validate.violations(sched) == []
        assert calls == [7]
        monkeypatch.setattr(
            dispatch, "_POLICY", dispatch.DispatchPolicy(threshold=10**9)
        )
        assert validate.violations(sched) == []
        assert calls == [7]  # scalar path this time

    def test_set_policy_round_trips(self):
        from repro import dispatch

        prev = dispatch.set_policy(dispatch.DispatchPolicy(mode="objects"))
        try:
            assert not dispatch.use_numpy(10**9)
        finally:
            dispatch.set_policy(prev)
        assert dispatch.get_policy() == prev

    def test_per_call_override_beats_policy(self):
        from repro import dispatch

        assert dispatch.use_numpy(1, override="numpy")
        assert not dispatch.use_numpy(10**9, override="objects")
        with pytest.raises(ValueError):
            dispatch.use_numpy(1, override="vectorized")


class TestContextInternals:
    def test_participants_tolerate_processor_gaps(self):
        sched = bcast((0, 0, 5, 0), (2, 5, 9, 0), P=10)
        ctx = LintContext(sched)
        assert ctx.participants.tolist() == [0, 5, 9]

    def test_makespan_is_shift_invariant(self):
        a = bcast((0, 0, 1, 0), (2, 1, 2, 0))
        b = bcast((100, 0, 1, 0), (102, 1, 2, 0))
        assert LintContext(a).makespan == LintContext(b).makespan
