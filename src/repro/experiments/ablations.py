"""Ablations of the library's own design decisions.

DESIGN.md calls out three choices worth isolating:

1. **Candidate-tree pruning strategy** (Theorem 3.6 search): which
   heuristic — greedy optimal tree, latest-leaf pruning, balanced
   pruning, earliest-leaf pruning, seeded random — actually produces the
   per-item tree the word solver accepts, and how often each wins.
2. **Buffered-model destination choice** (Theorem 3.8): greedy
   duty-avoiding assignment vs naive round-robin — measured by buffer
   peak and completion.
3. **Communication-tree shape for summation** (Section 5): the capacity
   formula ``n = Σ(t - d_i) - (o+1)(P-1) + P`` rewards minimizing
   ``Σ d_i``; plugging baseline tree shapes into the same formula shows
   how many operands each shape forfeits.

Run standalone::

    python -m repro.experiments.ablations
"""

from __future__ import annotations

from repro.baselines.trees import baseline_broadcast
from repro.core.continuous.general import solve_general_words
from repro.core.fib import broadcast_time_postal
from repro.core.kitem.buffered import buffered_schedule
from repro.core.pruning import candidate_trees
from repro.params import LogPParams
from repro.schedule.analysis import broadcast_delay_per_proc

__all__ = [
    "pruning_strategy_ablation",
    "buffered_destination_ablation",
    "summation_tree_shape_ablation",
]

_STRATEGY_NAMES = [
    "greedy-optimal",
    "latest-leaf",
    "balanced",
    "earliest-leaf",
    "random-0",
    "random-1",
    "random-2",
    "random-3",
]


def pruning_strategy_ablation(
    cases=((6, 2), (11, 3), (20, 2), (12, 4), (15, 5), (26, 3))
) -> list[dict]:
    """For each (P, L): which candidate tree first solves the word problem.

    ``winner_index`` is the position in the candidate stream (strategy
    order as in :func:`repro.core.pruning.candidate_trees`); ``solved``
    lists, per candidate, whether the general solver accepted it.
    """
    rows = []
    for P, L in cases:
        t = broadcast_time_postal(P - 1, L)
        found = None
        for T in range(t, t + L):
            outcomes = []
            for index, tree in enumerate(candidate_trees(P - 1, L, T)):
                ok = solve_general_words(tree, L, budget=100_000) is not None
                outcomes.append(ok)
                if ok and found is None:
                    found = (T, index)
            if found is not None:
                rows.append(
                    {
                        "P": P,
                        "L": L,
                        "B": t,
                        "T_used": found[0],
                        "winner_index": found[1],
                        "winner": _STRATEGY_NAMES[found[1]]
                        if found[1] < len(_STRATEGY_NAMES)
                        else f"candidate-{found[1]}",
                        "candidates_tried": len(outcomes),
                    }
                )
                break
        else:
            rows.append(
                {"P": P, "L": L, "B": t, "T_used": None, "winner_index": None,
                 "winner": "NONE", "candidates_tried": 0}
            )
    return rows


def buffered_destination_ablation(
    cases=((8, 6, 3), (14, 8, 3), (10, 8, 4), (12, 9, 5))
) -> list[dict]:
    """Greedy vs round-robin leaf-destination choice in the buffered model."""
    rows = []
    for k, t, L in cases:
        greedy = buffered_schedule(k, t, L, dest_strategy="greedy")
        naive = buffered_schedule(k, t, L, dest_strategy="round_robin")
        rows.append(
            {
                "k": k,
                "t": t,
                "L": L,
                "bound": greedy.bound,
                "greedy_completion": greedy.completion,
                "greedy_buffer_peak": greedy.buffer_peak,
                "round_robin_completion": naive.completion,
                "round_robin_buffer_peak": naive.buffer_peak,
            }
        )
    return rows


def summation_tree_shape_ablation(
    machine: LogPParams | None = None, ts: tuple[int, ...] = (28, 42)
) -> list[dict]:
    """Operand capacity under different communication-tree shapes.

    The capacity of any legal shape is ``Σ max(0, S_i - (o+1)k_i + 1)``
    with ``S_i = t - d_i``; the optimal (universal) tree minimizes
    ``Σ d_i`` and so maximizes capacity.  A shape is infeasible at ``t``
    when some processor cannot even fit its receive slots before its send.
    """
    if machine is None:
        machine = LogPParams(P=8, L=5, o=2, g=4)
    shifted = LogPParams(P=machine.P, L=machine.L + 1, o=machine.o, g=machine.g)
    rows = []
    for name in ("optimal", "binomial", "binary", "flat", "chain"):
        if name == "optimal":
            from repro.core.tree import optimal_tree

            tree = optimal_tree(shifted)
            delays = {n.index: n.delay for n in tree.nodes}
            receive_counts = {n.index: n.out_degree for n in tree.nodes}
        else:
            schedule = baseline_broadcast(name, shifted)
            delays = broadcast_delay_per_proc(schedule)
            receive_counts = {p: 0 for p in delays}
            for op in schedule.sends:
                receive_counts[op.src] = receive_counts.get(op.src, 0) + 1
        row: dict = {"tree": name, "sum_delays": sum(delays.values())}
        for t in ts:
            capacity = 0
            feasible = True
            for p, d in delays.items():
                budget = (t - d) - (machine.o + 1) * receive_counts[p]
                if budget < 0:
                    feasible = False
                    break
                capacity += budget + 1
            row[f"capacity@t={t}"] = capacity if feasible else "infeasible"
        rows.append(row)
    return rows


def _print(rows: list[dict], title: str) -> None:  # pragma: no cover
    print(f"\n== {title} ==")
    if not rows:
        return
    keys = list(rows[0])
    print("  ".join(f"{k:>22}" for k in keys))
    for row in rows:
        print("  ".join(f"{str(row[k]):>22}" for k in keys))


if __name__ == "__main__":  # pragma: no cover
    _print(pruning_strategy_ablation(), "candidate-tree strategy (Thm 3.6 search)")
    _print(buffered_destination_ablation(), "buffered-model destination choice")
    _print(summation_tree_shape_ablation(), "summation tree shape (Lem 5.1)")
