"""Perf-regression gate for the vectorized validator, event simulator,
and columnar schedule builders.

Marked ``perf`` so tier-1 (``pytest tests/``) never runs these; they are
timing-sensitive and belong in ``make bench``.  The headline acceptance
numbers: PR-1 — on the P=256 all-to-all broadcast (65,280 sends) the
numpy validator must beat the scalar engine by at least 5x with the
identical (empty) violation list; PR-2 — the columnar all-to-all builder
must beat the per-``SendOp`` object builder by at least 5x while
producing the identical send list.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import bench_all_to_all, bench_broadcast, time_call  # noqa: E402
from repro.core.all_to_all import all_to_all_schedule  # noqa: E402
from repro.params import postal  # noqa: E402
from repro.sim.validate import violations  # noqa: E402
from repro.sim.validate_np import violations_np  # noqa: E402

pytestmark = pytest.mark.perf


def test_validate_np_speedup_on_p256_all_to_all():
    schedule = all_to_all_schedule(postal(P=256, L=4))
    assert len(schedule.sends) == 256 * 255 == 65_280
    scalar_s, scalar_v = time_call(
        lambda: violations(schedule, force_scalar=True), repeat=3
    )
    np_s, np_v = time_call(lambda: violations_np(schedule), repeat=3)
    assert scalar_v == np_v == []
    speedup = scalar_s / np_s
    assert speedup >= 5.0, (
        f"vectorized validator only {speedup:.1f}x faster than scalar "
        f"({scalar_s:.3f}s vs {np_s:.3f}s); acceptance floor is 5x"
    )


def test_dispatched_violations_uses_fast_path_at_scale():
    # the public entry point must route large schedules to numpy: it may
    # not be more than marginally slower than calling violations_np directly
    schedule = all_to_all_schedule(postal(P=128, L=4))
    auto_s, _ = time_call(lambda: violations(schedule), repeat=3)
    np_s, _ = time_call(lambda: violations_np(schedule), repeat=3)
    assert auto_s < 3 * np_s + 0.05


def test_event_driven_machine_skips_idle_cycles():
    # a 2-hop-per-relay chain at P=1024 spans ~6k cycles but only ~3k
    # events; the event-driven engine must finish far under a per-cycle
    # scan budget (~1s on any plausible box)
    row = bench_broadcast(1024, repeat=1)
    assert row["simulate_sends"] == 1023
    assert row["simulate_machine_s"] < 1.0


def test_columnar_build_speedup_on_p512_all_to_all():
    # PR-2 acceptance: the numpy-broadcasting builder must construct the
    # P=512 all-to-all (261,632 sends) at least 5x faster than the
    # object-path loop, and yield the identical schedule lazily
    params = postal(P=512, L=4)
    fast_s, fast = time_call(lambda: all_to_all_schedule(params), repeat=3)
    obj_s, oracle = time_call(
        lambda: all_to_all_schedule(params, backend="objects"), repeat=3
    )
    assert fast.num_sends == oracle.num_sends == 512 * 511
    speedup = obj_s / fast_s
    assert speedup >= 5.0, (
        f"columnar builder only {speedup:.1f}x faster than object path "
        f"({obj_s:.3f}s vs {fast_s:.3f}s); acceptance floor is 5x"
    )
    assert fast.sends == oracle.sends


def test_columnar_storage_is_denser_than_objects():
    # four int64 columns = 32 bytes/send; the object path pays a list
    # slot plus a SendOp instance per send (several times that)
    row = bench_all_to_all(64, repeat=1)
    assert row["columnar_bytes_per_send"] <= 40
    assert row["object_bytes_per_send"] > 2 * row["columnar_bytes_per_send"]


def test_array_backed_validation_consumes_cached_columns():
    # validating an array-backed schedule must not materialize SendOps
    schedule = all_to_all_schedule(postal(P=256, L=4))
    assert schedule.is_array_backed
    assert violations_np(schedule) == []
    assert schedule.is_array_backed


def test_bench_scenarios_produce_legal_schedules():
    # bench rows double as correctness probes: validators returned empty
    # (asserted inside), machine sends match the closed form P(P-1)
    row = bench_all_to_all(64, repeat=1)
    assert row["sends"] == 64 * 63
    assert row["simulate_sends"] == 64 * 63
    assert row["validate_speedup"] > 1.0


def test_lint_sweep_under_one_second_on_p1024_all_to_all():
    """PR-3 acceptance: the full static rule sweep over the P=1024
    all-to-all (~1M sends) finishes in under a second, consuming the
    columnar storage zero-copy (no SendOp materialization)."""
    from repro.analyze import lint_schedule

    schedule = all_to_all_schedule(postal(P=1024, L=4))
    assert schedule.is_array_backed
    elapsed, report = time_call(lambda: lint_schedule(schedule))
    assert report.max_severity is None
    assert schedule.is_array_backed  # lint never touched .sends
    assert report.num_sends == 1024 * 1023
    assert elapsed < 1.0, f"lint sweep took {elapsed:.3f}s (budget 1.0s)"


def test_transform_pipeline_speedup_on_p512_all_to_all():
    """PR-5 acceptance: the vectorized pass pipeline (reverse,
    canonicalize, prune-dead-sends) must beat the object-path oracle by
    at least 10x on the P=512 all-to-all without ever materializing a
    SendOp list."""
    from repro.bench import bench_transforms

    row = bench_transforms(P=512, repeat=1)
    assert row["materialized_sendops"] == 0
    assert row["transform_speedup"] >= 10.0, (
        f"pass pipeline only {row['transform_speedup']:.1f}x faster than "
        f"objects oracle ({row['transform_objects_s']:.3f}s vs "
        f"{row['transform_np_s']:.3f}s); acceptance floor is 10x"
    )


def test_recorded_bench_transform_gate():
    """The committed BENCH_PR5.json must record the headline transform
    speedup so regressions show up in review, not just nightly CI."""
    import json

    path = Path(__file__).resolve().parent.parent / "BENCH_PR5.json"
    doc = json.loads(path.read_text())
    rows = [r for r in doc["scenarios"]
            if r["workload"] == "transform-pipeline"]
    assert rows, "BENCH_PR5.json has no transform-pipeline row"
    row = rows[0]
    assert row["materialized_sendops"] == 0
    assert row["transform_speedup"] >= 10.0


def test_implicit_lint_p1e6_bounded_memory():
    """PR-6 acceptance: linting a P=10^6 implicit broadcast plan never
    materializes the ~10^6 send columns — peak traced memory is bounded
    by the streamed chunk size, not by P.  Demonstrated directly: a
    *smaller* chunk at P=10^6 must peak below a *bigger* chunk at
    P=10^5, which no O(P) representation could manage."""
    from repro.bench import bench_implicit_lint

    big = bench_implicit_lint(1_000_000)
    assert big["sends"] == 999_999
    assert big["lint_errors"] == 0
    assert big["rules_run"] == 7
    assert big["lint_s"] < 5.0, f"P=1e6 lint took {big['lint_s']:.2f}s"
    # absolute ceiling at the default 64Ki chunk (measured ~11 MB)
    assert big["lint_peak_bytes"] < 32 * 2**20, (
        f"P=1e6 lint peaked at {big['lint_peak_bytes'] / 2**20:.1f} MB "
        f"(ceiling 32 MB)"
    )
    small_chunk = bench_implicit_lint(1_000_000, chunk_sends=16_384)
    medium_P = bench_implicit_lint(100_000, chunk_sends=65_536)
    assert small_chunk["lint_errors"] == medium_P["lint_errors"] == 0
    assert small_chunk["lint_peak_bytes"] < medium_P["lint_peak_bytes"], (
        f"peak memory follows P, not the chunk size: P=1e6@16Ki peaked "
        f"at {small_chunk['lint_peak_bytes']} bytes vs P=1e5@64Ki at "
        f"{medium_P['lint_peak_bytes']} bytes"
    )


def test_recorded_bench_implicit_gate():
    """The committed BENCH_PR6.json must record the headline P=10^6
    bounded-memory lint so regressions show up in review, not just
    nightly CI."""
    import json

    path = Path(__file__).resolve().parent.parent / "BENCH_PR6.json"
    doc = json.loads(path.read_text())
    rows = {r["P"]: r for r in doc["scenarios"]
            if r["workload"] == "implicit-lint"}
    assert 1_000_000 in rows, "BENCH_PR6.json has no P=1e6 implicit-lint row"
    row = rows[1_000_000]
    assert row["sends"] == 999_999
    assert row["lint_errors"] == 0
    assert row["lint_peak_bytes"] < 32 * 2**20
    assert row["lint_s"] < 5.0


def test_serve_hot_cache_speedup():
    """PR-7 acceptance: the plan service's hot path (bounded LRU over
    the content-addressed cache) must serve a Zipf request mix at least
    20x faster than cold planning, at a >= 90% hit rate, under real
    eviction pressure (capacity < population)."""
    from repro.bench import bench_serve

    row = bench_serve()
    assert row["capacity"] < row["points"], "no eviction pressure"
    assert row["hot_hit_rate"] >= 0.90, (
        f"hit rate {row['hot_hit_rate']:.3f} under the 90% floor "
        f"(capacity {row['capacity']} over {row['points']} points)"
    )
    assert row["hot_speedup"] >= 20.0, (
        f"hot path only {row['hot_speedup']:.1f}x over cold planning "
        f"({row['hot_plans_per_s']:.0f}/s vs {row['cold_plans_per_s']:.0f}/s); "
        f"acceptance floor is 20x"
    )
    # the batched path dedups before planning, so it may not be slower
    # than the one-at-a-time hot path by more than bookkeeping overhead
    assert row["batch_plans_per_s"] >= row["hot_plans_per_s"] / 3


def test_exec_lowers_and_runs_p256_broadcast_in_bounded_time():
    """PR-9 acceptance: compiling the P=256 broadcast to per-rank
    programs and actually executing it on the inproc transport (real
    threads, real queues, simulator verification on) completes well
    inside a 5s budget, and lowering consumes the columnar storage
    zero-copy — no per-SendOp objects are ever materialized."""
    from repro import registry
    from repro.exec import execute, lower_schedule
    from repro.params import LogPParams

    params = LogPParams(P=256, L=4, o=1, g=2)
    schedule = registry.plan("broadcast", params, backend="columnar")
    assert schedule.is_array_backed
    lower_s, plan = time_call(lambda: lower_schedule(schedule), repeat=3)
    assert schedule.is_array_backed  # lowering never touched .sends
    assert plan.num_sends == 255
    assert lower_s < 0.5, f"lowering took {lower_s:.3f}s (budget 0.5s)"
    wall_s, result = time_call(
        lambda: execute(schedule, transport="inproc", verify=True)
    )
    assert result.num_delivered == 255
    assert schedule.is_array_backed
    assert wall_s < 5.0, (
        f"inproc execution of the P=256 broadcast took {wall_s:.3f}s "
        f"(budget 5.0s)"
    )


def test_recorded_bench_exec_gate():
    """The committed BENCH_PR9.json must record the headline
    wall-clock-vs-makespan numbers for the P=256 broadcast on every
    available transport so regressions show up in review, not just
    nightly CI."""
    import json

    path = Path(__file__).resolve().parent.parent / "BENCH_PR9.json"
    doc = json.loads(path.read_text())
    rows = [r for r in doc["scenarios"] if r["workload"] == "exec"]
    assert rows, "BENCH_PR9.json has no exec row"
    row = rows[0]
    assert row["P"] == 256
    assert row["sends"] == 255
    assert row["makespan_cycles"] > 0
    assert row["lower_s"] < 0.5
    assert "inproc" in row["transports"] and "mp" in row["transports"]
    assert row["exec_inproc_s"] < 5.0
    assert row["exec_mp_s"] < 10.0


def test_hier_plan_lint_within_flat_budget():
    """PR-10 acceptance: planning + linting the P=512 hierarchical
    broadcast (per-edge pricing through the machine model) stays within
    the flat P=512 plan+lint budget and never materializes a SendOp,
    while the composed plan's makespan beats the flat envelope's."""
    from repro.bench import bench_hier

    row = bench_hier(P=512, repeat=3)
    assert row["sends"] == 511
    assert row["makespan_cycles"] < row["flat_makespan_cycles"]
    assert row["plan_lint_ratio"] <= 1.0, (
        f"hier plan+lint cost {row['plan_lint_ratio']:.2f}x the flat "
        f"budget ({row['build_s'] + row['lint_s']:.4f}s vs "
        f"{row['flat_build_s'] + row['flat_lint_s']:.4f}s); "
        f"acceptance ceiling is 1.0x"
    )


def test_heal_bounded_time_at_p512():
    """PR-10 acceptance: healing the fault-masked P=512 hierarchical
    broadcast (dead leaders included, whole subtrees orphaned) covers
    every survivor, lints error-free, and completes well inside a
    per-plan interactive budget."""
    from repro.bench import bench_heal

    row = bench_heal(P=512, repeat=3)
    assert row["dead"] > 0 and row["healed_sends"] > 0
    assert row["heal_s"] < 0.5, f"heal took {row['heal_s']:.3f}s (budget 0.5s)"
    assert row["lint_s"] < 1.0


def test_recorded_bench_hier_gate():
    """The committed BENCH_PR10.json must record the headline
    hierarchical-machine numbers so regressions show up in review, not
    just nightly CI."""
    import json

    path = Path(__file__).resolve().parent.parent / "BENCH_PR10.json"
    doc = json.loads(path.read_text())
    rows = {r["workload"]: r for r in doc["scenarios"]
            if r["workload"] in ("hier", "heal")}
    assert "hier" in rows, "BENCH_PR10.json has no hier row"
    assert "heal" in rows, "BENCH_PR10.json has no heal row"
    hier = rows["hier"]
    assert hier["P"] == 512
    assert hier["plan_lint_ratio"] <= 1.0
    assert hier["makespan_cycles"] < hier["flat_makespan_cycles"]
    heal = rows["heal"]
    assert heal["dead"] > 0 and heal["healed_sends"] > 0
    assert heal["heal_s"] < 0.5


def test_recorded_bench_serve_gate():
    """The committed BENCH_PR7.json must record the headline serve
    load-gen numbers so regressions show up in review, not just
    nightly CI."""
    import json

    path = Path(__file__).resolve().parent.parent / "BENCH_PR7.json"
    doc = json.loads(path.read_text())
    rows = [r for r in doc["scenarios"] if r["workload"] == "serve"]
    assert rows, "BENCH_PR7.json has no serve row"
    row = rows[0]
    assert row["points"] >= 2000, "load-gen mix must cover thousands of points"
    assert row["hot_hit_rate"] >= 0.90
    assert row["hot_speedup"] >= 20.0
    assert row["hot_plans_per_s"] >= 20.0 * row["cold_plans_per_s"]
