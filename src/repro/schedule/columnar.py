"""Columnar (struct-of-arrays) schedule storage.

The object IR in :mod:`repro.schedule.ops` stores one frozen
:class:`~repro.schedule.ops.SendOp` per message; at the P=1024 all-to-all
scale (1,047,552 sends) just *constructing* those objects dominates the
pipeline.  This module provides the array-backed alternative: four
``int64`` numpy columns (``times``/``srcs``/``dsts``/``items``) plus an
:class:`ItemTable` interning the distinct item payloads to dense codes.

The pieces fit together as follows:

* builders construct columns directly with numpy broadcasting and hand
  them to :meth:`repro.schedule.ops.Schedule.from_arrays`;
* :meth:`Schedule.columns` caches a :class:`ScheduleColumns` view (built
  zero-copy for array-backed schedules, converted once for object-backed
  ones) which the vectorized validator/analysis kernels consume;
* :func:`materialize_sends` lazily expands columns back into ``SendOp``
  objects the first time legacy code touches ``schedule.sends``.

Both storage modes are observationally identical: the property suite in
``tests/test_columnar_properties.py`` asserts byte-identical
``violations``/``violations_np`` output and serialization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Iterable, Iterator

import numpy as np

from repro.params import LogPParams
from repro.schedule.ops import SendOp

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.machine.model import MachineModel

__all__ = [
    "ItemTable",
    "ScheduleColumns",
    "sends_to_columns",
    "arrays_to_columns",
    "materialize_sends",
    "sort_order",
]

Item = Hashable


class ItemTable:
    """Deterministic item interning: item <-> dense ``int64`` code.

    Codes are assigned in *insertion order* (first occurrence wins), so a
    table built from the same item stream is always identical — the
    interning never depends on item *ordering*, only hashability, which
    is what lets schedules mix, say, ``int`` and ``tuple`` items.
    """

    __slots__ = ("_codes", "_items")

    def __init__(self, items: Iterable[Item] = ()):
        self._codes: dict[Item, int] = {}
        self._items: list[Item] = []
        for item in items:
            self.intern(item)

    def intern(self, item: Item) -> int:
        """Return the code for ``item``, assigning the next one if new."""
        code = self._codes.get(item)
        if code is None:
            code = len(self._items)
            self._codes[item] = code
            self._items.append(item)
        return code

    def encode(self, items: Iterable[Item], count: int = -1) -> np.ndarray:
        """Intern a stream of items and return their codes as an array."""
        return np.fromiter(
            (self.intern(item) for item in items), dtype=np.int64, count=count
        )

    def decode(self, code: int) -> Item:
        # plain list indexing would silently wrap negative codes to the
        # *wrong item* — corrupted columns must fail, not misdecode
        if not 0 <= code < len(self._items):
            raise IndexError(
                f"item code {code} out of range for table of "
                f"{len(self._items)} item(s)"
            )
        return self._items[code]

    __getitem__ = decode

    @property
    def codes(self) -> dict[Item, int]:
        """The ``item -> code`` mapping (treat as read-only)."""
        return self._codes

    @property
    def items(self) -> list[Item]:
        """Items in code order (treat as read-only; ``items[code]`` = item)."""
        return self._items

    def copy(self) -> ItemTable:
        table = ItemTable()
        table._codes = dict(self._codes)
        table._items = list(self._items)
        return table

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: Item) -> bool:
        return item in self._codes

    def __iter__(self) -> Iterator[Item]:
        return iter(self._items)

    def __repr__(self) -> str:
        return f"ItemTable({self._items!r})"


@dataclass
class ScheduleColumns:
    """Column-oriented view of a schedule's sends.

    ``items`` stores dense codes into ``table``; ``arrivals`` is the
    precomputed ``times + L + 2o`` column every consumer needs.
    """

    times: np.ndarray
    srcs: np.ndarray
    dsts: np.ndarray
    items: np.ndarray
    arrivals: np.ndarray
    table: ItemTable
    num_procs: int

    @property
    def item_ids(self) -> dict[Item, int]:
        """Legacy alias for the interning map (item -> dense code)."""
        return self.table.codes

    def __len__(self) -> int:
        return len(self.times)

    @property
    def nbytes(self) -> int:
        """Bytes held by the four storage columns (excludes the table)."""
        return (
            self.times.nbytes
            + self.srcs.nbytes
            + self.dsts.nbytes
            + self.items.nbytes
        )


def _num_procs(
    srcs: np.ndarray, dsts: np.ndarray, initial: dict[int, set[Item]]
) -> int:
    n = len(srcs)
    procs = int(max(srcs.max(initial=-1), dsts.max(initial=-1))) + 1 if n else 0
    return max(procs, (max(initial) + 1) if initial else 0)


def _arrivals(
    times: np.ndarray,
    srcs: np.ndarray,
    dsts: np.ndarray,
    params: LogPParams,
    machine: "MachineModel | None",
) -> np.ndarray:
    """Per-send availability times — the single pricing choke point.

    Flat machines (and ``machine=None``) keep the scalar broadcast
    ``times + L + 2o``; any other machine prices each send by its
    (src, dst) edge level.  Everything downstream of ``cols.arrivals``
    (causality, completion time, lint, exec lowering, reversal) becomes
    machine-aware through this one branch.
    """
    if machine is None or machine.is_flat:
        return times + params.send_cost
    return times + machine.send_cost_np(srcs, dsts)


def sends_to_columns(
    sends: list[SendOp],
    params: LogPParams,
    initial: dict[int, set[Item]],
    machine: "MachineModel | None" = None,
) -> ScheduleColumns:
    """Convert an object-backed send list to column arrays (one pass)."""
    n = len(sends)
    times = np.fromiter((op.time for op in sends), dtype=np.int64, count=n)
    srcs = np.fromiter((op.src for op in sends), dtype=np.int64, count=n)
    dsts = np.fromiter((op.dst for op in sends), dtype=np.int64, count=n)
    table = ItemTable()
    items = table.encode((op.item for op in sends), count=n)
    return ScheduleColumns(
        times=times,
        srcs=srcs,
        dsts=dsts,
        items=items,
        arrivals=_arrivals(times, srcs, dsts, params, machine),
        table=table,
        num_procs=_num_procs(srcs, dsts, initial),
    )


def arrays_to_columns(
    params: LogPParams,
    times: np.ndarray,
    srcs: np.ndarray,
    dsts: np.ndarray,
    item_codes: np.ndarray | None,
    table: ItemTable | None,
    initial: dict[int, set[Item]],
    machine: "MachineModel | None" = None,
) -> ScheduleColumns:
    """Wrap caller-provided arrays as columns (zero-copy when ``int64``).

    Structural validation only — the result may still be an *illegal*
    LogP schedule (the validators exist to say so), but the arrays must
    be consistent: equal 1-D lengths, non-negative processor ids, and
    every item code resolvable in ``table``.
    """
    times = np.ascontiguousarray(times, dtype=np.int64)
    srcs = np.ascontiguousarray(srcs, dtype=np.int64)
    dsts = np.ascontiguousarray(dsts, dtype=np.int64)
    if times.ndim != 1 or srcs.shape != times.shape or dsts.shape != times.shape:
        raise ValueError(
            "times/srcs/dsts must be 1-D arrays of identical length, got "
            f"shapes {times.shape}, {srcs.shape}, {dsts.shape}"
        )
    if table is None:
        if item_codes is not None:
            raise ValueError("item_codes given without an item_table")
        table = ItemTable([0])
    if item_codes is None:
        if len(table) != 1:
            raise ValueError(
                "item_codes may only be omitted for a single-item table"
            )
        item_codes = np.zeros(len(times), dtype=np.int64)
    else:
        item_codes = np.ascontiguousarray(item_codes, dtype=np.int64)
        if item_codes.shape != times.shape:
            raise ValueError(
                f"item_codes shape {item_codes.shape} != times shape {times.shape}"
            )
    if len(times):
        if min(srcs.min(), dsts.min()) < 0:
            raise ValueError("processor ids must be non-negative")
        lo = int(item_codes.min())
        hi = int(item_codes.max())
        if lo < 0 or hi >= len(table):
            raise ValueError(
                f"item codes must lie in [0, {len(table)}), got [{lo}, {hi}]"
            )
    return ScheduleColumns(
        times=times,
        srcs=srcs,
        dsts=dsts,
        items=item_codes,
        arrivals=_arrivals(times, srcs, dsts, params, machine),
        table=table,
        num_procs=_num_procs(srcs, dsts, initial),
    )


def materialize_sends(cols: ScheduleColumns) -> list[SendOp]:
    """Expand columns into ``SendOp`` objects, preserving storage order."""
    items = cols.table.items
    return [
        SendOp(time=t, src=s, dst=d, item=items[c])
        for t, s, d, c in zip(
            cols.times.tolist(),
            cols.srcs.tolist(),
            cols.dsts.tolist(),
            cols.items.tolist(),
        )
    ]


def sort_order(cols: ScheduleColumns) -> np.ndarray:
    """Indices ordering sends by ``(time, src, dst)``, ties by position.

    This is the canonical replay order used by ``Schedule.sorted_sends``
    and the serializer; the positional tie-break (lexsort is stable) keeps
    it total even when distinct items at identical coordinates are not
    mutually orderable.
    """
    return np.lexsort((cols.dsts, cols.srcs, cols.times))
