"""FIG2: continuous broadcast and k-item broadcast, P=10, L=3, k=8 (Figure 2).

Regenerates all four panels: the optimal tree T9, the per-step reception
multiset S (the paper's {a,a,a,b,b,c,D1,E2,H5}), the legal-word automaton
for L=3, the block-cyclic continuous schedule (per-item delay exactly
L + B(P-1) = 10), and the k=8 broadcast completing at 17 = L + B + k - 1.
"""

from repro.experiments.figures import fig2_continuous


def test_fig2(benchmark):
    result = benchmark(fig2_continuous)
    m = result.measured
    assert m["item_delay"] == m["paper_item_delay"] == [10]
    assert m["k8_completion"] == m["paper_k8_completion"] == 17
    assert m["measured_S7"] == m["paper_S7"]
    assert m["kitem_lower_bound"] == 15  # Theorem 3.1
    print()
    print(result)
