"""First-class machine models (flat, hierarchical, fault-masked).

See :mod:`repro.machine.model` for the model classes,
:mod:`repro.machine.compose` for the two-level composed builders, and
:mod:`repro.machine.heal` for the fault-replanning kernel behind the
``heal`` pass.
"""

from repro.machine.compose import (
    hier_broadcast_schedule,
    hier_reduction_schedule,
    two_level_broadcast_plan,
)
from repro.machine.heal import HealStats, heal_columns
from repro.machine.model import (
    FaultMaskedMachine,
    FlatMachine,
    HierarchicalMachine,
    MachineModel,
    default_hier_machine,
    machine_from_doc,
    machine_from_spec,
)

__all__ = [
    "MachineModel",
    "FlatMachine",
    "HierarchicalMachine",
    "FaultMaskedMachine",
    "machine_from_doc",
    "machine_from_spec",
    "default_hier_machine",
    "hier_broadcast_schedule",
    "hier_reduction_schedule",
    "two_level_broadcast_plan",
    "HealStats",
    "heal_columns",
]
