"""Schedule transformations: shift, remap, reverse, compose, restrict.

Since PR 5 the public functions here are thin shims over the pass
framework (:mod:`repro.passes`): each builds the corresponding
registered pass and runs it, so large schedules automatically take the
vectorized columnar kernels while small ones stay on plain objects (the
decision belongs to :mod:`repro.dispatch`; ``backend=`` overrides it per
call).  The ``*_objects`` functions below are the pure-Python oracles —
the executable specification the kernels are property-tested against
(byte-identical canonical JSON) — and are what the passes run on the
objects path.

Algebraic properties (verified by replaying transformed schedules):

* :func:`shift` — translate all send times by a constant (legality is
  translation-invariant);
* :func:`remap` — rename processors by a bijection (legality is
  permutation-invariant);
* :func:`reverse` — time-reverse a schedule around its completion time,
  swapping senders and receivers.  Send gaps become receive gaps and
  vice versa, so legality is preserved; this is exactly the paper's
  broadcast-to-reduction correspondence (Section 4.2) and the
  summation correspondence (Section 5);
* :func:`concat` — run one schedule after another with a safety spacing
  of ``max(g, o)`` so boundary gaps hold;
* :func:`restrict` — keep only traffic within a processor subset
  (legality restricts; completeness of a collective generally does not —
  the caller asserts what survives).
"""

from __future__ import annotations

import bisect
from typing import Callable, Hashable, Iterable, Mapping

from repro.passes.kernels import SHIFT_BEFORE_ZERO, merge_source_items
from repro.passes.library import (
    ConcatPass,
    RemapPass,
    RestrictPass,
    ReversePass,
    ShiftPass,
)
from repro.schedule.analysis import availability
from repro.schedule.ops import Schedule, SendOp

__all__ = ["shift", "remap", "reverse", "concat", "restrict"]

Item = Hashable


def shift(schedule: Schedule, offset: int, backend: str | None = None) -> Schedule:
    """Translate every send (and source-item creation) by ``offset``.

    ``offset`` may be negative as long as no send *or item creation*
    would land before cycle 0 (both backends raise the same
    ``ValueError`` at transform time).
    """
    return ShiftPass(offset, backend=backend).run(schedule)


def remap(
    schedule: Schedule, mapping: Mapping[int, int], backend: str | None = None
) -> Schedule:
    """Rename processors; ``mapping`` must be injective on those used."""
    return RemapPass(mapping=mapping, backend=backend).run(schedule)


def reverse(
    schedule: Schedule,
    item_of: Callable[[SendOp], Item] | None = None,
    initial: dict[int, set[Item]] | None = None,
    backend: str | None = None,
) -> Schedule:
    """Time-reverse around the completion time, swapping directions.

    A message sent at ``s`` (received at ``s + L + 2o``) becomes one sent
    at ``C - (s + L + 2o)`` from the old receiver to the old sender,
    where ``C`` is the completion time.  ``item_of`` relabels items (the
    default tags them ``("rev", old_dst)`` — the partial-sum convention
    of the reduction correspondence; custom labelling runs on the objects
    oracle); ``initial`` overrides the reversed schedule's initial
    placement (default: every processor holds the items it will send).
    The result's ``source_items`` record each reversed item's earliest
    send time, so causality re-validation stays meaningful.
    """
    return ReversePass(initial=initial, item_of=item_of, backend=backend).run(
        schedule
    )


def concat(first: Schedule, second: Schedule, backend: str | None = None) -> Schedule:
    """Sequential composition: ``second`` starts after ``first`` finishes.

    The boundary spacing is ``max(g, o)`` cycles after the last arrival,
    which suffices for every per-processor gap/overhead constraint to
    hold across the seam.  Initial placements of ``second`` are assumed
    to be satisfied by ``first``'s effects (the caller's responsibility —
    items are merged into the combined initial set so causality checks
    pass only if that is true or items differ).  ``source_items`` keys
    present in both schedules with different creation times raise
    ``ValueError`` instead of being silently overwritten.
    """
    return ConcatPass(second, backend=backend).run(first)


def restrict(
    schedule: Schedule, procs: Iterable[int], backend: str | None = None
) -> Schedule:
    """Keep only messages whose both endpoints lie in ``procs``."""
    return RestrictPass(procs, backend=backend).run(schedule)


# --------------------------------------------------------------------------
# Objects oracles.  Pure-Python reference implementations; the columnar
# kernels in repro.passes.kernels are property-tested byte-identical
# against these.  Not part of the public API (use the shims above).
# --------------------------------------------------------------------------


def shift_objects(schedule: Schedule, offset: int) -> Schedule:
    """Objects oracle for :func:`shift`."""
    floor = list(schedule.source_items.values())
    if schedule.sends:
        floor.append(min(op.time for op in schedule.sends))
    if floor and min(floor) + offset < 0:
        raise ValueError(SHIFT_BEFORE_ZERO)
    return Schedule(
        params=schedule.params,
        sends=[
            SendOp(time=op.time + offset, src=op.src, dst=op.dst, item=op.item)
            for op in schedule.sends
        ],
        initial={p: set(items) for p, items in schedule.initial.items()},
        source_items={
            item: when + offset for item, when in schedule.source_items.items()
        },
        machine=schedule.machine,
    )


def remap_objects(schedule: Schedule, mapping: Mapping[int, int]) -> Schedule:
    """Objects oracle for :func:`remap`."""
    used = schedule.processors()
    image = {mapping.get(p, p) for p in used}
    if len(image) != len(used):
        raise ValueError("processor mapping is not injective on used processors")

    def m(p: int) -> int:
        return mapping.get(p, p)

    return Schedule(
        params=schedule.params,
        sends=[
            SendOp(time=op.time, src=m(op.src), dst=m(op.dst), item=op.item)
            for op in schedule.sends
        ],
        initial={m(p): set(items) for p, items in schedule.initial.items()},
        source_items=dict(schedule.source_items),
        machine=schedule.machine,
    )


def reverse_objects(
    schedule: Schedule,
    tag: str = "rev",
    initial: dict[int, set[Item]] | None = None,
    item_of: Callable[[SendOp], Item] | None = None,
) -> Schedule:
    """Objects oracle for :func:`reverse` (see shim docstring)."""
    params = schedule.params
    if not schedule.sends:
        return Schedule(
            params=params,
            initial=initial or dict(schedule.initial),
            machine=schedule.machine,
        )
    completion = max(op.arrival(params) for op in schedule.sends)

    def default_item(op: SendOp) -> Item:
        return (tag, op.dst)

    label = item_of or default_item
    sends = [
        SendOp(
            time=completion - op.arrival(params),
            src=op.dst,
            dst=op.src,
            item=label(op),
        )
        for op in schedule.sends
    ]
    source_items: dict[Item, int] = {}
    for op in sends:
        known = source_items.get(op.item)
        if known is None or op.time < known:
            source_items[op.item] = op.time
    if initial is None:
        initial = {}
        for op in sends:
            initial.setdefault(op.src, set()).add(op.item)
    return Schedule(
        params=params,
        sends=sorted(sends),
        initial=initial,
        source_items=source_items,
        machine=schedule.machine,
    )


def concat_objects(first: Schedule, second: Schedule) -> Schedule:
    """Objects oracle for :func:`concat`."""
    if first.params != second.params:
        raise ValueError("cannot concatenate schedules for different machines")
    if first.machine != second.machine:
        raise ValueError("cannot concatenate schedules for different machines")
    params = first.params
    finish = max((op.arrival(params) for op in first.sends), default=0)
    # params guarantee g >= 1, so max(g, o) is the documented spacing and
    # is already positive — the old `max(g, o, 1)` floor was dead code.
    moved = shift_objects(second, finish + max(params.g, params.o))
    initial = {p: set(items) for p, items in first.initial.items()}
    for p, items in moved.initial.items():
        initial.setdefault(p, set()).update(items)
    return Schedule(
        params=params,
        sends=sorted(first.sends + moved.sends),
        initial=initial,
        source_items=merge_source_items(first.source_items, moved.source_items),
        machine=first.machine,
    )


def restrict_objects(schedule: Schedule, procs: Iterable[int]) -> Schedule:
    """Objects oracle for :func:`restrict`."""
    keep = set(procs)
    return Schedule(
        params=schedule.params,
        sends=[
            op for op in schedule.sends if op.src in keep and op.dst in keep
        ],
        initial={
            p: set(items) for p, items in schedule.initial.items() if p in keep
        },
        source_items=merge_source_items(schedule.source_items, {}),
        machine=schedule.machine,
    )


def canonicalize_objects(schedule: Schedule) -> tuple[Schedule, int]:
    """Objects oracle for the ``canonicalize`` pass.

    Returns ``(canonical schedule, item-table entries dropped)``; on the
    objects path the drop count still reports how many entries of the
    *input's* interning table no send references.
    """
    sends = sorted(
        schedule.sends, key=lambda op: (op.time, op.src, op.dst)
    )
    referenced = {op.item for op in sends}
    dropped = len(schedule.columns().table) - len(referenced)
    return (
        Schedule(
            params=schedule.params,
            sends=sends,
            initial={p: set(items) for p, items in schedule.initial.items()},
            source_items=dict(schedule.source_items),
            machine=schedule.machine,
        ),
        dropped,
    )


def prune_dead_sends_objects(schedule: Schedule) -> tuple[Schedule, int]:
    """Objects oracle for the ``prune-dead-sends`` pass."""
    avail = availability(schedule, backend="objects")
    kept = [
        op for op in schedule.sends if avail[(op.dst, op.item)] > op.time
    ]
    removed = len(schedule.sends) - len(kept)
    return (
        Schedule(
            params=schedule.params,
            sends=kept,
            initial={p: set(items) for p, items in schedule.initial.items()},
            source_items=dict(schedule.source_items),
            machine=schedule.machine,
        ),
        removed,
    )


def compact_time_objects(schedule: Schedule) -> tuple[Schedule, int]:
    """Objects oracle for the ``compact-time`` pass.

    Mirrors :func:`repro.passes.kernels.compact_time_columns`: every send
    reserves ``[t, t + L + 2o + g]``, creation times reserve their own
    cycle, and uncovered cycles are deleted from the timeline.
    """
    params = schedule.params
    reserve = params.L + 2 * params.o + params.g
    deltas: dict[int, int] = {}
    for op in schedule.sends:
        deltas[op.time] = deltas.get(op.time, 0) + 1
        end = op.time + reserve + 1
        deltas[end] = deltas.get(end, 0) - 1
    for when in schedule.source_items.values():
        deltas[when] = deltas.get(when, 0) + 1
        deltas[when + 1] = deltas.get(when + 1, 0) - 1
    copy_initial = {p: set(items) for p, items in schedule.initial.items()}
    if not deltas:
        return (
            Schedule(
                params=params,
                sends=list(schedule.sends),
                initial=copy_initial,
                source_items={},
                machine=schedule.machine,
            ),
            0,
        )
    coords = sorted(deltas)
    gap_ends: list[int] = []
    removed_cum = [0]
    coverage = 0
    for left, right in zip(coords, coords[1:]):
        coverage += deltas[left]
        if coverage == 0:
            gap_ends.append(right)
            removed_cum.append(removed_cum[-1] + (right - left))

    def compacted(when: int) -> int:
        return when - removed_cum[bisect.bisect_right(gap_ends, when)]

    return (
        Schedule(
            params=params,
            sends=[
                SendOp(
                    time=compacted(op.time),
                    src=op.src,
                    dst=op.dst,
                    item=op.item,
                )
                for op in schedule.sends
            ],
            initial=copy_initial,
            source_items={
                item: compacted(when)
                for item, when in schedule.source_items.items()
            },
            machine=schedule.machine,
        ),
        removed_cum[-1],
    )
