"""Planted REPRO003: unbounded caches (and one bounded, benign one)."""

from functools import cache, lru_cache

_result_cache = {}


@lru_cache
def fib(n):
    return n if n < 2 else fib(n - 1) + fib(n - 2)


@lru_cache(maxsize=None)
def factorial(n):
    return 1 if n < 2 else n * factorial(n - 1)


@cache
def catalan(n):
    return 1


@lru_cache(maxsize=256)
def bounded(n):
    return n * n
