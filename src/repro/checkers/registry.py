"""The checker registry: one decorator, one catalogue, one resolver.

Mirrors :data:`repro.analyze.rules.RULES` at the codebase tier.  A
:class:`Checker` couples a REPRO rule id with its category, default
severity and target-profile predicate; :func:`register_checker` is the
decorator the rule functions in :mod:`repro.checkers.rules` register
through, and :func:`resolve_checkers` turns ``--select``/``--ignore``
spellings (ids or names) into an ordered, deduplicated run list —
unknown spellings raise immediately so typos cannot silently skip
checks.

Rule functions return plain :class:`Finding` records (line, message,
optional fix-it); the engine stamps them with the checker's id,
severity and the file's path, so a rule body never repeats its own
metadata.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.checkers.context import FileContext
from repro.checkers.diagnostics import Severity

__all__ = [
    "Finding",
    "Checker",
    "CHECKERS",
    "register_checker",
    "checker_ids",
    "get_checker",
    "resolve_checkers",
]


@dataclass(frozen=True)
class Finding:
    """One raw rule hit before the engine stamps rule id and path."""

    line: int
    message: str
    fixit: str | None = None


CheckerFn = Callable[[FileContext], list[Finding]]


@dataclass(frozen=True)
class Checker:
    """A registered codebase rule (id, category, severity, targets).

    ``profiles`` selects target files: the empty tuple applies the rule
    to every file; a plain name requires membership in that profile; a
    ``-``-prefixed name excludes it (``("-dispatch-owner",)`` reads
    "everywhere except the dispatch policy module").
    """

    id: str
    name: str
    category: str
    severity: Severity
    summary: str
    run: CheckerFn
    profiles: tuple[str, ...] = ()

    def applies(self, file_profiles: frozenset[str]) -> bool:
        required = [p for p in self.profiles if not p.startswith("-")]
        excluded = [p[1:] for p in self.profiles if p.startswith("-")]
        if any(p in file_profiles for p in excluded):
            return False
        return not required or any(p in file_profiles for p in required)


CHECKERS: list[Checker] = []


def register_checker(
    id: str,
    name: str,
    category: str,
    severity: Severity,
    summary: str,
    profiles: tuple[str, ...] = (),
) -> Callable[[CheckerFn], CheckerFn]:
    """Decorator: register ``fn`` as the runner for rule ``id``."""

    def decorate(fn: CheckerFn) -> CheckerFn:
        if any(c.id == id or c.name == name for c in CHECKERS):
            raise ValueError(f"checker {id}/{name} is already registered")
        CHECKERS.append(
            Checker(
                id=id,
                name=name,
                category=category,
                severity=severity,
                summary=summary,
                run=fn,
                profiles=profiles,
            )
        )
        return fn

    return decorate


def checker_ids() -> list[str]:
    """Registered rule ids in registration (catalogue) order."""
    return [c.id for c in CHECKERS]


def get_checker(key: str) -> Checker:
    """Resolve a rule id or name to its :class:`Checker`."""
    for checker in CHECKERS:
        if key in (checker.id, checker.name):
            return checker
    known = sorted({c.id for c in CHECKERS} | {c.name for c in CHECKERS})
    raise ValueError(f"unknown rule {key!r}; known rules: {known}")


def resolve_checkers(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Checker]:
    """Resolve id/name selections against the registry (order-preserving)."""
    chosen = (
        list(CHECKERS)
        if select is None
        else [get_checker(key) for key in select]
    )
    if ignore:
        dropped = {get_checker(key).id for key in ignore}
        chosen = [checker for checker in chosen if checker.id not in dropped]
    chosen_ids = {checker.id for checker in chosen}
    return [checker for checker in CHECKERS if checker.id in chosen_ids]
