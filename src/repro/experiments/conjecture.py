"""Exploration tooling for the paper's open conjecture.

Section 6 conjectures that block-cyclic schedules achieve the optimal
continuous-broadcast delay for *every* ``L > 2`` (the paper verified
``L <= 10`` by computer).  This module packages the experiment so anyone
with CPU budget can push the frontier:

* :func:`probe_base_cases` — search for normal-form solutions over a
  ``t`` range with a wall-clock budget, reporting per-``t`` outcomes
  (``solved`` / ``unsolved`` / ``timeout``);
* :func:`conjecture_status` — summarize what this library establishes:
  for which ``L`` the full Theorem 3.3 machinery (base cases +
  induction) is in place.

Results for ``L <= 10`` (pre-computed, each re-verifiable with
:func:`repro.core.continuous.assignment.find_base_cases`):
``t(L) = 11, 12, 12, 15, 18, 21, 24, 27`` for ``L = 3..10``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.continuous.assignment import solve_instance
from repro.core.continuous.relative import instance_for

__all__ = ["ProbeResult", "probe_base_cases", "conjecture_status", "KNOWN_TL"]

KNOWN_TL = {3: 11, 4: 12, 5: 12, 6: 15, 7: 18, 8: 21, 9: 24, 10: 27}


@dataclass
class ProbeResult:
    L: int
    t: int
    outcome: str  # "solved" | "unsolved" | "timeout"
    seconds: float


def probe_base_cases(
    L: int,
    t_range: tuple[int, int] | None = None,
    time_budget: float = 60.0,
) -> list[ProbeResult]:
    """Try normal-form solutions for each ``t`` within a time budget.

    ``timeout`` outcomes mean the DFS was cut off by the *overall* budget,
    not that the instance is unsolvable — rerun with more budget to
    decide.  Solved runs of length ``L`` establish Theorem 3.3 for this
    ``L`` via the induction.
    """
    if t_range is None:
        start = 2 * L - 2
        t_range = (start, start + 2 * L)
    results: list[ProbeResult] = []
    deadline = time.monotonic() + time_budget
    for t in range(t_range[0], t_range[1] + 1):
        if time.monotonic() > deadline:
            results.append(ProbeResult(L=L, t=t, outcome="timeout", seconds=0.0))
            continue
        began = time.monotonic()
        try:
            solution = solve_instance(instance_for(t, L), normal_form=True)
        except MemoryError:  # pragma: no cover - enormous instances
            solution = None
        took = time.monotonic() - began
        outcome = "solved" if solution is not None else "unsolved"
        if solution is None and time.monotonic() > deadline:
            outcome = "timeout"
        results.append(ProbeResult(L=L, t=t, outcome=outcome, seconds=took))
    return results


def conjecture_status(max_L: int = 12) -> list[dict]:
    """What this library establishes per ``L``.

    ``verified`` means base cases are known (L <= 10, the paper's range —
    re-derivable in-session); ``open`` means the conjecture is untested
    here (probe with :func:`probe_base_cases`); ``refuted-for-optimal``
    marks ``L = 2`` (Theorem 3.4).
    """
    rows = []
    for L in range(2, max_L + 1):
        if L == 2:
            status, t_L = "refuted-for-optimal (Thm 3.4; delay+1 achievable)", None
        elif L in KNOWN_TL:
            status, t_L = "verified (base cases + induction)", KNOWN_TL[L]
        else:
            status, t_L = "open (probe_base_cases to attack)", None
        rows.append({"L": L, "status": status, "t(L)": t_L})
    return rows


if __name__ == "__main__":  # pragma: no cover
    for row in conjecture_status():
        print(row)
    print("\nprobing L=3 (fast demonstration):")
    for r in probe_base_cases(3, time_budget=20.0):
        print(f"  t={r.t}: {r.outcome} ({r.seconds:.2f}s)")
