"""First-class machine models: flat, hierarchical, and fault-masked.

The paper analyses one flat, fully-connected, failure-free LogP machine,
and until PR 10 that assumption was baked into every layer as a bare
:class:`~repro.params.LogPParams`.  This module promotes the machine to
an explicit object so builders, validators, lint, cache keys, and the
executor can agree on *which* machine a schedule targets:

* :class:`FlatMachine` — wraps ``LogPParams``; byte-identical behaviour
  to the implicit flat machine (``is_flat`` short-circuits every
  per-edge code path back to the scalar ``L + 2o``).
* :class:`HierarchicalMachine` — a cluster of clusters: ``nodes``
  machines of ``cores`` ranks each, with distinct ``(L, o, g)`` per
  level.  Level 0 prices cross-node edges with ``inter``; level 1
  prices same-node edges with ``intra``.  Rank ``r`` lives on node
  ``r // cores`` as core ``r % cores``; rank ``node * cores`` is the
  node's *leader*.
* :class:`FaultMaskedMachine` — any machine minus a dead-rank set.
  Pricing delegates to the base machine; the mask contributes the
  *expected participant* set that coverage lint (SCHED010) checks
  against, so a healed schedule that silently drops a surviving leaf
  is caught.

Every machine serializes to a canonical JSON-able doc
(:meth:`MachineModel.canonical_doc` / :func:`machine_from_doc`) so the
plan-service cache key can distinguish topologies with equal flat
params, and parses from a compact CLI spec string
(:func:`machine_from_spec`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, ClassVar, Mapping

import numpy as np

from repro.params import LogPParams

__all__ = [
    "MachineModel",
    "FlatMachine",
    "HierarchicalMachine",
    "FaultMaskedMachine",
    "machine_from_doc",
    "machine_from_spec",
    "default_hier_machine",
]


class MachineModel:
    """Common interface over flat, hierarchical, and fault-masked machines.

    Subclasses are frozen dataclasses; equality and the canonical doc are
    the same notion (two machines are equal iff their docs are equal), so
    a machine can participate in :class:`~repro.schedule.ops.Schedule`
    equality and in content-addressed cache keys without extra plumbing.
    """

    kind: ClassVar[str] = "abstract"

    # -- shape -----------------------------------------------------------

    @property
    def num_procs(self) -> int:
        """Total rank count (dead ranks still occupy their ids)."""
        raise NotImplementedError

    @property
    def flat_params(self) -> LogPParams:
        """Conservative single-level envelope over ``num_procs`` ranks.

        For a hierarchical machine this prices every edge at the *inter*
        level — the worst case — so closed-form bounds computed from it
        are upper bounds, never promises.
        """
        raise NotImplementedError

    @property
    def levels(self) -> tuple[LogPParams, ...]:
        """Per-level parameters; index = the level of an edge."""
        raise NotImplementedError

    @property
    def is_flat(self) -> bool:
        """True only for :class:`FlatMachine`: one level, no mask."""
        return False

    @property
    def has_flat_pricing(self) -> bool:
        """True when every edge costs exactly ``flat_params.send_cost``.

        Gates the SCHED008 closed-form optimality bound: on machines
        without flat pricing a schedule may legitimately beat the flat
        bound, so the rule must not fire.
        """
        return False

    # -- per-edge pricing ------------------------------------------------

    def edge_levels_np(self, srcs: np.ndarray, dsts: np.ndarray) -> np.ndarray:
        """Level index of each (src, dst) edge, vectorized."""
        raise NotImplementedError

    def send_cost_np(self, srcs: np.ndarray, dsts: np.ndarray) -> np.ndarray:
        """Per-edge ``L + 2o`` priced by each edge's level, vectorized."""
        costs = np.fromiter(
            (p.send_cost for p in self.levels),
            dtype=np.int64,
            count=len(self.levels),
        )
        return costs[self.edge_levels_np(srcs, dsts)]

    # -- liveness --------------------------------------------------------

    def alive_np(self) -> np.ndarray:
        """Sorted array of live rank ids."""
        return np.arange(self.num_procs, dtype=np.int64)

    def expected_participants(self) -> np.ndarray | None:
        """Ranks that coverage lint must see, or None for "observed only".

        Only :class:`FaultMaskedMachine` pins this: a healed broadcast
        must reach every *survivor*, including leaves that no longer
        appear in any send.
        """
        return None

    # -- serialization ---------------------------------------------------

    def canonical_doc(self) -> dict[str, Any]:
        """Deterministic JSON-able description (sorted, list-valued)."""
        raise NotImplementedError


def _params_doc(params: LogPParams) -> list[int]:
    return [params.P, params.L, params.o, params.g]


def _params_from_doc(doc: Any, where: str) -> LogPParams:
    if not isinstance(doc, (list, tuple)) or len(doc) != 4:
        raise ValueError(f"{where} must be a [P, L, o, g] list, got {doc!r}")
    P, L, o, g = (int(v) for v in doc)
    return LogPParams(P=P, L=L, o=o, g=g)


@dataclass(frozen=True)
class FlatMachine(MachineModel):
    """The paper's machine: one level, fully connected, failure free."""

    params: LogPParams

    kind: ClassVar[str] = "flat"

    @property
    def num_procs(self) -> int:
        return self.params.P

    @property
    def flat_params(self) -> LogPParams:
        return self.params

    @property
    def levels(self) -> tuple[LogPParams, ...]:
        return (self.params,)

    @property
    def is_flat(self) -> bool:
        return True

    @property
    def has_flat_pricing(self) -> bool:
        return True

    def edge_levels_np(self, srcs: np.ndarray, dsts: np.ndarray) -> np.ndarray:
        return np.zeros(len(srcs), dtype=np.int64)

    def canonical_doc(self) -> dict[str, Any]:
        return {"kind": "flat", "params": _params_doc(self.params)}


@dataclass(frozen=True)
class HierarchicalMachine(MachineModel):
    """``nodes`` clusters of ``cores`` ranks with two-level pricing.

    ``inter`` prices cross-node edges (level 0), ``intra`` same-node
    edges (level 1); both are normalized so ``inter.P == nodes`` and
    ``intra.P == cores`` regardless of what the caller passed.  The rank
    layout is blocked: rank ``r`` = (node ``r // cores``, core
    ``r % cores``), and each node's rank-0 core (``node * cores``) acts
    as its leader in the composed builders.
    """

    nodes: int
    cores: int
    inter: LogPParams
    intra: LogPParams

    kind: ClassVar[str] = "hier"

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")
        object.__setattr__(self, "inter", self.inter.with_processors(self.nodes))
        object.__setattr__(self, "intra", self.intra.with_processors(self.cores))

    @property
    def num_procs(self) -> int:
        return self.nodes * self.cores

    @property
    def flat_params(self) -> LogPParams:
        return self.inter.with_processors(self.num_procs)

    @property
    def levels(self) -> tuple[LogPParams, ...]:
        return (self.inter, self.intra)

    def edge_levels_np(self, srcs: np.ndarray, dsts: np.ndarray) -> np.ndarray:
        return np.where(srcs // self.cores == dsts // self.cores, 1, 0).astype(
            np.int64
        )

    def node_of(self, rank: int) -> int:
        return rank // self.cores

    def core_of(self, rank: int) -> int:
        return rank % self.cores

    def leader(self, node: int) -> int:
        return node * self.cores

    def canonical_doc(self) -> dict[str, Any]:
        return {
            "kind": "hier",
            "nodes": self.nodes,
            "cores": self.cores,
            "inter": _params_doc(self.inter),
            "intra": _params_doc(self.intra),
        }


@dataclass(frozen=True)
class FaultMaskedMachine(MachineModel):
    """A machine with a dead-rank set masked out.

    Rank ids are *not* renumbered — dead ranks keep their slots so a
    healed schedule composes with the original rank space.  Nested masks
    flatten (masking a masked machine unions the dead sets), and the
    dead tuple is stored sorted and deduplicated so equal masks produce
    byte-equal canonical docs and cache keys.
    """

    base: MachineModel
    dead: tuple[int, ...]

    kind: ClassVar[str] = "fault"

    def __post_init__(self) -> None:
        base = self.base
        dead = set(int(r) for r in self.dead)
        if isinstance(base, FaultMaskedMachine):
            dead |= set(base.dead)
            base = base.base
        for rank in dead:
            if not 0 <= rank < base.num_procs:
                raise ValueError(
                    f"dead rank {rank} out of range for "
                    f"{base.num_procs}-rank machine"
                )
        if len(dead) >= base.num_procs:
            raise ValueError("cannot mask out every rank")
        object.__setattr__(self, "base", base)
        object.__setattr__(self, "dead", tuple(sorted(dead)))

    @property
    def num_procs(self) -> int:
        return self.base.num_procs

    @property
    def flat_params(self) -> LogPParams:
        return self.base.flat_params

    @property
    def levels(self) -> tuple[LogPParams, ...]:
        return self.base.levels

    @property
    def has_flat_pricing(self) -> bool:
        return self.base.has_flat_pricing

    def edge_levels_np(self, srcs: np.ndarray, dsts: np.ndarray) -> np.ndarray:
        return self.base.edge_levels_np(srcs, dsts)

    def alive_np(self) -> np.ndarray:
        return np.setdiff1d(
            np.arange(self.num_procs, dtype=np.int64),
            np.asarray(self.dead, dtype=np.int64),
        )

    def expected_participants(self) -> np.ndarray | None:
        return self.alive_np()

    def canonical_doc(self) -> dict[str, Any]:
        return {
            "kind": "fault",
            "base": self.base.canonical_doc(),
            "dead": list(self.dead),
        }


#: Exactly the keys each machine kind's canonical doc carries.  Docs
#: feed cache keys, so a stray key must be an error: silently dropping
#: e.g. ``dead`` on a hier doc would alias a masked machine onto the
#: unmasked one's cache entry.
_DOC_KEYS = {
    "flat": frozenset({"kind", "params"}),
    "hier": frozenset({"kind", "nodes", "cores", "inter", "intra"}),
    "fault": frozenset({"kind", "base", "dead"}),
}


def machine_from_doc(doc: Mapping[str, Any]) -> MachineModel:
    """Inverse of :meth:`MachineModel.canonical_doc`."""
    kind = doc.get("kind")
    if not isinstance(kind, str) or kind not in _DOC_KEYS:
        raise ValueError(f"unknown machine kind {kind!r}")
    unknown = sorted(set(doc) - _DOC_KEYS[kind])
    if unknown:
        raise ValueError(
            f"{kind} machine doc has unknown key(s) {unknown} "
            f"(expected {sorted(_DOC_KEYS[kind])}; a fault mask is "
            f"spelled {{'kind': 'fault', 'base': ..., 'dead': [...]}})"
        )
    if kind == "flat":
        return FlatMachine(_params_from_doc(doc.get("params"), "params"))
    if kind == "hier":
        return HierarchicalMachine(
            nodes=int(doc["nodes"]),
            cores=int(doc["cores"]),
            inter=_params_from_doc(doc.get("inter"), "inter"),
            intra=_params_from_doc(doc.get("intra"), "intra"),
        )
    base = doc.get("base")
    if not isinstance(base, Mapping):
        raise ValueError(f"fault machine doc needs a 'base' doc, got {base!r}")
    dead = doc.get("dead", [])
    return FaultMaskedMachine(
        base=machine_from_doc(base), dead=tuple(int(r) for r in dead)
    )


def _parse_level(text: str, where: str) -> LogPParams:
    parts = text.split("/")
    if len(parts) != 3:
        raise ValueError(
            f"{where} must look like L/o/g (e.g. 24/2/6), got {text!r}"
        )
    try:
        L, o, g = (int(p) for p in parts)
    except ValueError:
        raise ValueError(f"{where} fields must be integers, got {text!r}") from None
    return LogPParams(P=1, L=L, o=o, g=g)


def _parse_dead(text: str) -> tuple[int, ...]:
    body = text[len("dead=") :]
    if not body:
        raise ValueError("dead= segment must list ranks, e.g. dead=3+7")
    try:
        return tuple(int(r) for r in body.split("+"))
    except ValueError:
        raise ValueError(f"dead ranks must be integers, got {body!r}") from None


def machine_from_spec(
    spec: str, params: LogPParams | None = None
) -> MachineModel:
    """Parse a compact machine spec string (the CLI ``--machine`` value).

    Grammar::

        flat                          -- FlatMachine over ``params``
        hier:NxC:L/o/g:L/o/g          -- N nodes x C cores, inter then intra
        <any of the above>:dead=a+b   -- wrap in a FaultMaskedMachine

    Example: ``hier:8x8:24/2/6:2/1/1:dead=9+27`` is the 8x8 reference
    cluster with ranks 9 and 27 dead.
    """
    segments = spec.split(":")
    dead: tuple[int, ...] | None = None
    if segments and segments[-1].startswith("dead="):
        dead = _parse_dead(segments.pop())
    if not segments:
        raise ValueError(f"empty machine spec {spec!r}")
    head = segments[0]
    machine: MachineModel
    if head == "flat":
        if len(segments) != 1:
            raise ValueError(f"flat spec takes no extra segments, got {spec!r}")
        if params is None:
            raise ValueError("flat machine spec needs LogP params")
        machine = FlatMachine(params)
    elif head == "hier":
        if len(segments) != 4:
            raise ValueError(
                f"hier spec must be hier:NxC:L/o/g:L/o/g, got {spec!r}"
            )
        shape = segments[1].split("x")
        if len(shape) != 2:
            raise ValueError(f"hier shape must be NxC (e.g. 8x8), got {segments[1]!r}")
        try:
            nodes, cores = (int(s) for s in shape)
        except ValueError:
            raise ValueError(
                f"hier shape fields must be integers, got {segments[1]!r}"
            ) from None
        machine = HierarchicalMachine(
            nodes=nodes,
            cores=cores,
            inter=_parse_level(segments[2], "inter level"),
            intra=_parse_level(segments[3], "intra level"),
        )
    else:
        raise ValueError(f"unknown machine spec {spec!r} (want flat or hier:...)")
    if dead is not None:
        machine = FaultMaskedMachine(base=machine, dead=dead)
    return machine


def default_hier_machine(params: LogPParams) -> HierarchicalMachine:
    """Factor ``params.P`` into the squarest nodes x cores hierarchy.

    Used by the registry's ``hier-*`` specs when no explicit machine is
    given (so flat ``-P/-L/--o/--g`` CLI flags still drive them): cores
    is the largest divisor of ``P`` at most ``sqrt(P)``, the inter level
    reuses ``params``' timing, and the intra level is a fast local bus
    (``L=1, o=0, g=1``).
    """
    P = params.P
    cores = 1
    for d in range(1, math.isqrt(P) + 1):
        if P % d == 0:
            cores = d
    nodes = P // cores
    return HierarchicalMachine(
        nodes=nodes,
        cores=cores,
        inter=params.with_processors(nodes),
        intra=LogPParams(P=max(cores, 1), L=1, o=0, g=1),
    )
