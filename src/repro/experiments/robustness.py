"""Robustness of broadcast trees under latency jitter.

The paper's schedules assume every message incurs exactly ``L``.  Real
networks jitter; a natural systems question for an adopter is whether the
optimal tree's advantage survives stochastic latency.  This study runs a
Monte-Carlo over per-message latencies ``L + eps`` (``eps >= 0`` drawn
i.i.d.) through the *dependency structure* of each broadcast tree:

* a node's sends start when its own item arrives, paced ``g`` apart;
* a child's arrival is its parent's arrival + ``rank * g + 2o + L + eps``.

Because every processor receives exactly once in a broadcast tree there is
no receive-side contention, so this event-driven relaxation is exact for
tree schedules.  Vectorized with numpy across trials.

Findings (asserted in the robustness benchmark): the optimal tree keeps
its lead at moderate jitter, and the *relative* degradation of the deeper
optimal tree only overtakes the shallower binomial tree when jitter is a
large fraction of ``L``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.trees import baseline_broadcast
from repro.core.single_item import optimal_broadcast_schedule
from repro.params import LogPParams
from repro.schedule.ops import Schedule

__all__ = ["tree_structure", "jittered_makespans", "robustness_study"]


@dataclass(frozen=True)
class _Edge:
    parent: int
    child: int
    rank: int  # position among the parent's sends (0-based, by time)


def tree_structure(schedule: Schedule) -> list[_Edge]:
    """Extract (parent, child, send-rank) edges from a tree broadcast.

    Requires each destination to be reached exactly once (true of every
    tree-shaped broadcast in this library); edges are returned in
    topological (send-time) order.
    """
    rank: dict[int, int] = {}
    edges: list[_Edge] = []
    seen_dst: set[int] = set()
    for op in schedule.sorted_sends():
        if op.dst in seen_dst:
            raise ValueError("not a tree schedule: duplicate destination")
        seen_dst.add(op.dst)
        r = rank.get(op.src, 0)
        rank[op.src] = r + 1
        edges.append(_Edge(parent=op.src, child=op.dst, rank=r))
    return edges


def jittered_makespans(
    schedule: Schedule,
    jitter: float,
    trials: int = 2000,
    seed: int = 0,
) -> np.ndarray:
    """Makespan distribution under exponential latency jitter.

    ``jitter`` is the mean of the exponential noise added to every
    message's latency, expressed as a fraction of ``L`` (0 = the
    deterministic model).  Returns an array of ``trials`` makespans.
    """
    params = schedule.params
    edges = tree_structure(schedule)
    rng = np.random.default_rng(seed)
    procs = schedule.processors()
    arrival = {p: None for p in procs}
    root = next(iter(schedule.initial))
    arrival[root] = np.zeros(trials)
    makespan = np.zeros(trials)
    scale = jitter * params.L
    for edge in edges:
        eps = rng.exponential(scale, size=trials) if scale > 0 else 0.0
        start = arrival[edge.parent] + edge.rank * params.g
        landed = start + 2 * params.o + params.L + eps
        arrival[edge.child] = landed
        makespan = np.maximum(makespan, landed)
    return makespan


def robustness_study(
    params: LogPParams | None = None,
    jitters: tuple[float, ...] = (0.0, 0.1, 0.25, 0.5, 1.0),
    trials: int = 2000,
) -> list[dict]:
    """Mean/p95 makespan of optimal vs baseline trees across jitter levels."""
    if params is None:
        params = LogPParams(P=32, L=12, o=1, g=2)
    schedules = {
        "optimal": optimal_broadcast_schedule(params),
        "binomial": baseline_broadcast("binomial", params),
        "binary": baseline_broadcast("binary", params),
    }
    rows = []
    for jitter in jitters:
        row: dict = {"jitter": jitter}
        for name, schedule in schedules.items():
            spans = jittered_makespans(schedule, jitter, trials=trials, seed=7)
            row[f"{name}_mean"] = round(float(spans.mean()), 1)
            row[f"{name}_p95"] = round(float(np.percentile(spans, 95)), 1)
        rows.append(row)
    return rows


if __name__ == "__main__":  # pragma: no cover
    for row in robustness_study():
        print(row)
