"""Tests for the star-tree construction (large-latency k-item broadcast)."""

import pytest

from repro.core.continuous.schedule import expand
from repro.core.fib import broadcast_time_postal
from repro.core.kitem.bounds import kitem_upper_bound
from repro.core.kitem.star import (
    _near_complete_mapping,
    star_assignment,
    star_fits,
    star_tree,
)
from repro.schedule.analysis import item_completion_times
from repro.sim.machine import replay
from repro.sim.validate import is_single_sending, single_reception_violations


class TestMapping:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8, 14, 30, 48, 101, 200])
    @pytest.mark.parametrize("L", [2, 7, 30])
    def test_properties(self, n, L):
        x = _near_complete_mapping(n, L)
        assert x is not None and len(x) == n - 1
        assert len(set(x)) == n - 1  # distinct letters
        sums = [(j + m) % n for j, m in enumerate(x, start=1)]
        assert len(set(sums)) == n - 1  # distinct sums mod n
        for j, m in enumerate(x, start=1):
            assert m != (L - 1 - j) % n  # avoids the uppercase diagonal

    def test_odd_n_is_affine(self):
        x = _near_complete_mapping(9, 4)
        assert x == [(j + 3) % 9 for j in range(1, 9)]

    def test_n1(self):
        assert _near_complete_mapping(1, 5) == []


class TestStarTree:
    def test_shape(self):
        tree = star_tree(8, 10)
        tree.validate()
        assert tree.root.out_degree == 7
        assert sorted(n.delay for n in tree.leaves()) == list(range(10, 17))

    def test_fits_predicate(self):
        assert star_fits(10, 12)       # B(9, 12) = big, P-2 = 8
        assert not star_fits(20, 3)    # B(19, 3) = 10 < 18
        assert not star_fits(2, 5)


class TestStarAssignment:
    @pytest.mark.parametrize("P,L", [(3, 2), (10, 12), (16, 15), (32, 22), (50, 40)])
    def test_validates(self, P, L):
        a = star_assignment(P, L)
        assert a is not None
        assert a.completion == L + P - 3

    @pytest.mark.parametrize("P,L,k", [(32, 22, 16), (24, 30, 10), (10, 12, 5)])
    def test_expansion_legal_and_bounded(self, P, L, k):
        a = star_assignment(P, L)
        s = expand(a, num_items=k)
        replay(s)
        assert is_single_sending(s)
        assert not single_reception_violations(s)
        done = max(item_completion_times(s, set(range(P))).values())
        assert done == (k - 1) + L + (L + P - 3)
        if star_fits(P, L):
            assert done <= kitem_upper_bound(P, L, k)

    def test_none_for_tiny(self):
        assert star_assignment(2, 5) is None
