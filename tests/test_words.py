"""Tests for legal reception words and the automaton (Section 3.2)."""

import pytest

from repro.core.continuous.relative import uppercase_offset
from repro.core.continuous.words import (
    enumerate_legal_words,
    family_f1,
    family_words,
    is_legal_general_pattern,
    is_legal_pattern,
    is_legal_word,
    word_automaton,
    word_to_str,
)


class TestCollisionRule:
    def test_same_item_detected(self):
        # offsets m1=2 then m2=0 two steps later name the same item
        assert not is_legal_pattern([2, 9, 0])  # period 3: c.., ..a collide?
        # (2 at phase 0, 0 at phase 2: diff 2, (2-0)%3 = 2 -> collision)

    def test_b_then_a_collides(self):
        # b at step t and a at t+1 are the same item
        assert not is_legal_pattern([1, 0])

    def test_constant_highest_letter_legal(self):
        for L in (2, 3, 4, 6):
            for n in (1, 2, 5):
                assert is_legal_pattern([L - 1] * n)

    def test_empty_and_singleton(self):
        assert is_legal_pattern([])
        assert is_legal_pattern([0])
        assert is_legal_pattern([5])


class TestLegalWords:
    def test_paper_h5_block(self):
        # the paper: exactly {cccc, acab, abca, abbb} are legal for r=5, L=3
        words = {word_to_str(w) for w in enumerate_legal_words(5, 3)}
        assert words == {"cccc", "acab", "abca", "abbb"}

    def test_uppercase_collisions_enforced(self):
        # H5 at time t equals c at t+5, b at t+6, a at t+7 (paper's example):
        # so words starting with 'b' or with 'a' second are illegal
        for w in enumerate_legal_words(5, 3):
            assert w[0] != 1  # no 'b' first
            assert w[1] != 0  # no 'a' second

    def test_is_legal_word_checks_length(self):
        assert not is_legal_word(5, (0, 1), 3)

    def test_is_legal_word_checks_alphabet(self):
        assert not is_legal_word(3, (0, 5), 3)

    def test_enumeration_census_restricted(self):
        from collections import Counter

        census = Counter({0: 1, 1: 1, 2: 4})
        words = enumerate_legal_words(5, 3, census=census)
        assert all(
            all(Counter(w)[m] <= census[m] for m in range(3)) for w in words
        )
        assert ("cccc" in {word_to_str(w) for w in words})
        assert ("abbb" not in {word_to_str(w) for w in words})

    def test_counts_grow_with_r(self):
        counts = [len(enumerate_legal_words(r, 3)) for r in range(2, 8)]
        assert counts == sorted(counts)
        assert counts[0] == 2  # {'a', 'c'}


class TestFamilies:
    def test_f1_words_are_legal(self):
        for L in (3, 4, 5, 6):
            for r in range(L - 1, L + 8):
                for w in family_f1(r, L):
                    assert is_legal_word(r, w, L)

    def test_f1_includes_paper_choice(self):
        # a(ca)b = 'acab' for the H5 block
        assert (0, 2, 0, 1) in set(family_f1(5, 3))

    def test_f1_closed_under_appending_b(self):
        # the induction of Section 3.3 appends 'b' to the largest block's word
        for L in (3, 4, 5):
            for r in range(L, L + 6):
                for w in family_f1(r, L):
                    assert is_legal_word(r + 1, w + (1,), L)

    def test_family_words_all_legal(self):
        for L in (3, 4, 5):
            for r in (2, 3, 5, 8):
                for w in family_words(r, L):
                    assert is_legal_word(r, w, L)


class TestGeneralPattern:
    def test_single_uppercase_spacing(self):
        # degree-3 node in a period-3 block (L=3 offsets: R3=5, word 'ab')
        assert is_legal_general_pattern([(5, 3), (0, 0), (1, 0)])

    def test_degree_exceeding_period_rejected(self):
        assert not is_legal_general_pattern([(5, 4), (0, 0), (1, 0)])

    def test_two_uppercase_too_close(self):
        # two internal duties 1 apart but first needs 2 consecutive sends
        assert not is_legal_general_pattern([(9, 2), (8, 2)])

    def test_two_uppercase_spaced_ok(self):
        entries = [(9, 2), (0, 0), (7, 2), (1, 0)]
        # offsets must also be injective-compatible; just check send logic
        result = is_legal_general_pattern(entries)
        assert isinstance(result, bool)

    def test_correctness_still_checked(self):
        # offsets 1 then 0 collide regardless of degrees
        assert not is_legal_general_pattern([(1, 0), (0, 0)])


class TestAutomaton:
    def test_l3_structure(self):
        auto = word_automaton(3)
        # states are 2-letter windows free of internal collisions
        assert all(len(s) == 2 for s in auto.nodes)
        # 'ba' is an illegal window (b then a = same item)
        assert (1, 0) not in auto.nodes

    def test_walks_yield_legal_words(self):
        # every closed walk through the automaton from a start state
        # corresponds to a legal cyclic lowercase pattern
        import networkx as nx

        auto = word_automaton(3)
        for cycle in nx.simple_cycles(auto):
            if len(cycle) < 2:
                continue
            word = tuple(state[-1] for state in cycle)
            # cyclic rotation of a legal word must be collision-free as a
            # pure lowercase pattern
            assert is_legal_pattern(list(word)), word

    def test_start_states_match_paper(self):
        # the paper's legend: legal patterns are ca(...)* and cc* — the
        # start (double-circle) states are exactly 'ca' and 'cc'
        auto = word_automaton(3)
        starts = {d["label"] for s, d in auto.nodes(data=True) if d["start"]}
        assert starts == {"ca", "cc"}

    def test_recipe_reproduces_legal_words_exactly(self):
        # the paper: the three-step walk recipe gives "precisely those
        # words ... that satisfy the second restriction"
        from repro.core.continuous.words import words_from_automaton

        for r in range(2, 9):
            recipe = words_from_automaton(r, 3)
            exact = set(enumerate_legal_words(r, 3))
            assert recipe == exact, f"r={r}"

    def test_recipe_limited_to_L3(self):
        from repro.core.continuous.words import words_from_automaton

        with pytest.raises(ValueError):
            words_from_automaton(4, 4)
