"""High-level collectives API: plan like MPI, execute on the simulator.

Two layers:

* :class:`Communicator` — produces validated *plans* (schedules plus
  metadata) for the full collective vocabulary: ``bcast``, ``kitem_bcast``,
  ``scatter``, ``gather``, ``allgather``, ``reduce``, ``allreduce``,
  ``alltoall`` — each built from the paper's optimal construction and
  replayed on the LogP validator before being returned.

* :class:`VirtualCluster` — executes those plans on actual Python values
  through the :mod:`repro.exec` stack (lowered to per-rank programs and
  run on a real transport, ``inproc`` by default), returning both the
  per-processor results and the cycle-accurate elapsed time.  This is
  the "does it really work" layer: the data movement follows the
  schedule exactly, so a wrong schedule produces wrong data, not just a
  wrong time.

Example::

    from repro.comm import VirtualCluster
    from repro.params import LogPParams

    cluster = VirtualCluster(LogPParams(P=8, L=6, o=2, g=4))
    values, cycles = cluster.bcast("hello", root=3)
    assert values == ["hello"] * 8 and cycles == 24
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.core.all_to_all import (
    all_to_all_personalized_schedule,
    all_to_all_schedule,
    all_to_all_time,
)
from repro.core.combining import simulate_combining
from repro.core.fib import broadcast_time, broadcast_time_postal, fib
from repro.core.kitem.single_sending import single_sending_schedule
from repro.core.single_item import optimal_broadcast_schedule, schedule_from_tree
from repro.core.tree import optimal_tree
from repro.params import LogPParams
from repro.schedule.analysis import completion_time
from repro.schedule.ops import Schedule, SendOp
from repro.sim.machine import replay

if TYPE_CHECKING:
    from repro.exec.run import ExecResult

__all__ = ["Plan", "Communicator", "VirtualCluster"]


@dataclass
class Plan:
    """A validated collective plan."""

    kind: str
    params: LogPParams
    schedule: Schedule
    cycles: int
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        replay(self.schedule)


def _rotate(proc: int, root: int, P: int) -> int:
    """Map logical rank (root-centric) to physical processor id."""
    return (proc + root) % P


class Communicator:
    """Plans optimal collectives for one machine.

    Plans are deterministic and cached per (kind, arguments).
    """

    def __init__(self, params: LogPParams):
        self.params = params
        self._cache: dict[tuple, Plan] = {}

    def _cached(self, key: tuple, build: Callable[[], Plan]) -> Plan:
        if key not in self._cache:
            self._cache[key] = build()
        return self._cache[key]

    # -- one-to-all -------------------------------------------------------

    def bcast(self, root: int = 0) -> Plan:
        """Optimal single-item broadcast from ``root`` (Theorem 2.1)."""
        self._check_root(root)

        def build() -> Plan:
            tree = optimal_tree(self.params)
            P = self.params.P
            mapping = {i: _rotate(i, root, P) for i in range(P)}
            schedule = schedule_from_tree(tree, item=("bcast", root), proc_map=mapping)
            return Plan(
                kind="bcast",
                params=self.params,
                schedule=schedule,
                cycles=broadcast_time(P, self.params),
                meta={"root": root},
            )

        return self._cached(("bcast", root), build)

    def kitem_bcast(self, k: int, root: int = 0) -> Plan:
        """Pipelined k-item broadcast (Theorems 3.6/Cor 3.1, postal model)."""
        self._check_root(root)
        if not self.params.is_postal:
            raise ValueError(
                "k-item broadcast planning follows the paper's postal-model "
                "analysis; call with o=0, g=1 parameters"
            )

        def build() -> Plan:
            base = single_sending_schedule(k, self.params.P, self.params.L)
            P = self.params.P
            schedule = Schedule(
                params=self.params,
                initial={root: {("kbcast", i) for i in range(k)}},
                source_items={("kbcast", i): i for i in range(k)},
            )
            for op in base.sends:
                schedule.add(
                    time=op.time,
                    src=_rotate(op.src, root, P),
                    dst=_rotate(op.dst, root, P),
                    item=("kbcast", op.item),
                )
            return Plan(
                kind="kitem_bcast",
                params=self.params,
                schedule=schedule,
                cycles=completion_time(schedule),
                meta={"root": root, "k": k},
            )

        return self._cached(("kitem_bcast", k, root), build)

    def scatter(self, root: int = 0) -> Plan:
        """Personalized one-to-all: the root streams one item per rank.

        The root is the bottleneck — ``P - 1`` sends at gap ``g`` — so the
        flat schedule is optimal: ``L + 2o + (P-2) g``.
        """
        self._check_root(root)

        def build() -> Plan:
            P = self.params.P
            schedule = Schedule(
                params=self.params,
                initial={root: {("scatter", dst) for dst in range(P) if dst != root}},
            )
            slot = 0
            for dst in range(P):
                if dst == root:
                    continue
                schedule.add(
                    time=slot * self.params.g,
                    src=root,
                    dst=dst,
                    item=("scatter", dst),
                )
                slot += 1
            return Plan(
                kind="scatter",
                params=self.params,
                schedule=schedule,
                cycles=completion_time(schedule),
                meta={"root": root},
            )

        return self._cached(("scatter", root), build)

    # -- all-to-one -------------------------------------------------------

    def gather(self, root: int = 0) -> Plan:
        """All-to-one personalized: the reverse of scatter, same cost."""
        self._check_root(root)

        def build() -> Plan:
            scatter = self.scatter(root)
            span = scatter.cycles
            sends = [
                SendOp(
                    time=span - op.arrival(self.params),
                    src=op.dst,
                    dst=op.src,
                    item=("gather", op.dst),
                )
                for op in scatter.schedule.sends
            ]
            schedule = Schedule(
                params=self.params,
                sends=sorted(sends),
                initial={
                    p: {("gather", p)} for p in range(self.params.P) if p != root
                },
            )
            return Plan(
                kind="gather",
                params=self.params,
                schedule=schedule,
                cycles=completion_time(schedule),
                meta={"root": root},
            )

        return self._cached(("gather", root), build)

    def reduce(self, root: int = 0) -> Plan:
        """All-to-one reduction: the time reversal of optimal broadcast."""
        self._check_root(root)

        def build() -> Plan:
            bcast = optimal_broadcast_schedule(self.params)
            P = self.params.P
            B = broadcast_time(P, self.params)
            sends = [
                SendOp(
                    time=B - op.arrival(self.params),
                    src=_rotate(op.dst, root, P),
                    dst=_rotate(op.src, root, P),
                    item=("red", _rotate(op.dst, root, P)),
                )
                for op in bcast.sends
            ]
            schedule = Schedule(
                params=self.params,
                sends=sorted(sends),
                initial={p: {("red", p)} for p in range(P)},
            )
            return Plan(
                kind="reduce",
                params=self.params,
                schedule=schedule,
                cycles=B,
                meta={"root": root},
            )

        return self._cached(("reduce", root), build)

    # -- all-to-all -------------------------------------------------------

    def allreduce(self) -> Plan:
        """Combining broadcast (Theorem 4.1): all-reduce in reduce time.

        Requires the postal model and ``P = P(T)`` for some ``T`` (the
        algorithm's natural sizes); other sizes fall back to
        reduce-then-broadcast.
        """
        def build() -> Plan:
            P, L = self.params.P, self.params.L
            if self.params.is_postal:
                T = broadcast_time_postal(P, L)
                if fib(L, T) == P and T >= L:
                    run = simulate_combining(T, L)
                    assert run.P == P
                    return Plan(
                        kind="allreduce",
                        params=self.params,
                        schedule=run.schedule,
                        cycles=T,
                        meta={"algorithm": "combining", "T": T},
                    )
            reduce_plan = self.reduce(0)
            bcast_plan = self.bcast(0)
            sends = list(reduce_plan.schedule.sends)
            offset = reduce_plan.cycles
            for op in bcast_plan.schedule.sends:
                sends.append(
                    SendOp(
                        time=offset + op.time,
                        src=op.src,
                        dst=op.dst,
                        item=("allred-bcast",),
                    )
                )
            schedule = Schedule(
                params=self.params,
                sends=sorted(sends),
                initial={p: {("red", p), ("allred-bcast",)} for p in range(self.params.P)},
            )
            return Plan(
                kind="allreduce",
                params=self.params,
                schedule=schedule,
                cycles=completion_time(schedule),
                meta={"algorithm": "reduce+bcast"},
            )

        return self._cached(("allreduce",), build)

    def allgather(self) -> Plan:
        """All-to-all broadcast: the Section 4.1 cyclic schedule."""
        def build() -> Plan:
            schedule = all_to_all_schedule(self.params)
            return Plan(
                kind="allgather",
                params=self.params,
                schedule=schedule,
                cycles=all_to_all_time(self.params),
            )

        return self._cached(("allgather",), build)

    def alltoall(self) -> Plan:
        """All-to-all personalized communication (same cyclic timing)."""
        def build() -> Plan:
            schedule = all_to_all_personalized_schedule(self.params)
            return Plan(
                kind="alltoall",
                params=self.params,
                schedule=schedule,
                cycles=all_to_all_time(self.params),
            )

        return self._cached(("alltoall",), build)

    def _check_root(self, root: int) -> None:
        if not 0 <= root < self.params.P:
            raise ValueError(f"root {root} out of range for P={self.params.P}")

    # -- sub-communicators --------------------------------------------------

    def subset(self, ranks: Sequence[int]) -> tuple["Communicator", dict[int, int]]:
        """A communicator over a subset of ranks (MPI_Comm_split style).

        Returns the sub-communicator (its ranks renumbered ``0..n-1``) and
        the map from sub-rank to this communicator's physical rank; use
        :func:`embed_plan` to lift a sub-plan back to physical ranks.
        """
        ranks = list(dict.fromkeys(ranks))
        if not ranks:
            raise ValueError("a sub-communicator needs at least one rank")
        for r in ranks:
            self._check_root(r)
        sub = Communicator(self.params.with_processors(len(ranks)))
        return sub, {i: r for i, r in enumerate(ranks)}


def embed_plan(
    plan: Plan, mapping: dict[int, int], params: LogPParams | None = None
) -> Schedule:
    """Lift a sub-communicator plan onto the parent's physical ranks.

    ``mapping`` is the sub-rank -> physical-rank map from
    :meth:`Communicator.subset`; ``params`` (optional) re-tags the result
    with the parent machine's parameters.  The lifted schedule is
    re-validated.
    """
    from repro.schedule.transform import remap
    from repro.sim.machine import replay as _replay

    lifted = remap(plan.schedule, mapping)
    if params is not None:
        lifted = Schedule(
            params=params,
            sends=lifted.sends,
            initial=lifted.initial,
            source_items=lifted.source_items,
        )
    _replay(lifted)
    return lifted


class VirtualCluster:
    """Executes collective plans on real Python values.

    A thin front end over :mod:`repro.exec`: every collective lowers
    its plan's schedule to per-rank programs and runs them on a real
    transport (``backend="inproc"`` by default — threads and queues,
    deterministic).  Data strictly follows the plan's messages: each
    send moves the value it names, matched receives deliver it, and
    reductions fold with the user's operator in arrival order — so a
    wrong schedule produces wrong data, not just a wrong time.

    The reported cycle counts still come from the *model* (the plan's
    analysis), never from wall clocks.
    """

    def __init__(
        self,
        params: LogPParams,
        backend: str = "inproc",
        timeout: float = 30.0,
    ):
        self.params = params
        self.comm = Communicator(params)
        self.backend = backend
        self.timeout = timeout

    def _execute(
        self,
        plan: Plan,
        *,
        payloads: dict[int, dict[Any, Any]] | None = None,
        combine: Callable[[Any, Any], Any] | None = None,
        accumulators: dict[int, Any] | None = None,
    ) -> "ExecResult":
        from repro.exec import execute

        return execute(
            plan.schedule,
            transport=self.backend,
            payloads=payloads,
            combine=combine,
            accumulators=accumulators,
            timeout=self.timeout,
        )

    # -- data-movement collectives ----------------------------------------

    def bcast(self, value: Any, root: int = 0) -> tuple[list[Any], int]:
        plan = self.comm.bcast(root)
        item = ("bcast", root)
        result = self._execute(plan, payloads={root: {item: value}})
        results = [result.values[p][item] for p in range(self.params.P)]
        return results, plan.cycles

    def kitem_bcast(
        self, values: Sequence[Any], root: int = 0
    ) -> tuple[list[list[Any]], int]:
        plan = self.comm.kitem_bcast(len(values), root)
        result = self._execute(
            plan,
            payloads={
                root: {("kbcast", i): v for i, v in enumerate(values)}
            },
        )
        ordered = [
            [result.values[p][("kbcast", i)] for i in range(len(values))]
            for p in range(self.params.P)
        ]
        return ordered, plan.cycles

    def scatter(self, values: Sequence[Any], root: int = 0) -> tuple[list[Any], int]:
        if len(values) != self.params.P:
            raise ValueError(f"scatter needs P={self.params.P} values")
        plan = self.comm.scatter(root)
        result = self._execute(
            plan,
            payloads={
                root: {
                    ("scatter", dst): values[dst]
                    for dst in range(self.params.P)
                    if dst != root
                }
            },
        )
        return [
            values[root] if p == root else result.values[p][("scatter", p)]
            for p in range(self.params.P)
        ], plan.cycles

    def gather(self, values: Sequence[Any], root: int = 0) -> tuple[list[Any], int]:
        if len(values) != self.params.P:
            raise ValueError(f"gather needs P={self.params.P} values")
        plan = self.comm.gather(root)
        result = self._execute(
            plan,
            payloads={
                p: {("gather", p): values[p]}
                for p in range(self.params.P)
                if p != root
            },
        )
        root_store = result.values[root]
        return [
            values[p] if p == root else root_store[("gather", p)]
            for p in range(self.params.P)
        ], plan.cycles

    def allgather(self, values: Sequence[Any]) -> tuple[list[list[Any]], int]:
        if len(values) != self.params.P:
            raise ValueError(f"allgather needs P={self.params.P} values")
        plan = self.comm.allgather()
        result = self._execute(
            plan,
            payloads={
                p: {("a2a", p): values[p]} for p in range(self.params.P)
            },
        )
        ordered = [
            [result.values[p][("a2a", q)] for q in range(self.params.P)]
            for p in range(self.params.P)
        ]
        return ordered, plan.cycles

    def alltoall(self, matrix: Sequence[Sequence[Any]]) -> tuple[list[list[Any]], int]:
        P = self.params.P
        if len(matrix) != P or any(len(row) != P for row in matrix):
            raise ValueError(f"alltoall needs a {P}x{P} matrix")
        plan = self.comm.alltoall()
        result = self._execute(
            plan,
            payloads={
                i: {
                    ("p2p", i, j): matrix[i][j] for j in range(P) if j != i
                }
                for i in range(P)
            },
        )
        ordered = [
            [
                matrix[p][p] if q == p else result.values[p][("p2p", q, p)]
                for q in range(P)
            ]
            for p in range(P)
        ]
        return ordered, plan.cycles

    # -- reductions ----------------------------------------------------------

    def reduce(
        self,
        values: Sequence[Any],
        op: Callable[[Any, Any], Any] = lambda a, b: a + b,
        root: int = 0,
    ) -> tuple[Any, int]:
        if len(values) != self.params.P:
            raise ValueError(f"reduce needs P={self.params.P} values")
        plan = self.comm.reduce(root)
        # combine mode: every delivery folds into the receiver's running
        # accumulator in arrival order, every send ships the current
        # value — the execution-side meaning of the reversal schedule
        result = self._execute(
            plan,
            combine=op,
            accumulators={p: values[p] for p in range(self.params.P)},
        )
        return result.values[root], plan.cycles

    def allreduce(
        self,
        values: Sequence[Any],
        op: Callable[[Any, Any], Any] = lambda a, b: a + b,
    ) -> tuple[list[Any], int]:
        P = self.params.P
        if len(values) != P:
            raise ValueError(f"allreduce needs P={P} values")
        plan = self.comm.allreduce()
        if plan.meta.get("algorithm") == "combining":
            # the combining schedule on real data: each message carries
            # the sender's running value at send time, which is exactly
            # combine mode's send-the-accumulator semantics
            result = self._execute(
                plan,
                combine=op,
                accumulators={p: values[p] for p in range(P)},
            )
            return [result.values[p] for p in range(P)], plan.cycles
        total, _ = self.reduce(values, op, root=0)
        results, _ = self.bcast(total, root=0)
        return results, plan.cycles
