"""Text rendering of the block transmission digraph (Figure 3)."""

from __future__ import annotations

import networkx as nx

__all__ = ["render_digraph"]


def _vertex_label(graph: nx.MultiDiGraph, node) -> str:
    if node == "src":
        return "src"
    size = graph.nodes[node]["size"]
    if size == 0:
        return "recv-only(0)"
    return f"{node[1]}:r={size}"


def render_digraph(graph: nx.MultiDiGraph) -> str:
    """One line per edge, thick (active) edges marked ``==>``::

        src          ==> 0:r=9
        0:r=9        --> 0:r=9   (w=3)
        ...
    """
    lines: list[str] = []
    for u, v, data in sorted(
        graph.edges(data=True),
        key=lambda e: (str(e[0]), str(e[1]), e[2]["kind"]),
    ):
        arrow = "==>" if data["kind"] == "active" else "-->"
        weight = "" if data["kind"] == "active" else f"   (w={data['weight']})"
        lines.append(
            f"{_vertex_label(graph, u):<14} {arrow} "
            f"{_vertex_label(graph, v):<14}{weight}"
        )
    return "\n".join(lines)
