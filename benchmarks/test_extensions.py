"""Benchmarks for the library's extensions beyond the paper.

* LogGP long-message segmentation: the k-item machinery applied to the
  paper's natural follow-up model — asserts the pipelining crossover;
* latency-jitter robustness: the optimal tree's advantage survives
  stochastic networks (Monte-Carlo over the tree dependency structure);
* high-level Communicator planning throughput (plan construction is the
  part an MPI library would run at communicator-creation time).
"""

import numpy as np

from repro.comm import Communicator, VirtualCluster
from repro.experiments.robustness import robustness_study
from repro.loggp import LogGPParams, plan_broadcast, segment_sweep
from repro.params import LogPParams, postal


def test_loggp_segmentation(benchmark):
    machine = LogGPParams(P=16, L=20, o=2, g=4, G=1)

    def run():
        return {
            M: plan_broadcast(machine, M, max_segments=48) for M in (16, 256, 4096)
        }

    plans = benchmark(run)
    assert plans[16].segments <= plans[256].segments <= plans[4096].segments
    rows = segment_sweep(machine, 4096, max_segments=48)
    single = next(r["cycles"] for r in rows if r["segments"] == 1)
    assert plans[4096].completion_cycles < single / 2
    print("\nM      segments  seg-bytes  cycles")
    for M, plan in plans.items():
        print(f"{M:<7}{plan.segments:<10}{plan.segment_bytes:<11}{plan.completion_cycles}")


def test_jitter_robustness(benchmark):
    rows = benchmark(
        lambda: robustness_study(
            params=LogPParams(P=32, L=12, o=1, g=2),
            jitters=(0.0, 0.25, 1.0),
            trials=1500,
        )
    )
    print("\njitter  opt-mean  opt-p95  bino-mean  bino-p95")
    for row in rows:
        print(f"{row['jitter']:<8}{row['optimal_mean']:<10}{row['optimal_p95']:<9}"
              f"{row['binomial_mean']:<11}{row['binomial_p95']}")
        # the optimal tree's lead survives jitter up to L itself
        assert row["optimal_mean"] < row["binomial_mean"]


def test_communicator_planning(benchmark):
    def run():
        comm = Communicator(postal(P=9, L=3))
        return (
            comm.bcast().cycles,
            comm.reduce().cycles,
            comm.allreduce().cycles,
            comm.allgather().cycles,
            comm.kitem_bcast(6).cycles,
        )

    bcast, reduce_, allreduce, allgather, kitem = benchmark(run)
    assert bcast == reduce_ == 7  # B(9) for L=3 (f_7 = 9)
    assert allreduce == 7  # combining: allreduce == reduce!
    assert allgather == 3 + 7  # L + (P-2)g
    assert kitem == 3 + 7 + 5  # L + B(P-1)... B(8)=7 -> 15

    cluster = VirtualCluster(postal(P=9, L=3))
    results, cycles = cluster.allreduce(list(range(9)))
    assert results == [36] * 9 and cycles == 7
