"""Baseline k-item broadcast strategies (postal model).

The strategies a practitioner would reach for before reading the paper:

* **repeated optimal broadcast** — run the single-item optimum ``k``
  times back to back: time ``k * B(P)`` (no pipelining across items);
* **staggered binomial pipeline** — per-item binomial trees with a fixed
  processor assignment, items staggered far enough apart that no
  processor's sends collide: time ``(k-1) * stagger + binomial``.  This
  is the flavor of pipelining whose running time grows like
  ``k * ceil(log2 P)`` — the gap to the paper's ``B + 2L + k - 2`` is the
  headline improvement;
* **scatter + ring allgather** — the classic large-message MPI approach:
  deal the items round-robin to the ``P - 1`` receivers, then circulate
  along a ring.

All return validated :class:`~repro.schedule.ops.Schedule` objects.
"""

from __future__ import annotations

from repro.baselines.trees import binomial_tree_schedule
from repro.core.single_item import optimal_broadcast_schedule
from repro.params import LogPParams, postal
from repro.schedule.ops import Schedule, SendOp

__all__ = [
    "repeated_broadcast_schedule",
    "staggered_binomial_schedule",
    "scatter_allgather_schedule",
]


def repeated_broadcast_schedule(k: int, P: int, L: int) -> Schedule:
    """``k`` sequential optimal single-item broadcasts: time ``k * B(P)``.

    Each item's broadcast starts only after the previous item has reached
    everyone (the "no pipelining" strawman).
    """
    params = postal(P=P, L=L)
    one = optimal_broadcast_schedule(params)
    span = max((op.arrival(params) for op in one.sends), default=0)
    schedule = Schedule(
        params=params,
        initial={0: set(range(k))},
        source_items={i: 0 for i in range(k)},
    )
    for i in range(k):
        for op in one.sends:
            schedule.add(time=i * span + op.time, src=op.src, dst=op.dst, item=i)
    return schedule


def staggered_binomial_schedule(k: int, P: int, L: int) -> Schedule:
    """Per-item binomial trees, pipelined with a collision-free stagger.

    With the identity processor assignment, a processor's sends for one
    item span at most ``max_degree`` consecutive steps, so launching a new
    item every ``max_degree`` steps keeps every processor's send slots
    disjoint.  Time: ``(k-1) * max_degree + binomial completion``.
    """
    params = postal(P=P, L=L)
    one = binomial_tree_schedule(params)
    degree: dict[int, int] = {}
    for op in one.sends:
        degree[op.src] = degree.get(op.src, 0) + 1
    stagger = max(degree.values(), default=1)
    schedule = Schedule(
        params=params,
        initial={0: set(range(k))},
        source_items={i: 0 for i in range(k)},
    )
    for i in range(k):
        for op in one.sends:
            schedule.add(
                time=i * stagger + op.time, src=op.src, dst=op.dst, item=i
            )
    return schedule


def scatter_allgather_schedule(k: int, P: int, L: int) -> Schedule:
    """Scatter the ``k`` items over the ``P - 1`` receivers, then ring.

    Phase 1 (scatter): the source sends item ``i`` to processor
    ``1 + (i mod (P-1))`` at step ``i``.  Phase 2 (ring allgather): once a
    processor holds an item it forwards it around the ring
    ``1 -> 2 -> ... -> P-1 -> 1``, one hop per free step.  Completion is
    roughly ``k + (P-2) * ceil(k / (P-1)) * ...`` — measured, not closed
    form; the point of the baseline is its shape (good for ``k >> P``,
    poor for small ``k``).
    """
    if P < 3:
        return repeated_broadcast_schedule(k, P, L)
    params = postal(P=P, L=L)
    ring = list(range(1, P))
    nxt = {p: ring[(j + 1) % len(ring)] for j, p in enumerate(ring)}
    schedule = Schedule(
        params=params,
        initial={0: set(range(k))},
        source_items={i: 0 for i in range(k)},
    )
    # (availability step, proc, item, hops remaining)
    pending: list[tuple[int, int, int, int]] = []
    booked: set[tuple[int, int]] = set()  # (proc, step) reception slots
    for i in range(k):
        owner = 1 + (i % (P - 1))
        schedule.add(time=i, src=0, dst=owner, item=i)
        booked.add((owner, i + L))
        pending.append((i + L, owner, i, P - 2))
    next_free: dict[int, int] = {p: 0 for p in range(P)}
    while pending:
        pending.sort()
        avail, proc, item, hops = pending.pop(0)
        if hops == 0:
            continue
        dst = nxt[proc]
        send = max(avail, next_free[proc])
        while (dst, send + L) in booked:
            send += 1
        next_free[proc] = send + 1
        booked.add((dst, send + L))
        schedule.add(time=send, src=proc, dst=dst, item=item)
        pending.append((send + L, dst, item, hops - 1))
    return schedule
