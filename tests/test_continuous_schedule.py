"""Tests for continuous-broadcast schedule expansion."""

import pytest

from repro.core.continuous.assignment import solve, solve_instance
from repro.core.continuous.relative import instance_for
from repro.core.continuous.schedule import (
    GBlock,
    GeneralAssignment,
    continuous_delay_lower_bound,
    expand,
    expand_assignment,
    general_form,
)
from repro.core.fib import reachable_postal
from repro.schedule.analysis import item_delays
from repro.sim.machine import replay
from repro.sim.validate import is_single_sending, single_reception_violations


def check_continuous(assignment_t, L, num_items):
    """Expand, replay and return the set of per-item delays."""
    a = solve(assignment_t, L) if isinstance(assignment_t, int) else assignment_t
    assert a is not None
    schedule = expand_assignment(a, num_items=num_items)
    replay(schedule)
    assert not single_reception_violations(schedule)
    assert is_single_sending(schedule)
    P = a.num_processors + 1
    delays = item_delays(schedule, procs=set(range(1, P)))
    return set(delays.values())


class TestGeneralForm:
    def test_fig2_conversion(self):
        a = solve_instance(instance_for(7, 3))
        g = general_form(a)
        g.validate()
        assert g.completion == 7 and g.delay == 10
        assert sorted(b.size for b in g.blocks) == [1, 2, 5]

    def test_gblock_word_length(self):
        with pytest.raises(ValueError):
            GBlock(upper_delay=0, size=3, word=(5,))


class TestExpansion:
    def test_fig2_delays_optimal(self):
        a = solve_instance(instance_for(7, 3))
        delays = check_continuous(a, 3, 8)
        assert delays == {10}  # L + B(P-1) for every item

    @pytest.mark.parametrize("L,t", [(3, 7), (3, 11), (4, 9), (5, 12)])
    def test_delay_equals_L_plus_t(self, L, t):
        a = solve(t, L)
        if a is None:
            pytest.skip(f"I({t}) unsolvable for L={L}")
        delays = check_continuous(a, L, 5)
        assert delays == {L + t}

    def test_matches_lower_bound(self):
        a = solve(7, 3)
        P = a.num_processors + 1
        assert a.delay == continuous_delay_lower_bound(P, 3)

    def test_every_processor_every_item(self):
        a = solve_instance(instance_for(7, 3))
        schedule = expand_assignment(a, num_items=4)
        received = {(op.dst, op.item) for op in schedule.sends}
        for p in range(1, 10):
            for item in range(4):
                assert (p, item) in received

    def test_source_sends_item_i_at_step_i(self):
        a = solve_instance(instance_for(7, 3))
        schedule = expand_assignment(a, num_items=5)
        source_sends = sorted(
            (op.time, op.item) for op in schedule.sends if op.src == 0
        )
        assert source_sends == [(i, i) for i in range(5)]

    def test_single_item_window(self):
        a = solve_instance(instance_for(7, 3))
        delays = check_continuous(a, 3, 1)
        assert delays == {10}

    def test_rejects_zero_items(self):
        a = solve_instance(instance_for(7, 3))
        with pytest.raises(ValueError):
            expand_assignment(a, num_items=0)


class TestSteadyState:
    def test_interior_steps_fully_loaded(self):
        # in steady state every non-source processor receives every step
        a = solve_instance(instance_for(7, 3))
        schedule = expand_assignment(a, num_items=12)
        arrivals: dict[int, set[int]] = {}
        for op in schedule.sends:
            arrivals.setdefault(op.arrival(schedule.params), set()).add(op.dst)
        # steady window: steps L+t .. L+num_items-1 (all trees active)
        for step in range(3 + 7, 3 + 12 - 1):
            assert arrivals[step] == set(range(1, 10)), step
