"""Corpus regression: known-bad schedules reproduce pinned diagnostics.

Each ``tests/data/lint_corpus/<name>.json`` is a checked-in schedule
with a deliberately planted defect (or, for ``clean``, none); the
``expected.json`` manifest pins exactly which rule ids must fire.  The
corpus locks the engine's verdicts across refactors: a rule that stops
firing on its planted defect — or starts firing on the clean canary —
fails here, not in production.

The files are byte-stable (the serializer sorts every ambient order),
so ``git diff`` on this directory is always meaningful.
"""

import json
from pathlib import Path

import pytest

from repro.analyze import Severity, lint_schedule
from repro.schedule.serialize import load_schedule, schedule_to_json

CORPUS = Path(__file__).parent / "data" / "lint_corpus"
EXPECTED = json.loads((CORPUS / "expected.json").read_text())

# defects the corpus plants, by the rule that must catch them
ERROR_CASES = {"non_causal", "self_send", "negative_time", "uncovered"}


def corpus_names():
    return sorted(EXPECTED)


def test_manifest_covers_exactly_the_corpus_files():
    files = {p.stem for p in CORPUS.glob("*.json")} - {"expected"}
    assert files == set(EXPECTED)


def test_every_rule_is_exercised_by_some_corpus_schedule():
    fired = {rule for ids in EXPECTED.values() for rule in ids}
    assert fired == {f"SCHED{i:03d}" for i in range(1, 11)}


@pytest.mark.parametrize("name", corpus_names())
def test_pinned_rule_ids(name):
    report = lint_schedule(load_schedule(CORPUS / f"{name}.json"))
    assert report.rule_ids() == EXPECTED[name]


@pytest.mark.parametrize("name", corpus_names())
def test_serialization_is_byte_stable(name):
    path = CORPUS / f"{name}.json"
    sched = load_schedule(path)
    assert schedule_to_json(sched) == path.read_text().rstrip("\n")


@pytest.mark.parametrize("name", corpus_names())
def test_canonical_serialization_is_byte_stable(name):
    # canonical=True is the plan cache's content-hash form: sorted keys,
    # compact separators, same data — pinned here so a serializer change
    # that would silently invalidate every cached blob fails loudly
    path = CORPUS / f"{name}.json"
    canonical = schedule_to_json(load_schedule(path), canonical=True)
    assert canonical == json.dumps(
        json.loads(path.read_text()), sort_keys=True, separators=(",", ":")
    )
    # and it parses back to the same document
    assert json.loads(canonical) == json.loads(path.read_text())


def test_clean_canary_is_fully_clean():
    report = lint_schedule(load_schedule(CORPUS / "clean.json"))
    assert len(report) == 0
    assert report.max_severity is None


@pytest.mark.parametrize("name", sorted(ERROR_CASES))
def test_error_cases_reach_error_severity(name):
    report = lint_schedule(load_schedule(CORPUS / f"{name}.json"))
    assert report.max_severity is Severity.ERROR or name == "uncovered"
    if name != "uncovered":
        assert report.errors


def test_uncovered_reports_acausal_participant():
    report = lint_schedule(load_schedule(CORPUS / "uncovered.json"))
    assert [d.rule for d in report.errors] == ["SCHED001"]
