"""Transports: move envelopes between ranks, nothing more.

Three implementations of the one-method-deep :class:`Transport`
protocol:

* ``inproc`` — one thread + one queue per rank, always available,
  deterministic results (payload folds happen in program order, so
  thread scheduling cannot change any outcome).
* ``mp`` — real OS processes.  Ranks are multiplexed onto a small
  worker pool (one inbound ``multiprocessing.Queue`` per worker, a
  dispatcher thread routing to rank-local queues), so ``P`` can exceed
  the core count by orders of magnitude.
* ``mpi`` — one program per MPI rank via mpi4py; constructing it
  without mpi4py raises :class:`TransportUnavailable` so callers and
  test suites skip cleanly.

Rank semantics (instruction walk, matched receives, folds) live in
:mod:`repro.exec.engine`; a hung execution surfaces as one
:class:`ExecTimeout` whose message reuses the simulator's blocked-rank
formatting (:func:`repro.sim.machine.format_blocked`).
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
import time
from typing import Any, Callable, Iterable, Protocol

from repro.exec.engine import Envelope, RankBlocked, RankOutcome, run_rank
from repro.exec.errors import ExecError, ExecTimeout, TransportUnavailable
from repro.exec.program import ExecPlan
from repro.sim.machine import format_blocked, format_rank_set

__all__ = [
    "Transport",
    "TransportRun",
    "InprocTransport",
    "MpTransport",
    "MpiTransport",
    "get_transport",
    "available_transports",
]

# extra wall-clock slack the parent allows workers beyond the rank
# deadline before declaring the pool unresponsive
_GRACE_S = 10.0

Combine = Callable[[Any, Any], Any]


class TransportRun:
    """Raw transport output: per-rank delivered pairs + final values."""

    __slots__ = ("delivered", "values")

    def __init__(
        self,
        delivered: dict[int, list[tuple[int, int]]],
        values: dict[int, Any],
    ) -> None:
        self.delivered = delivered
        self.values = values


class Transport(Protocol):
    """Executes every rank program of a plan and reports the outcome."""

    name: str

    def run(
        self,
        plan: ExecPlan,
        *,
        stores: dict[int, dict[int, Any]],
        combine: Combine | None,
        accumulators: dict[int, Any],
        reduce_op: Combine | None,
        timeout: float,
    ) -> TransportRun: ...


def _raise_blocked(
    plan: ExecPlan,
    blocked: list[RankBlocked],
    transport: str,
    timeout: float,
) -> None:
    blocked = sorted(blocked, key=lambda b: b.rank)
    first = blocked[0]
    first_item = plan.table.decode(first.code)
    waiters = [
        (
            b.rank,
            f"rank {b.rank} waits to receive item "
            f"{plan.table.decode(b.code)!r} from rank {b.src} "
            f"(instruction {b.instr + 1}/{b.total})",
        )
        for b in blocked
    ]
    raise ExecTimeout(
        format_blocked(
            f"timeout: {transport} transport hit the {timeout:.1f}s "
            f"deadline; earliest blocked receive: rank {first.rank} <- "
            f"rank {first.src}, item {first_item!r}",
            waiters,
            total_ranks=plan.num_ranks,
        )
    )


class _QueueEndpoint:
    """Inproc endpoint: direct put into the destination rank's queue."""

    __slots__ = ("_inboxes", "_inbox")

    def __init__(
        self, inboxes: dict[int, "queue.Queue[Envelope]"], rank: int
    ) -> None:
        self._inboxes = inboxes
        self._inbox = inboxes[rank]

    def send(self, dst: int, envelope: Envelope) -> None:
        self._inboxes[dst].put(envelope)

    def recv(self, timeout: float) -> Envelope | None:
        try:
            return self._inbox.get(timeout=timeout)
        except queue.Empty:
            return None


def _run_rank_group(
    plan: ExecPlan,
    ranks: Iterable[int],
    endpoint_of: Callable[[int], Any],
    *,
    stores: dict[int, dict[int, Any]],
    combine: Combine | None,
    accumulators: dict[int, Any],
    reduce_op: Combine | None,
    deadline: float,
) -> tuple[dict[int, RankOutcome], list[RankBlocked], dict[int, Exception]]:
    """Run a set of rank programs on threads; collect the outcomes.

    Shared helper for the inproc transport (all ranks) and each mp
    worker (its slice of ranks).  Dict writes are per-key from distinct
    threads, so no locking is needed.
    """
    outcomes: dict[int, RankOutcome] = {}
    blocked: list[RankBlocked] = []
    failures: dict[int, Exception] = {}

    def target(rank: int) -> None:
        try:
            outcomes[rank] = run_rank(
                rank,
                plan.program(rank),
                endpoint_of(rank),
                store=stores.get(rank, {}),
                combine=combine,
                accumulator=accumulators.get(rank),
                reduce_op=reduce_op,
                deadline=deadline,
            )
        except RankBlocked as exc:
            blocked.append(exc)
        except Exception as exc:  # pragma: no cover - defensive
            failures[rank] = exc

    threads = [
        threading.Thread(target=target, args=(rank,), daemon=True)
        for rank in ranks
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=max(deadline - time.monotonic(), 0.0) + 2.0)
    return outcomes, blocked, failures


class InprocTransport:
    """Threads + queues in this process; the always-available default."""

    name = "inproc"

    def run(
        self,
        plan: ExecPlan,
        *,
        stores: dict[int, dict[int, Any]],
        combine: Combine | None,
        accumulators: dict[int, Any],
        reduce_op: Combine | None,
        timeout: float,
    ) -> TransportRun:
        deadline = time.monotonic() + timeout
        inboxes: dict[int, "queue.Queue[Envelope]"] = {
            rank: queue.Queue() for rank in plan.programs
        }
        outcomes, blocked, failures = _run_rank_group(
            plan,
            sorted(plan.programs),
            lambda rank: _QueueEndpoint(inboxes, rank),
            stores=stores,
            combine=combine,
            accumulators=accumulators,
            reduce_op=reduce_op,
            deadline=deadline,
        )
        if failures:
            rank = min(failures)
            raise ExecError(
                f"inproc transport: rank {rank} failed: {failures[rank]}"
            ) from failures[rank]
        if blocked:
            _raise_blocked(plan, blocked, self.name, timeout)
        return TransportRun(
            delivered={r: o.delivered for r, o in outcomes.items()},
            values={r: o.value for r, o in outcomes.items()},
        )


def _mp_context() -> Any:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0]
    )


class _MpEndpoint:
    """mp endpoint: cross-worker sends go over the destination worker's
    inbound process queue, tagged with the destination rank."""

    __slots__ = ("_rank", "_worker_queues", "_rank_to_worker", "_local")

    def __init__(
        self,
        rank: int,
        worker_queues: list[Any],
        rank_to_worker: dict[int, int],
        local: "queue.Queue[Envelope]",
    ) -> None:
        self._rank = rank
        self._worker_queues = worker_queues
        self._rank_to_worker = rank_to_worker
        self._local = local

    def send(self, dst: int, envelope: Envelope) -> None:
        self._worker_queues[self._rank_to_worker[dst]].put((dst, envelope))

    def recv(self, timeout: float) -> Envelope | None:
        try:
            return self._local.get(timeout=timeout)
        except queue.Empty:
            return None


def _mp_worker_main(
    worker_id: int,
    ranks: list[int],
    plan: ExecPlan,
    rank_to_worker: dict[int, int],
    worker_queues: list[Any],
    result_queue: Any,
    stores: dict[int, dict[int, Any]],
    combine: Combine | None,
    accumulators: dict[int, Any],
    reduce_op: Combine | None,
    timeout: float,
    fault_ranks: frozenset[int],
) -> None:
    """Entry point of one mp worker process: run its rank slice on
    threads, route inbound envelopes via a dispatcher thread, and report
    one ``(worker_id, status, payload)`` result."""
    if any(rank in fault_ranks for rank in ranks):
        os._exit(17)  # fault injection for the failure-path tests
    deadline = time.monotonic() + timeout
    inbox = worker_queues[worker_id]
    local: dict[int, "queue.Queue[Envelope]"] = {
        rank: queue.Queue() for rank in ranks
    }

    def dispatch() -> None:
        # daemon thread: swallow queue teardown noise at process exit
        try:
            while True:
                message = inbox.get()
                if message is None:
                    return
                dst, envelope = message
                local[dst].put(envelope)
        except (EOFError, OSError, ValueError, TypeError):
            return

    dispatcher = threading.Thread(target=dispatch, daemon=True)
    dispatcher.start()
    outcomes, blocked, failures = _run_rank_group(
        plan,
        ranks,
        lambda rank: _MpEndpoint(
            rank, worker_queues, rank_to_worker, local[rank]
        ),
        stores=stores,
        combine=combine,
        accumulators=accumulators,
        reduce_op=reduce_op,
        deadline=deadline,
    )
    inbox.put(None)
    if failures:
        rank = min(failures)
        result_queue.put(
            (worker_id, "error", f"rank {rank} failed: {failures[rank]}")
        )
    elif blocked:
        result_queue.put(
            (
                worker_id,
                "blocked",
                [(b.rank, b.instr, b.total, b.src, b.code) for b in blocked],
            )
        )
    else:
        result_queue.put(
            (
                worker_id,
                "ok",
                {r: (o.delivered, o.value) for r, o in outcomes.items()},
            )
        )


class MpTransport:
    """Real OS processes; ranks multiplexed onto a small worker pool.

    ``workers`` bounds the pool (default: core count, capped at 8).
    With the ``fork`` start method (Linux) arbitrary ``combine``
    callables work; under ``spawn`` they must be picklable.
    """

    name = "mp"

    def __init__(
        self, workers: int | None = None, fault_ranks: Iterable[int] = ()
    ) -> None:
        self.workers = workers
        self.fault_ranks = frozenset(fault_ranks)

    def run(
        self,
        plan: ExecPlan,
        *,
        stores: dict[int, dict[int, Any]],
        combine: Combine | None,
        accumulators: dict[int, Any],
        reduce_op: Combine | None,
        timeout: float,
    ) -> TransportRun:
        ranks = sorted(plan.programs)
        if not ranks:
            return TransportRun(delivered={}, values={})
        pool = self.workers or min(len(ranks), os.cpu_count() or 2, 8)
        pool = max(1, min(pool, len(ranks)))
        groups = [list(ranks[w::pool]) for w in range(pool)]
        rank_to_worker = {
            rank: w for w, group in enumerate(groups) for rank in group
        }
        ctx = _mp_context()
        worker_queues = [ctx.Queue() for _ in range(pool)]
        result_queue = ctx.Queue()
        procs = [
            ctx.Process(
                target=_mp_worker_main,
                args=(
                    w,
                    groups[w],
                    plan,
                    rank_to_worker,
                    worker_queues,
                    result_queue,
                    {r: stores[r] for r in groups[w] if r in stores},
                    combine,
                    {r: accumulators[r] for r in groups[w] if r in accumulators},
                    reduce_op,
                    timeout,
                    self.fault_ranks,
                ),
                daemon=True,
            )
            for w in range(pool)
        ]
        for proc in procs:
            proc.start()
        try:
            results = self._collect(procs, groups, result_queue, timeout)
        finally:
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
            for proc in procs:
                proc.join(timeout=2.0)
        errors = [p for _, (s, p) in sorted(results.items()) if s == "error"]
        if errors:
            raise ExecError(f"mp transport: {errors[0]}")
        blocked = [
            RankBlocked(*info)
            for _, (status, payload) in sorted(results.items())
            if status == "blocked"
            for info in payload
        ]
        if blocked:
            _raise_blocked(plan, blocked, self.name, timeout)
        delivered: dict[int, list[tuple[int, int]]] = {}
        values: dict[int, Any] = {}
        for _, (_status, payload) in sorted(results.items()):
            for rank, (dlv, value) in payload.items():
                delivered[rank] = dlv
                values[rank] = value
        return TransportRun(delivered=delivered, values=values)

    def _collect(
        self,
        procs: list[Any],
        groups: list[list[int]],
        result_queue: Any,
        timeout: float,
    ) -> dict[int, tuple[str, Any]]:
        results: dict[int, tuple[str, Any]] = {}
        deadline = time.monotonic() + timeout + _GRACE_S
        while len(results) < len(procs):
            try:
                worker_id, status, payload = result_queue.get(timeout=0.25)
                results[worker_id] = (status, payload)
                continue
            except queue.Empty:
                pass
            for w, proc in enumerate(procs):
                if (
                    w not in results
                    and not proc.is_alive()
                    and proc.exitcode not in (0, None)
                ):
                    # drain any result that raced the exit check
                    try:
                        worker_id, status, payload = result_queue.get(
                            timeout=0.25
                        )
                        results[worker_id] = (status, payload)
                        continue
                    except queue.Empty:
                        pass
                    raise ExecError(
                        f"mp transport: worker {w} hosting ranks "
                        f"{format_rank_set(groups[w])} exited with code "
                        f"{proc.exitcode} before completing; remaining "
                        f"workers were terminated"
                    )
            if time.monotonic() > deadline:
                raise ExecTimeout(
                    f"timeout: mp transport workers unresponsive "
                    f"{_GRACE_S:.0f}s past the {timeout:.1f}s deadline; "
                    f"terminating the pool"
                )
        return results


class MpiTransport:
    """One program per MPI rank via mpi4py (optional dependency).

    Intended to run under ``mpiexec``: every process executes its own
    rank's program against ``MPI.COMM_WORLD`` and rank 0 gathers the
    full result.  Constructing this transport without mpi4py installed
    raises :class:`TransportUnavailable` so callers skip cleanly.
    """

    name = "mpi"

    def __init__(self) -> None:
        try:
            from mpi4py import MPI
        except ImportError as exc:
            raise TransportUnavailable(
                "mpi transport requires mpi4py, which is not installed; "
                "use --transport inproc or mp"
            ) from exc
        self._mpi = MPI

    def run(
        self,
        plan: ExecPlan,
        *,
        stores: dict[int, dict[int, Any]],
        combine: Combine | None,
        accumulators: dict[int, Any],
        reduce_op: Combine | None,
        timeout: float,
    ) -> TransportRun:
        mpi = self._mpi
        comm = mpi.COMM_WORLD
        world = comm.Get_size()
        needed = max(plan.programs, default=-1) + 1
        if world < needed:
            raise ExecError(
                f"mpi transport: plan spans ranks 0-{needed - 1} but "
                f"COMM_WORLD has only {world} process(es); launch with "
                f"mpiexec -n {needed}"
            )
        rank = comm.Get_rank()
        deadline = time.monotonic() + timeout
        outcome: tuple[str, Any]
        if rank in plan.programs:
            endpoint = _MpiEndpoint(comm, mpi)
            try:
                result = run_rank(
                    rank,
                    plan.program(rank),
                    endpoint,
                    store=stores.get(rank, {}),
                    combine=combine,
                    accumulator=accumulators.get(rank),
                    reduce_op=reduce_op,
                    deadline=deadline,
                )
                outcome = ("ok", (result.delivered, result.value))
            except RankBlocked as exc:
                outcome = (
                    "blocked",
                    (exc.rank, exc.instr, exc.total, exc.src, exc.code),
                )
        else:
            outcome = ("idle", None)
        gathered = comm.gather((rank, outcome), root=0)
        if rank != 0:
            return TransportRun(delivered={}, values={})
        blocked = [
            RankBlocked(*payload)
            for _, (status, payload) in gathered
            if status == "blocked"
        ]
        if blocked:
            _raise_blocked(plan, blocked, self.name, timeout)
        delivered = {
            r: payload[0]
            for r, (status, payload) in gathered
            if status == "ok"
        }
        values = {
            r: payload[1]
            for r, (status, payload) in gathered
            if status == "ok"
        }
        return TransportRun(delivered=delivered, values=values)


class _MpiEndpoint:
    """mpi4py endpoint: tagged point-to-point with polling receive."""

    __slots__ = ("_comm", "_mpi")

    def __init__(self, comm: Any, mpi: Any) -> None:
        self._comm = comm
        self._mpi = mpi

    def send(self, dst: int, envelope: Envelope) -> None:
        self._comm.send(envelope, dest=dst, tag=0)

    def recv(self, timeout: float) -> Envelope | None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self._comm.iprobe(source=self._mpi.ANY_SOURCE, tag=0):
                return self._comm.recv(source=self._mpi.ANY_SOURCE, tag=0)
            time.sleep(0.002)
        return None


_TRANSPORTS: dict[str, type] = {
    "inproc": InprocTransport,
    "mp": MpTransport,
    "mpi": MpiTransport,
}


def get_transport(name: str, **options: Any) -> Transport:
    """Resolve a transport by name; one-line errors for unknown names,
    :class:`TransportUnavailable` for known-but-absent backends."""
    cls = _TRANSPORTS.get(name)
    if cls is None:
        known = ", ".join(sorted(_TRANSPORTS))
        raise ValueError(f"unknown transport {name!r} (known: {known})")
    transport: Transport = cls(**options)
    return transport


def available_transports() -> list[str]:
    """Transport names constructible in this environment, in preference
    order (``mpi`` drops out when mpi4py is absent)."""
    out: list[str] = []
    for name in ("inproc", "mp", "mpi"):
        try:
            get_transport(name)
        except TransportUnavailable:
            continue
        out.append(name)
    return out
