"""Baseline single-item broadcast trees.

The classic structures MPI implementations use, expressed in the same
schedule IR as the optimal algorithms so the comparison is purely
algorithmic:

* **flat** — the root sends to everyone itself (optimal for tiny ``P`` or
  huge ``g``, terrible otherwise);
* **chain** — a linear pipeline (latency-dominated);
* **binary** — balanced binary tree, every internal node relays to two
  children;
* **binomial** — recursive doubling: the root hands off subtrees of
  halving sizes (optimal when ``L + 2o`` equals ``g``, i.e. when the
  universal tree degenerates to binomial, but suboptimal in general).

Each builder returns a :class:`~repro.schedule.ops.Schedule`; timings
follow the greedy rule "send your next message as soon as the gap
allows", so differences against ``B(P)`` measure tree *shape* only.
"""

from __future__ import annotations

from repro.params import LogPParams
from repro.schedule.ops import Schedule

__all__ = [
    "flat_schedule",
    "chain_schedule",
    "binary_tree_schedule",
    "binomial_tree_schedule",
    "baseline_broadcast",
    "baseline_reduction",
]


def flat_schedule(params: LogPParams) -> Schedule:
    """Root sends to processors ``1 .. P-1`` back to back."""
    schedule = Schedule(params=params)
    for i in range(1, params.P):
        schedule.add(time=(i - 1) * params.g, src=0, dst=i, item=0)
    return schedule


def chain_schedule(params: LogPParams) -> Schedule:
    """Linear pipeline ``0 -> 1 -> ... -> P-1``."""
    schedule = Schedule(params=params)
    available = 0
    for i in range(1, params.P):
        schedule.add(time=available, src=i - 1, dst=i, item=0)
        available += params.send_cost
    return schedule


def binary_tree_schedule(params: LogPParams) -> Schedule:
    """Balanced binary tree: node ``i`` relays to ``2i+1`` and ``2i+2``."""
    schedule = Schedule(params=params)
    available = {0: 0}
    for i in range(params.P):
        base = available.get(i)
        if base is None:
            continue
        for j, child in enumerate((2 * i + 1, 2 * i + 2)):
            if child < params.P:
                send = base + j * params.g
                schedule.add(time=send, src=i, dst=child, item=0)
                available[child] = send + params.send_cost
    return schedule


def binomial_tree_schedule(params: LogPParams) -> Schedule:
    """Binomial (recursive-doubling) broadcast.

    At each round the informed half hands the item to the uninformed
    half; processor ``i``'s children are ``i + 2^j`` for decreasing
    subtree sizes.  Sends are issued greedily ``g`` apart, so this
    coincides with the optimal tree exactly when ``L + 2o`` is such that
    the universal tree is binomial (e.g. the postal model with ``L = 1``).
    """
    P = params.P
    schedule = Schedule(params=params)
    span = 1
    while span < P:
        span *= 2

    def expand(root: int, size: int, available: int) -> None:
        # children get subtrees of sizes size/2, size/4, ... (largest first)
        sub = size // 2
        j = 0
        while sub >= 1:
            child = root + sub
            if child < P:
                send = available + j * params.g
                schedule.add(time=send, src=root, dst=child, item=0)
                expand(child, sub, send + params.send_cost)
                j += 1
            sub //= 2

    expand(0, span, 0)
    return schedule


def baseline_broadcast(name: str, params: LogPParams) -> Schedule:
    """Dispatch by baseline name (``flat``/``chain``/``binary``/``binomial``)."""
    builders = {
        "flat": flat_schedule,
        "chain": chain_schedule,
        "binary": binary_tree_schedule,
        "binomial": binomial_tree_schedule,
    }
    try:
        return builders[name](params)
    except KeyError:
        raise ValueError(f"unknown baseline {name!r}; options: {sorted(builders)}")


def baseline_reduction(name: str, params: LogPParams) -> Schedule:
    """The named baseline tree, time-reversed into an all-to-one reduction.

    Exactly the paper's §4.2 correspondence, applied to the baselines the
    same way :func:`repro.core.combining.reduction_schedule` applies it
    to the optimal tree: a verified ``reverse{tag=red}`` pass with every
    processor initially holding its own partial, so baseline reduction
    times equal baseline broadcast times tree-for-tree.
    """
    from repro.passes import PassManager, ReversePass

    broadcast = baseline_broadcast(name, params)
    manager = PassManager(
        [
            ReversePass(
                tag="red",
                initial={p: {("red", p)} for p in range(params.P)},
            )
        ],
        verify="errors",
    )
    return manager.run(broadcast)
