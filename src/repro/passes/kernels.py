"""Vectorized columnar kernels behind the schedule passes.

Every kernel consumes a schedule's cached
:class:`~repro.schedule.columnar.ScheduleColumns` view and emits a fresh
array-backed :class:`~repro.schedule.ops.Schedule` via
:meth:`Schedule.from_arrays` — no ``SendOp`` object is ever constructed,
so a pipeline over the P=1024 all-to-all (~1M sends) stays in numpy end
to end.  The pure-Python oracles with identical observable behaviour
(byte-identical serialized JSON, property-tested) live in
:mod:`repro.schedule.transform`; the AST gate in
``tools/lint_hot_loops.py`` keeps per-send Python loops out of this
package.

Column arrays are treated as immutable, so kernels share the input's
arrays and :class:`~repro.schedule.columnar.ItemTable` whenever a column
passes through unchanged (``shift`` shares ``srcs``/``dsts``/``items``,
``restrict`` shares the table, ...) — transforming is O(changed
columns), not O(schedule).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

import numpy as np

from repro.schedule.columnar import ItemTable, sort_order
from repro.schedule.ops import Schedule

__all__ = [
    "SHIFT_BEFORE_ZERO",
    "merge_source_items",
    "shift_columns",
    "remap_columns",
    "reverse_columns",
    "concat_columns",
    "restrict_columns",
    "canonicalize_columns",
    "prune_dead_sends_columns",
    "compact_time_columns",
]

Item = Hashable

#: Shared shift-guard message.  Both backends raise it at transform time
#: (the objects oracle imports it; ``repro.schedule.implicit`` keeps a
#: textually identical copy, pinned equal by the test suite) so a
#: negative-time schedule can never silently materialize and only fail
#: later at lint time.
SHIFT_BEFORE_ZERO = "shift would move a send or item creation before cycle 0"


def merge_source_items(
    first: Mapping[Item, int], second: Mapping[Item, int]
) -> dict[Item, int]:
    """Merge two ``item -> creation time`` maps, refusing conflicts.

    A key present in both with *different* times is a real authorship
    conflict (two schedules disagree about when the item exists) and
    raises ``ValueError``; silently letting the second map win — the
    pre-PR-5 ``concat`` behaviour — masked exactly that bug.
    """
    merged = dict(first)
    for item, when in second.items():
        known = merged.get(item)
        if known is not None and known != when:
            raise ValueError(
                f"conflicting source_items entries for {item!r}: "
                f"{known} vs {when}"
            )
        merged[item] = when
    return merged


def _copy_initial(schedule: Schedule) -> dict[int, set[Item]]:
    return {p: set(items) for p, items in schedule.initial.items()}


def shift_columns(schedule: Schedule, offset: int) -> Schedule:
    """Columnar :func:`repro.schedule.transform.shift`."""
    cols = schedule.columns()
    floor = list(schedule.source_items.values())
    if len(cols):
        floor.append(int(cols.times.min()))
    if floor and min(floor) + offset < 0:
        raise ValueError(SHIFT_BEFORE_ZERO)
    return Schedule.from_arrays(
        schedule.params,
        cols.times + offset,
        cols.srcs,
        cols.dsts,
        cols.items,
        cols.table,
        initial=_copy_initial(schedule),
        source_items={
            item: when + offset for item, when in schedule.source_items.items()
        },
        machine=schedule.machine,
    )


def remap_columns(schedule: Schedule, mapping: Mapping[int, int]) -> Schedule:
    """Columnar :func:`repro.schedule.transform.remap`."""
    cols = schedule.columns()
    used = set(schedule.initial)
    if len(cols):
        used.update(np.union1d(cols.srcs, cols.dsts).tolist())
    image = {mapping.get(p, p) for p in used}
    if len(image) != len(used):
        raise ValueError("processor mapping is not injective on used processors")
    size = max(used, default=-1) + 1
    lut = np.arange(size, dtype=np.int64)
    for old, new in mapping.items():
        if 0 <= old < size:
            lut[old] = new
    return Schedule.from_arrays(
        schedule.params,
        cols.times,
        lut[cols.srcs],
        lut[cols.dsts],
        cols.items,
        cols.table,
        initial={
            mapping.get(p, p): set(items)
            for p, items in schedule.initial.items()
        },
        source_items=dict(schedule.source_items),
        machine=schedule.machine,
    )


def reverse_columns(
    schedule: Schedule,
    tag: str = "rev",
    initial: dict[int, set[Item]] | None = None,
) -> Schedule:
    """Columnar :func:`repro.schedule.transform.reverse` (default labels).

    Items become ``(tag, old_dst)``; ``source_items`` records each new
    item's earliest send time, the tightest creation times consistent
    with the reversed schedule (so causality re-validation stays
    meaningful — see the transform docstring).
    """
    params = schedule.params
    cols = schedule.columns()
    if len(cols) == 0:
        return Schedule(
            params=params,
            initial=initial or dict(schedule.initial),
            machine=schedule.machine,
        )
    completion = int(cols.arrivals.max())
    new_times = completion - cols.arrivals
    uniq_dsts, inverse = np.unique(cols.dsts, return_inverse=True)
    table = ItemTable((tag, int(d)) for d in uniq_dsts.tolist())
    earliest = np.full(len(uniq_dsts), np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(earliest, inverse, new_times)
    source_items: dict[Item, int] = {
        (tag, int(d)): int(t)
        for d, t in zip(uniq_dsts.tolist(), earliest.tolist())
    }
    if initial is None:
        initial = {int(d): {(tag, int(d))} for d in uniq_dsts.tolist()}
    return Schedule.from_arrays(
        params,
        new_times,
        cols.dsts,
        cols.srcs,
        inverse.astype(np.int64),
        table,
        initial=initial,
        source_items=source_items,
        machine=schedule.machine,
    )


def concat_columns(first: Schedule, second: Schedule) -> Schedule:
    """Columnar :func:`repro.schedule.transform.concat`."""
    if first.params != second.params:
        raise ValueError("cannot concatenate schedules for different machines")
    if first.machine != second.machine:
        raise ValueError("cannot concatenate schedules for different machines")
    params = first.params
    c1, c2 = first.columns(), second.columns()
    finish = int(c1.arrivals.max()) if len(c1) else 0
    if first.machine is not None and not first.machine.is_flat:
        # pad by the worst level: the flat envelope's g can undershoot a
        # slower intra level, which would leak gap violations across the
        # seam
        pad = max(max(p.g, p.o) for p in first.machine.levels)
    else:
        pad = max(params.g, params.o)
    offset = finish + pad
    if len(c2) and int(c2.times.min()) + offset < 0:
        raise ValueError(SHIFT_BEFORE_ZERO)
    table = c1.table.copy()
    code_map = table.encode(c2.table.items, count=len(c2.table))
    initial = _copy_initial(first)
    for p, items in second.initial.items():
        initial.setdefault(p, set()).update(items)
    return Schedule.from_arrays(
        params,
        np.concatenate([c1.times, c2.times + offset]),
        np.concatenate([c1.srcs, c2.srcs]),
        np.concatenate([c1.dsts, c2.dsts]),
        np.concatenate([c1.items, code_map[c2.items]]),
        table,
        initial=initial,
        source_items=merge_source_items(
            first.source_items,
            {
                item: when + offset
                for item, when in second.source_items.items()
            },
        ),
        machine=first.machine,
    )


def restrict_columns(schedule: Schedule, procs: Iterable[int]) -> Schedule:
    """Columnar :func:`repro.schedule.transform.restrict`."""
    keep = set(procs)
    cols = schedule.columns()
    procs_arr = np.fromiter(keep, dtype=np.int64, count=len(keep))
    mask = np.isin(cols.srcs, procs_arr) & np.isin(cols.dsts, procs_arr)
    return Schedule.from_arrays(
        schedule.params,
        cols.times[mask],
        cols.srcs[mask],
        cols.dsts[mask],
        cols.items[mask],
        cols.table,
        initial={
            p: set(items)
            for p, items in schedule.initial.items()
            if p in keep
        },
        source_items=merge_source_items(schedule.source_items, {}),
        machine=schedule.machine,
    )


def canonicalize_columns(schedule: Schedule) -> tuple[Schedule, int]:
    """Stable ``(time, src, dst)`` sort + item-table compaction.

    Returns ``(canonical schedule, number of item-table entries
    dropped)``.  The surviving table is re-interned in first-use order of
    the sorted send stream, so two schedules with the same canonical JSON
    also get identical column storage.
    """
    cols = schedule.columns()
    order = sort_order(cols)
    items_sorted = cols.items[order]
    uniq_codes, first_pos, inverse = np.unique(
        items_sorted, return_index=True, return_inverse=True
    )
    perm = np.argsort(first_pos, kind="stable")
    new_code_of = np.empty(len(uniq_codes), dtype=np.int64)
    new_code_of[perm] = np.arange(len(uniq_codes), dtype=np.int64)
    old_items = cols.table.items
    table = ItemTable(old_items[int(uniq_codes[i])] for i in perm.tolist())
    dropped = len(cols.table) - len(table)
    return (
        Schedule.from_arrays(
            schedule.params,
            cols.times[order],
            cols.srcs[order],
            cols.dsts[order],
            new_code_of[inverse],
            table,
            initial=_copy_initial(schedule),
            source_items=dict(schedule.source_items),
            machine=schedule.machine,
        ),
        dropped,
    )


def prune_dead_sends_columns(schedule: Schedule) -> tuple[Schedule, int]:
    """Drop every SCHED004 dead send; returns ``(schedule, removed)``.

    A send is *dead* when its destination already holds the item at the
    send's start time (exactly the lint engine's SCHED004 predicate —
    the kernel reuses :class:`~repro.analyze.context.LintContext`).  One
    pass reaches the fixpoint: for each ``(dst, item)`` pair the
    earliest-availability witness is either an initial placement or the
    minimum-arrival send, and a minimum-arrival send can itself be dead
    only when an initial placement outranks it — so removing dead sends
    never changes any first-availability time.
    """
    from repro.analyze.context import LintContext

    cols = schedule.columns()
    alive = LintContext(schedule).dst_first_avail > cols.times
    removed = int(len(cols) - int(alive.sum()))
    return (
        Schedule.from_arrays(
            schedule.params,
            cols.times[alive],
            cols.srcs[alive],
            cols.dsts[alive],
            cols.items[alive],
            cols.table,
            initial=_copy_initial(schedule),
            source_items=dict(schedule.source_items),
            machine=schedule.machine,
        ),
        removed,
    )


def compact_time_columns(schedule: Schedule) -> tuple[Schedule, int]:
    """Left-shift globally idle cycles out of the timeline.

    Returns ``(compacted schedule, reclaimed cycles)``.  Every send at
    ``t`` reserves the closed window ``[t, t + L + 2o + g]`` — the
    furthest horizon any LogP constraint (availability ``t + L + 2o``,
    send/receive gaps ``+ g``, overheads ``+ o``) can reach forward from
    it — and every ``source_items`` creation time reserves its own
    cycle.  Cycles covered by no reservation are *globally idle*:
    deleting such a gap shrinks every cross-gap time difference to at
    least ``L + 2o + g + 1``, which still clears every constraint floor,
    and leaves within-region differences untouched.  Per-processor slack
    (SCHED007) inside busy regions is intentionally not touched — that
    would need rescheduling, not translation.  Creation times are
    remapped by the same compaction, and the schedule's start time is
    preserved (use ``shift`` to translate to cycle 0).
    """
    params = schedule.params
    cols = schedule.columns()
    if schedule.machine is not None and not schedule.machine.is_flat:
        # the reservation horizon must cover the slowest level's reach
        reserve = max(p.L + 2 * p.o + p.g for p in schedule.machine.levels)
    else:
        reserve = params.L + 2 * params.o + params.g
    markers = np.fromiter(
        schedule.source_items.values(),
        dtype=np.int64,
        count=len(schedule.source_items),
    )
    starts = np.concatenate([cols.times, markers])
    ends = np.concatenate([cols.times + reserve + 1, markers + 1])
    if len(starts) == 0:
        return (
            Schedule.from_arrays(
                params,
                cols.times,
                cols.srcs,
                cols.dsts,
                cols.items,
                cols.table,
                initial=_copy_initial(schedule),
                source_items={},
                machine=schedule.machine,
            ),
            0,
        )
    bounds = np.concatenate([starts, ends])
    deltas = np.concatenate(
        [
            np.ones(len(starts), dtype=np.int64),
            -np.ones(len(ends), dtype=np.int64),
        ]
    )
    coords, inverse = np.unique(bounds, return_inverse=True)
    agg = np.zeros(len(coords), dtype=np.int64)
    np.add.at(agg, inverse, deltas)
    coverage = np.cumsum(agg)
    idle = coverage[:-1] == 0
    seg_lens = np.diff(coords)
    gap_ends = coords[1:][idle]
    removed = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(seg_lens[idle])]
    )

    def compacted(times: np.ndarray) -> np.ndarray:
        # every input time sits inside a reservation, never inside a gap,
        # so "gaps ending at or before t" is exactly the idle time before t
        return times - removed[np.searchsorted(gap_ends, times, side="right")]

    src_pairs = list(schedule.source_items.items())
    if src_pairs:
        creation = np.fromiter(
            (when for _, when in src_pairs),
            dtype=np.int64,
            count=len(src_pairs),
        )
        shifted = compacted(creation)
        source_items = {
            item: int(when)
            for (item, _), when in zip(src_pairs, shifted.tolist())
        }
    else:
        source_items = {}
    return (
        Schedule.from_arrays(
            params,
            compacted(cols.times),
            cols.srcs,
            cols.dsts,
            cols.items,
            cols.table,
            initial=_copy_initial(schedule),
            source_items=source_items,
            machine=schedule.machine,
        ),
        int(removed[-1]),
    )
