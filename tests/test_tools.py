"""Keeps the generated API index in sync with the package."""

import pathlib

from repro.tools import MODULES, generate_api_doc


def test_api_doc_up_to_date():
    committed = pathlib.Path(__file__).resolve().parents[1] / "docs" / "API.md"
    assert committed.read_text() == generate_api_doc(), (
        "docs/API.md is stale; regenerate with `python -m repro.tools`"
    )


def test_every_module_importable_with_all():
    import importlib

    for name in MODULES:
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), (name, symbol)


class TestDispatchGate:
    """The AST gate keeping threshold comparisons inside repro.dispatch."""

    def _tool(self):
        import importlib.util

        root = pathlib.Path(__file__).resolve().parents[1]
        spec = importlib.util.spec_from_file_location(
            "lint_hot_loops", root / "tools" / "lint_hot_loops.py"
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        return mod, root

    def test_package_is_clean(self):
        mod, root = self._tool()
        problems = []
        for path in mod.dispatch_gate_targets(root):
            problems.extend(mod.check_file(path, root))
        assert problems == []

    def test_threshold_comparison_is_flagged(self, tmp_path):
        mod, root = self._tool()
        bad = tmp_path / "bad.py"
        bad.write_text(
            "def f(s, np):\n"
            "    return s.num_sends >= np.FAST_PATH_THRESHOLD\n"
        )
        problems = mod.check_file(bad, root)
        assert len(problems) == 1
        assert "FAST_PATH_THRESHOLD" in problems[0]
        assert "repro.dispatch" in problems[0]

    def test_dispatch_module_itself_is_exempt(self):
        mod, root = self._tool()
        dispatch = root / "src" / "repro" / "dispatch.py"
        assert mod.check_file(dispatch, root) == []
        # sanity: the policy really does compare against the threshold
        assert "threshold" in dispatch.read_text()
