"""Relative addressing for continuous broadcast (Section 3.2).

In the continuous broadcast problem a source emits item ``i`` at step ``i``
(``g = 1``); the recipient ``P_i`` starts an optimal ``(P-1)``-way broadcast
at step ``L + i``.  A node with delay ``d`` in item ``i``'s tree is a
reception at step ``tau = L + i + d``.

The paper's *relative addressing* names receptions by their **offset**
``m = t - d``: at step ``tau``, letter ``a`` (offset 0) is the item whose
broadcast terminates at ``tau``, ``b`` (offset 1) the one terminating at
``tau + 1``, and so on.  Lowercase letters are leaf receptions with offsets
``0 .. L-1``; an internal node with ``r`` children is the uppercase letter
``R_r`` with offset ``r + L - 1``.

Two receptions by one processor at steps ``tau1 < tau2`` with offsets
``m1, m2`` are *the same item* iff ``m1 - m2 == tau2 - tau1`` — the
correctness criterion every reception pattern must avoid.

This module computes the per-step reception multiset (the ``S`` of the
paper) and the problem instance ``I(t)`` — block sizes plus letter census —
from the unique optimal tree ``T_{P-1}`` with ``P - 1 = P(t)``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.tree import BroadcastTree, tree_for_time
from repro.params import postal

__all__ = [
    "offset_of_delay",
    "delay_of_offset",
    "uppercase_offset",
    "letter_name",
    "StepMultiset",
    "Instance",
    "instance_for",
    "step_multiset",
]


def offset_of_delay(delay: int, t: int) -> int:
    """Relative-addressing offset ``m = t - d`` of a node with delay ``d``."""
    return t - delay


def delay_of_offset(offset: int, t: int) -> int:
    return t - offset


def uppercase_offset(r: int, L: int) -> int:
    """Offset of the uppercase letter ``R_r``: ``r + L - 1``.

    An internal node with ``r`` children sits at delay ``d = t - L - r + 1``
    in the optimal ``t``-step tree, hence offset ``t - d = r + L - 1``.
    """
    return r + L - 1


def letter_name(offset: int, L: int) -> str:
    """Human-readable name: lowercase ``a..`` for leaf offsets, ``R<r>`` for
    uppercase offsets (mirrors the paper's ``H5``/``E2``/``D1`` notation)."""
    if 0 <= offset < L:
        return chr(ord("a") + offset)
    r = offset - L + 1
    return chr(ord("A") + (offset % 26)) + str(r)


@dataclass(frozen=True)
class StepMultiset:
    """The multiset ``S`` of receptions occurring at every steady-state step.

    ``leaves[m]`` counts lowercase receptions with offset ``m``;
    ``internals[r]`` counts uppercase receptions ``R_r``.
    """

    L: int
    t: int
    leaves: Counter
    internals: Counter

    @property
    def total(self) -> int:
        return sum(self.leaves.values()) + sum(self.internals.values())

    def letters(self) -> list[str]:
        """Expanded letter list, e.g. ``['a','a','a','b','b','c','D1','E2','H5']``."""
        out: list[str] = []
        for m in sorted(self.leaves):
            out.extend([letter_name(m, self.L)] * self.leaves[m])
        for r in sorted(self.internals):
            out.extend([letter_name(uppercase_offset(r, self.L), self.L)] * self.internals[r])
        return out


@dataclass(frozen=True)
class Instance:
    """The problem instance ``I(t)`` of Section 3.3.

    ``block_sizes`` maps block size ``r`` (one block per internal node with
    ``r`` children) to its multiplicity; ``letter_census`` maps lowercase
    offset ``m`` to the number of copies available per step.  A solution
    assigns a legal word of length ``r - 1`` to every block and one letter
    to the receive-only processor, consuming the census exactly.
    """

    L: int
    t: int
    block_sizes: Counter
    letter_census: Counter

    @property
    def P_minus_1(self) -> int:
        """Number of non-source processors: blocks' sizes plus receive-only."""
        return sum(r * c for r, c in self.block_sizes.items()) + 1

    def word_budget(self) -> int:
        """Total lowercase letters to be consumed by words + receive-only."""
        return sum((r - 1) * c for r, c in self.block_sizes.items()) + 1

    def consistent(self) -> bool:
        return self.word_budget() == sum(self.letter_census.values())


def step_multiset(t: int, L: int, tree: BroadcastTree | None = None) -> StepMultiset:
    """Compute ``S`` for the optimal ``t``-step tree with latency ``L``."""
    if tree is None:
        tree = tree_for_time(t, postal(P=1, L=L))
    leaves: Counter = Counter()
    internals: Counter = Counter()
    for node in tree.nodes:
        if node.is_leaf:
            leaves[offset_of_delay(node.delay, t)] += 1
        else:
            internals[node.out_degree] += 1
    return StepMultiset(L=L, t=t, leaves=leaves, internals=internals)


def instance_for(t: int, L: int) -> Instance:
    """Build ``I(t)`` from the unique optimal tree on ``P(t)`` nodes."""
    s = step_multiset(t, L)
    inst = Instance(L=L, t=t, block_sizes=s.internals, letter_census=s.leaves)
    if not inst.consistent():
        raise AssertionError(
            f"I({t}) inconsistent: budget {inst.word_budget()} != "
            f"census {sum(inst.letter_census.values())}"
        )
    return inst
