"""Operand capacity of optimal summation (Section 5, Lemma 5.1).

A *lazy* summation algorithm on a ``(L, o, g, P)`` machine corresponds
one-to-one with a broadcast algorithm on ``(L+1, o, g, P)``: reverse
every message (a broadcast reception at delay ``d`` becomes a summation
send at ``t - d``).  If processor ``i`` sends at ``S_i`` and receives
``k_i`` messages, each reception costs ``o + 1`` cycles (receive
overhead plus the one-cycle add of the received partial sum), leaving
``S_i - (o+1) k_i`` cycles for the chain of input-summing additions —
which consumes ``S_i - (o+1) k_i + 1`` input operands (the first
addition folds two operands).  Hence for the whole machine::

    n(t) = sum_i (S_i - (o+1) k_i + 1)
         = sum_i (t - d_i) - (o+1)(P-1) + P

which is maximized exactly when ``sum_i d_i`` is minimized — i.e. by the
optimal broadcast pattern (the universal tree's ``P`` smallest labels).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tree import BroadcastTree, optimal_tree
from repro.params import LogPParams

__all__ = [
    "summation_tree",
    "summation_capacity",
    "min_summation_time",
    "operand_distribution",
]


def summation_tree(params: LogPParams) -> BroadcastTree:
    """The communication tree of optimal summation: the optimal broadcast
    tree for latency ``L + 1`` (same ``o``, ``g``, ``P``), to be read in
    time reversal.  Node ``i``'s broadcast delay ``d_i`` means processor
    ``i`` sends its partial sum at ``t - d_i`` (the root's "send" at ``t``
    is the final addition)."""
    shifted = LogPParams(P=params.P, L=params.L + 1, o=params.o, g=params.g)
    return optimal_tree(shifted)


def operand_distribution(t: int, params: LogPParams) -> list[int]:
    """Input operands summed directly by each processor (node order).

    Element ``i`` is ``S_i - (o+1) k_i + 1`` for the ``i``-th node of the
    summation tree.  Raises ``ValueError`` when ``t`` is too small for
    some processor to fit its receptions (negative local budget).
    """
    tree = summation_tree(params)
    counts: list[int] = []
    for node in tree.nodes:
        send_time = t - node.delay
        local = send_time - (params.o + 1) * node.out_degree
        if local < 0:
            raise ValueError(
                f"t={t} too small: node {node.index} has {node.out_degree} "
                f"receptions but only {send_time} cycles before its send"
            )
        counts.append(local + 1)
    return counts


def summation_capacity(t: int, params: LogPParams) -> int:
    """``n(t)``: the maximum number of operands summable in ``t`` cycles."""
    return sum(operand_distribution(t, params))


def min_summation_time(n: int, params: LogPParams) -> int:
    """Smallest ``t`` whose capacity reaches ``n`` operands.

    For very small ``n`` fewer processors may be preferable (a lone
    processor sums ``n`` operands in ``n - 1`` cycles); this routine
    optimizes over the number of participating processors as well.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    best = n - 1  # single-processor chain
    for P in range(2, params.P + 1):
        sub = params.with_processors(P)
        t = 0
        # find the smallest feasible t for this P by linear scan from the
        # first t at which every processor has a non-negative local budget
        tree = summation_tree(sub)
        t_min = max(
            node.delay + (params.o + 1) * node.out_degree for node in tree.nodes
        )
        t = t_min
        while summation_capacity(t, sub) < n:
            t += 1
            if t > best:
                break
        else:
            best = min(best, t)
    return best
