# repro: profile=cli
"""Planted REPRO008: opaque raises on the CLI-reachable surface."""


def load(path):
    if not path:
        raise ValueError
    try:
        return open(path).read()
    except OSError:
        raise RuntimeError()


def unfinished():
    raise NotImplementedError
