"""Subprocess regression: the hot-loop linter shim keeps its contract.

``tools/lint_hot_loops.py`` is now a shim over ``repro.checkers``
(REPRO001/REPRO002); CI and developer muscle memory rely on its exact
command line, output format and exit codes (0 clean / 1 violations /
2 missing file).  These tests run it the way CI does — as a plain
subprocess, with no PYTHONPATH — so the sys.path bootstrap inside the
shim is covered too.
"""

import os
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SHIM = ROOT / "tools" / "lint_hot_loops.py"


def run_shim(*args, cwd=ROOT):
    env = {k: v for k, v in os.environ.items() if k != "PYTHONPATH"}
    return subprocess.run(
        [sys.executable, str(SHIM), *map(str, args)],
        capture_output=True,
        text=True,
        cwd=cwd,
        env=env,
    )


def test_default_run_is_clean_exit_zero():
    proc = run_shim()
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert proc.stdout.startswith("lint-hot-loops: ")
    assert proc.stdout.rstrip().endswith("module(s) clean")


def test_violations_exit_one_with_legacy_format(tmp_path):
    bad = tmp_path / "src" / "repro" / "passes" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        "def f(schedule):\n"
        "    total = 0\n"
        "    for op in schedule.sends:\n"
        "        total += op.time\n"
        "    if schedule.num_sends >= FAST_PATH_THRESHOLD:\n"
        "        return 0\n"
        "    return total\n"
    )
    proc = run_shim(bad)
    assert proc.returncode == 1
    lines = proc.stdout.splitlines()
    assert lines[0] == "lint-hot-loops: 2 violation(s):"
    assert lines[1] == (
        f"  {bad}:3: python loop over `.sends` in a hot module "
        "(use the columnar arrays)"
    )
    assert lines[2] == (
        f"  {bad}:5: comparison against FAST_PATH_THRESHOLD outside "
        "repro.dispatch (call repro.dispatch.use_numpy() instead)"
    )


def test_missing_file_exits_two():
    proc = run_shim("src/repro/does_not_exist.py")
    assert proc.returncode == 2
    assert proc.stdout.startswith("lint-hot-loops: missing files: ")


def test_dispatch_owner_is_exempt_when_listed_explicitly():
    proc = run_shim("src/repro/dispatch.py")
    assert proc.returncode == 0
    assert proc.stdout.rstrip() == "lint-hot-loops: 1 module(s) clean"
