"""Diagnostic records emitted by the schedule lint engine.

A :class:`Diagnostic` is one structured finding: which rule fired, how
severe it is, where in the schedule it points (send indices into the
*storage order* of :class:`~repro.schedule.columnar.ScheduleColumns`),
a human-readable message, and an optional fix-it hint.  A
:class:`LintReport` bundles the diagnostics of one engine run together
with per-rule totals (rules cap how many diagnostics they *emit*, never
how many they *count*), so large pathological schedules stay cheap to
report without losing information.

Severity semantics:

* :attr:`Severity.ERROR` — the schedule is structurally broken (acausal
  provenance, self-sends, negative times).  Every paper builder must be
  error-free; CI enforces this.
* :attr:`Severity.WARNING` — legal but almost certainly wasteful or
  unintended (dead sends, duplicate deliveries, missed closed-form
  optimality, incomplete coverage).
* :attr:`Severity.INFO` — advisory structure observations (slack
  against the critical path, Theorem 3.2 endgame shape).  Transforms of
  a clean schedule may legitimately introduce INFO findings (``concat``
  inserts idle spacing by design), so invariance properties quantify
  over WARNING and above.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["Severity", "Diagnostic", "LintReport", "MAX_EMITTED_PER_RULE"]

#: Rules stop *emitting* (but keep counting) diagnostics past this many.
MAX_EMITTED_PER_RULE = 50


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so comparisons read naturally."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()

    @property
    def sarif_level(self) -> str:
        """The SARIF ``level`` string for this severity."""
        return {
            Severity.INFO: "note",
            Severity.WARNING: "warning",
            Severity.ERROR: "error",
        }[self]

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; expected one of "
                f"{[s.name.lower() for s in cls]}"
            ) from None


@dataclass(frozen=True)
class Diagnostic:
    """One structured lint finding.

    ``sends`` are indices into the schedule's column storage order
    (``schedule.columns()``), capped by the emitting rule; ``data``
    carries rule-specific structured values (counts, bounds, times) so
    downstream tooling never has to parse ``message``.
    """

    rule: str
    severity: Severity
    message: str
    sends: tuple[int, ...] = ()
    data: dict[str, Any] = field(default_factory=dict)
    fixit: str | None = None

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity.label,
            "message": self.message,
            "sends": list(self.sends),
        }
        if self.data:
            out["data"] = self.data
        if self.fixit is not None:
            out["fixit"] = self.fixit
        return out


@dataclass
class LintReport:
    """All diagnostics from one lint run, plus run metadata.

    ``rule_totals`` maps rule id -> total findings *counted* (the
    emitted ``diagnostics`` list is capped per rule at
    :data:`MAX_EMITTED_PER_RULE`); ``rules_run`` lists every rule that
    executed, so "no diagnostics" is distinguishable from "rule never
    applied".
    """

    diagnostics: list[Diagnostic]
    rules_run: list[str]
    rule_totals: dict[str, int]
    num_sends: int
    workload: str
    elapsed_s: float = 0.0

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def count(self, severity: Severity) -> int:
        """Total findings (uncapped) at exactly ``severity``."""
        by_rule: dict[str, Severity] = {}
        for diag in self.diagnostics:
            by_rule.setdefault(diag.rule, diag.severity)
        return sum(
            total
            for rule, total in self.rule_totals.items()
            if total and by_rule.get(rule) == severity
        )

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    @property
    def max_severity(self) -> Severity | None:
        """Highest severity present, or ``None`` for a clean report."""
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def at_least(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= severity]

    def rule_ids(self) -> list[str]:
        """Sorted distinct rule ids that fired (the corpus-pinned view)."""
        return sorted({d.rule for d in self.diagnostics})
