"""Tests for LogP parameter fitting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fitting import Measurements, fit_logp, simulate_measurements
from repro.params import LogPParams


class TestNoiseless:
    @pytest.mark.parametrize("machine", [
        LogPParams(P=8, L=6, o=2, g=4),
        LogPParams(P=16, L=12, o=1, g=2),
        LogPParams(P=4, L=40, o=8, g=9),
        LogPParams(P=32, L=3, o=0, g=1),
    ])
    def test_exact_recovery(self, machine):
        data = simulate_measurements(machine)
        fitted = fit_logp(data, P=machine.P)
        assert fitted == machine

    def test_postal_machine(self):
        machine = LogPParams(P=10, L=3, o=0, g=1)
        assert fit_logp(simulate_measurements(machine), P=10) == machine


class TestNoisy:
    def test_small_noise_still_recovers(self):
        machine = LogPParams(P=8, L=20, o=2, g=5)
        data = simulate_measurements(machine, noise=0.3, seed=11, trials=200)
        fitted = fit_logp(data, P=8)
        assert fitted == machine

    def test_moderate_noise_close(self):
        machine = LogPParams(P=8, L=30, o=3, g=6)
        data = simulate_measurements(machine, noise=1.0, seed=5, trials=400)
        fitted = fit_logp(data, P=8)
        assert abs(fitted.L - machine.L) <= 2
        assert abs(fitted.g - machine.g) <= 1
        assert abs(fitted.o - machine.o) <= 1


class TestProperties:
    @given(
        L=st.integers(1, 40),
        o=st.integers(0, 5),
        g=st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, L, o, g):
        o = min(o, g)
        machine = LogPParams(P=8, L=L, o=o, g=g)
        fitted = fit_logp(simulate_measurements(machine), P=8)
        assert fitted == machine

    def test_fit_respects_model_bounds(self):
        # even garbage data yields a *valid* LogPParams
        import numpy as np

        garbage = Measurements(
            pingpong=np.array([1.0, 2.0]),
            burst_sizes=np.array([1, 2, 3]),
            burst_times=np.array([5.0, 5.1, 5.3]),
            probe_grains=np.array([0, 1, 2]),
            probe_costs=np.array([1.0, 1.0, 1.0]),
        )
        fitted = fit_logp(garbage, P=4)
        assert fitted.L >= 1 and 0 <= fitted.o <= fitted.g
