# repro: profile=hot
"""Planted REPRO001: per-send Python loops in a hot module."""


def total_time(schedule):
    total = 0
    for op in schedule.sends:
        total += op.time
    times = [op.time for op in schedule.sends]
    by_proc = schedule.sends_by_proc()
    return total, times, by_proc
