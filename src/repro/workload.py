"""Application communication traces: plan and account whole workloads.

Real applications issue *sequences* of collectives.  A
:class:`WorkloadTrace` captures such a sequence (the way communication
tracers like mpiP or Score-P summarize an app); :func:`plan_workload`
prices every operation with the optimal planners and with classic
baselines, yielding a per-operation and end-to-end comparison — the
number an adopter actually cares about ("what does switching broadcast
algorithms buy my app?").

Supported ops: ``bcast``, ``kitem_bcast``, ``reduce``, ``allreduce``,
``allgather``, ``alltoall``, ``scatter``, ``gather``, ``barrier``
(priced as an allreduce of zero-size contributions), ``compute`` (local
cycles between collectives; overlaps nothing by assumption).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.baselines.trees import baseline_broadcast
from repro.comm import Communicator
from repro.core.fib import broadcast_time
from repro.params import LogPParams
from repro.schedule.analysis import broadcast_delay_per_proc

__all__ = ["CollectiveOp", "WorkloadTrace", "plan_workload", "WorkloadReport"]


@dataclass(frozen=True)
class CollectiveOp:
    """One traced operation.

    ``kind`` names the collective; ``count`` is how many times it occurs
    consecutively; ``arg`` is the k for ``kitem_bcast`` or the cycle count
    for ``compute``.
    """

    kind: str
    count: int = 1
    arg: int = 0

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("count must be >= 1")


@dataclass
class WorkloadTrace:
    """A named sequence of collective operations."""

    name: str
    params: LogPParams
    ops: list[CollectiveOp] = field(default_factory=list)

    def add(self, kind: str, count: int = 1, arg: int = 0) -> "WorkloadTrace":
        self.ops.append(CollectiveOp(kind=kind, count=count, arg=arg))
        return self

    def total_ops(self) -> int:
        return sum(op.count for op in self.ops)


@dataclass
class WorkloadReport:
    """Cycle accounting for one workload under one algorithm suite."""

    trace: str
    rows: list[dict]
    optimal_total: int
    baseline_total: int

    @property
    def speedup(self) -> float:
        return self.baseline_total / self.optimal_total if self.optimal_total else 1.0

    def render(self) -> str:
        lines = [
            f"workload {self.trace}: optimal {self.optimal_total} cycles, "
            f"classic-tree baseline {self.baseline_total} cycles "
            f"({self.speedup:.2f}x)",
            f"{'op':<14}{'count':>6}{'optimal':>10}{'baseline':>10}",
        ]
        for row in self.rows:
            lines.append(
                f"{row['kind']:<14}{row['count']:>6}{row['optimal']:>10}"
                f"{row['baseline']:>10}"
            )
        return "\n".join(lines)


def _baseline_bcast_cycles(params: LogPParams) -> int:
    schedule = baseline_broadcast("binomial", params)
    return max(broadcast_delay_per_proc(schedule).values())


def plan_workload(trace: WorkloadTrace) -> WorkloadReport:
    """Price every op with the optimal planners and a binomial-tree suite.

    The baseline suite mirrors what a simple MPI implementation does:
    binomial bcast/reduce, reduce+bcast allreduce, the same cyclic
    alltoall (it is hard to do worse), flat scatter/gather.
    """
    comm = Communicator(trace.params)
    bino = _baseline_bcast_cycles(trace.params)
    rows: list[dict] = []
    opt_total = 0
    base_total = 0
    for op in trace.ops:
        if op.kind == "bcast":
            optimal = comm.bcast().cycles
            baseline = bino
        elif op.kind == "kitem_bcast":
            optimal = comm.kitem_bcast(max(op.arg, 1)).cycles
            baseline = max(op.arg, 1) * bino  # repeated binomial broadcasts
        elif op.kind == "reduce":
            optimal = comm.reduce().cycles
            baseline = bino
        elif op.kind == "allreduce":
            optimal = comm.allreduce().cycles
            baseline = 2 * bino
        elif op.kind == "barrier":
            optimal = comm.allreduce().cycles
            baseline = 2 * bino
        elif op.kind == "allgather":
            optimal = comm.allgather().cycles
            baseline = comm.allgather().cycles  # already the classic ring
        elif op.kind == "alltoall":
            optimal = comm.alltoall().cycles
            baseline = comm.alltoall().cycles
        elif op.kind in ("scatter", "gather"):
            optimal = comm.scatter().cycles
            baseline = comm.scatter().cycles
        elif op.kind == "compute":
            optimal = baseline = op.arg
        else:
            raise ValueError(f"unknown collective kind {op.kind!r}")
        rows.append(
            {
                "kind": op.kind,
                "count": op.count,
                "optimal": optimal * op.count,
                "baseline": baseline * op.count,
            }
        )
        opt_total += optimal * op.count
        base_total += baseline * op.count
    return WorkloadReport(
        trace=trace.name,
        rows=rows,
        optimal_total=opt_total,
        baseline_total=base_total,
    )
