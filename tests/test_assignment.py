"""Tests for block-cyclic assignments and the Section 3.3 induction."""

import pytest

from repro.core.continuous.assignment import (
    Block,
    BlockCyclicAssignment,
    find_base_cases,
    min_base_t,
    solve,
    solve_instance,
)
from repro.core.continuous.relative import instance_for
from repro.core.fib import reachable_postal


class TestBlock:
    def test_word_length_enforced(self):
        with pytest.raises(ValueError):
            Block(size=3, word=(0,))

    def test_pattern_includes_uppercase(self):
        b = Block(size=5, word=(0, 2, 0, 1))
        assert b.pattern(3) == (7, 0, 2, 0, 1)


class TestSolveInstance:
    def test_fig2_solvable(self):
        a = solve_instance(instance_for(7, 3))
        assert a is not None
        a.validate()
        assert a.delay == 10  # L + t
        assert a.num_processors == 9

    def test_fig2_block_structure(self):
        a = solve_instance(instance_for(7, 3))
        sizes = sorted((b.size for b in a.blocks), reverse=True)
        assert sizes == [5, 2, 1]
        # H5 block word must be one of the paper's two viable choices
        h5 = next(b for b in a.blocks if b.size == 5)
        assert h5.word in {(0, 2, 0, 1), (0, 1, 2, 0)}  # acab / abca

    def test_l4_t8_infeasible(self):
        # the paper: "when L = 4 and t = 8 no block-cyclic schedule can
        # achieve a delay of L + t"
        assert solve_instance(instance_for(8, 4)) is None

    def test_validate_rejects_wrong_census(self):
        a = solve_instance(instance_for(7, 3))
        bad = BlockCyclicAssignment(
            L=3, t=7, blocks=a.blocks, receive_only=(a.receive_only + 1) % 3
        )
        with pytest.raises(ValueError):
            bad.validate()

    def test_normal_form_constrains_receive_only(self):
        t = find_base_cases(3)[0]
        a = solve_instance(instance_for(t, 3), normal_form=True)
        assert a is not None and a.receive_only == 1  # 'b'


class TestBaseCases:
    def test_min_base_t(self):
        assert min_base_t(3) == 4
        assert min_base_t(5) == 8

    @pytest.mark.parametrize("L", [3, 4, 5, 6])
    def test_L_consecutive_base_cases(self, L):
        cases = find_base_cases(L)
        assert len(cases) == L
        assert list(cases) == list(range(cases[0], cases[0] + L))

    def test_known_tL_values(self):
        # measured t(L) for the solver's normal form; the paper says the
        # values are "small" (L=7..10 verified offline: 18, 21, 24, 27)
        assert find_base_cases(3)[0] == 11
        assert find_base_cases(4)[0] == 12
        assert find_base_cases(5)[0] == 12
        assert find_base_cases(6)[0] == 15


class TestInduction:
    @pytest.mark.parametrize("L", [3, 4, 5])
    def test_stitched_solutions_validate(self, L):
        t0 = find_base_cases(L)[0]
        for t in range(t0, t0 + 2 * L + 1):
            a = solve(t, L)
            assert a is not None, (L, t)
            a.validate()
            assert a.num_processors == reachable_postal(t, L)
            assert a.delay == L + t

    def test_largest_block_grows(self):
        L = 3
        t0 = find_base_cases(L)[0]
        for t in range(t0 + 1, t0 + 5):
            a = solve(t, L)
            largest = max(b.size for b in a.blocks)
            assert largest == t - L + 1

    def test_small_t_direct(self):
        # below t(L), solve() falls back to direct search
        a = solve(7, 3)
        assert a is not None
        a.validate()
