"""Tests for the conjecture-exploration tooling and doctest hygiene."""

import doctest

import pytest

import repro.core.fib
import repro.params
from repro.core.continuous.assignment import find_base_cases
from repro.experiments.conjecture import (
    KNOWN_TL,
    conjecture_status,
    probe_base_cases,
)


class TestConjectureTooling:
    def test_known_values_match_solver(self):
        # spot-check the published table against the live solver (L <= 5
        # to keep the suite fast; 6..10 verified separately)
        for L in (3, 4, 5):
            assert find_base_cases(L)[0] == KNOWN_TL[L]

    def test_probe_L3(self):
        results = probe_base_cases(3, t_range=(10, 14), time_budget=30.0)
        outcomes = {r.t: r.outcome for r in results}
        assert outcomes[11] == "solved"
        assert outcomes[12] == "solved"
        assert outcomes[13] == "solved"

    def test_probe_reports_unsolved(self):
        # L=4, t=8 is the paper's unsolvable instance
        results = probe_base_cases(4, t_range=(8, 8), time_budget=30.0)
        assert results[0].outcome == "unsolved"

    def test_status_table(self):
        rows = conjecture_status(max_L=12)
        by_L = {row["L"]: row for row in rows}
        assert "refuted" in by_L[2]["status"]
        assert by_L[3]["t(L)"] == 11
        assert "open" in by_L[11]["status"]
        assert "open" in by_L[12]["status"]


class TestDoctests:
    @pytest.mark.parametrize("module", [repro.params, repro.core.fib])
    def test_module_doctests(self, module):
        failures, _tests = doctest.testmod(module)
        assert failures == 0
