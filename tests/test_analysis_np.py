"""Tests for the vectorized analysis (agreement with the scalar code)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kitem.single_sending import single_sending_schedule
from repro.core.single_item import optimal_broadcast_schedule
from repro.params import LogPParams, postal
from repro.schedule.analysis import (
    broadcast_delay_per_proc,
    completion_time,
    item_completion_times,
)
from repro.schedule.analysis_np import (
    columns,
    completion_time_np,
    per_item_completion_np,
    per_proc_first_arrival_np,
    send_load_np,
)


class TestAgreement:
    def test_completion_matches(self):
        s = optimal_broadcast_schedule(LogPParams(P=32, L=6, o=2, g=4))
        assert completion_time_np(columns(s)) == completion_time(s)

    def test_first_arrival_matches(self):
        s = optimal_broadcast_schedule(postal(P=40, L=3))
        cols = columns(s)
        arrivals = per_proc_first_arrival_np(cols)
        scalar = broadcast_delay_per_proc(s)
        for p in range(1, 40):
            assert arrivals[p] == scalar[p]
        assert arrivals[0] == -1  # source never receives

    def test_item_completion_matches(self):
        s = single_sending_schedule(6, 10, 3)
        cols = columns(s)
        vec = per_item_completion_np(cols)
        scalar = item_completion_times(s, procs=set(range(1, 10)))
        for item, done in scalar.items():
            assert vec[cols.item_ids[item]] == done

    def test_send_load(self):
        s = optimal_broadcast_schedule(postal(P=20, L=2))
        load = send_load_np(columns(s))
        assert load.sum() == len(s.sends)
        assert load[0] == max(load)  # the root sends most

    def test_empty_schedule(self):
        from repro.schedule.ops import Schedule

        cols = columns(Schedule(params=postal(P=3, L=2)))
        assert completion_time_np(cols) == 0

    @given(P=st.integers(2, 60), L=st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_property_agreement(self, P, L):
        s = optimal_broadcast_schedule(postal(P=P, L=L))
        cols = columns(s)
        assert completion_time_np(cols) == completion_time(s)
        scalar = broadcast_delay_per_proc(s)
        vec = per_proc_first_arrival_np(cols)
        for p in range(1, P):
            assert vec[p] == scalar[p]


class TestScale:
    def test_large_schedule(self):
        # a 2000-processor broadcast: vectorized analysis stays instant
        s = optimal_broadcast_schedule(postal(P=2000, L=4))
        cols = columns(s)
        assert completion_time_np(cols) == completion_time(s)
        assert send_load_np(cols).sum() == 1999


class TestNetworkOccupancy:
    def test_in_transit_profile(self):
        from repro.schedule.analysis_np import in_transit_profile

        s = optimal_broadcast_schedule(postal(P=9, L=3))
        cols = columns(s)
        profile = in_transit_profile(cols, L=3)
        assert profile.min() >= 0
        assert profile.sum() == 3 * len(s.sends)  # each message in flight L cycles

    def test_egress_respects_capacity(self):
        from repro.schedule.analysis_np import per_proc_egress_peak

        params = postal(P=21, L=4)
        s = optimal_broadcast_schedule(params)
        cols = columns(s)
        peaks = per_proc_egress_peak(cols, L=params.L)
        assert peaks.max() <= params.capacity
        # the optimal schedule saturates the source's egress capacity
        assert peaks[0] == params.capacity

    def test_empty(self):
        from repro.schedule.ops import Schedule
        from repro.schedule.analysis_np import in_transit_profile, per_proc_egress_peak

        cols = columns(Schedule(params=postal(P=2, L=2)))
        assert in_transit_profile(cols, L=2).sum() == 0
        assert per_proc_egress_peak(cols, L=2).sum() == 0
