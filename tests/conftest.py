"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.params import LogPParams, postal
from repro.schedule.analysis import broadcast_delay_per_proc, item_completion_times
from repro.schedule.ops import Schedule
from repro.sim.machine import replay
from repro.sim.validate import single_reception_violations


@pytest.fixture
def fig1_params() -> LogPParams:
    """The machine of the paper's Figure 1: P=8, L=6, g=4, o=2."""
    return LogPParams(P=8, L=6, o=2, g=4)


@pytest.fixture
def fig2_postal() -> LogPParams:
    """The postal machine of Figure 2: P=10, L=3."""
    return postal(P=10, L=3)


def assert_broadcast_complete(
    schedule: Schedule, P: int, item: object = 0
) -> dict[int, int]:
    """Replay a single-item broadcast and check every processor got it.

    Returns proc -> first-available time.
    """
    replay(schedule)
    delays = broadcast_delay_per_proc(schedule, item)
    assert set(delays) == set(range(P)), f"missing processors: {set(range(P)) - set(delays)}"
    return delays


def assert_kitem_complete(schedule: Schedule, P: int, k: int) -> int:
    """Replay a k-item broadcast; every proc must receive every item once.

    Returns the completion time.
    """
    replay(schedule)
    assert not single_reception_violations(schedule)
    done = item_completion_times(schedule, procs=set(range(P)))
    assert set(done) == set(range(k))
    return max(done.values())
