#!/usr/bin/env python3
"""Two-level broadcast on a cluster of multicore nodes.

Scenario: 8 nodes x 8 cores.  Within a node messages are cheap
(L=2, o=1, g=1); across nodes they are expensive (L=24, o=2, g=6).
A topology-oblivious broadcast pays inter-node cost for most hops; the
two-level plan broadcasts among node leaders on the slow fabric, then
fans out inside each node on the fast one.

The composition itself lives in the library
(:func:`repro.machine.compose.two_level_broadcast_plan`, backed by the
``hier-bcast`` registry collective); this example just drives it on the
reference cluster, asserts the headline numbers, and shows the
decomposition — including what the *best case* (all 64 ranks on the
fast fabric) would cost, bounding what any topology-aware scheme could
hope for.

Run:  python examples/hierarchical_broadcast.py
"""

from repro.core.fib import broadcast_time
from repro.machine import HierarchicalMachine, two_level_broadcast_plan
from repro.params import LogPParams
from repro.schedule.analysis import completion_time
from repro.sim.validate_np import violations_np

NODES, CORES = 8, 8
INTER = LogPParams(P=NODES, L=24, o=2, g=6)  # leader <-> leader
INTRA = LogPParams(P=CORES, L=2, o=1, g=1)  # within one node
MACHINE = HierarchicalMachine(
    nodes=NODES, cores=CORES, inter=INTER, intra=INTRA
)


def main() -> None:
    total_ranks = NODES * CORES
    print(f"cluster: {NODES} nodes x {CORES} cores = {total_ranks} ranks")
    print(f"inter-node fabric: {INTER}")
    print(f"intra-node fabric: {INTRA}\n")

    plan = two_level_broadcast_plan(MACHINE)

    # --- topology-oblivious: optimal tree over the slow fabric ---------
    print(f"flat (oblivious) optimal broadcast: {plan.flat_cycles} cycles")

    # --- two-level: leaders first, then local fan-out -------------------
    print(
        f"two-level broadcast: {plan.inter_cycles} (leaders) + "
        f"{plan.intra_cycles} (intra-node) = {plan.total_cycles} cycles"
    )
    print(f"topology awareness buys {plan.speedup:.2f}x on this machine\n")

    # the composed schedule is a real, machine-priced plan: it replays
    # cleanly under per-level (L, o, g) validation and its completion
    # matches the phase arithmetic
    assert violations_np(plan.schedule) == [], "composed plan is illegal"
    assert completion_time(plan.schedule) == plan.total_cycles
    assert plan.total_cycles == plan.inter_cycles + plan.intra_cycles
    assert plan.total_cycles < plan.flat_cycles, (
        f"two-level plan ({plan.total_cycles}) must beat the oblivious "
        f"broadcast ({plan.flat_cycles}) on this cluster"
    )

    # --- what's the floor? all ranks on the fast fabric -----------------
    dream = broadcast_time(total_ranks, INTRA.with_processors(total_ranks))
    print(f"(lower bound if the whole cluster had the fast fabric: {dream} cycles)")
    assert dream <= plan.total_cycles

    # --- show the leader plan embedded on global ranks ------------------
    # leaders sit at global ranks 0, 8, 16, ...
    sends = [
        (op.time, op.src, op.dst)
        for op in plan.leader_schedule.sorted_sends()
    ]
    assert all(s % CORES == 0 and d % CORES == 0 for _, s, d in sends)
    print("\nleader-phase messages on global ranks (time, src, dst):")
    for row in sends:
        print(f"  {row}")


if __name__ == "__main__":
    main()
