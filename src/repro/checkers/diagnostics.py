"""Diagnostic records emitted by the codebase checkers.

The schedule lint engine's :class:`~repro.analyze.diagnostics.Diagnostic`
points at *send indices*; a codebase finding points at a *file and
line*.  Everything else carries over — and the severity scale is
literally shared: :class:`~repro.analyze.diagnostics.Severity` is
re-exported here so ``--fail-on`` parsing, SARIF level mapping and the
ERROR/WARNING semantics are one implementation across both tiers.

Severity semantics for code checks:

* ``ERROR`` — the convention is load-bearing for correctness or the
  perf architecture (a hot-module send loop, a threshold comparison
  outside :mod:`repro.dispatch`, non-canonical bytes in a keyed path,
  a lock-guarded attribute mutated without the lock).
* ``WARNING`` — the convention guards against slow rot (unbounded
  caches, opaque exceptions).  ``repro check`` defaults to
  ``--fail-on warning``: a clean tree stays clean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.analyze.diagnostics import Severity

__all__ = ["Severity", "CheckDiagnostic", "CheckReport", "UNUSED_SUPPRESSION"]

#: The engine-level meta rule: a ``# repro: ignore[...]`` comment whose
#: rule ran but matched nothing on that line.  Stale suppressions hide
#: future regressions, so they are findings themselves (and cannot be
#: suppressed in turn).
UNUSED_SUPPRESSION = "REPRO000"


@dataclass(frozen=True)
class CheckDiagnostic:
    """One structured code finding, anchored to ``path:line``."""

    rule: str
    severity: Severity
    path: str
    line: int
    message: str
    fixit: str | None = None

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity.label,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }
        if self.fixit is not None:
            out["fixit"] = self.fixit
        return out

    def render(self) -> str:
        """The byte-stable one-line text form."""
        return (
            f"{self.path}:{self.line}: {self.rule} "
            f"{self.severity.label}: {self.message}"
        )


@dataclass
class CheckReport:
    """All diagnostics from one ``repro check`` run, plus run metadata.

    ``rules_run`` lists every rule that executed on at least one file
    (so "no diagnostics" is distinguishable from "rule never applied");
    ``rule_totals`` maps rule id -> total findings.  ``elapsed_s`` is
    excluded from every rendered form so output stays byte-stable.
    """

    diagnostics: list[CheckDiagnostic]
    rules_run: list[str]
    rule_totals: dict[str, int]
    files_checked: int
    elapsed_s: float = 0.0

    def __iter__(self) -> Iterator[CheckDiagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity == severity)

    @property
    def errors(self) -> list[CheckDiagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.ERROR]

    @property
    def warnings(self) -> list[CheckDiagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    @property
    def max_severity(self) -> Severity | None:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def at_least(self, severity: Severity) -> list[CheckDiagnostic]:
        return [d for d in self.diagnostics if d.severity >= severity]

    def rule_ids(self) -> list[str]:
        """Sorted distinct rule ids that fired (the corpus-pinned view)."""
        return sorted({d.rule for d in self.diagnostics})
