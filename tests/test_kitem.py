"""Tests for k-item broadcast: bounds, blocks, single-sending schedules."""

import pytest

from repro.core.fib import broadcast_time_postal, reachable_postal
from repro.core.kitem.blocks import block_layout, block_transmission_digraph
from repro.core.kitem.bounds import (
    continuous_based_time,
    continuous_phase_length,
    endgame_length,
    kitem_lower_bound,
    kitem_upper_bound,
    single_sending_lower_bound,
)
from repro.core.kitem.single_sending import (
    completion,
    continuous_based_schedule,
    greedy_single_sending_schedule,
    pruned_tree_assignment,
    single_sending_schedule,
)
from repro.sim.machine import replay
from repro.sim.validate import is_single_sending
from tests.conftest import assert_kitem_complete


class TestBounds:
    def test_ordering(self):
        # lower <= single-sending-lower <= upper for all params
        for L in (1, 2, 3, 4):
            for P in (2, 5, 10, 22):
                for k in (1, 3, 9):
                    lb = kitem_lower_bound(P, L, k)
                    ss = single_sending_lower_bound(P, L, k)
                    ub = kitem_upper_bound(P, L, k)
                    assert lb <= ss <= ub

    def test_upper_minus_ss_is_L_minus_1(self):
        for L in (1, 2, 3, 5):
            assert kitem_upper_bound(10, L, 7) - single_sending_lower_bound(10, L, 7) == L - 1

    def test_fig2_numbers(self):
        # P=10, L=3, k=8: lower bound 15, continuous-based time 17
        assert kitem_lower_bound(10, 3, 8) == 15
        assert continuous_based_time(10, 3, 8) == 17

    def test_phase_structure(self):
        # continuous phase + endgame covers all items
        P, L, k = 10, 3, 8
        assert continuous_phase_length(P, L, k) == 6  # k - k* = 8 - 2
        assert endgame_length(P, L) == 7  # B(9)


class TestBlocks:
    def test_fig3_layout(self):
        lay = block_layout(11, 3)
        assert lay.P_minus_1 == 41
        assert sorted(lay.blocks, reverse=True) == [9, 6, 5, 4, 3, 3, 2, 2, 2, 1, 1, 1, 1]

    def test_fig3_digraph_flow(self):
        g = block_transmission_digraph(11, 3)
        for node, data in g.nodes(data=True):
            size = data["size"]
            if size is None:
                continue
            inbound = sum(d["weight"] for *_e, d in g.in_edges(node, data=True))
            outbound = sum(d["weight"] for *_e, d in g.out_edges(node, data=True))
            assert inbound == (size if size else 1)
            if size:
                assert outbound == size

    def test_digraph_one_active_in_per_block(self):
        g = block_transmission_digraph(11, 3)
        for node, data in g.nodes(data=True):
            if data["size"]:
                actives = [
                    d for *_e, d in g.in_edges(node, data=True) if d["kind"] == "active"
                ]
                assert len(actives) == 1

    def test_other_odd_L_instances(self):
        # the accounting balances on other odd-L machines too
        for t, L in ((13, 3), (12, 5), (14, 5)):
            block_transmission_digraph(t, L)

    def test_even_L_rejected(self):
        with pytest.raises(ValueError):
            block_transmission_digraph(10, 4)


class TestContinuousBased:
    def test_fig2_k8(self):
        s = continuous_based_schedule(8, 7, 3)
        done = assert_kitem_complete(s, P=10, k=8)
        assert done == 17  # L + B + k - 1
        assert is_single_sending(s)

    def test_matches_formula(self):
        for t, L in ((7, 3), (8, 3), (9, 4)):
            s = continuous_based_schedule(5, t, L)
            if s is None:
                continue
            P = reachable_postal(t, L) + 1
            assert assert_kitem_complete(s, P=P, k=5) == continuous_based_time(P, L, 5)

    def test_l2_returns_none(self):
        assert continuous_based_schedule(5, 7, 2) is None


class TestPrunedTreeRoute:
    @pytest.mark.parametrize("P,L", [(6, 2), (11, 3), (12, 4), (20, 2), (15, 5)])
    def test_assignment_found_and_bounded(self, P, L):
        a = pruned_tree_assignment(P, L)
        assert a is not None
        t = broadcast_time_postal(P - 1, L)
        assert t <= a.completion <= t + L - 1


class TestSingleSending:
    @pytest.mark.parametrize("L", [1, 2, 3, 4])
    @pytest.mark.parametrize("P", [2, 3, 5, 9, 10, 14, 22])
    def test_meets_theorem_36(self, P, L):
        k = 5
        s = single_sending_schedule(k, P, L)
        done = assert_kitem_complete(s, P=P, k=k)
        assert is_single_sending(s)
        assert done <= kitem_upper_bound(P, L, k)
        assert done >= kitem_lower_bound(P, L, k)

    def test_often_hits_single_sending_lb(self):
        # measured: for most P the scheduler is exactly optimal
        hits = 0
        for P in range(3, 20):
            s = single_sending_schedule(4, P, 3)
            if completion(s) == single_sending_lower_bound(P, 3, 4):
                hits += 1
        assert hits >= 14

    def test_two_processors_stream(self):
        s = single_sending_schedule(6, 2, 4)
        assert assert_kitem_complete(s, P=2, k=6) == 4 + 6 - 1

    def test_k1_is_single_item_broadcast(self):
        s = single_sending_schedule(1, 10, 3)
        done = assert_kitem_complete(s, P=10, k=1)
        assert done == 3 + broadcast_time_postal(9, 3)

    def test_rejects_P1(self):
        with pytest.raises(ValueError):
            single_sending_schedule(3, 1, 2)


class TestGreedyFallback:
    def test_greedy_valid_and_single_sending(self):
        s = greedy_single_sending_schedule(4, 7, 2)
        assert_kitem_complete(s, P=7, k=4)
        assert is_single_sending(s)


class TestLargeLatencyRegime:
    """Machines where L dwarfs P: the star-tree route must hold Thm 3.6."""

    @pytest.mark.parametrize("P,L", [(10, 12), (16, 15), (8, 20), (5, 9)])
    def test_meets_theorem_36(self, P, L):
        k = 5
        s = single_sending_schedule(k, P, L)
        done = assert_kitem_complete(s, P=P, k=k)
        assert is_single_sending(s)
        assert done <= kitem_upper_bound(P, L, k)


class TestTheorem32Structure:
    """Bound-meeting schedules have the continuous-phase structure."""

    def test_source_sends_distinct_items_first(self):
        # Thm 3.2: a schedule meeting the Thm 3.1 bound sends distinct
        # items from the source in the first k - k* steps
        from repro.core.fib import k_star

        P, L, k = 10, 3, 8
        s = continuous_based_schedule(k, 7, L)
        source_sends = sorted(
            (op.time, op.item) for op in s.sends if op.src == 0
        )
        phase_len = k - k_star(P, L)
        first_phase_items = [item for t, item in source_sends[:phase_len]]
        assert len(set(first_phase_items)) == phase_len

    def test_source_single_sends_throughout(self):
        # our continuous-based schedules are single-sending, a stronger
        # property than Thm 3.2 requires for the endgame
        s = continuous_based_schedule(8, 7, 3)
        from collections import Counter

        counts = Counter(op.item for op in s.sends if op.src == 0)
        assert all(c == 1 for c in counts.values())
