"""LogP legality checking for schedules.

:func:`violations` inspects a :class:`~repro.schedule.ops.Schedule` and
returns a list of human-readable violation strings (empty means the
schedule is a legal LogP execution).  The checks implement the model of
Section 1 of the paper:

* **causality** — a processor only sends items it already holds;
* **send gap** — successive send *starts* at one processor are >= ``g``
  apart;
* **receive gap** — successive receive *starts* at one processor are
  >= ``g`` apart;
* **overhead exclusivity** — when ``o > 0``, the send and receive
  overhead intervals at one processor are pairwise disjoint;
* **capacity** — at most ``ceil(L/g)`` messages are simultaneously in
  transit from any processor, and to any processor.

Two further *problem-specific* predicates are provided:
:func:`single_reception_violations` (no processor receives the same item
twice — the "correctness" criterion of Section 3.1) and
:func:`is_single_sending` (the source transmits each item exactly once —
Section 3.4).

Large schedules are checked by the vectorized engine
(:mod:`repro.sim.validate_np`), which returns the same violation
strings.  The objects-vs-numpy routing is owned by
:mod:`repro.dispatch`: pass ``backend="objects"`` (or the legacy
``force_scalar=True``) to pin the pure-Python path per call, or set the
``REPRO_FAST_PATH_THRESHOLD`` / ``REPRO_DISPATCH`` environment variables
before the package is imported to move the process-wide policy.
"""

from __future__ import annotations

from typing import Hashable

from repro import dispatch as _dispatch
from repro.schedule.analysis import availability
from repro.schedule.ops import Schedule, SendOp

__all__ = [
    "violations",
    "assert_valid",
    "single_reception_violations",
    "is_single_sending",
]

Item = Hashable


def _interval_overlap(a0: int, a1: int, b0: int, b1: int) -> bool:
    return a0 < b1 and b0 < a1


def violations(
    schedule: Schedule,
    check_capacity: bool = True,
    force_scalar: bool = False,
    backend: str | None = None,
) -> list[str]:
    """Return all LogP-model violations in ``schedule`` (empty if legal).

    Engine choice follows the :mod:`repro.dispatch` policy;
    ``backend="objects"``/``"numpy"`` overrides it for this call
    (``force_scalar=True`` is the legacy spelling of
    ``backend="objects"``).
    """
    if schedule.machine is not None and not schedule.machine.is_flat:
        # per-level pricing lives only in the vectorized engine; the
        # scalar path below is flat-machine-only by construction
        from repro.sim.validate_np import violations_np

        return violations_np(schedule, check_capacity=check_capacity)
    if force_scalar:
        backend = _dispatch.OBJECTS
    if _dispatch.use_numpy(schedule.num_sends, override=backend):
        from repro.sim.validate_np import violations_np

        return violations_np(schedule, check_capacity=check_capacity)
    params = schedule.params
    problems: list[str] = []

    avail = availability(schedule)

    # Causality: the item must be available at the sender at send start.
    for op in schedule.sorted_sends():
        have = avail.get((op.src, op.item))
        if have is None:
            problems.append(
                f"causality: proc {op.src} sends item {op.item!r} at t={op.time} "
                f"but never holds it"
            )
        elif op.time < have:
            problems.append(
                f"causality: proc {op.src} sends item {op.item!r} at t={op.time} "
                f"but only holds it from t={have}"
            )
        if op.src == op.dst:
            problems.append(f"self-send: proc {op.src} at t={op.time}")

    # Gap between consecutive sends at one processor.
    for proc, ops in schedule.sends_by_proc().items():
        for prev, cur in zip(ops, ops[1:]):
            if cur.time - prev.time < params.g:
                problems.append(
                    f"send gap: proc {proc} sends at t={prev.time} and "
                    f"t={cur.time} (< g={params.g} apart)"
                )

    # Gap between consecutive receives at one processor.
    for proc, ops in schedule.receives_by_proc().items():
        starts = [op.receive_start(params) for op in ops]
        for prev, cur in zip(starts, starts[1:]):
            if cur - prev < params.g:
                problems.append(
                    f"receive gap: proc {proc} receives at t={prev} and "
                    f"t={cur} (< g={params.g} apart)"
                )

    # Overhead exclusivity (only binding when o > 0).
    if params.o > 0:
        busy: dict[int, list[tuple[int, int, str]]] = {}
        for op in schedule.sends:
            busy.setdefault(op.src, []).append(
                (op.time, op.time + params.o, f"send@{op.time}")
            )
            rs = op.receive_start(params)
            busy.setdefault(op.dst, []).append(
                (rs, rs + params.o, f"recv@{rs}")
            )
        for proc, intervals in busy.items():
            intervals.sort()
            for (a0, a1, what_a), (b0, b1, what_b) in zip(intervals, intervals[1:]):
                if _interval_overlap(a0, a1, b0, b1):
                    problems.append(
                        f"overhead overlap: proc {proc} busy with {what_a} "
                        f"and {what_b}"
                    )

    # Network capacity: <= ceil(L/g) in transit per source and per dest.
    if check_capacity:
        cap = params.capacity
        events: dict[tuple[str, int], list[tuple[int, int]]] = {}
        for op in schedule.sends:
            t0 = op.time + params.o
            t1 = t0 + params.L
            events.setdefault(("from", op.src), []).append((t0, +1))
            events.setdefault(("from", op.src), []).append((t1, -1))
            events.setdefault(("to", op.dst), []).append((t0, +1))
            events.setdefault(("to", op.dst), []).append((t1, -1))
        for (direction, proc), evs in events.items():
            evs.sort()
            in_flight = 0
            for _t, delta in evs:
                in_flight += delta
                if in_flight > cap:
                    problems.append(
                        f"capacity: > {cap} messages in transit "
                        f"{direction} proc {proc}"
                    )
                    break

    return problems


def assert_valid(schedule: Schedule, check_capacity: bool = True) -> None:
    """Raise ``ValueError`` with all violations if the schedule is illegal."""
    problems = violations(schedule, check_capacity=check_capacity)
    if problems:
        preview = "\n  ".join(problems[:10])
        more = f"\n  ... and {len(problems) - 10} more" if len(problems) > 10 else ""
        raise ValueError(f"illegal LogP schedule:\n  {preview}{more}")


def single_reception_violations(schedule: Schedule) -> list[str]:
    """Check the broadcast *correctness* criterion: no processor receives
    the same item twice (and no processor receives an item it started with).
    """
    problems: list[str] = []
    seen: set[tuple[int, Item]] = set()
    for proc, items in schedule.initial.items():
        for item in items:
            seen.add((proc, item))
    for op in schedule.sorted_sends():
        key = (op.dst, op.item)
        if key in seen:
            problems.append(
                f"duplicate reception: proc {op.dst} receives item "
                f"{op.item!r} more than once (send at t={op.time})"
            )
        seen.add(key)
    return problems


def is_single_sending(
    schedule: Schedule,
    source: int = 0,
    items: set[Item] | None = None,
) -> bool:
    """True iff the source transmits each item exactly once (Section 3.4).

    ``items`` names the item set the criterion quantifies over and
    defaults to the source's initial holdings.  Every item in that set
    must be sent exactly once by ``source`` — a source that never
    transmits one of its items is *not* single-sending (it is simply not
    broadcasting) — and no item at all may be sent twice.
    """
    if items is None:
        items = set(schedule.initial.get(source, set()))
    counts: dict[Item, int] = {}
    for op in schedule.sends:
        if op.src == source:
            counts[op.item] = counts.get(op.item, 0) + 1
    if any(counts.get(item, 0) != 1 for item in items):
        return False
    return all(count == 1 for count in counts.values())
