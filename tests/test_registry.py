"""Registry-parametrized suite: every collective through one entry point.

Replaces the five per-builder lint smoke tests that used to be scattered
across ``test_single_item.py`` / ``test_kitem.py`` / ``test_all_to_all.py``
/ ``test_combining.py`` / ``test_summation.py``: each registered
:class:`~repro.registry.spec.CollectiveSpec` sample case is built via
:func:`repro.registry.plan` and must

* replay legally on the LogP simulator,
* pass the static lint sweep with nothing at ERROR severity,
* complete no earlier than its registered closed-form lower bound —
  and *exactly at* the bound whenever the spec claims tightness,
* round-trip through JSON serialization byte-identically, from every
  storage backend the spec supports.

Adding a spec to :mod:`repro.registry.specs` automatically enrolls it
here — no new test code required.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import registry
from repro.analyze import assert_lint_clean
from repro.params import LogPParams
from repro.schedule.serialize import schedule_from_json, schedule_to_json
from repro.sim.machine import replay


def split_case(case: dict) -> tuple[LogPParams, dict]:
    case = dict(case)
    params = LogPParams(
        P=case.pop("P"),
        L=case.pop("L"),
        o=case.pop("o", 0),
        g=case.pop("g", 1),
    )
    return params, case


CASES = [
    pytest.param(spec, case, id=f"{spec.name}-{i}")
    for spec in registry.specs()
    for i, case in enumerate(spec.sample_cases)
]

SPECS_BY_ID = [pytest.param(spec, id=spec.name) for spec in registry.specs()]


class TestEverySpec:
    def test_registry_covers_all_builders(self):
        assert registry.spec_names() == (
            "broadcast",
            "kitem",
            "continuous",
            "all-to-all",
            "summation",
            "allreduce",
            "reduction",
            "hier-bcast",
            "hier-reduce",
        )

    @pytest.mark.parametrize("spec", SPECS_BY_ID)
    def test_spec_has_sample_cases_and_metadata(self, spec):
        assert spec.sample_cases, f"{spec.name} has no sample cases"
        assert spec.theorem
        assert spec.paper
        assert spec.summary

    @pytest.mark.parametrize("spec,case", CASES)
    def test_replays_legally(self, spec, case):
        params, extra = split_case(case)
        replay(registry.plan(spec.name, params, **extra))

    @pytest.mark.parametrize("spec,case", CASES)
    def test_lint_clean(self, spec, case):
        params, extra = split_case(case)
        assert_lint_clean(registry.plan(spec.name, params, **extra))

    @pytest.mark.parametrize("spec,case", CASES)
    def test_meets_registered_lower_bound(self, spec, case):
        params, extra = split_case(case)
        schedule = registry.plan(spec.name, params, **extra)
        bound = registry.lower_bound(spec.name, params, **extra)
        assert bound is not None, f"{spec.name} registered no lower bound"
        done = registry.completion(schedule)
        assert done >= bound
        if spec.tight is not None:
            resolved = spec.validate_extra(params, extra)
            if spec.tight(params, **resolved):
                assert done == bound, (
                    f"{spec.name} claims tightness but completes at "
                    f"{done} > bound {bound}"
                )

    @pytest.mark.parametrize("spec,case", CASES)
    def test_serialize_round_trip_every_backend(self, spec, case):
        params, extra = split_case(case)
        blobs = {}
        for backend in spec.backends:
            schedule = registry.plan(
                spec.name, params, backend=backend, **extra
            )
            blob = schedule_to_json(schedule)
            assert schedule_to_json(schedule_from_json(blob)) == blob
            blobs[backend] = blob
        # both storage backends must serialize to the same bytes
        assert len(set(blobs.values())) == 1, sorted(blobs)


class TestLookup:
    def test_every_alias_resolves_to_its_spec(self):
        for spec in registry.specs():
            for name in spec.all_names():
                assert registry.get_spec(name) is spec

    def test_alias_plans_identically(self):
        params = LogPParams(P=8, L=6, o=2, g=4)
        assert registry.plan("bcast", params) == registry.plan(
            "broadcast", params
        )

    def test_unknown_collective_is_one_line(self):
        with pytest.raises(ValueError, match=r"unknown collective 'scan'"):
            registry.get_spec("scan")
        try:
            registry.get_spec("scan")
        except ValueError as exc:
            assert "\n" not in str(exc)
            assert "broadcast" in str(exc)  # lists the known names

    def test_names_are_unique(self):
        names = [n for s in registry.specs() for n in s.all_names()]
        assert len(names) == len(set(names))


class TestDomainErrors:
    def test_kitem_rejects_small_P(self):
        with pytest.raises(ValueError, match=r"kitem: P must be >= 2, got 1"):
            registry.plan("kitem", P=1, L=3, k=2)

    def test_kitem_rejects_small_k(self):
        with pytest.raises(ValueError, match=r"kitem: k must be >= 1, got 0"):
            registry.plan("kitem", P=4, L=3, k=0)

    def test_kitem_rejects_non_postal_machine(self):
        with pytest.raises(ValueError, match=r"kitem: requires the postal"):
            registry.plan("kitem", P=4, L=3, o=1, g=2, k=2)

    def test_kitem_requires_k(self):
        with pytest.raises(ValueError, match=r"kitem: missing required"):
            registry.plan("kitem", P=4, L=3)

    def test_unknown_extra_parameter_lists_accepted(self):
        with pytest.raises(
            ValueError, match=r"broadcast: unknown parameter\(s\) k"
        ):
            registry.plan("broadcast", P=4, L=3, k=2)

    def test_non_integer_extra_rejected(self):
        with pytest.raises(ValueError, match=r"kitem: k must be an int"):
            registry.plan("kitem", P=4, L=3, k="many")

    def test_summation_needs_exactly_one_of_n_t(self):
        with pytest.raises(ValueError, match="exactly one"):
            registry.plan("summation", P=4, L=2, n=10, t=9)
        with pytest.raises(ValueError, match="exactly one"):
            registry.plan("summation", P=4, L=2)

    def test_continuous_rejects_unreachable_P(self):
        with pytest.raises(ValueError, match=r"nearest valid P is 15"):
            registry.plan("continuous", P=14, L=4, k=3)

    def test_continuous_rejects_small_L(self):
        with pytest.raises(ValueError, match=r"continuous: .* L >= 3"):
            registry.plan("continuous", P=3, L=2, k=3)

    def test_backend_override_must_be_supported(self):
        with pytest.raises(ValueError, match=r"not supported"):
            registry.plan("kitem", P=4, L=3, k=2, backend="columnar")
        with pytest.raises(ValueError, match="backend"):
            registry.plan("broadcast", P=4, L=3, backend="rowwise")

    def test_params_and_machine_kwargs_conflict(self):
        with pytest.raises(ValueError, match="not both"):
            registry.plan("broadcast", LogPParams(P=4, L=3), P=4, L=3)

    def test_machine_kwargs_require_L(self):
        with pytest.raises(ValueError, match="L= is required"):
            registry.plan("broadcast", P=4)

    def test_bad_machine_propagates_params_validation(self):
        with pytest.raises(ValueError):
            registry.plan("broadcast", P=0, L=3)


machines = st.builds(
    lambda P, L, o, dg: LogPParams(P=P, L=L, o=o, g=o + dg),
    P=st.integers(1, 24),
    L=st.integers(1, 10),
    o=st.integers(0, 3),
    dg=st.integers(1, 4),
)

postal_machines = st.builds(
    lambda P, L: LogPParams(P=P, L=L),
    P=st.integers(2, 24),
    L=st.integers(1, 8),
)


class TestHypothesis:
    @settings(max_examples=30, deadline=None)
    @given(params=machines)
    def test_broadcast_always_tight_and_clean(self, params):
        schedule = registry.plan("broadcast", params)
        assert_lint_clean(schedule)
        assert registry.completion(schedule) == registry.lower_bound(
            "broadcast", params
        )

    @settings(max_examples=30, deadline=None)
    @given(params=machines.filter(lambda p: p.P >= 2))
    def test_reduction_mirrors_broadcast_time(self, params):
        schedule = registry.plan("reduction", params)
        assert_lint_clean(schedule)
        assert registry.completion(schedule) == registry.lower_bound(
            "reduction", params
        )

    @settings(max_examples=30, deadline=None)
    @given(params=machines.filter(lambda p: p.P >= 2))
    def test_all_to_all_meets_bound(self, params):
        schedule = registry.plan("all-to-all", params)
        assert_lint_clean(schedule)
        done = registry.completion(schedule)
        bound = registry.lower_bound("all-to-all", params)
        assert done >= bound
        spec = registry.get_spec("all-to-all")
        if spec.tight(params):
            assert done == bound

    @settings(max_examples=30, deadline=None)
    @given(params=postal_machines, k=st.integers(1, 6))
    def test_kitem_clean_and_above_counting_bound(self, params, k):
        schedule = registry.plan("kitem", params, k=k)
        assert_lint_clean(schedule)
        assert registry.completion(schedule) >= registry.lower_bound(
            "kitem", params, k=k
        )

    @settings(max_examples=30, deadline=None)
    @given(
        params=st.builds(
            lambda P, L, o, dg: LogPParams(P=P, L=L, o=o, g=o + dg),
            P=st.integers(1, 10),
            L=st.integers(1, 6),
            o=st.integers(0, 2),
            dg=st.integers(1, 3),
        ),
        n=st.integers(1, 120),
    )
    def test_summation_meets_min_time(self, params, n):
        schedule = registry.plan("summation", params, n=n)
        assert_lint_clean(schedule)
        assert registry.completion(schedule) == registry.lower_bound(
            "summation", params, n=n
        )

    @settings(max_examples=30, deadline=None)
    @given(params=postal_machines)
    def test_allreduce_completes_at_combining_time(self, params):
        schedule = registry.plan("allreduce", params)
        assert_lint_clean(schedule)
        assert registry.completion(schedule) == registry.lower_bound(
            "allreduce", params
        )

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_any_sample_case_round_trips(self, data):
        spec, case = data.draw(st.sampled_from(CASES).map(lambda p: p.values))
        params, extra = split_case(case)
        schedule = registry.plan(spec.name, params, **extra)
        blob = schedule_to_json(schedule)
        assert schedule_to_json(schedule_from_json(blob)) == blob
