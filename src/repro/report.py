"""One-shot machine reports: everything the paper says about *your* machine.

:func:`machine_report` produces a self-contained Markdown document for a
given LogP parameter set: the optimal broadcast tree and its margin over
the classic shapes, k-item pipelining numbers, continuous-broadcast
capability, all-to-all and combining costs, and summation capacity — each
figure computed by the validated planners, not closed forms alone.

CLI: ``python -m repro.cli report --P 32 --L 12 --o 1 --g 2``.
"""

from __future__ import annotations

from repro.baselines.summation import binary_reduction_capacity
from repro.baselines.trees import baseline_broadcast
from repro.comm import Communicator
from repro.core.all_to_all import all_to_all_time, is_tight
from repro.core.fib import broadcast_time, broadcast_time_postal, k_star
from repro.core.kitem.bounds import kitem_upper_bound, single_sending_lower_bound
from repro.core.kitem.single_sending import completion, single_sending_schedule
from repro.core.summation.capacity import min_summation_time, summation_capacity
from repro.core.tree import optimal_tree
from repro.params import LogPParams
from repro.schedule.analysis import broadcast_delay_per_proc
from repro.sim.machine import replay
from repro.viz.ascii import render_tree

__all__ = ["machine_report"]


def _bcast_section(machine: LogPParams) -> list[str]:
    tree = optimal_tree(machine)
    optimal = tree.completion_time
    lines = [
        "## Single-item broadcast (Theorem 2.1)",
        "",
        f"Optimal time **B(P) = {optimal} cycles**.  Classic tree shapes:",
        "",
        "| shape | cycles | overhead vs optimal |",
        "|---|---|---|",
    ]
    for name in ("binomial", "binary", "flat", "chain"):
        schedule = baseline_broadcast(name, machine)
        replay(schedule)
        worst = max(broadcast_delay_per_proc(schedule).values())
        pct = 100.0 * (worst - optimal) / optimal if optimal else 0.0
        lines.append(f"| {name} | {worst} | +{pct:.0f}% |")
    lines += ["", "Optimal tree:", "", "```", render_tree(tree), "```", ""]
    return lines


def _kitem_section(machine: LogPParams, ks: tuple[int, ...]) -> list[str]:
    postal_view = machine.to_postal()
    P, L = postal_view.P, postal_view.L
    lines = [
        "## k-item broadcast (Section 3, postal view "
        f"L' = L + 2o = {L})",
        "",
        f"Endgame size k\\* = {k_star(P, L)}.",
        "",
        "| k | Thm 3.1 LB | achieved | single-sending LB | Thm 3.6 UB |",
        "|---|---|---|---|---|",
    ]
    for k in ks:
        schedule = single_sending_schedule(k, P, L)
        replay(schedule)
        lines.append(
            f"| {k} | {kitem_lower_bound_cached(P, L, k)} | "
            f"**{completion(schedule)}** | "
            f"{single_sending_lower_bound(P, L, k)} | "
            f"{kitem_upper_bound(P, L, k)} |"
        )
    lines.append("")
    return lines


def kitem_lower_bound_cached(P: int, L: int, k: int) -> int:
    from repro.core.fib import kitem_lower_bound

    return kitem_lower_bound(P, L, k)


def _collectives_section(machine: LogPParams) -> list[str]:
    comm = Communicator(machine)
    lines = [
        "## Other collectives (Sections 4-5)",
        "",
        f"* **Reduce** (time-reversed broadcast): "
        f"{comm.reduce().cycles} cycles",
    ]
    postal_view = machine.to_postal()
    allreduce = Communicator(postal_view).allreduce()
    algo = allreduce.meta.get("algorithm")
    lines.append(
        f"* **All-reduce** (postal view): {allreduce.cycles} steps via "
        f"{algo}"
        + (
            " — *same cost as a plain reduction* (Theorem 4.1)"
            if algo == "combining"
            else f" (P = {postal_view.P} is not a P(T) size; combining "
            "needs one — consider rounding the group)"
        )
    )
    tight = "meets the lower bound" if is_tight(machine) else (
        "stretched for send/receive overhead interleaving"
    )
    lines.append(
        f"* **All-to-all**: {all_to_all_time(machine)} cycles ({tight})"
    )
    return lines + [""]


def _summation_section(machine: LogPParams, ns: tuple[int, ...]) -> list[str]:
    lines = [
        "## Summation (Section 5)",
        "",
        "| n operands | optimal cycles | binary-tree capacity at that t |",
        "|---|---|---|",
    ]
    for n in ns:
        t = min_summation_time(n, machine)
        lines.append(
            f"| {n} | **{t}** | {binary_reduction_capacity(t, machine)} |"
        )
    horizon = 3 * broadcast_time(machine.P, machine) + machine.P
    lines += [
        "",
        f"Capacity at t = {horizon}: "
        f"{summation_capacity(horizon, machine)} operands "
        f"(+{machine.P}/cycle beyond).",
        "",
    ]
    return lines


def machine_report(
    machine: LogPParams,
    ks: tuple[int, ...] = (2, 8, 32),
    ns: tuple[int, ...] = (16, 128, 1024),
) -> str:
    """Render the full Markdown report for ``machine``."""
    lines = [
        f"# LogP collectives report — {machine}",
        "",
        f"Network capacity ceil(L/g) = {machine.capacity}; "
        f"per-message cost L + 2o = {machine.send_cost} cycles; "
        f"postal-equivalent latency L' = {machine.to_postal().L}.",
        "",
    ]
    lines += _bcast_section(machine)
    lines += _kitem_section(machine, ks)
    lines += _collectives_section(machine)
    lines += _summation_section(machine, ns)
    lines += [
        "---",
        "Generated by logp-collectives (Karp-Sahay-Santos-Schauser, "
        "SPAA'93, reproduced); every number above comes from a schedule "
        "that replayed cleanly on the strict LogP validator.",
    ]
    return "\n".join(lines)
