"""Property-based tests (hypothesis) for core invariants."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.continuous.relative import instance_for
from repro.core.continuous.words import (
    enumerate_legal_words,
    family_f1,
    is_legal_pattern,
    is_legal_word,
)
from repro.core.fib import (
    broadcast_time,
    broadcast_time_postal,
    fib_sequence,
    k_star,
    reachable,
    reachable_postal,
)
from repro.core.single_item import optimal_broadcast_schedule
from repro.core.summation.capacity import operand_distribution, summation_capacity
from repro.core.tree import optimal_tree, tree_for_time
from repro.params import LogPParams, postal
from repro.schedule.analysis import broadcast_delay_per_proc
from repro.sim.machine import replay

@st.composite
def _logp_params(draw):
    g = draw(st.integers(min_value=1, max_value=5))
    return LogPParams(
        P=draw(st.integers(min_value=1, max_value=40)),
        L=draw(st.integers(min_value=1, max_value=8)),
        o=draw(st.integers(min_value=0, max_value=min(3, g))),
        g=g,
    )


params_strategy = _logp_params()

postal_strategy = st.builds(
    postal,
    P=st.integers(min_value=2, max_value=60),
    L=st.integers(min_value=1, max_value=8),
)


class TestFibProperties:
    @given(L=st.integers(1, 10), t=st.integers(0, 40))
    def test_prefix_sum_identity(self, L, t):
        seq = fib_sequence(L, t + L)
        assert 1 + sum(seq[: t + 1]) == seq[t + L]

    @given(L=st.integers(1, 8), t=st.integers(0, 25))
    def test_monotone_nondecreasing(self, L, t):
        seq = fib_sequence(L, t + 1)
        assert seq[t + 1] >= seq[t]

    @given(p=postal_strategy)
    def test_B_and_P_are_inverse(self, p):
        t = broadcast_time_postal(p.P, p.L)
        assert reachable_postal(t, p.L) >= p.P
        if t:
            assert reachable_postal(t - 1, p.L) < p.P

    @given(p=params_strategy)
    def test_general_B_inverse(self, p):
        t = broadcast_time(p.P, p)
        assert reachable(t, p) >= p.P
        if t:
            assert reachable(t - 1, p) < p.P

    @given(P=st.integers(3, 80), L=st.integers(1, 8))
    def test_k_star_bounded(self, P, L):
        assert 0 <= k_star(P, L) <= L


class TestTreeProperties:
    @given(p=params_strategy)
    @settings(max_examples=60)
    def test_optimal_tree_invariants(self, p):
        tree = optimal_tree(p)
        tree.validate()
        assert len(tree) == p.P
        assert tree.completion_time == broadcast_time(p.P, p)

    @given(p=params_strategy)
    @settings(max_examples=40)
    def test_schedule_replays_and_is_optimal(self, p):
        schedule = optimal_broadcast_schedule(p)
        replay(schedule)
        delays = broadcast_delay_per_proc(schedule)
        assert len(delays) == p.P
        assert max(delays.values()) == broadcast_time(p.P, p)

    @given(t=st.integers(0, 14), L=st.integers(1, 6))
    def test_tree_for_time_size(self, t, L):
        p = postal(P=1, L=L)
        assert len(tree_for_time(t, p)) == reachable(t, p)


class TestWordProperties:
    @given(
        pattern=st.lists(st.integers(0, 8), min_size=1, max_size=7),
    )
    def test_legality_is_rotation_invariant(self, pattern):
        n = len(pattern)
        rotations = [pattern[i:] + pattern[:i] for i in range(n)]
        results = {is_legal_pattern(r) for r in rotations}
        assert len(results) == 1

    @given(
        L=st.integers(3, 6),
        r=st.integers(2, 7),
    )
    @settings(max_examples=40)
    def test_f1_always_legal(self, L, r):
        for w in family_f1(r, L):
            assert is_legal_word(r, w, L)

    @given(L=st.integers(2, 4), r=st.integers(2, 6))
    @settings(max_examples=30)
    def test_enumeration_sound(self, L, r):
        for w in enumerate_legal_words(r, L):
            assert is_legal_word(r, w, L)

    @given(
        L=st.integers(2, 5),
        r=st.integers(2, 6),
        word=st.lists(st.integers(0, 4), min_size=1, max_size=5),
    )
    @settings(max_examples=60)
    def test_enumeration_complete(self, L, r, word):
        # any legal word of the right shape appears in the enumeration
        w = tuple(m % L for m in word)
        if len(w) != r - 1:
            return
        if is_legal_word(r, w, L):
            assert w in set(enumerate_legal_words(r, L))


class TestInstanceProperties:
    @given(L=st.integers(2, 6), t=st.integers(2, 14))
    @settings(max_examples=50)
    def test_instances_consistent(self, L, t):
        if t < L:
            return
        inst = instance_for(t, L)
        assert inst.consistent()
        assert inst.P_minus_1 == reachable_postal(t, L)


class TestSummationProperties:
    @given(
        P=st.integers(1, 12),
        L=st.integers(1, 6),
        o=st.integers(0, 3),
        g=st.integers(1, 4),
        slack=st.integers(0, 15),
    )
    @settings(max_examples=50)
    def test_capacity_formula_consistency(self, P, L, o, g, slack):
        p = LogPParams(P=P, L=L, o=min(o, g), g=g)
        o = p.o
        from repro.core.summation.capacity import summation_tree

        tree = summation_tree(p)
        t_min = max(nd.delay + (o + 1) * nd.out_degree for nd in tree.nodes)
        t = t_min + slack
        dist = operand_distribution(t, p)
        assert all(c >= 1 for c in dist)
        assert sum(dist) == summation_capacity(t, p)
        # closed form: sum(t - d_i) - (o+1)(P-1) + P
        delays = tree.delays()
        assert sum(dist) == sum(t - d for d in delays) - (o + 1) * (P - 1) + P


class TestExpansionFuzz:
    """Randomized continuous-broadcast expansions are always legal."""

    @given(
        t=st.integers(4, 11),
        L=st.integers(3, 5),
        window=st.integers(1, 9),
    )
    @settings(max_examples=25, deadline=None)
    def test_expansion_always_validates(self, t, L, window):
        from repro.core.continuous.assignment import solve_instance
        from repro.core.continuous.relative import instance_for
        from repro.core.continuous.schedule import expand_assignment
        from repro.sim.machine import replay as _replay
        from repro.sim.validate import single_reception_violations
        from repro.schedule.analysis import item_delays

        if t < L:
            return  # degenerate: the t-step tree is a single node
        assignment = solve_instance(instance_for(t, L))
        if assignment is None:
            return  # legitimately unsolvable instance (e.g. L=4, t=8)
        schedule = expand_assignment(assignment, num_items=window)
        _replay(schedule)
        assert not single_reception_violations(schedule)
        P_minus_1 = assignment.num_processors
        delays = item_delays(schedule, procs=set(range(1, P_minus_1 + 1)))
        assert set(delays.values()) == {L + t}

    @given(P=st.integers(3, 30), L=st.integers(2, 40), k=st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_star_or_search_always_within_thm36(self, P, L, k):
        from repro.core.kitem.bounds import kitem_upper_bound
        from repro.core.kitem.single_sending import (
            completion,
            single_sending_schedule,
        )
        from repro.core.kitem.star import star_fits
        from repro.sim.machine import replay as _replay

        if not star_fits(P, L) and L > 7:
            return  # outside both the verified small-L range and the star regime
        schedule = single_sending_schedule(k, P, L)
        _replay(schedule)
        assert completion(schedule) <= kitem_upper_bound(P, L, k)
