"""End-to-end integration tests across modules.

These replicate the paper's headline claims whole: build the schedule with
the core algorithms, execute it on the simulator substrate, measure with
the analysis tools, and compare against the closed-form bounds.
"""

import pytest

from repro import (
    LogPParams,
    broadcast_time_postal,
    buffered_schedule,
    combining_time,
    continuous_based_schedule,
    continuous_delay_lower_bound,
    expand_assignment,
    instance_for,
    kitem_lower_bound,
    kitem_upper_bound,
    min_summation_time,
    optimal_broadcast_schedule,
    postal,
    reachable_postal,
    replay,
    simulate_combining,
    single_sending_lower_bound,
    single_sending_schedule,
    solve_instance,
    summation_capacity,
    summation_schedule,
    verify_summation,
)
from repro.baselines.kitem import repeated_broadcast_schedule
from repro.baselines.trees import binomial_tree_schedule
from repro.schedule.analysis import (
    broadcast_delay_per_proc,
    item_completion_times,
    item_delays,
)
from repro.sim.validate import is_single_sending, single_reception_violations


class TestHeadlineSingleItem:
    def test_optimal_beats_binomial_on_fig1_machine(self):
        machine = LogPParams(P=8, L=6, o=2, g=4)
        opt = optimal_broadcast_schedule(machine)
        bino = binomial_tree_schedule(machine)
        replay(opt)
        replay(bino)
        t_opt = max(broadcast_delay_per_proc(opt).values())
        t_bino = max(broadcast_delay_per_proc(bino).values())
        assert t_opt == 24 < t_bino == 30


class TestHeadlineKItem:
    def test_pipelining_factor(self):
        # the whole point of Section 3: pipelined optimal trees turn
        # k*B into B + O(k + L)
        P, L, k = 10, 3, 20
        ours = single_sending_schedule(k, P, L)
        naive = repeated_broadcast_schedule(k, P, L)
        replay(ours)
        replay(naive)
        t_ours = max(item_completion_times(ours, set(range(P))).values())
        t_naive = max(item_completion_times(naive, set(range(P))).values())
        assert t_ours <= kitem_upper_bound(P, L, k)
        assert t_naive >= 3 * t_ours  # big win, grows with k

    def test_sandwich_for_many_machines(self):
        for P, L, k in [(5, 2, 7), (10, 3, 4), (14, 4, 6), (22, 2, 9)]:
            s = single_sending_schedule(k, P, L)
            replay(s)
            assert is_single_sending(s)
            assert not single_reception_violations(s)
            done = max(item_completion_times(s, set(range(P))).values())
            assert kitem_lower_bound(P, L, k) <= done <= kitem_upper_bound(P, L, k)


class TestHeadlineContinuous:
    def test_fig2_end_to_end(self):
        # solve I(7) for L=3, expand over 8 items, verify delay = bound
        assignment = solve_instance(instance_for(7, 3))
        schedule = expand_assignment(assignment, num_items=8)
        replay(schedule)
        delays = item_delays(schedule, procs=set(range(1, 10)))
        assert set(delays.values()) == {continuous_delay_lower_bound(10, 3)}


class TestHeadlineBuffered:
    def test_buffering_buys_the_last_L_minus_1_steps(self):
        # plain single-sending meets B+2L+k-2; buffering reaches B+L+k-1
        k, t, L = 10, 8, 3
        P = reachable_postal(t, L) + 1
        buffered = buffered_schedule(k, t, L)
        buffered.validate()
        assert buffered.completion == single_sending_lower_bound(P, L, k)


class TestHeadlineCombining:
    def test_allreduce_in_reduce_time(self):
        # all-to-all combining completes in T where P = P(T): the same
        # time an all-to-one reduction needs — a 2x saving over
        # reduce-then-broadcast
        run = simulate_combining(8, 3)
        assert run.complete()
        assert combining_time(run.P, 3) == 8
        replay(run.schedule)


class TestHeadlineSummation:
    def test_summation_pipeline(self):
        machine = LogPParams(P=8, L=5, o=2, g=4)
        n = summation_capacity(28, machine)
        t = min_summation_time(n, machine)
        assert t == 28
        plan = summation_schedule(t, machine)
        assert verify_summation(plan) == plan.total()
        replay(plan.to_schedule())


class TestCrossChecks:
    def test_continuous_schedule_is_also_optimal_kitem(self):
        # Cor 3.1: the continuous solution solves k-item broadcast in
        # L + B + k - 1 = the single-sending lower bound
        k, t, L = 6, 7, 3
        s = continuous_based_schedule(k, t, L)
        P = reachable_postal(t, L) + 1
        done = max(item_completion_times(s, set(range(P))).values())
        assert done == single_sending_lower_bound(P, L, k)

    def test_B_values_consistent_across_apis(self):
        for P in (2, 5, 9, 13, 41):
            for L in (1, 2, 3):
                t = broadcast_time_postal(P, L)
                sched = optimal_broadcast_schedule(postal(P=P, L=L))
                measured = max(broadcast_delay_per_proc(sched).values())
                assert measured == t
