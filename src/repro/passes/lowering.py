"""The ``lower`` pass: compile a schedule to per-rank programs.

Registering the compilation step as a pass puts it on the same rails
as every other schedule rewrite: ``repro opt --pipeline
'canonicalize,lower'`` verifies the schedule with the
:class:`~repro.passes.manager.PassManager` machinery and *then* lowers
it, and the produced :class:`~repro.exec.program.ExecPlan` is stashed
on the pass instance (``pass.plan``) plus summarized in ``stats``.

The pass is schedule-in/schedule-out (the input is returned untouched
— lowering is a projection, not a rewrite), so it composes anywhere in
a pipeline; callers who want the artifact keep a reference to the pass
object or use :func:`repro.exec.lower_schedule` directly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar

from repro.passes.base import SchedulePass, register_pass
from repro.schedule.ops import Schedule

if TYPE_CHECKING:
    from repro.exec.program import ExecPlan
    from repro.schedule.implicit import ImplicitSchedule

__all__ = ["LowerPass"]


@register_pass
class LowerPass(SchedulePass):
    """Lower to per-rank programs; the schedule passes through unchanged."""

    name: ClassVar[str] = "lower"
    summary: ClassVar[str] = (
        "compile to per-rank send/recv/reduce programs (repro.exec)"
    )
    params_doc: ClassVar[str] = ""
    preserves_legality: ClassVar[bool] = True
    preserves_completion: ClassVar[bool] = True

    def __init__(self, backend: str | None = None):
        super().__init__(backend=backend)
        self.plan: "ExecPlan | None" = None

    def _record(self, plan: "ExecPlan") -> None:
        self.plan = plan
        self.stats["ranks"] = len(plan.programs)
        self.stats["instrs"] = plan.num_instrs
        self.stats["sends"] = plan.num_sends

    def run(self, schedule: Schedule) -> Schedule:
        from repro.exec.lower import lower_schedule

        self._record(lower_schedule(schedule))
        return schedule

    def run_implicit(self, schedule: "ImplicitSchedule") -> "ImplicitSchedule":
        """Lower through the bounded chunk stream; the implicit plan
        itself passes through unchanged.  The *programs* are inherently
        O(num_sends) — that is the cost of executing, not an accidental
        materialization of the schedule IR."""
        from repro.exec.lower import lower_schedule

        self._record(lower_schedule(schedule))
        return schedule
