"""Long-message broadcast under the LogGP extension.

The paper's k-item machinery answers the practical question the LogP
authors' follow-up model (LogGP: LogP + a per-byte Gap ``G``) poses: how
should a *large* message be segmented for broadcast?

Model mapping.  Sending an ``s``-byte segment occupies the sender for
``o + (s-1)G`` cycles; consecutive segment injections are spaced
``delta(s) = max(g, o + (s-1)G)``; a segment's end-to-end latency is
``Lambda(s) = L + 2o + (s-1)G``.  Measuring time in units of ``delta``
turns segmented broadcast into exactly the postal k-item problem with

* ``k = ceil(M / s)`` items and
* latency ``Lhat = ceil(Lambda / delta)`` steps,

so the optimal pipelined schedule finishes in about
``(B(P-1) + Lhat + k - 1) * delta`` cycles (the single-sending bound,
which the library's scheduler typically achieves).  :func:`plan_broadcast`
searches the segment size minimizing the *exact* scheduled completion —
reproducing the classic LogGP trade-off: small segments pipeline better
but pay per-segment overhead; large segments amortize overhead but
serialize the tree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.kitem.single_sending import completion, single_sending_schedule
from repro.params import LogPParams
from repro.schedule.ops import Schedule
from repro.sim.machine import replay

__all__ = ["LogGPParams", "SegmentedPlan", "plan_broadcast", "segment_sweep"]


@dataclass(frozen=True, slots=True)
class LogGPParams:
    """LogGP machine: LogP plus the per-byte gap ``G``.

    All fields in cycles (``G`` = cycles per additional byte).
    """

    P: int
    L: int
    o: int
    g: int
    G: int

    def __post_init__(self) -> None:
        base = LogPParams(P=self.P, L=self.L, o=self.o, g=max(self.g, self.o))
        if self.G < 0:
            raise ValueError(f"G must be >= 0, got {self.G}")

    def segment_spacing(self, s: int) -> int:
        """``delta(s)``: cycles between consecutive segment injections."""
        return max(self.g, self.o + (s - 1) * self.G, 1)

    def segment_latency(self, s: int) -> int:
        """``Lambda(s)``: end-to-end cycles for one ``s``-byte segment."""
        return self.L + 2 * self.o + (s - 1) * self.G


@dataclass
class SegmentedPlan:
    """A segmentation decision plus its exact (scaled) schedule."""

    machine: LogGPParams
    message_bytes: int
    segment_bytes: int
    segments: int
    postal_latency: int  # Lhat, in delta units
    spacing: int  # delta, cycles
    schedule: Schedule  # postal-model schedule in delta units
    completion_cycles: int

    def describe(self) -> str:
        return (
            f"{self.message_bytes}B in {self.segments} segments of "
            f"{self.segment_bytes}B: {self.completion_cycles} cycles "
            f"(delta={self.spacing}, Lhat={self.postal_latency})"
        )


def _plan_for_segment(machine: LogGPParams, M: int, s: int) -> SegmentedPlan:
    k = math.ceil(M / s)
    delta = machine.segment_spacing(s)
    lam = machine.segment_latency(s)
    lhat = max(1, math.ceil(lam / delta))
    schedule = single_sending_schedule(k, machine.P, lhat)
    steps = completion(schedule) if schedule.sends else 0
    # the scaled makespan: steps in delta units, except the final segment's
    # tail latency is the true Lambda rather than Lhat*delta
    cycles = max(0, steps - lhat) * delta + lam if steps else 0
    return SegmentedPlan(
        machine=machine,
        message_bytes=M,
        segment_bytes=s,
        segments=k,
        postal_latency=lhat,
        spacing=delta,
        schedule=schedule,
        completion_cycles=cycles,
    )


def plan_broadcast(
    machine: LogGPParams, message_bytes: int, max_segments: int = 64
) -> SegmentedPlan:
    """Find the segment size minimizing the scheduled completion.

    Candidate sizes are those producing 1..``max_segments`` segments
    (equal-split sizes); the underlying k-item schedule for the winner is
    validated on the LogP simulator.
    """
    if message_bytes < 1:
        raise ValueError("message must have at least 1 byte")
    best: SegmentedPlan | None = None
    seen_sizes: set[int] = set()
    for k in range(1, max_segments + 1):
        s = math.ceil(message_bytes / k)
        if s in seen_sizes:
            continue
        seen_sizes.add(s)
        plan = _plan_for_segment(machine, message_bytes, s)
        if best is None or plan.completion_cycles < best.completion_cycles:
            best = plan
    assert best is not None
    if best.schedule.sends:
        replay(best.schedule)
    return best


def segment_sweep(
    machine: LogGPParams, message_bytes: int, max_segments: int = 32
) -> list[dict]:
    """Completion for every candidate segment count (for the benchmarks)."""
    rows = []
    seen: set[int] = set()
    for k in range(1, max_segments + 1):
        s = math.ceil(message_bytes / k)
        if s in seen:
            continue
        seen.add(s)
        plan = _plan_for_segment(machine, message_bytes, s)
        rows.append(
            {
                "segments": plan.segments,
                "segment_bytes": s,
                "spacing": plan.spacing,
                "Lhat": plan.postal_latency,
                "cycles": plan.completion_cycles,
            }
        )
    return rows
