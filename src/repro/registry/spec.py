"""Declarative collective specifications.

A :class:`CollectiveSpec` is one record per paper collective: canonical
name and aliases, the builder behind a *normalized* keyword schema
(machine parameters always travel as a :class:`~repro.params.LogPParams`;
per-collective extras like ``k``/``n``/``t`` are declared as
:class:`ParamField`\\ s with domains), the closed-form lower bound and
its optimality-theorem tag, the storage backends the builder implements,
and — for the static analyzer — the workload shape whose SCHED008
closed form this spec owns.

The records themselves live in :mod:`repro.registry.specs`; the lookup
and the :func:`~repro.registry.plan` entry point live in
:mod:`repro.registry`.  Everything here is import-light (params + ops
only), so the registry can be consumed by the CLI, the bench harness and
the lint engine without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.params import LogPParams
from repro.schedule.ops import Schedule

__all__ = ["ParamField", "BoundQuery", "CollectiveSpec"]


@dataclass(frozen=True)
class ParamField:
    """One collective-specific keyword parameter and its domain.

    ``default=None`` marks the parameter required (unless the spec's
    ``normalize_extra`` hook fills it, as summation's ``n``/``t`` pair
    does); ``minimum`` is the smallest legal value, enforced by
    :func:`~repro.registry.plan` with a uniform ``ValueError`` before
    the builder runs.
    """

    name: str
    doc: str
    default: int | None = None
    minimum: int | None = None
    required: bool = True


@dataclass(frozen=True)
class BoundQuery:
    """What the lint engine knows about a schedule when asking for a bound.

    Deliberately *not* a ``LintContext``: the registry must stay
    importable from :mod:`repro.analyze.rules` without a cycle, so the
    rule adapts its context into this plain record and each spec's
    ``lint_bound`` works from structured facts alone.
    """

    workload: str  # repro.analyze.context.Workload constant (plain string)
    params: LogPParams
    participants: int  # processors taking part in the communication
    n_items: int  # distinct items carried by sends
    single_sending: bool  # kitem only: the source sends each item once
    full_coverage: bool  # every item reaches every participant


@dataclass(frozen=True)
class CollectiveSpec:
    """A registered collective: builder, domain, bounds and metadata."""

    name: str
    aliases: tuple[str, ...]
    summary: str
    paper: str  # paper section / figure reference
    theorem: str  # optimality theorem tag
    build: Callable[..., Schedule]  # build(params, **extra[, backend=...])
    #: Optional O(log P)-state builder returning a
    #: ``repro.schedule.implicit.ImplicitSchedule`` (typed ``Any`` to keep
    #: this module import-light); reached via ``plan(storage="implicit")``.
    implicit_build: Callable[..., Any] | None = None
    extra_params: tuple[ParamField, ...] = ()
    check_machine: Callable[[LogPParams], None] | None = None
    normalize_extra: (
        Callable[[LogPParams, dict[str, Any]], dict[str, Any]] | None
    ) = None
    lower_bound: Callable[..., int] | None = None  # lower_bound(params, **extra)
    tight: Callable[..., bool] | None = None  # construction meets the bound?
    backends: tuple[str, ...] = ("objects",)
    #: The builder accepts a ``machine=`` topology (a
    #: ``repro.machine.model.MachineModel``, routed outside the int-only
    #: ``extra_params`` validation).  Non-aware specs reject non-flat
    #: machines at :func:`~repro.registry.plan` time.
    machine_aware: bool = False
    workload: str | None = None  # lint workload whose closed form this spec owns
    lint_bound: Callable[[BoundQuery], tuple[int, str] | None] | None = None
    figures: tuple[tuple[str, str], ...] = ()  # (figure key, builder attr)
    sample_cases: tuple[dict[str, int], ...] = field(default=())

    def all_names(self) -> tuple[str, ...]:
        return (self.name, *self.aliases)

    def validate_extra(
        self, params: LogPParams, extra: dict[str, Any]
    ) -> dict[str, Any]:
        """Normalize + domain-check the collective-specific keywords.

        Returns the resolved keyword dict the builder (and the
        lower-bound callable) will receive; raises ``ValueError`` with a
        one-line, spec-prefixed message for anything out of domain.
        """
        known = {p.name for p in self.extra_params}
        unknown = sorted(set(extra) - known)
        if unknown:
            expected = ", ".join(sorted(known)) if known else "none"
            raise ValueError(
                f"{self.name}: unknown parameter(s) {', '.join(unknown)} "
                f"(accepted: {expected})"
            )
        resolved: dict[str, Any] = {}
        for p in self.extra_params:
            value = extra.get(p.name, p.default)
            if value is None:
                if p.required:
                    raise ValueError(
                        f"{self.name}: missing required parameter "
                        f"{p.name}= ({p.doc})"
                    )
                continue
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError(
                    f"{self.name}: {p.name} must be an int, "
                    f"got {type(value).__name__}"
                )
            if p.minimum is not None and value < p.minimum:
                raise ValueError(
                    f"{self.name}: {p.name} must be >= {p.minimum}, got {value}"
                )
            resolved[p.name] = value
        if self.normalize_extra is not None:
            resolved = self.normalize_extra(params, resolved)
        return resolved
