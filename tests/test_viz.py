"""Tests for the ASCII renderers."""

from repro.core.kitem.blocks import block_transmission_digraph
from repro.core.kitem.buffered import buffered_schedule
from repro.core.single_item import optimal_broadcast_schedule
from repro.core.tree import optimal_tree, tree_for_time
from repro.params import LogPParams, postal
from repro.sim.trace import trace_from_schedule
from repro.viz.ascii import render_activity, render_schedule_activity, render_tree
from repro.viz.digraph import render_digraph
from repro.viz.tables import (
    buffered_reception_table,
    reception_table,
    render_reception_table,
)


class TestTreeRendering:
    def test_all_nodes_present(self):
        tree = optimal_tree(LogPParams(P=8, L=6, o=2, g=4))
        out = render_tree(tree)
        for i in range(8):
            assert f"P{i} " in out or f"P{i}\n" in out or out.endswith(f"P{i}")
        assert "@0" in out and "@24" in out

    def test_indentation_reflects_depth(self):
        tree = tree_for_time(7, postal(P=1, L=3))
        lines = render_tree(tree).splitlines()
        assert lines[0].startswith("P0")
        assert lines[1].startswith("  P")  # children indented


class TestActivityRendering:
    def test_fig1_timeline(self):
        s = optimal_broadcast_schedule(LogPParams(P=8, L=6, o=2, g=4))
        out = render_schedule_activity(s)
        lines = out.splitlines()
        assert len(lines) == 9  # header + 8 processors
        # root sends four times: 4 's' pairs (o=2)
        root_row = next(l for l in lines if l.startswith("P0"))
        assert root_row.count("s") == 8

    def test_symbols(self):
        s = optimal_broadcast_schedule(postal(P=3, L=2))
        out = render_activity(trace_from_schedule(s))
        assert "s" in out and "r" in out


class TestReceptionTables:
    def test_round_trip(self):
        s = optimal_broadcast_schedule(postal(P=4, L=2))
        table = reception_table(s)
        out = render_reception_table(table)
        assert "time" in out and "P1" in out

    def test_active_marking(self):
        s = optimal_broadcast_schedule(postal(P=4, L=2))
        table = reception_table(s, actives={(1, 0)})
        flattened = [e for row in table.values() for e in row.values()]
        assert "(0)" in flattened

    def test_buffered_table_marks_delays(self):
        bs = buffered_schedule(14, 8, 3)
        table = buffered_reception_table(bs)
        entries = [e for row in table.values() for e in row.values()]
        assert any(e.startswith("(") for e in entries)  # active
        assert any(e.startswith("[") for e in entries)  # delayed

    def test_empty_table(self):
        assert render_reception_table({}) == "(empty)"


class TestDigraphRendering:
    def test_fig3_text(self):
        g = block_transmission_digraph(11, 3)
        out = render_digraph(g)
        assert "src" in out
        assert "==>" in out  # active edges
        assert "-->" in out  # inactive edges
        assert "recv-only(0)" in out
        assert "r=9" in out
