"""Execution-stack tests (S37): lowering, transports, verification.

The contract under test is the PR-9 acceptance bar: for every registry
collective the lowered per-rank programs, executed on *real* transports
(inproc threads, mp processes), must deliver exactly the simulator's
``(src, dst, item)`` multiset — byte-for-byte on the canonical trace
encoding — and failures (unknown transports, dead workers, hangs) must
surface as one-line diagnostics naming the offending ranks instead of
hanging the caller.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import registry
from repro.exec import (
    ExecError,
    ExecPlan,
    ExecTimeout,
    InprocTransport,
    LoweringError,
    MpTransport,
    RecvInstr,
    SendInstr,
    TransportUnavailable,
    available_transports,
    execute,
    get_transport,
    lower_schedule,
    sim_delivered,
    verify_against_sim,
)
from repro.exec.program import KIND_RECV, KIND_SEND, RankProgram
from repro.exec.trace import ExecTrace, delivered_json
from repro.params import LogPParams, postal
from repro.schedule.columnar import ItemTable
from repro.schedule.ops import Schedule, SendOp
from repro.sim.machine import format_blocked, format_rank_set

TRANSPORTS = available_transports()

# (collective, machine/extra kwargs) at P in {4, 8, 16}: every registered
# collective in a machine inside its declared domain.
COLLECTIVE_CASES = [
    ("broadcast", dict(P=4, L=6, o=2, g=4)),
    ("broadcast", dict(P=8, L=6, o=2, g=4)),
    ("broadcast", dict(P=16, L=6, o=2, g=4)),
    ("reduction", dict(P=4, L=6, o=2, g=4)),
    ("reduction", dict(P=8, L=6, o=2, g=4)),
    ("reduction", dict(P=16, L=6, o=2, g=4)),
    ("all-to-all", dict(P=4, L=3)),
    ("all-to-all", dict(P=8, L=3)),
    ("all-to-all", dict(P=16, L=3)),
    ("kitem", dict(P=4, L=3, k=4)),
    ("kitem", dict(P=8, L=3, k=4)),
    ("kitem", dict(P=16, L=3, k=4)),
    # continuous requires P-1 to be a reachable-set size P(t) for L
    ("continuous", dict(P=4, L=3, k=4)),
    ("continuous", dict(P=8, L=6, k=4)),
    ("continuous", dict(P=16, L=5, k=4)),
    ("summation", dict(P=4, L=5, o=2, g=4, n=40)),
    ("summation", dict(P=8, L=5, o=2, g=4, n=79)),
    ("summation", dict(P=16, L=5, o=2, g=4, n=120)),
    ("allreduce", dict(P=4, L=3)),
    ("allreduce", dict(P=8, L=3)),
    ("allreduce", dict(P=16, L=3)),
]


class TestLowering:
    def test_broadcast_programs_shape(self):
        schedule = registry.plan("broadcast", P=8, L=6, o=2, g=4)
        plan = lower_schedule(schedule)
        assert plan.num_ranks == 8
        assert plan.num_sends == 7
        # every non-root rank receives the item exactly once
        for rank in range(1, 8):
            assert plan.program(rank).num_recvs == 1
        total_sends = sum(p.num_sends for p in plan.programs.values())
        assert total_sends == 7
        # root holds the item initially; its first send has no producer
        root = plan.program(0)
        first = root.instructions()[0]
        assert isinstance(first, SendInstr) and first.dep == -1

    def test_relay_send_depends_on_its_recv(self):
        schedule = registry.plan("broadcast", P=8, L=6, o=2, g=4)
        plan = lower_schedule(schedule)
        for rank in range(1, 8):
            program = plan.program(rank)
            instrs = program.instructions()
            assert isinstance(instrs[0], RecvInstr)
            for i, instr in enumerate(instrs):
                if isinstance(instr, SendInstr):
                    # the forwarded item was produced by the recv at dep
                    assert instr.dep >= 0
                    producer = instrs[instr.dep]
                    assert isinstance(producer, RecvInstr)
                    assert producer.item == instr.item

    def test_lowering_is_zero_copy_on_columnar_schedules(self):
        schedule = registry.plan("broadcast", P=256, L=4, o=1, g=2,
                                 backend="columnar")
        assert schedule.is_array_backed
        plan = lower_schedule(schedule)
        assert schedule.is_array_backed  # no SendOp materialization
        assert plan.num_sends == 255

    def test_implicit_lowering_matches_materialized(self):
        implicit = registry.plan("broadcast", P=64, L=4, o=1, g=2,
                                 storage="implicit")
        mat = implicit.materialize()
        a = lower_schedule(implicit)
        b = lower_schedule(mat)
        assert a.num_sends == b.num_sends
        assert set(a.programs) == set(b.programs)
        for rank, pa in a.programs.items():
            pb = b.program(rank)
            assert np.array_equal(pa.kinds, pb.kinds)
            assert np.array_equal(pa.peers, pb.peers)
            # item codes may be interned in a different order across the
            # two paths; compare the decoded items instead
            assert [pa._table.decode(int(c)) for c in pa.items] == [
                pb._table.decode(int(c)) for c in pb.items
            ]

    def test_send_without_source_raises_lowering_error(self):
        params = LogPParams(P=2, L=2, o=0, g=1)
        bad = Schedule(
            params=params,
            sends=[SendOp(time=0, src=0, dst=1, item="ghost")],
            initial={0: set()},  # rank 0 never holds "ghost"
        )
        with pytest.raises(LoweringError, match="ghost"):
            lower_schedule(bad)

    def test_program_arrays_are_frozen(self):
        plan = lower_schedule(registry.plan("broadcast", P=4, L=6, o=2, g=4))
        program = plan.program(0)
        with pytest.raises(ValueError):
            program.kinds[0] = KIND_RECV

    def test_unknown_rank_program_raises(self):
        plan = lower_schedule(registry.plan("broadcast", P=4, L=6, o=2, g=4))
        with pytest.raises(KeyError):
            plan.program(99)


class TestExecVsSim:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    @pytest.mark.parametrize(
        "name,kwargs",
        COLLECTIVE_CASES,
        ids=[f"{n}-P{kw['P']}" for n, kw in COLLECTIVE_CASES],
    )
    def test_registry_collective_delivers_sim_multiset(
        self, name, kwargs, transport
    ):
        schedule = registry.plan(name, **kwargs)
        result = execute(schedule, transport=transport, verify=True)
        assert result.num_delivered == schedule.num_sends
        assert result.transport == transport

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_p256_broadcast_byte_identical(self, transport):
        schedule = registry.plan("broadcast", P=256, L=4, o=1, g=2)
        result = execute(schedule, transport=transport, verify=True)
        assert result.num_delivered == 255
        assert result.trace.to_json() == delivered_json(
            schedule.params, sim_delivered(schedule)
        )

    def test_trace_bytes_are_transport_independent(self):
        schedule = registry.plan("all-to-all", P=8, L=3)
        a = execute(schedule, transport="inproc").trace.to_json()
        b = execute(schedule, transport="mp").trace.to_json()
        assert a == b

    def test_verification_failure_names_divergence(self):
        schedule = registry.plan("broadcast", P=4, L=6, o=2, g=4)
        wrong = ExecTrace(
            params=schedule.params, transport="inproc", delivered=()
        )
        from repro.exec import ExecVerificationError

        with pytest.raises(ExecVerificationError, match="missing"):
            verify_against_sim(schedule, wrong)

    def test_verify_rejects_bare_exec_plan(self):
        plan = lower_schedule(registry.plan("broadcast", P=4, L=6, o=2, g=4))
        with pytest.raises(ExecError, match="verify"):
            execute(plan, transport="inproc", verify=True)

    def test_sim_delivered_rejects_illegal_schedules(self):
        params = LogPParams(P=2, L=2, o=0, g=1)
        # legal placement, but two sends violate the gap g=1 at time 0
        bad = Schedule(
            params=params,
            sends=[
                SendOp(time=0, src=0, dst=1, item="a"),
                SendOp(time=0, src=0, dst=1, item="b"),
            ],
            initial={0: {"a", "b"}},
        )
        with pytest.raises(ValueError, match="not a legal LogP execution"):
            sim_delivered(bad)


@st.composite
def builder_schedules(draw):
    """A random legal registry plan, spanning the collective families."""
    kind = draw(st.sampled_from(["bcast", "a2a", "kitem", "sum", "reduce"]))
    if kind == "bcast":
        P = draw(st.integers(2, 12))
        L = draw(st.integers(1, 5))
        o = draw(st.integers(0, 2))
        g = draw(st.integers(max(1, o), 3))
        return registry.plan("broadcast", LogPParams(P=P, L=L, o=o, g=g))
    if kind == "a2a":
        return registry.plan(
            "all-to-all", postal(P=draw(st.integers(2, 10)),
                                 L=draw(st.integers(1, 4)))
        )
    if kind == "kitem":
        return registry.plan(
            "kitem", postal(P=draw(st.integers(2, 8)),
                            L=draw(st.integers(1, 3))),
            k=draw(st.integers(1, 4)),
        )
    if kind == "sum":
        P = draw(st.integers(2, 8))
        return registry.plan(
            "summation", LogPParams(P=P, L=4, o=1, g=2),
            n=draw(st.integers(4 * P, 8 * P)),
        )
    P = draw(st.integers(2, 12))
    return registry.plan("reduction", LogPParams(P=P, L=4, o=1, g=2))


class TestHypothesisExecVsSim:
    @settings(max_examples=25, deadline=None)
    @given(schedule=builder_schedules())
    def test_inproc_delivers_sim_multiset(self, schedule):
        result = execute(schedule, transport="inproc", verify=True)
        assert result.num_delivered == schedule.num_sends

    @settings(max_examples=6, deadline=None)
    @given(schedule=builder_schedules())
    def test_mp_delivers_sim_multiset(self, schedule):
        result = execute(schedule, transport="mp", verify=True)
        assert result.num_delivered == schedule.num_sends


class TestTransports:
    def test_unknown_transport_lists_known(self):
        with pytest.raises(ValueError, match="inproc, mp, mpi"):
            get_transport("carrier-pigeon")

    def test_mpi_unavailable_skips_cleanly(self):
        try:
            import mpi4py  # noqa: F401
        except ImportError:
            with pytest.raises(TransportUnavailable, match="mpi4py"):
                get_transport("mpi")
            assert "mpi" not in available_transports()
        else:  # pragma: no cover - only when mpi4py is installed
            assert "mpi" in available_transports()

    def test_available_transports_always_has_inproc_and_mp(self):
        assert {"inproc", "mp"} <= set(available_transports())

    def test_mp_dead_worker_names_rank_without_hanging(self):
        schedule = registry.plan("broadcast", P=4, L=6, o=2, g=4)
        transport = MpTransport(workers=4, fault_ranks=(1,))
        with pytest.raises(
            ExecError, match=r"worker \d+ hosting ranks .*exited with code 17"
        ) as err:
            execute(schedule, transport=transport, timeout=20.0)
        assert "1" in format_rank_set([1]) and "1" in str(err.value)

    def test_inproc_timeout_reports_blocked_ranks(self):
        # rank 0 waits forever for a message rank 1 never sends: a
        # hand-built plan (lowering would reject the schedule)
        params = LogPParams(P=2, L=2, o=0, g=1)
        table = ItemTable()
        code = table.intern("never")
        program = RankProgram(
            rank=0,
            kinds=np.array([KIND_RECV], dtype=np.int8),
            peers=np.array([1], dtype=np.int64),
            items=np.array([code], dtype=np.int64),
            deps=np.array([-1], dtype=np.int64),
            reduce_operands={},
            table=table,
        )
        plan = ExecPlan(
            params=params,
            table=table,
            programs={0: program},
            initial={},
            num_sends=0,
        )
        with pytest.raises(ExecTimeout) as err:
            execute(plan, transport="inproc", timeout=0.4)
        message = str(err.value)
        assert "timeout: inproc transport hit the 0.4s deadline" in message
        assert "1 of 2 ranks blocked (ranks 0)" in message
        assert "rank 0 waits to receive item 'never' from rank 1" in message


class TestBlockedFormatting:
    def test_format_rank_set_collapses_runs(self):
        assert format_rank_set([0, 1, 2, 3, 7]) == "0-3,7"
        assert format_rank_set([5]) == "5"
        assert format_rank_set([2, 4, 6]) == "2,4,6"

    def test_format_blocked_truncates_detail(self):
        waiters = [(r, f"rank {r} stuck") for r in range(12)]
        text = format_blocked("deadlock: stuck", waiters, total_ranks=16)
        assert "12 of 16 ranks blocked (ranks 0-11)" in text
        assert "... and 4 more blocked rank(s)" in text

    def test_machine_deadlock_reports_blocked_rank_set(self):
        from repro.sim.machine import Context, Machine

        class SendToDeaf:
            def on_start(self, ctx: Context) -> None:
                if ctx.proc == 1:
                    ctx.send(0, "x")

            def on_receive(self, ctx, item, src):  # pragma: no cover
                pass

        # L puts delivery past max_cycles: the send can never land
        machine = Machine(
            LogPParams(P=2, L=50, o=1, g=1),
            {0: SendToDeaf(), 1: SendToDeaf()},
            max_cycles=10,
        )
        with pytest.raises(RuntimeError) as err:
            machine.run()
        message = str(err.value)
        assert "deadlock" in message
        assert "1 of 2 ranks blocked (ranks 1)" in message
        assert "proc 1" in message and "proc 0" in message


class TestLowerPassAndRegistry:
    def test_lower_pass_in_pipeline_passes_schedule_through(self):
        from repro.passes import PassManager

        schedule = registry.plan("broadcast", P=8, L=6, o=2, g=4)
        manager = PassManager("lower", verify="errors")
        out = manager.run(schedule)
        assert out is schedule
        [record] = manager.records
        assert record.stats["sends"] == 7
        assert record.stats["ranks"] == 8

    def test_lower_pass_keeps_compiled_plan(self):
        from repro.passes import LowerPass

        schedule = registry.plan("broadcast", P=8, L=6, o=2, g=4)
        lower = LowerPass()
        assert lower.run(schedule) is schedule
        assert isinstance(lower.plan, ExecPlan)
        assert lower.plan.num_sends == 7

    def test_registry_execute_keyword_verifies_and_returns_schedule(self):
        schedule = registry.plan("broadcast", P=8, L=6, o=2, g=4,
                                 execute="inproc")
        assert schedule.num_sends == 7

    def test_registry_execute_rejects_implicit(self):
        with pytest.raises(ValueError, match="implicit"):
            registry.plan("broadcast", P=8, L=6, o=2, g=4,
                          storage="implicit", execute="inproc")


class TestRunCli:
    def run_cli(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def test_run_builder_verified(self, capsys):
        rc = self.run_cli(
            "run", "--builder", "bcast", "-P", "8", "-L", "6",
            "--o", "2", "--g", "4", "--verify",
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "delivered 7 messages" in out
        assert "verified" in out

    def test_run_schedule_file(self, tmp_path, capsys):
        from repro.schedule.serialize import dump_schedule

        path = tmp_path / "b.json"
        dump_schedule(registry.plan("broadcast", P=6, L=4), str(path))
        rc = self.run_cli("run", str(path), "--transport", "mp", "--verify")
        assert rc == 0
        assert "on mp" in capsys.readouterr().out

    def test_run_usage_errors_exit_2(self, tmp_path, capsys):
        assert self.run_cli("run") == 2
        assert self.run_cli("run", "--builder", "nope") == 2
        assert self.run_cli("run", str(tmp_path / "missing.json")) == 2
        err = capsys.readouterr().err
        assert err.count("repro: error:") == 3

    def test_run_mpi_unavailable_exits_2(self, capsys):
        try:
            import mpi4py  # noqa: F401
        except ImportError:
            rc = self.run_cli("run", "--builder", "bcast", "--transport", "mpi")
            assert rc == 2
            assert "mpi4py" in capsys.readouterr().err
        else:  # pragma: no cover - only when mpi4py is installed
            pytest.skip("mpi4py installed; unavailability path not reachable")
