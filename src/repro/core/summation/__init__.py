"""Optimal summation (Section 5)."""
