"""The schedule lint rules (tier 1 of the static-analysis engine).

Each rule is a pure function from :class:`~repro.analyze.context.LintContext`
to a capped list of :class:`~repro.analyze.diagnostics.Diagnostic` plus
the *uncapped* total, registered in :data:`RULES`.  All rules are
vectorized over the columnar IR: per-send work happens in numpy, and
Python-level formatting only ever touches flagged sends (at most
:data:`~repro.analyze.diagnostics.MAX_EMITTED_PER_RULE` per rule), so a
clean million-send schedule sweeps in milliseconds.

Rule catalogue (severities in :mod:`repro.analyze.diagnostics`):

========== ========= ==================================================
id         severity  checks
========== ========= ==================================================
SCHED001   error     non-causal provenance: sender lacks the item
SCHED002   error     self-send
SCHED003   error     send scheduled before cycle 0
SCHED004   warning   dead send: destination already holds the item
SCHED005   warning   duplicate delivery of one (dst, item) pair
SCHED006   info      single-sending violation (k-item source resends)
SCHED007   info      idle slack against the earliest-start critical path
SCHED008   warning   completion vs. the paper's closed-form lower bounds
SCHED009   info      Theorem 3.2 endgame structure for k-item schedules
SCHED010   warning   incomplete coverage: an item misses processors
========== ========= ==================================================

The closed forms behind SCHED008 — ``B(P; L, o, g)`` (Theorem 2.1) for
single-item broadcast, Theorem 3.1's counting bound (tightened to the
Theorem 3.6/3.7 single-sending bound when the source actually is
single-sending) for k-item postal broadcast, and
``L + 2o + (m(P-1) - 1) g`` (Section 4.1) for m-item all-to-all — are
supplied by the collective registry: the rule adapts its context into a
:class:`~repro.registry.spec.BoundQuery` and the
:class:`~repro.registry.spec.CollectiveSpec` owning the detected
workload answers (see :func:`repro.registry.closed_form_bound`).

SCHED006 is INFO, not an error: single-sending (Section 3.4) is a
*restricted schedule class*, so falling outside it is an observation
about structure, not a defect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.analyze.context import LintContext, Workload
from repro.analyze.diagnostics import (
    MAX_EMITTED_PER_RULE,
    Diagnostic,
    Severity,
)
from repro.registry import closed_form_bound
from repro.registry.spec import BoundQuery

__all__ = ["Rule", "RULES", "rule_ids", "get_rule"]

RuleFn = Callable[[LintContext], tuple[list[Diagnostic], int]]


@dataclass(frozen=True)
class Rule:
    """A registered lint rule (id, fixed severity, runner)."""

    id: str
    name: str
    severity: Severity
    summary: str
    run: RuleFn
    workloads: tuple[str, ...] = ()  # empty = applies to every workload

    def applies(self, ctx: LintContext) -> bool:
        if len(ctx) == 0:
            return False
        return not self.workloads or ctx.workload in self.workloads


def _flagged_in_replay_order(
    ctx: LintContext, mask: np.ndarray
) -> tuple[list[int], int]:
    """Flagged storage indices in replay order, capped; plus the total."""
    total = int(mask.sum())
    if total == 0:
        return [], 0
    order = ctx.replay_order
    flagged = order[mask[order]]
    return flagged[:MAX_EMITTED_PER_RULE].tolist(), total


# -- SCHED001: non-causal provenance ------------------------------------


def _rule_non_causal(ctx: LintContext) -> tuple[list[Diagnostic], int]:
    found, have = ctx.send_avail
    never = ~found
    early = found & (ctx.cols.times < have)
    indices, total = _flagged_in_replay_order(ctx, never | early)
    diags = []
    for i in indices:
        if never[i]:
            msg = (
                f"non-causal: {ctx.describe_send(i)} — the sender never "
                f"holds this item"
            )
            fixit = "route the item to the sender first, or drop the send"
        else:
            msg = (
                f"non-causal: {ctx.describe_send(i)} — the sender only "
                f"holds the item from t={int(have[i])}"
            )
            fixit = f"delay the send to t>={int(have[i])}"
        diags.append(
            Diagnostic(
                rule="SCHED001",
                severity=Severity.ERROR,
                message=msg,
                sends=(i,),
                data={"holds_from": None if never[i] else int(have[i])},
                fixit=fixit,
            )
        )
    return diags, total


# -- SCHED002: self-send -------------------------------------------------


def _rule_self_send(ctx: LintContext) -> tuple[list[Diagnostic], int]:
    indices, total = _flagged_in_replay_order(
        ctx, ctx.cols.srcs == ctx.cols.dsts
    )
    return [
        Diagnostic(
            rule="SCHED002",
            severity=Severity.ERROR,
            message=f"self-send: {ctx.describe_send(i)}",
            sends=(i,),
            fixit="drop the send; a processor already holds what it sends",
        )
        for i in indices
    ], total


# -- SCHED003: negative time ---------------------------------------------


def _rule_negative_time(ctx: LintContext) -> tuple[list[Diagnostic], int]:
    indices, total = _flagged_in_replay_order(ctx, ctx.cols.times < 0)
    return [
        Diagnostic(
            rule="SCHED003",
            severity=Severity.ERROR,
            message=f"negative time: {ctx.describe_send(i)} starts before cycle 0",
            sends=(i,),
            fixit="shift the schedule so every send starts at t>=0",
        )
        for i in indices
    ], total


# -- SCHED004: dead sends ------------------------------------------------


def _rule_dead_send(ctx: LintContext) -> tuple[list[Diagnostic], int]:
    first = ctx.dst_first_avail
    dead = first <= ctx.cols.times
    indices, total = _flagged_in_replay_order(ctx, dead)
    return [
        Diagnostic(
            rule="SCHED004",
            severity=Severity.WARNING,
            message=(
                f"dead send: {ctx.describe_send(i)} — the destination "
                f"already holds the item (since t={int(first[i])}), so "
                f"this send informs no new processor"
            ),
            sends=(i,),
            data={"held_since": int(first[i])},
            fixit="drop the send or retarget it at an uninformed processor",
        )
        for i in indices
    ], total


# -- SCHED005: duplicate delivery ----------------------------------------


def _rule_duplicate_delivery(ctx: LintContext) -> tuple[list[Diagnostic], int]:
    n = len(ctx)
    keys = ctx.dst_keys
    # within each (dst, item) group the earliest arrival (ties: storage
    # order, lexsort is stable) is the primary delivery; later copies and
    # any delivery of an initially-held pair are duplicates
    order = np.lexsort((ctx.cols.arrivals, keys))
    k_sorted = keys[order]
    later_copy_sorted = np.concatenate(
        ([False], k_sorted[1:] == k_sorted[:-1])
    )
    dup = np.zeros(n, dtype=bool)
    dup[order] = later_copy_sorted
    if len(ctx.initial_keys):
        dup |= np.isin(keys, ctx.initial_keys)
    indices, total = _flagged_in_replay_order(ctx, dup)
    first = ctx.dst_first_avail
    return [
        Diagnostic(
            rule="SCHED005",
            severity=Severity.WARNING,
            message=(
                f"duplicate delivery: {ctx.describe_send(i)} — the "
                f"destination is already delivered this item "
                f"(first held at t={int(first[i])})"
            ),
            sends=(i,),
            data={"first_held": int(first[i])},
            fixit="each (destination, item) pair should be delivered once",
        )
        for i in indices
    ], total


# -- SCHED006: single-sending violations ---------------------------------


def _rule_single_sending(ctx: LintContext) -> tuple[list[Diagnostic], int]:
    source = ctx.source
    assert source is not None  # guarded by workloads=("kitem",)
    cols = ctx.cols
    from_source = cols.srcs == source
    counts = ctx.source_item_send_counts
    offenders = np.flatnonzero(counts >= 2)
    total = len(offenders)
    diags = []
    for code in offenders[:MAX_EMITTED_PER_RULE].tolist():
        sends = np.flatnonzero(from_source & (cols.items == code))
        diags.append(
            Diagnostic(
                rule="SCHED006",
                severity=Severity.INFO,
                message=(
                    f"single-sending violation: the source (proc {source}) "
                    f"transmits item {cols.table.items[code]!r} "
                    f"{int(counts[code])} times (Section 3.4 schedules "
                    f"send each item exactly once)"
                ),
                sends=tuple(sends[:10].tolist()),
                data={"times_sent": int(counts[code])},
                fixit="let an informed relay forward the repeat copies",
            )
        )
    return diags, total


# -- SCHED007: idle slack vs. the earliest-start critical path -----------


def _rule_idle_slack(ctx: LintContext) -> tuple[list[Diagnostic], int]:
    cols = ctx.cols
    n = len(ctx)
    g = ctx.params.g
    start = ctx.start_time
    found, have = ctx.send_avail
    # earliest legal start per send: the item is in hand, the schedule
    # has begun, and the sender's previous send is >= g behind
    earliest = np.maximum(np.where(found, have, cols.times), start)
    order = np.lexsort((cols.times, cols.srcs))
    t_sorted = cols.times[order]
    same_src = cols.srcs[order][1:] == cols.srcs[order][:-1]
    gap_floor = np.full(n, start, dtype=np.int64)
    gap_floor[1:] = np.where(same_src, t_sorted[:-1] + g, start)
    earliest_sorted = np.maximum(earliest[order], gap_floor)
    slack_sorted = np.maximum(t_sorted - earliest_sorted, 0)
    slack = np.zeros(n, dtype=np.int64)
    slack[order] = slack_sorted
    flagged = int((slack > 0).sum())
    if flagged == 0:
        return [], 0
    worst = np.argsort(-slack, kind="stable")[:10]
    return [
        Diagnostic(
            rule="SCHED007",
            severity=Severity.INFO,
            message=(
                f"idle slack: {flagged} of {n} sends start later than the "
                f"earliest-start critical path allows "
                f"(total {int(slack.sum())} idle cycles, worst "
                f"{int(slack[worst[0]])} at {ctx.describe_send(int(worst[0]))})"
            ),
            sends=tuple(worst.tolist()),
            data={
                "sends_with_slack": flagged,
                "total_slack": int(slack.sum()),
                "max_slack": int(slack[worst[0]]),
            },
        )
    ], 1


# -- SCHED008: optimality gap vs. closed-form bounds ---------------------


def _optimality_bound(ctx: LintContext) -> tuple[int, str] | None:
    """The applicable closed-form lower bound, or ``None`` to skip.

    The closed forms themselves live on the :class:`CollectiveSpec`
    records in :mod:`repro.registry.specs` (each spec owns the bound for
    the workload shape it produces); this adapter distils the lint
    context into the structured facts a spec's ``lint_bound`` needs.
    """
    machine = ctx.schedule.machine
    if machine is not None and not machine.has_flat_pricing:
        # per-edge pricing can legitimately beat the flat closed forms
        # (that is the point of hierarchical planning) — no bound applies
        return None
    P = len(ctx.participants)
    if P < 2:
        return None
    single_sending = False
    if ctx.workload == Workload.KITEM:
        counts = ctx.source_item_send_counts
        single_sending = bool(len(counts)) and counts.max(initial=0) <= 1
    full_coverage = False
    if ctx.workload == Workload.SCATTERED:
        holders = ctx.holders_per_item
        full_coverage = bool(len(holders)) and bool((holders == P).all())
    return closed_form_bound(
        BoundQuery(
            workload=ctx.workload,
            params=ctx.params,
            participants=P,
            n_items=ctx.n_items,
            single_sending=single_sending,
            full_coverage=full_coverage,
        )
    )


def _rule_optimality_gap(ctx: LintContext) -> tuple[list[Diagnostic], int]:
    bound_kind = _optimality_bound(ctx)
    if bound_kind is None:
        return [], 0
    bound, kind = bound_kind
    makespan = ctx.makespan
    gap = makespan - bound
    if gap == 0:
        return [], 0
    if gap > 0:
        msg = (
            f"optimality gap: completes in {makespan} cycles, "
            f"{gap} above the {kind} lower bound of {bound}"
        )
        fixit = "compare against the paper's optimal construction"
    else:
        msg = (
            f"impossible completion: {makespan} cycles is below the "
            f"{kind} lower bound of {bound} — the schedule cannot be "
            f"doing the detected workload"
        )
        fixit = "check the initial placement / workload detection"
    return [
        Diagnostic(
            rule="SCHED008",
            severity=Severity.WARNING,
            message=msg,
            data={"makespan": makespan, "bound": bound, "gap": gap},
            fixit=fixit,
        )
    ], 1


# -- SCHED009: Theorem 3.2 endgame structure -----------------------------


def _rule_endgame_structure(ctx: LintContext) -> tuple[list[Diagnostic], int]:
    if not ctx.params.is_postal:
        return [], 0
    source = ctx.source
    assert source is not None  # guarded by workloads=("kitem",)
    cols = ctx.cols
    k = ctx.n_items
    order = ctx.replay_order
    src_order = order[cols.srcs[order] == source]
    if len(src_order) < k:
        return [], 0  # coverage (SCHED010) reports the missing items
    first_k = src_order[:k]
    items_first_k = cols.items[first_k]
    distinct = len(np.unique(items_first_k))
    if distinct == k:
        return [], 0
    # find the first repeat for the message (k is small; numpy scan)
    seen_before = np.zeros(len(cols.table.items) + 1, dtype=bool)
    repeat_pos = 0
    for pos, code in enumerate(items_first_k.tolist()):
        if seen_before[code]:
            repeat_pos = pos
            break
        seen_before[code] = True
    i = int(first_k[repeat_pos])
    return [
        Diagnostic(
            rule="SCHED009",
            severity=Severity.INFO,
            message=(
                f"endgame structure: the source's first {k} sends carry "
                f"only {distinct} distinct items (repeat at "
                f"{ctx.describe_send(i)}); Theorem 3.2's continuous phase "
                f"sends all {k} items before any repeat"
            ),
            sends=(i,),
            data={"k": k, "distinct_in_prefix": distinct},
        )
    ], 1


# -- SCHED010: coverage --------------------------------------------------


def _rule_coverage(ctx: LintContext) -> tuple[list[Diagnostic], int]:
    holders = ctx.holders_per_item
    P = len(ctx.participants)
    missing = np.flatnonzero(holders < P)
    total = len(missing)
    return [
        Diagnostic(
            rule="SCHED010",
            severity=Severity.WARNING,
            message=(
                f"incomplete coverage: item {ctx.item_of(int(code))!r} "
                f"reaches only {int(holders[code])} of {P} participating "
                f"processors"
            ),
            data={"holders": int(holders[code]), "participants": P},
            fixit="extend the schedule until every processor is informed",
        )
        for code in missing[:MAX_EMITTED_PER_RULE].tolist()
    ], total


RULES: tuple[Rule, ...] = (
    Rule(
        id="SCHED001",
        name="non-causal",
        severity=Severity.ERROR,
        summary="a processor sends an item before (or without ever) holding it",
        run=_rule_non_causal,
    ),
    Rule(
        id="SCHED002",
        name="self-send",
        severity=Severity.ERROR,
        summary="a processor sends a message to itself",
        run=_rule_self_send,
    ),
    Rule(
        id="SCHED003",
        name="negative-time",
        severity=Severity.ERROR,
        summary="a send starts before cycle 0",
        run=_rule_negative_time,
    ),
    Rule(
        id="SCHED004",
        name="dead-send",
        severity=Severity.WARNING,
        summary="a send whose destination already holds the item",
        run=_rule_dead_send,
    ),
    Rule(
        id="SCHED005",
        name="duplicate-delivery",
        severity=Severity.WARNING,
        summary="a (destination, item) pair is delivered more than once",
        run=_rule_duplicate_delivery,
    ),
    Rule(
        id="SCHED006",
        name="single-sending",
        severity=Severity.INFO,
        summary="the k-item source transmits some item more than once",
        run=_rule_single_sending,
        workloads=(Workload.KITEM,),
    ),
    Rule(
        id="SCHED007",
        name="idle-slack",
        severity=Severity.INFO,
        summary="sends start later than the earliest-start critical path",
        run=_rule_idle_slack,
    ),
    Rule(
        id="SCHED008",
        name="optimality-gap",
        severity=Severity.WARNING,
        summary="completion time misses the paper's closed-form lower bound",
        run=_rule_optimality_gap,
        workloads=(Workload.BROADCAST, Workload.KITEM, Workload.SCATTERED),
    ),
    Rule(
        id="SCHED009",
        name="endgame-structure",
        severity=Severity.INFO,
        summary="k-item source prefix violates Theorem 3.2's continuous phase",
        run=_rule_endgame_structure,
        workloads=(Workload.KITEM,),
    ),
    Rule(
        id="SCHED010",
        name="coverage",
        severity=Severity.WARNING,
        summary="an item fails to reach every participating processor",
        run=_rule_coverage,
        workloads=(Workload.BROADCAST, Workload.KITEM),
    ),
)


def rule_ids() -> list[str]:
    return [rule.id for rule in RULES]


def get_rule(rule_id: str) -> Rule:
    for rule in RULES:
        if rule.id == rule_id:
            return rule
    raise KeyError(f"unknown rule {rule_id!r}; known: {rule_ids()}")
