"""Execution traces: per-processor activity timelines.

A :class:`Trace` records what each processor is doing in every cycle
interval — sending overhead, receive overhead, computing, or idle — which
is exactly the information rendered in the paper's Figure 1 (processor
activity over time) and Figure 6 (computation schedule).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.params import LogPParams
from repro.schedule.ops import ComputeOp, Schedule, SendOp

__all__ = ["Activity", "Trace", "trace_from_schedule"]

Item = Hashable


@dataclass(frozen=True, slots=True, order=True)
class Activity:
    """One busy interval ``[start, end)`` of a processor.

    ``kind`` is ``"send"``, ``"recv"`` or ``"compute"``; ``peer`` is the
    other endpoint for communication activities (or ``None``).
    """

    start: int
    end: int
    kind: str
    proc: int
    item: Item = 0
    peer: int | None = None


@dataclass
class Trace:
    """All activities of an execution, grouped per processor."""

    params: LogPParams
    activities: dict[int, list[Activity]] = field(default_factory=dict)

    def add(self, activity: Activity) -> None:
        self.activities.setdefault(activity.proc, []).append(activity)

    def finalize(self) -> "Trace":
        for acts in self.activities.values():
            acts.sort()
        return self

    def horizon(self) -> int:
        """The last cycle at which any processor is busy."""
        ends = [a.end for acts in self.activities.values() for a in acts]
        return max(ends) if ends else 0

    def busy_cycles(self, proc: int) -> int:
        """Total busy cycles of ``proc`` (overheads + computation)."""
        return sum(a.end - a.start for a in self.activities.get(proc, []))

    def utilization(self, proc: int) -> float:
        """Fraction of the horizon during which ``proc`` is busy."""
        horizon = self.horizon()
        return self.busy_cycles(proc) / horizon if horizon else 0.0


def trace_from_schedule(schedule: Schedule) -> Trace:
    """Expand a schedule into explicit per-processor busy intervals.

    Send overhead occupies the sender for ``o`` cycles from the send start;
    receive overhead occupies the receiver for ``o`` cycles starting ``L``
    after the send overhead completes.  In the postal model (``o = 0``) the
    intervals are rendered with unit width so timelines stay legible.
    """
    params = schedule.params
    width = max(params.o, 1)
    trace = Trace(params=params)
    for op in schedule.sorted_sends():
        trace.add(
            Activity(
                start=op.time,
                end=op.time + width,
                kind="send",
                proc=op.src,
                item=op.item,
                peer=op.dst,
            )
        )
        rs = op.receive_start(params)
        trace.add(
            Activity(
                start=rs,
                end=rs + width,
                kind="recv",
                proc=op.dst,
                item=op.item,
                peer=op.src,
            )
        )
    for cop in sorted(schedule.computes):
        trace.add(
            Activity(
                start=cop.time,
                end=cop.time + cop.duration,
                kind="compute",
                proc=cop.proc,
                item=cop.result,
            )
        )
    return trace.finalize()
