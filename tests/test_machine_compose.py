"""Hierarchical composition end to end (DESIGN S38).

The tentpole acceptance suite: ``hier-bcast``/``hier-reduce`` through
the registry, per-level validation/lint, the pass framework's machine
threading, serialization and cache-key distinctness, and real-transport
execution byte-matched against the simulator.
"""

from __future__ import annotations

import pytest

from repro import registry
from repro.analyze import assert_lint_clean
from repro.core.fib import broadcast_time
from repro.machine import (
    FaultMaskedMachine,
    FlatMachine,
    HierarchicalMachine,
    hier_broadcast_schedule,
    hier_reduction_schedule,
    two_level_broadcast_plan,
)
from repro.params import LogPParams
from repro.schedule.analysis import completion_time
from repro.schedule.serialize import schedule_from_json, schedule_to_json
from repro.sim.validate_np import violations_np

INTER = LogPParams(P=8, L=24, o=2, g=6)
INTRA = LogPParams(P=8, L=2, o=1, g=1)
REFERENCE = HierarchicalMachine(nodes=8, cores=8, inter=INTER, intra=INTRA)


class TestHierBroadcast:
    def test_beats_flat_oblivious_on_reference_cluster(self):
        # the ISSUE's acceptance criterion: topology awareness wins on
        # the 8 nodes x 8 cores cluster
        schedule = registry.plan("hier-bcast", machine=REFERENCE)
        flat_cycles = broadcast_time(64, REFERENCE.flat_params)
        assert completion_time(schedule) < flat_cycles
        assert completion_time(schedule) == 67 and flat_cycles == 102

    def test_legal_and_lint_clean_under_per_level_pricing(self):
        schedule = registry.plan("hier-bcast", machine=REFERENCE)
        assert schedule.machine == REFERENCE
        assert violations_np(schedule) == []
        assert_lint_clean(schedule)

    def test_every_rank_informed_exactly_once(self):
        schedule = registry.plan("hier-bcast", machine=REFERENCE)
        dsts = schedule.columns().dsts
        assert sorted(dsts.tolist()) == list(range(1, 64))

    def test_default_machine_from_flat_params(self):
        # no machine= -> squarest factoring of P with a fast intra level
        schedule = registry.plan("hier-bcast", P=12, L=4, o=1, g=2)
        assert schedule.machine is not None
        assert (schedule.machine.nodes, schedule.machine.cores) == (4, 3)
        assert violations_np(schedule) == []

    def test_single_node_and_single_core_degenerate(self):
        line = HierarchicalMachine(
            nodes=1, cores=5, inter=INTER.with_processors(1), intra=INTRA
        )
        sched = hier_broadcast_schedule(line)
        assert violations_np(sched) == []
        assert sched.num_sends == 4
        wide = HierarchicalMachine(
            nodes=5, cores=1, inter=INTER, intra=INTRA.with_processors(1)
        )
        sched = hier_broadcast_schedule(wide)
        assert violations_np(sched) == []
        assert sched.num_sends == 4

    def test_conflicting_params_rejected(self):
        with pytest.raises(ValueError, match="flat envelope"):
            registry.plan(
                "hier-bcast",
                LogPParams(P=32, L=24, o=2, g=6),
                machine=REFERENCE,
            )

    def test_non_aware_collective_rejects_topology(self):
        with pytest.raises(ValueError, match="machine-aware"):
            registry.plan("broadcast", machine=REFERENCE)

    def test_non_aware_collective_accepts_flat_machine(self):
        params = LogPParams(P=8, L=6, o=2, g=4)
        viaflat = registry.plan("broadcast", machine=FlatMachine(params))
        assert viaflat == registry.plan("broadcast", params)

    def test_implicit_storage_rejects_machine(self):
        with pytest.raises(ValueError, match="implicit"):
            registry.plan(
                "hier-bcast", machine=REFERENCE, storage="implicit"
            )


class TestHierReduction:
    def test_reverses_broadcast_and_stays_legal(self):
        schedule = registry.plan("hier-reduce", machine=REFERENCE)
        assert schedule.machine == REFERENCE
        assert violations_np(schedule) == []
        assert_lint_clean(schedule)
        bcast = registry.plan("hier-bcast", machine=REFERENCE)
        assert completion_time(schedule) == completion_time(bcast)

    def test_all_partials_reach_the_root(self):
        schedule = registry.plan("hier-reduce", machine=REFERENCE)
        srcs = schedule.columns().srcs
        assert sorted(srcs.tolist()) == list(range(1, 64))


class TestTwoLevelPlan:
    def test_reference_cluster_numbers(self):
        plan = two_level_broadcast_plan(REFERENCE)
        assert plan.inter_cycles == 58
        assert plan.intra_cycles == 9
        assert plan.total_cycles == 67
        assert plan.flat_cycles == 102
        assert plan.speedup == pytest.approx(102 / 67)
        assert completion_time(plan.schedule) == plan.total_cycles

    def test_leader_schedule_lands_on_global_leader_ranks(self):
        plan = two_level_broadcast_plan(REFERENCE)
        for op in plan.leader_schedule.sorted_sends():
            assert op.src % 8 == 0 and op.dst % 8 == 0


class TestMachineThreadsThroughPasses:
    def test_passes_preserve_the_machine(self):
        from repro.passes import PassManager

        schedule = registry.plan("hier-bcast", machine=REFERENCE)
        result = PassManager(
            "shift{offset=3},canonicalize,prune-dead-sends,compact-time",
            verify="errors",
        ).run(schedule)
        assert result.machine == REFERENCE
        assert result.is_array_backed
        assert violations_np(result) == []

    def test_reverse_is_machine_priced(self):
        from repro.passes import ReversePass

        schedule = registry.plan("hier-bcast", machine=REFERENCE)
        reversed_ = ReversePass().run(schedule)
        assert reversed_.machine == REFERENCE
        assert violations_np(reversed_) == []

    def test_concat_refuses_mixed_machines(self):
        from repro.passes.kernels import concat_columns

        hier = registry.plan("hier-bcast", machine=REFERENCE)
        flat = registry.plan("broadcast", REFERENCE.flat_params)
        with pytest.raises(ValueError, match="different machines"):
            concat_columns(hier, flat)


class TestSerializationAndKeys:
    def test_round_trip_preserves_machine(self):
        schedule = registry.plan("hier-bcast", machine=REFERENCE)
        blob = schedule_to_json(schedule)
        back = schedule_from_json(blob)
        assert back.machine == REFERENCE
        assert schedule_to_json(back) == blob

    def test_flat_payload_has_no_machine_key(self):
        import json

        schedule = registry.plan("broadcast", P=8, L=6, o=2, g=4)
        assert "machine" not in json.loads(schedule_to_json(schedule))

    def test_cache_keys_distinguish_topologies(self):
        from repro.serve.keys import canonical_request, request_key

        params = LogPParams(P=64, L=24, o=2, g=6)
        flat_key = request_key(canonical_request("broadcast", params))
        hier_key = request_key(
            canonical_request("hier-bcast", machine=REFERENCE)
        )
        other = HierarchicalMachine(
            nodes=4, cores=16, inter=INTER.with_processors(4), intra=INTRA
        )
        other_key = request_key(
            canonical_request("hier-bcast", machine=other)
        )
        masked_key = request_key(
            canonical_request(
                "hier-bcast",
                machine=FaultMaskedMachine(base=REFERENCE, dead=(9,)),
            )
        )
        assert len({flat_key, hier_key, other_key, masked_key}) == 4
        assert "machine" not in flat_key

    def test_cached_plans_round_trip_through_the_service(self):
        from repro.serve import PlanService

        service = PlanService(capacity=8)
        first = registry.plan(
            "hier-bcast", machine=REFERENCE, cache=service
        )
        again = registry.plan(
            "hier-bcast", machine=REFERENCE, cache=service
        )
        assert first.machine == REFERENCE
        assert schedule_to_json(first) == schedule_to_json(again)
        assert service.planned == 1


class TestExecution:
    @pytest.mark.parametrize("transport", ["inproc", "mp"])
    def test_hier_plan_executes_and_byte_matches_simulator(self, transport):
        from repro.exec import execute

        machine = HierarchicalMachine(
            nodes=4,
            cores=4,
            inter=LogPParams(P=4, L=8, o=1, g=3),
            intra=LogPParams(P=4, L=2, o=0, g=1),
        )
        schedule = registry.plan("hier-bcast", machine=machine)
        result = execute(schedule, transport=transport, verify=True)
        assert result.num_delivered == schedule.num_sends

    def test_plan_execute_keyword(self):
        schedule = registry.plan(
            "hier-reduce", machine=REFERENCE, execute="inproc"
        )
        assert schedule.machine == REFERENCE
