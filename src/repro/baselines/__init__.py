"""Baseline algorithms the paper's constructions are compared against."""

from repro.baselines.kitem import (
    repeated_broadcast_schedule,
    scatter_allgather_schedule,
    staggered_binomial_schedule,
)
from repro.baselines.summation import (
    binary_reduction_capacity,
    binary_reduction_time,
    sequential_time,
)
from repro.baselines.trees import (
    baseline_broadcast,
    baseline_reduction,
    binary_tree_schedule,
    binomial_tree_schedule,
    chain_schedule,
    flat_schedule,
)

__all__ = [
    "flat_schedule", "chain_schedule", "binary_tree_schedule",
    "binomial_tree_schedule", "baseline_broadcast", "baseline_reduction",
    "repeated_broadcast_schedule", "staggered_binomial_schedule",
    "scatter_allgather_schedule",
    "binary_reduction_time", "binary_reduction_capacity", "sequential_time",
]
