"""Additional reactive-machine and simulator behaviors."""

import pytest

from repro.params import LogPParams, postal
from repro.schedule.analysis import availability, broadcast_delay_per_proc
from repro.sim.machine import Context, Machine, replay


class Relay:
    """Forward every received item to a fixed next hop."""

    def __init__(self, nxt: int | None):
        self.nxt = nxt

    def on_start(self, ctx: Context) -> None:
        if ctx.has("token") and self.nxt is not None:
            ctx.send(self.nxt, "token")

    def on_receive(self, ctx: Context, item, src) -> None:
        if self.nxt is not None:
            ctx.send(self.nxt, item)


class MultiSender:
    """Send several items back to back to the same destination."""

    def on_start(self, ctx: Context) -> None:
        for item in ("a", "b", "c"):
            if ctx.has(item):
                ctx.send(1, item)

    def on_receive(self, ctx, item, src) -> None:
        pass


class TestRingRelay:
    def test_token_circles_the_ring(self):
        P = 5
        params = postal(P=P, L=2)
        programs = {p: Relay((p + 1) % P if p != P - 1 else None) for p in range(P)}
        machine = Machine(params, programs, initial={0: {"token"}})
        schedule = machine.run()
        replay(schedule)
        av = availability(schedule)
        # token reaches p at hop distance p, each hop costing L
        for p in range(1, P):
            assert av[(p, "token")] == 2 * p

    def test_held_items_visible(self):
        params = postal(P=3, L=1)
        machine = Machine(params, {0: Relay(1), 1: Relay(2), 2: Relay(None)},
                          initial={0: {"token"}})
        machine.run()
        assert "token" in machine.held(2)


class TestGapEnforcement:
    def test_sends_spaced_by_gap(self):
        params = LogPParams(P=2, L=4, o=1, g=3)
        machine = Machine(params, {0: MultiSender()},
                          initial={0: {"a", "b", "c"}})
        schedule = machine.run()
        replay(schedule)
        times = sorted(op.time for op in schedule.sends)
        assert all(b - a >= 3 for a, b in zip(times, times[1:]))

    def test_receive_slots_booked_apart(self):
        # two senders targeting one receiver: arrivals must be >= g apart
        class SendTo2:
            def on_start(self, ctx):
                if ctx.held_items():
                    ctx.send(2, next(iter(ctx.held_items())))

            def on_receive(self, ctx, item, src):
                pass

        params = LogPParams(P=3, L=5, o=1, g=2)
        machine = Machine(
            params,
            {0: SendTo2(), 1: SendTo2()},
            initial={0: {"x"}, 1: {"y"}},
        )
        schedule = machine.run()
        replay(schedule)  # strict validator: receive gap respected

    def test_context_reports_params(self):
        params = postal(P=2, L=1)
        seen = []

        class Peek:
            def on_start(self, ctx):
                seen.append(ctx.params)

            def on_receive(self, ctx, item, src):
                pass

        Machine(params, {0: Peek()}).run()
        assert seen == [params]


class TestErrorPaths:
    def test_out_of_range_destination(self):
        class Bad:
            def on_start(self, ctx):
                ctx.send(99, 0)

            def on_receive(self, ctx, item, src):
                pass

        with pytest.raises(ValueError, match="out of range"):
            Machine(postal(P=2, L=1), {0: Bad()}).run()

    def test_cycle_guard(self):
        class Pingpong:
            def on_start(self, ctx):
                if ctx.proc == 0:
                    ctx.send(1, "ball")

            def on_receive(self, ctx, item, src):
                ctx.send(src, item)  # bounce the held ball forever

        with pytest.raises(RuntimeError, match="exceeded"):
            Machine(postal(P=2, L=1), {0: Pingpong(), 1: Pingpong()},
                    initial={0: {"ball"}}, max_cycles=200).run()

    def test_unheld_send_deadlocks_fast(self):
        # sending an item the processor never receives used to spin through
        # all max_cycles; now it fails fast with a diagnostic
        class Pingpong:
            def on_start(self, ctx):
                if ctx.proc == 0:
                    ctx.send(1, ("ball", 0))

            def on_receive(self, ctx, item, src):
                _tag, n = item
                ctx.send(src, ("ball", n + 1))  # item the sender never holds

        with pytest.raises(RuntimeError, match=r"(?s)deadlock.*proc 1 .*proc 0"):
            Machine(postal(P=2, L=1), {0: Pingpong(), 1: Pingpong()},
                    initial={0: {("ball", 0)}}).run()
