# repro: profile=keying
"""Planted REPRO006: nondeterminism feeding content keys."""

import json
import random
import time

CANONICAL_DUMPS = {"sort_keys": True, "separators": (",", ":")}


def stamped_key(payload):
    return json.dumps({"payload": payload, "at": time.time()}, **CANONICAL_DUMPS)


def salted_key(payload):
    salt = random.random()
    return json.dumps({"payload": payload, "salt": salt}, **CANONICAL_DUMPS)


def set_key(items):
    return json.dumps(
        {"items": {item.name for item in items}}, **CANONICAL_DUMPS
    )
