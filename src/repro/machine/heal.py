"""Fault-aware replanning: re-root subtrees orphaned by rank removal.

When ranks die (or a ``restrict`` pass cuts them out of a broadcast
tree), every send touching a dead rank disappears — and with it the
whole subtree it fed.  :func:`heal_columns` repairs such a schedule in
two vectorized stages:

1. **Replay-and-drop** — a monotone fixpoint over the availability
   table keeps exactly the sends whose sender is informed by its start
   time and whose endpoints both survive.  Everything downstream of a
   dead rank is dropped transitively.
2. **Greedy re-inform** — each orphaned survivor (ascending rank) is
   re-attached to the earliest-finishing informed sender, respecting
   per-level spacing: a new event at a processor is placed at least
   ``g`` (of its edge's level) after *every* existing same-level event
   there.  Since LogP guarantees ``o <= g``, that single spacing rule
   simultaneously satisfies the send gap, receive gap, overhead
   exclusivity, and capacity (pairwise-``g``-spaced sends keep at most
   ``ceil(L/g)`` in flight) constraints, so healing preserves legality
   by construction — and the validator re-checks it anyway.

Healed ranks immediately join the candidate sender pool, so a healed
orphan can relay to the next one.  The kernel is columnar throughout:
it loops over *processors* (fixpoint rounds and orphans), never over
sends, which keeps it legal under the hot-loop AST gate.

Only single-item broadcast workloads are supported — the k-item and
scattered repair problems need item-aware re-routing and are out of
scope here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fib import broadcast_time
from repro.schedule.columnar import ItemTable
from repro.schedule.ops import Schedule

__all__ = ["HealStats", "heal_columns"]

_INF = np.iinfo(np.int64).max


@dataclass(frozen=True)
class HealStats:
    """What one :func:`heal_columns` run dropped, added, and proved."""

    #: Sends removed because an endpoint died or the sender was orphaned.
    dropped_sends: int
    #: Re-inform sends added by the greedy stage.
    healed_sends: int
    #: Survivors with no path from the root before healing.
    uncovered_before: int
    #: Survivors still uncovered after healing (always 0 on success).
    uncovered_after: int
    makespan_before: int
    makespan_after: int
    #: Closed-form broadcast bound over the survivor count — only
    #: meaningful under flat pricing (None on hierarchical machines).
    completion_bound: int | None


def _single_item(schedule: Schedule) -> tuple[int, object]:
    """The (root, item) of a single-item broadcast, or raise."""
    placements = [
        (proc, items)
        for proc, items in schedule.initial.items()
        if items
    ]
    if len(placements) != 1 or len(placements[0][1]) != 1:
        raise ValueError(
            "heal supports single-item broadcast schedules only "
            f"(found {len(placements)} initial placement(s))"
        )
    root, items = placements[0]
    (item,) = items
    cols = schedule.columns()
    if len(cols) and len(np.unique(cols.items)) > 1:
        raise ValueError("heal supports single-item broadcast schedules only")
    if len(cols) and cols.table.items[int(cols.items[0])] != item:
        raise ValueError(
            "heal: sends carry a different item than the initial placement"
        )
    return root, item


def heal_columns(
    schedule: Schedule, procs: set[int] | None = None
) -> tuple[Schedule, HealStats]:
    """Drop sends involving dead/removed ranks and re-inform orphans.

    ``procs`` names the survivor set explicitly; by default every rank
    the machine reports alive (all ranks when no machine is attached)
    must end up informed.  The root must survive.  Returns the healed
    schedule (same params/machine, array-backed) and a
    :class:`HealStats` record.
    """
    params = schedule.params
    machine = schedule.machine
    root, item = _single_item(schedule)
    cols = schedule.columns()

    alive = machine.alive_np() if machine is not None else np.arange(
        params.P, dtype=np.int64
    )
    if procs is None:
        survivors = alive
    else:
        requested = np.asarray(sorted(int(p) for p in procs), dtype=np.int64)
        if len(requested) and (
            requested[0] < 0 or requested[-1] >= params.P
        ):
            raise ValueError(
                f"survivor ranks must lie in [0, {params.P}), got "
                f"[{int(requested[0])}, {int(requested[-1])}]"
            )
        survivors = np.intersect1d(requested, alive)
    if root not in survivors:
        raise ValueError(
            f"heal: broadcast root {root} is not in the survivor set"
        )

    # -- stage 1: replay-and-drop fixpoint --------------------------------
    creation = int(schedule.item_creation_time(item))
    avail = np.full(params.P, _INF, dtype=np.int64)
    avail[root] = creation
    endpoint_ok = np.isin(cols.srcs, survivors) & np.isin(cols.dsts, survivors)
    keep = np.zeros(len(cols), dtype=bool)
    # monotone (avail only decreases from INF), so it converges within
    # dependency-chain depth rounds; the bound is a pure safeguard
    for _ in range(len(cols) + 2):
        keep = endpoint_ok & (cols.times >= avail[cols.srcs])
        cand = np.full(params.P, _INF, dtype=np.int64)
        np.minimum.at(cand, cols.dsts[keep], cols.arrivals[keep])
        new_avail = np.minimum(avail, cand)
        if np.array_equal(new_avail, avail):
            break
        avail = new_avail

    dropped = int(len(cols) - keep.sum())
    orphans = survivors[avail[survivors] == _INF]
    uncovered_before = int(len(orphans))
    makespan_before = int(cols.arrivals.max()) if len(cols) else creation

    kt, ks, kd, ka = (
        cols.times[keep],
        cols.srcs[keep],
        cols.dsts[keep],
        cols.arrivals[keep],
    )

    # -- stage 2: greedy re-inform ----------------------------------------
    levels = machine.levels if machine is not None else (params,)
    n_levels = len(levels)
    costs = np.fromiter(
        (p.send_cost for p in levels), dtype=np.int64, count=n_levels
    )
    gaps = np.fromiter((p.g for p in levels), dtype=np.int64, count=n_levels)
    ohs = np.fromiter((p.o for p in levels), dtype=np.int64, count=n_levels)

    if machine is not None and not machine.is_flat:
        kept_levels = machine.edge_levels_np(ks, kd)
    else:
        kept_levels = np.zeros(len(ks), dtype=np.int64)

    # floor[l, p]: earliest start for a *new* level-l event at proc p —
    # one gap after every existing same-level send start / receive start
    floor = np.zeros((n_levels, params.P), dtype=np.int64)
    for level in range(n_levels):
        mask = kept_levels == level
        np.maximum.at(floor[level], ks[mask], kt[mask] + gaps[level])
        np.maximum.at(
            floor[level], kd[mask], ka[mask] - ohs[level] + gaps[level]
        )

    new_times: list[int] = []
    new_srcs: list[int] = []
    new_dsts: list[int] = []
    for orphan in orphans.tolist():
        informed = survivors[avail[survivors] < _INF]
        if machine is not None and not machine.is_flat:
            edge_levels = machine.edge_levels_np(
                informed, np.full(len(informed), orphan, dtype=np.int64)
            )
        else:
            edge_levels = np.zeros(len(informed), dtype=np.int64)
        starts = np.maximum(avail[informed], floor[edge_levels, informed])
        arrivals = starts + costs[edge_levels]
        pick = int(np.argmin(arrivals))  # ties -> lowest informed rank
        sender = int(informed[pick])
        level = int(edge_levels[pick])
        start = int(starts[pick])
        new_times.append(start)
        new_srcs.append(sender)
        new_dsts.append(orphan)
        avail[orphan] = int(arrivals[pick])
        floor[level, sender] = start + int(gaps[level])
        floor[level, orphan] = max(
            int(floor[level, orphan]),
            int(arrivals[pick]) - int(ohs[level]) + int(gaps[level]),
        )

    times = np.concatenate([kt, np.asarray(new_times, dtype=np.int64)])
    srcs = np.concatenate([ks, np.asarray(new_srcs, dtype=np.int64)])
    dsts = np.concatenate([kd, np.asarray(new_dsts, dtype=np.int64)])
    healed = Schedule.from_arrays(
        params,
        times,
        srcs,
        dsts,
        item_table=ItemTable([item]),
        initial={root: {item}},
        source_items=dict(schedule.source_items),
        machine=machine,
    )

    healed_cols = healed.columns()
    makespan_after = (
        int(healed_cols.arrivals.max()) if len(healed_cols) else creation
    )
    still_uncovered = int((avail[survivors] == _INF).sum())
    bound: int | None = None
    if machine is None or machine.has_flat_pricing:
        bound = broadcast_time(len(survivors), params)
    stats = HealStats(
        dropped_sends=dropped,
        healed_sends=len(new_times),
        uncovered_before=uncovered_before,
        uncovered_after=still_uncovered,
        makespan_before=makespan_before,
        makespan_after=makespan_after,
        completion_bound=bound,
    )
    return healed, stats
