"""``repro.serve``: planning as a cached, batched, served product.

The registry's :func:`~repro.registry.plan` builds every collective from
scratch on each call.  Real traffic (Barchet-Estefanel & Mounié's
measurements, PAPERS.md cs/0408034) concentrates on a small set of
recurring ``(collective, machine)`` points, so this package puts a
content-addressed cache in front of the planner and serves it:

* :mod:`repro.serve.keys` — canonical request keys (alias-normalized,
  dispatch-env-independent) and content hashing of canonical plan JSON;
* :mod:`repro.serve.cache` — bounded in-memory LRU over an atomic,
  corruption-tolerant on-disk tier that stores each distinct plan once;
* :mod:`repro.serve.service` — :class:`PlanService` with ``plan_json``
  / ``plan_many_json`` (batch keys deduplicated before planning) and
  ``stats()`` observability;
* :mod:`repro.serve.http` — a stdlib ``ThreadingHTTPServer`` front end
  (``POST /plan``, ``POST /plan_many``, ``GET /stats``), started via
  ``python -m repro.cli serve``.

Quickstart::

    from repro.serve import PlanService

    service = PlanService(capacity=1024, directory=".plan-cache")
    plan_json = service.plan("broadcast", P=8, L=6, o=2, g=4)
    service.plan_many_json([{"collective": "bcast", "P": 8, "L": 6}] * 100)
    service.stats()["memory"]["hits"]

The bench harness's ``serve`` scenario (``repro.bench.bench_serve``)
drives a Zipf request mix over thousands of points; the recorded gate
(``BENCH_PR7.json``) holds the hot path at ≥ 20x cold planning with a
≥ 90% hit rate.
"""

from repro.serve.cache import DiskCache, LRUCache, PlanCache
from repro.serve.http import PlanServer, serve_http
from repro.serve.keys import (
    PlanRequest,
    build_plan,
    canonical_request,
    content_hash,
    plan_content,
    request_from_mapping,
    request_key,
    request_key_hash,
)
from repro.serve.service import PlanService, core_cache_stats

__all__ = [
    "PlanRequest",
    "canonical_request",
    "request_from_mapping",
    "request_key",
    "request_key_hash",
    "plan_content",
    "content_hash",
    "build_plan",
    "LRUCache",
    "DiskCache",
    "PlanCache",
    "PlanService",
    "core_cache_stats",
    "PlanServer",
    "serve_http",
]
