"""Graphviz DOT export for trees and block digraphs.

The evaluation environment is text-only, but downstream users can render
these with ``dot -Tpng``:

* :func:`tree_to_dot` — broadcast/summation trees with delay labels;
* :func:`digraph_to_dot` — the Figure-3 block transmission digraph with
  thick (active) edges drawn bold.
"""

from __future__ import annotations

import networkx as nx

from repro.core.tree import BroadcastTree

__all__ = ["tree_to_dot", "digraph_to_dot", "automaton_to_dot"]


def _quote(value: object) -> str:
    return '"' + str(value).replace('"', r"\"") + '"'


def tree_to_dot(tree: BroadcastTree, name: str = "broadcast_tree") -> str:
    """DOT source for a broadcast tree; node label ``P<i>@<delay>``."""
    lines = [f"digraph {name} {{", "  rankdir=TB;", "  node [shape=circle];"]
    for node in tree.nodes:
        label = f"P{node.index}\\n@{node.delay}"
        shape = "doublecircle" if node.parent is None else "circle"
        lines.append(f"  n{node.index} [label={_quote(label)}, shape={shape}];")
    for node in tree.nodes:
        for child in node.children:
            lines.append(f"  n{node.index} -> n{child};")
    lines.append("}")
    return "\n".join(lines)


def digraph_to_dot(graph: nx.MultiDiGraph, name: str = "block_digraph") -> str:
    """DOT source for a block transmission digraph (Figure 3 style).

    Active edges render bold (the paper's thick edges); inactive edges
    carry their weight as the edge label; block vertices are labeled with
    their size ``r``; the receive-only vertex is labeled 0.
    """
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    ids: dict = {}
    for i, (node, data) in enumerate(graph.nodes(data=True)):
        ids[node] = f"v{i}"
        if node == "src":
            label, shape = "src", "box"
        elif data["size"] == 0:
            label, shape = "0", "doublecircle"
        else:
            label, shape = str(data["size"]), "circle"
        lines.append(f"  v{i} [label={_quote(label)}, shape={shape}];")
    for u, v, data in graph.edges(data=True):
        if data["kind"] == "active":
            attrs = 'style=bold, penwidth=2.5'
        else:
            attrs = f'label={_quote(data["weight"])}'
        lines.append(f"  {ids[u]} -> {ids[v]} [{attrs}];")
    lines.append("}")
    return "\n".join(lines)


def automaton_to_dot(graph: nx.DiGraph, name: str = "word_automaton") -> str:
    """DOT source for the legal-word automaton (Figure 2c style).

    Start states render as double circles, matching the paper's figure.
    """
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    ids = {}
    for i, (node, data) in enumerate(graph.nodes(data=True)):
        ids[node] = f"s{i}"
        shape = "doublecircle" if data.get("start") else "circle"
        lines.append(
            f"  s{i} [label={_quote(data.get('label', node))}, shape={shape}];"
        )
    for u, v in graph.edges():
        lines.append(f"  {ids[u]} -> {ids[v]};")
    lines.append("}")
    return "\n".join(lines)
