"""The machine layer (DESIGN S38): models, specs, docs, defaults.

Covers the :mod:`repro.machine.model` surface on its own — pricing,
liveness, canonical docs, the CLI spec grammar, and the default
P-factoring — independent of the composition and healing suites.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine.model import (
    FaultMaskedMachine,
    FlatMachine,
    HierarchicalMachine,
    default_hier_machine,
    machine_from_doc,
    machine_from_spec,
)
from repro.params import LogPParams

INTER = LogPParams(P=8, L=24, o=2, g=6)
INTRA = LogPParams(P=8, L=2, o=1, g=1)
HIER = HierarchicalMachine(nodes=8, cores=8, inter=INTER, intra=INTRA)


class TestFlatMachine:
    def test_is_flat_and_has_flat_pricing(self):
        m = FlatMachine(LogPParams(P=4, L=6, o=2, g=4))
        assert m.is_flat and m.has_flat_pricing
        assert m.num_procs == 4
        assert m.flat_params == LogPParams(P=4, L=6, o=2, g=4)
        assert m.levels == (m.flat_params,)

    def test_every_edge_priced_at_send_cost(self):
        m = FlatMachine(LogPParams(P=4, L=6, o=2, g=4))
        srcs = np.array([0, 1, 2])
        dsts = np.array([3, 0, 1])
        assert (m.edge_levels_np(srcs, dsts) == 0).all()
        assert (m.send_cost_np(srcs, dsts) == 6 + 2 * 2).all()

    def test_alive_and_expected(self):
        m = FlatMachine(LogPParams(P=3, L=1))
        assert m.alive_np().tolist() == [0, 1, 2]
        assert m.expected_participants() is None


class TestHierarchicalMachine:
    def test_shape_and_envelope(self):
        assert HIER.num_procs == 64
        assert not HIER.is_flat and not HIER.has_flat_pricing
        # the flat envelope prices every edge at the inter level
        assert HIER.flat_params == INTER.with_processors(64)
        assert HIER.levels == (
            INTER.with_processors(8),
            INTRA.with_processors(8),
        )

    def test_edge_levels_split_on_node_boundary(self):
        srcs = np.array([0, 0, 8, 9, 63])
        dsts = np.array([1, 8, 9, 15, 55])
        # same node -> level 1 (intra), cross node -> level 0 (inter)
        assert HIER.edge_levels_np(srcs, dsts).tolist() == [1, 0, 1, 1, 0]
        assert HIER.send_cost_np(srcs, dsts).tolist() == [
            2 + 2 * 1,
            24 + 2 * 2,
            2 + 2 * 1,
            2 + 2 * 1,
            24 + 2 * 2,
        ]

    def test_leaders(self):
        assert [HIER.leader(n) for n in range(8)] == [
            0, 8, 16, 24, 32, 40, 48, 56,
        ]

    def test_doc_round_trip(self):
        doc = HIER.canonical_doc()
        assert doc["kind"] == "hier"
        assert machine_from_doc(doc) == HIER

    def test_level_param_P_normalized(self):
        # the per-level LogPParams carry the level's own processor count,
        # whatever P the caller passed in
        m = HierarchicalMachine(
            nodes=4,
            cores=2,
            inter=LogPParams(P=99, L=5, o=1, g=2),
            intra=LogPParams(P=1, L=1),
        )
        assert m.inter.P == 4 and m.intra.P == 2


class TestFaultMaskedMachine:
    def test_delegates_pricing_and_masks_liveness(self):
        m = FaultMaskedMachine(base=HIER, dead=(9, 27))
        assert m.num_procs == 64
        assert m.flat_params == HIER.flat_params
        assert m.levels == HIER.levels
        srcs, dsts = np.array([0, 0]), np.array([1, 8])
        assert (
            m.send_cost_np(srcs, dsts) == HIER.send_cost_np(srcs, dsts)
        ).all()
        alive = m.alive_np()
        assert 9 not in alive and 27 not in alive and len(alive) == 62
        expected = m.expected_participants()
        assert expected is not None and expected.tolist() == alive.tolist()

    def test_dead_sorted_and_deduped(self):
        m = FaultMaskedMachine(base=HIER, dead=(27, 9, 27))
        assert m.dead == (9, 27)

    def test_nested_masks_flatten(self):
        inner = FaultMaskedMachine(base=HIER, dead=(9,))
        outer = FaultMaskedMachine(base=inner, dead=(27,))
        assert outer.base is HIER
        assert outer.dead == (9, 27)

    def test_rejects_out_of_range_and_total_death(self):
        with pytest.raises(ValueError):
            FaultMaskedMachine(base=HIER, dead=(64,))
        with pytest.raises(ValueError):
            FaultMaskedMachine(base=HIER, dead=tuple(range(64)))

    def test_doc_round_trip(self):
        m = FaultMaskedMachine(base=HIER, dead=(3, 5))
        doc = m.canonical_doc()
        assert doc["kind"] == "fault" and doc["dead"] == [3, 5]
        assert machine_from_doc(doc) == m

    def test_stray_doc_keys_rejected(self):
        # docs feed cache keys: a hier doc with a stray 'dead' key must
        # error, not silently alias the unmasked machine
        doc = dict(HIER.canonical_doc())
        doc["dead"] = [9]
        with pytest.raises(ValueError, match="unknown key"):
            machine_from_doc(doc)


class TestSpecGrammar:
    def test_flat(self):
        params = LogPParams(P=8, L=6, o=2, g=4)
        assert machine_from_spec("flat", params) == FlatMachine(params)

    def test_flat_requires_params(self):
        with pytest.raises(ValueError):
            machine_from_spec("flat")

    def test_hier_reference_cluster(self):
        m = machine_from_spec("hier:8x8:24/2/6:2/1/1")
        assert m == HierarchicalMachine(
            nodes=8,
            cores=8,
            inter=LogPParams(P=8, L=24, o=2, g=6),
            intra=LogPParams(P=8, L=2, o=1, g=1),
        )

    def test_dead_suffix_wraps(self):
        m = machine_from_spec("hier:8x8:24/2/6:2/1/1:dead=9+27")
        assert isinstance(m, FaultMaskedMachine)
        assert m.dead == (9, 27)

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "mesh:2x2:1/0/1:1/0/1",
            "hier:8x8:24/2/6",
            "hier:8:24/2/6:2/1/1",
            "hier:8x8:24/2:2/1/1",
            "hier:8x8:24/2/6:2/1/1:dead=",
            "flat:extra",
        ],
    )
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(ValueError):
            machine_from_spec(bad, LogPParams(P=4, L=2))


class TestDefaultHierMachine:
    def test_squarest_factoring(self):
        m = default_hier_machine(LogPParams(P=512, L=8, o=1, g=2))
        assert (m.nodes, m.cores) == (32, 16)
        assert m.flat_params == LogPParams(P=512, L=8, o=1, g=2)

    def test_prime_P_degenerates_to_single_core_nodes(self):
        m = default_hier_machine(LogPParams(P=7, L=3))
        assert (m.nodes, m.cores) == (7, 1)

    def test_docs_distinguish_topologies_at_equal_envelope(self):
        params = LogPParams(P=64, L=24, o=2, g=6)
        a = HierarchicalMachine(nodes=8, cores=8, inter=params, intra=INTRA)
        b = HierarchicalMachine(nodes=4, cores=16, inter=params, intra=INTRA)
        assert a.flat_params == b.flat_params
        assert a.canonical_doc() != b.canonical_doc()
