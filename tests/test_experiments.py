"""Tests for the experiments layer (figures, sweeps, ablations)."""

import pytest

from repro.experiments.ablations import (
    buffered_destination_ablation,
    pruning_strategy_ablation,
    summation_tree_shape_ablation,
)
from repro.experiments.figures import (
    all_figures,
    fig1_single_item,
    fig2_continuous,
    fig3_digraph,
    fig5_buffered,
    fig6_summation,
)
from repro.experiments.sweeps import (
    broadcast_vs_baselines,
    combining_sweep,
    pt_recurrence_sweep,
    summation_capacity_sweep,
)


class TestFigures:
    def test_fig1_measured_values(self):
        r = fig1_single_item()
        assert r.measured["B(P)"] == 24
        assert "P0 @0" in r.text

    def test_fig2_measured_values(self):
        r = fig2_continuous()
        assert r.measured["item_delay"] == [10]
        assert r.measured["k8_completion"] == 17
        assert "H5" in " ".join(r.measured["measured_S7"])

    def test_fig3_digraph_text(self):
        r = fig3_digraph()
        assert r.measured["P_minus_1"] == 41
        assert "==>" in r.text

    def test_fig5_buffered(self):
        r = fig5_buffered()
        assert r.measured["completion"] == 24
        assert r.measured["buffer_peak"] <= 2

    def test_fig6_summation(self):
        r = fig6_summation()
        assert r.measured["n(t)"] == 79
        assert r.measured["verified_total"]

    def test_all_figures_runs(self):
        results = all_figures()
        assert [r.figure for r in results] == [
            f"Figure {i}" for i in range(1, 7)
        ]
        for r in results:
            assert r.text and r.measured


class TestSweeps:
    def test_pt_sweep_equality(self):
        for row in pt_recurrence_sweep(Ls=(2, 3), t_max=8):
            assert row["P(t)_tree"] == row["f_t"]

    def test_baseline_sweep_ordering(self):
        for row in broadcast_vs_baselines():
            assert row["optimal"] <= min(
                row["flat"], row["chain"], row["binary"], row["binomial"]
            )

    def test_combining_rows(self):
        for row in combining_sweep(Ls=(2, 3), extra=3):
            assert row["complete"] and row["invariant"]

    def test_summation_rows_dominate(self):
        for row in summation_capacity_sweep():
            assert row["optimal_n"] >= row["binary_reduction_n"]


class TestAblations:
    def test_pruning_always_finds_solution(self):
        rows = pruning_strategy_ablation(cases=((6, 2), (11, 3)))
        for row in rows:
            assert row["winner"] != "NONE"

    def test_buffered_strategies_both_complete(self):
        rows = buffered_destination_ablation(cases=((8, 6, 3),))
        row = rows[0]
        assert row["greedy_completion"] == row["round_robin_completion"] == row["bound"]
        assert row["greedy_buffer_peak"] <= row["round_robin_buffer_peak"]

    def test_summation_shape_rows(self):
        rows = summation_tree_shape_ablation()
        names = {row["tree"] for row in rows}
        assert {"optimal", "binomial", "chain"} <= names


class TestDotExport:
    def test_tree_dot(self):
        from repro.core.tree import optimal_tree
        from repro.params import postal
        from repro.viz.dot import tree_to_dot

        dot = tree_to_dot(optimal_tree(postal(P=5, L=2)))
        assert dot.startswith("digraph")
        assert dot.count("->") == 4  # P-1 edges
        assert "doublecircle" in dot  # the root

    def test_digraph_dot(self):
        from repro.core.kitem.blocks import block_transmission_digraph
        from repro.viz.dot import digraph_to_dot

        dot = digraph_to_dot(block_transmission_digraph(11, 3))
        assert "style=bold" in dot  # active edges
        assert 'label="src"' in dot or "label=\"src\"" in dot
