"""Per-rank executable programs: the target IR of ``repro.exec.lower``.

A :class:`RankProgram` is an ordered instruction stream for one rank —
sends, matched receives and local reductions — with *data dependencies*
instead of LogP times: a ``SendInstr`` names the index of the
instruction that produced its item (``dep``), or ``-1`` when the item
is initially held.  Times are a property of the *model*; programs are
what a real transport can run, where only ordering and matching are
enforceable.

Storage follows the schedule IR's columnar discipline: a program is
four parallel int64/int8 arrays (kind, peer, item code, dep) plus a
sparse side table for reduction operands, and the per-instruction
dataclasses (:class:`SendInstr` / :class:`RecvInstr` /
:class:`ReduceInstr`) are materialized lazily, for inspection and
tests only — never on the execution hot path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np

from repro.params import LogPParams
from repro.schedule.columnar import ItemTable
from repro.schedule.ops import Item

__all__ = [
    "KIND_RECV",
    "KIND_REDUCE",
    "KIND_SEND",
    "SendInstr",
    "RecvInstr",
    "ReduceInstr",
    "Instr",
    "RankProgram",
    "ExecPlan",
]

# Kind codes double as same-time priorities during lowering: a payload
# must be received (0) and folded (1) before any send (2) that depends
# on it at the same cycle.
KIND_RECV = 0
KIND_REDUCE = 1
KIND_SEND = 2

_KIND_NAMES = {KIND_RECV: "recv", KIND_REDUCE: "reduce", KIND_SEND: "send"}


@dataclass(frozen=True, slots=True)
class SendInstr:
    """Send ``item`` to rank ``dst``; ``dep`` is the index of the
    producing instruction in this program (``-1`` = initially held)."""

    dst: int
    item: Item
    dep: int


@dataclass(frozen=True, slots=True)
class RecvInstr:
    """Block until the matching ``(src, item)`` message is delivered."""

    src: int
    item: Item


@dataclass(frozen=True, slots=True)
class ReduceInstr:
    """Fold ``operands`` (already available locally) into ``result``."""

    result: Item
    operands: tuple[Item, ...]


Instr = SendInstr | RecvInstr | ReduceInstr


class RankProgram:
    """Frozen instruction stream for one rank (struct-of-arrays)."""

    __slots__ = (
        "rank",
        "kinds",
        "peers",
        "items",
        "deps",
        "reduce_operands",
        "_table",
        "_instrs",
    )

    def __init__(
        self,
        rank: int,
        kinds: np.ndarray,
        peers: np.ndarray,
        items: np.ndarray,
        deps: np.ndarray,
        reduce_operands: Mapping[int, tuple[int, ...]],
        table: ItemTable,
    ) -> None:
        self.rank = rank
        self.kinds = kinds
        self.peers = peers
        self.items = items
        self.deps = deps
        self.reduce_operands = dict(reduce_operands)
        self._table = table
        self._instrs: tuple[Instr, ...] | None = None
        for column in (kinds, peers, items, deps):
            column.setflags(write=False)

    def __len__(self) -> int:
        return int(self.kinds.shape[0])

    @property
    def num_sends(self) -> int:
        return int(np.count_nonzero(self.kinds == KIND_SEND))

    @property
    def num_recvs(self) -> int:
        return int(np.count_nonzero(self.kinds == KIND_RECV))

    def instructions(self) -> tuple[Instr, ...]:
        """Materialized instruction objects (lazy; inspection only)."""
        if self._instrs is None:
            decode = self._table.decode
            out: list[Instr] = []
            for i in range(len(self)):
                kind = int(self.kinds[i])
                if kind == KIND_SEND:
                    out.append(
                        SendInstr(
                            dst=int(self.peers[i]),
                            item=decode(int(self.items[i])),
                            dep=int(self.deps[i]),
                        )
                    )
                elif kind == KIND_RECV:
                    out.append(
                        RecvInstr(
                            src=int(self.peers[i]),
                            item=decode(int(self.items[i])),
                        )
                    )
                else:
                    operands = self.reduce_operands[i]
                    out.append(
                        ReduceInstr(
                            result=decode(int(self.items[i])),
                            operands=tuple(decode(c) for c in operands),
                        )
                    )
            self._instrs = tuple(out)
        return self._instrs

    def __iter__(self) -> Iterator[Instr]:
        return iter(self.instructions())

    def __repr__(self) -> str:
        counts = {
            name: int(np.count_nonzero(self.kinds == kind))
            for kind, name in _KIND_NAMES.items()
        }
        body = ", ".join(f"{n}={c}" for n, c in counts.items() if c)
        return f"RankProgram(rank={self.rank}, {body or 'empty'})"


class ExecPlan:
    """A lowered schedule: one :class:`RankProgram` per participating
    rank, a shared item table, and the initial item placement (codes).

    ``num_ranks`` is the machine size ``P``; ranks with no instructions
    and no initial items simply have empty programs.
    """

    __slots__ = ("params", "table", "programs", "initial", "num_sends")

    def __init__(
        self,
        params: LogPParams,
        table: ItemTable,
        programs: Mapping[int, RankProgram],
        initial: Mapping[int, tuple[int, ...]],
        num_sends: int,
    ) -> None:
        self.params = params
        self.table = table
        self.programs = dict(programs)
        self.initial = {r: tuple(codes) for r, codes in initial.items()}
        self.num_sends = num_sends

    @property
    def num_ranks(self) -> int:
        return self.params.P

    @property
    def num_instrs(self) -> int:
        return sum(len(p) for p in self.programs.values())

    def program(self, rank: int) -> RankProgram:
        prog = self.programs.get(rank)
        if prog is None:
            raise KeyError(f"no program lowered for rank {rank}")
        return prog

    def encode(self, item: Item) -> int:
        """Item -> dense code in this plan's shared table."""
        code = self.table.codes.get(item)
        if code is None:
            raise KeyError(f"item {item!r} does not appear in this plan")
        return code

    def __repr__(self) -> str:
        return (
            f"ExecPlan(P={self.params.P}, ranks={len(self.programs)}, "
            f"instrs={self.num_instrs}, sends={self.num_sends})"
        )
