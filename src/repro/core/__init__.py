"""Core algorithms: the paper's contributions (Sections 2-5)."""
