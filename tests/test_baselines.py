"""Tests for the baseline algorithms (and that the optimum beats them)."""

import pytest

from repro.baselines.kitem import (
    repeated_broadcast_schedule,
    scatter_allgather_schedule,
    staggered_binomial_schedule,
)
from repro.baselines.summation import (
    binary_reduction_capacity,
    binary_reduction_time,
    sequential_time,
)
from repro.baselines.trees import baseline_broadcast
from repro.core.fib import broadcast_time
from repro.core.kitem.bounds import kitem_lower_bound
from repro.params import LogPParams, postal
from repro.core.summation.capacity import summation_capacity
from repro.schedule.analysis import broadcast_delay_per_proc
from tests.conftest import assert_broadcast_complete, assert_kitem_complete

MACHINES = [
    postal(P=7, L=2),
    postal(P=16, L=4),
    LogPParams(P=8, L=6, o=2, g=4),
    LogPParams(P=12, L=3, o=1, g=2),
]


class TestBroadcastBaselines:
    @pytest.mark.parametrize("name", ["flat", "chain", "binary", "binomial"])
    @pytest.mark.parametrize("params", MACHINES)
    def test_valid_and_complete(self, name, params):
        delays = assert_broadcast_complete(baseline_broadcast(name, params), P=params.P)
        assert max(delays.values()) >= broadcast_time(params.P, params)

    def test_optimal_never_loses(self):
        # B(P) lower-bounds every baseline on every machine
        for params in MACHINES:
            opt = broadcast_time(params.P, params)
            for name in ("flat", "chain", "binary", "binomial"):
                s = baseline_broadcast(name, params)
                worst = max(broadcast_delay_per_proc(s).values())
                assert worst >= opt, (name, params)

    def test_binomial_matches_optimal_for_L1_postal(self):
        # with L=1, o=0, g=1 the universal tree IS binomial
        params = postal(P=16, L=1)
        s = baseline_broadcast("binomial", params)
        assert max(broadcast_delay_per_proc(s).values()) == broadcast_time(16, params)

    def test_fig1_gaps(self, fig1_params):
        # the LogP paper's motivating example: optimal 24 vs binomial 30
        opt = broadcast_time(8, fig1_params)
        bino = max(
            broadcast_delay_per_proc(
                baseline_broadcast("binomial", fig1_params)
            ).values()
        )
        assert opt == 24 and bino == 30

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            baseline_broadcast("quantum", postal(P=4, L=2))


class TestKItemBaselines:
    @pytest.mark.parametrize("builder", [
        repeated_broadcast_schedule,
        staggered_binomial_schedule,
        scatter_allgather_schedule,
    ])
    @pytest.mark.parametrize("P,L,k", [(5, 2, 4), (10, 3, 6), (9, 1, 8), (2, 3, 3)])
    def test_valid_and_complete(self, builder, P, L, k):
        s = builder(k, P, L)
        done = assert_kitem_complete(s, P=P, k=k)
        assert done >= kitem_lower_bound(P, L, k)

    def test_repeated_time_is_k_times_B(self):
        P, L, k = 10, 3, 5
        s = repeated_broadcast_schedule(k, P, L)
        done = assert_kitem_complete(s, P=P, k=k)
        assert done == k * broadcast_time(P, postal(P=P, L=L))

    def test_scatter_wins_over_repeated_for_large_k(self):
        P, L, k = 6, 2, 30
        rep = assert_kitem_complete(repeated_broadcast_schedule(k, P, L), P=P, k=k)
        sc = assert_kitem_complete(scatter_allgather_schedule(k, P, L), P=P, k=k)
        assert sc < rep


class TestSummationBaselines:
    def test_binary_reduction_time_formula(self):
        p = postal(P=4, L=2)
        # 8 operands: 1 local add + 2 rounds * (2+1)
        assert binary_reduction_time(8, p) == 1 + 2 * 3

    def test_capacity_inverse(self):
        p = LogPParams(P=8, L=5, o=2, g=4)
        for t in (10, 28, 40):
            n = binary_reduction_capacity(t, p)
            assert binary_reduction_time(n, p) <= t
            assert binary_reduction_time(n + 1, p) > t

    def test_optimal_summation_dominates(self):
        p = LogPParams(P=8, L=5, o=2, g=4)
        for t in (28, 35, 50):
            assert summation_capacity(t, p) >= binary_reduction_capacity(t, p)

    def test_sequential(self):
        assert sequential_time(10) == 9
        with pytest.raises(ValueError):
            sequential_time(0)
