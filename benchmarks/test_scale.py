"""Scalability benchmarks: the library at sizes well beyond the paper's.

* optimal-tree construction for thousands of processors (heap build);
* stitched continuous-broadcast solving for large ``t`` (the §3.3
  induction keeps it linear);
* vectorized analysis vs the scalar helpers on a large schedule.
"""

import pytest

from repro.core.continuous.assignment import solve
from repro.core.continuous.schedule import expand_assignment
from repro.core.fib import reachable_postal
from repro.core.single_item import optimal_broadcast_schedule
from repro.core.tree import optimal_tree
from repro.params import postal
from repro.schedule.analysis import completion_time
from repro.schedule.analysis_np import columns, completion_time_np


def test_tree_construction_P10000(benchmark):
    tree = benchmark(lambda: optimal_tree(postal(P=10_000, L=4)))
    assert len(tree) == 10_000
    tree.validate()


def test_stitched_continuous_t25(benchmark):
    from repro.core.continuous.assignment import _solve_cached

    def run():
        _solve_cached.cache_clear()  # measure real work, not the cache
        return solve(25, 3)

    assignment = benchmark(run)
    assignment.validate()
    # P(25) = 8641 processors for L=3; the induction keeps solving fast
    assert assignment.num_processors == reachable_postal(25, 3) == 8641
    assert assignment.delay == 28


def test_vectorized_analysis(benchmark):
    schedule = optimal_broadcast_schedule(postal(P=5_000, L=3))

    def run():
        cols = columns(schedule)
        return completion_time_np(cols)

    fast = benchmark(run)
    assert fast == completion_time(schedule)


def test_continuous_expansion_window(benchmark):
    assignment = solve(12, 3)

    def run():
        return expand_assignment(assignment, num_items=60)

    schedule = benchmark(run)
    # P(12) = 60 procs x 60 items
    assert len(schedule.sends) == reachable_postal(12, 3) * 60
