"""Tests for execution traces."""

from repro.core.single_item import optimal_broadcast_schedule
from repro.core.summation.schedule import summation_schedule
from repro.params import LogPParams, postal
from repro.sim.trace import Activity, Trace, trace_from_schedule

FIG1 = LogPParams(P=8, L=6, o=2, g=4)


class TestTraceStructure:
    def test_horizon(self):
        trace = trace_from_schedule(optimal_broadcast_schedule(FIG1))
        assert trace.horizon() == 24  # last receive overhead ends at B

    def test_send_and_recv_intervals(self):
        trace = trace_from_schedule(optimal_broadcast_schedule(FIG1))
        root = trace.activities[0]
        sends = [a for a in root if a.kind == "send"]
        assert [a.start for a in sends] == [0, 4, 8, 12]
        assert all(a.end - a.start == 2 for a in sends)  # o = 2

    def test_postal_unit_width(self):
        trace = trace_from_schedule(optimal_broadcast_schedule(postal(P=4, L=2)))
        for acts in trace.activities.values():
            assert all(a.end - a.start == 1 for a in acts)

    def test_busy_cycles_and_utilization(self):
        trace = trace_from_schedule(optimal_broadcast_schedule(FIG1))
        assert trace.busy_cycles(0) == 8  # four sends, 2 cycles each
        assert 0 < trace.utilization(0) <= 1

    def test_compute_activities(self):
        plan = summation_schedule(28, LogPParams(P=8, L=5, o=2, g=4))
        trace = trace_from_schedule(plan.to_schedule())
        computes = [
            a for acts in trace.activities.values() for a in acts if a.kind == "compute"
        ]
        assert computes, "summation trace must show computation"

    def test_activities_sorted(self):
        trace = trace_from_schedule(optimal_broadcast_schedule(FIG1))
        for acts in trace.activities.values():
            assert acts == sorted(acts)

    def test_empty_trace(self):
        t = Trace(params=postal(P=1, L=1))
        assert t.horizon() == 0
        assert t.utilization(0) == 0.0
