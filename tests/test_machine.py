"""Tests for the cycle-stepped reactive machine and replay."""

import pytest

from repro.core.single_item import optimal_broadcast_schedule
from repro.params import LogPParams, postal
from repro.schedule.analysis import broadcast_delay_per_proc, completion_time
from repro.schedule.ops import Schedule
from repro.sim.machine import Context, Machine, replay
from repro.core.fib import broadcast_time


class Flood:
    """Greedy broadcast program: forward the item to everyone above you."""

    def on_start(self, ctx: Context) -> None:
        if ctx.has(0):
            for dst in range(ctx.params.P):
                if dst != ctx.proc:
                    ctx.send(dst, 0)

    def on_receive(self, ctx: Context, item, src) -> None:
        pass


class GreedyRelay:
    """Every informed processor relays to all higher-numbered processors."""

    def on_start(self, ctx: Context) -> None:
        if ctx.has(0):
            self._relay(ctx)

    def on_receive(self, ctx: Context, item, src) -> None:
        self._relay(ctx)

    def _relay(self, ctx: Context) -> None:
        for dst in range(ctx.proc + 1, ctx.params.P):
            ctx.send(dst, 0)


class TestReplay:
    def test_optimal_broadcast_replays(self, fig1_params):
        trace = replay(optimal_broadcast_schedule(fig1_params))
        assert trace.horizon() == 24

    def test_replay_rejects_illegal(self):
        s = Schedule(params=postal(P=3, L=2))
        s.add(time=0, src=1, dst=2, item=0)
        with pytest.raises(ValueError):
            replay(s)


class TestMachine:
    def test_flood_reaches_everyone(self):
        params = postal(P=5, L=2)
        m = Machine(params, {0: Flood()})
        schedule = m.run()
        delays = broadcast_delay_per_proc(schedule)
        assert set(delays) == set(range(5))
        # source sends back to back: arrivals at L, L+1, ...
        assert sorted(delays.values()) == [0, 2, 3, 4, 5]

    def test_emitted_schedule_is_legal(self):
        params = LogPParams(P=6, L=4, o=1, g=2)
        m = Machine(params, {p: GreedyRelay() for p in range(6)})
        schedule = m.run()
        replay(schedule)  # must not raise
        assert set(broadcast_delay_per_proc(schedule)) == set(range(6))

    def test_greedy_relay_matches_optimal_when_tree_is_chainlike(self):
        # with P=2 any strategy is L + 2o
        params = LogPParams(P=2, L=5, o=1, g=2)
        m = Machine(params, {p: GreedyRelay() for p in range(2)})
        schedule = m.run()
        assert completion_time(schedule) == params.send_cost

    def test_machine_respects_overheads(self):
        params = LogPParams(P=4, L=3, o=2, g=2)
        m = Machine(params, {p: GreedyRelay() for p in range(4)})
        schedule = m.run()
        replay(schedule)

    def test_rejects_self_send(self):
        class Bad:
            def on_start(self, ctx):
                ctx.send(ctx.proc, 0)

            def on_receive(self, ctx, item, src):
                pass

        with pytest.raises(ValueError):
            Machine(postal(P=2, L=1), {0: Bad()}).run()

    def test_greedy_flood_never_beats_optimal(self):
        # B(P) is optimal: no reactive program can finish sooner
        for P in (3, 5, 8):
            params = LogPParams(P=P, L=3, o=1, g=2)
            m = Machine(params, {p: GreedyRelay() for p in range(P)})
            schedule = m.run()
            done = max(broadcast_delay_per_proc(schedule).values())
            assert done >= broadcast_time(P, params)
