"""`PassManager`: chain passes with lint verification between them.

The manager is the "verified" half of the framework: after every pass it
can re-run the lint engine (:mod:`repro.analyze`) as an IR verifier.
The legality rules SCHED001-003 (causality, self-send, negative time)
play the role of MLIR's structural verifier; warnings and info rules can
ride along with ``verify="all"`` for diagnosis but never fail a run.

Verification is *differential*: the input schedule's pre-existing error
rules form a baseline, and a pass fails verification only when it
**introduces** an error rule id that was not already present — so
normalization pipelines (e.g. ``canonicalize``) run cleanly over the
deliberately-broken lint corpus, while a buggy rewrite of a clean
schedule is caught immediately.  Passes declaring
``preserves_completion`` additionally have their makespan (completion
minus start time) checked.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.passes.base import SchedulePass
from repro.passes.pipeline import parse_pipeline
from repro.schedule.ops import Schedule

if TYPE_CHECKING:
    from repro.analyze import LintReport

__all__ = [
    "ERROR_RULES",
    "PassManager",
    "PassRecord",
    "PassVerificationError",
    "run_pipeline",
]

#: The legality rules used as the IR verifier (errors; SCHED004+ are
#: warnings/info and never fail verification).
ERROR_RULES = ("SCHED001", "SCHED002", "SCHED003")


class PassVerificationError(RuntimeError):
    """A pass broke a declared invariant (new lint errors or makespan)."""


@dataclass(frozen=True)
class PassRecord:
    """What one pass did: sizes, makespans, timing, stats, lint report."""

    index: int
    name: str
    description: str
    sends_before: int
    sends_after: int
    makespan_before: int
    makespan_after: int
    elapsed_s: float
    stats: dict[str, Any] = field(default_factory=dict)
    report: "LintReport | None" = None


def _makespan(schedule: Schedule) -> int:
    """Completion time minus start time (0 for an empty schedule)."""
    cols = schedule.columns()
    if len(cols) == 0:
        return 0
    return int(cols.arrivals.max()) - int(cols.times.min())


class PassManager:
    """Run a pass sequence over a schedule, verifying between passes.

    ``passes`` is either a list of :class:`SchedulePass` instances or
    pipeline text for :func:`repro.passes.pipeline.parse_pipeline`.
    ``verify`` is ``"errors"`` (default: re-lint SCHED001-003 after each
    pass), ``"all"`` (run every lint rule; reports carry warnings too,
    but only *introduced* errors fail), or ``"off"``.  ``backend``
    forces the dispatch override onto every pass that does not already
    carry one.  After :meth:`run`, :attr:`records` holds one
    :class:`PassRecord` per executed pass.
    """

    def __init__(
        self,
        passes: list[SchedulePass] | str,
        verify: str = "errors",
        backend: str | None = None,
    ):
        if verify not in ("errors", "all", "off"):
            raise ValueError(
                f"verify must be 'errors', 'all' or 'off', got {verify!r}"
            )
        self.passes = parse_pipeline(passes) if isinstance(passes, str) else list(passes)
        self.verify = verify
        if backend is not None:
            for p in self.passes:
                if p.backend is None:
                    p.backend = backend
        self.records: list[PassRecord] = []

    def _lint(self, schedule: Schedule) -> "LintReport":
        # analyze transitively imports repro.registry; resolving lazily
        # keeps the passes package importable from anywhere in the core.
        from repro.analyze import lint_schedule

        if self.verify == "all":
            return lint_schedule(schedule)
        return lint_schedule(schedule, select=ERROR_RULES)

    def run(self, schedule: Schedule) -> Schedule:
        """Apply every pass in order; returns the final schedule."""
        from repro.schedule.implicit import ImplicitSchedule

        if isinstance(schedule, ImplicitSchedule):
            raise TypeError(
                "PassManager verifies materialized schedules; apply "
                "shift/remap to an implicit plan via pass.run_implicit() "
                "or materialize() it first"
            )
        self.records = []
        baseline: set[str] = set()
        if self.verify != "off":
            baseline = {d.rule for d in self._lint(schedule).errors}
        current = schedule
        for index, p in enumerate(self.passes):
            sends_before = current.num_sends
            makespan_before = _makespan(current)
            started = time.perf_counter()
            result = p.run(current)
            elapsed = time.perf_counter() - started
            report: "LintReport | None" = None
            if self.verify != "off":
                report = self._lint(result)
                post = {d.rule for d in report.errors}
                introduced = post - baseline
                if introduced and p.preserves_legality:
                    raise PassVerificationError(
                        f"pass {p.describe()!r} (step {index + 1}) introduced "
                        f"lint errors: {', '.join(sorted(introduced))}"
                    )
                baseline = post
                if (
                    p.preserves_completion
                    and _makespan(result) != makespan_before
                ):
                    raise PassVerificationError(
                        f"pass {p.describe()!r} (step {index + 1}) changed "
                        f"the makespan from {makespan_before} to "
                        f"{_makespan(result)} despite declaring "
                        "preserves_completion"
                    )
            self.records.append(
                PassRecord(
                    index=index,
                    name=p.name,
                    description=p.describe(),
                    sends_before=sends_before,
                    sends_after=result.num_sends,
                    makespan_before=makespan_before,
                    makespan_after=_makespan(result),
                    elapsed_s=elapsed,
                    stats=dict(p.stats),
                    report=report,
                )
            )
            current = result
        return current


def run_pipeline(
    pipeline: str | list[SchedulePass],
    schedule: Schedule,
    verify: str = "off",
    backend: str | None = None,
) -> Schedule:
    """One-shot convenience: build a manager, run it, return the result."""
    return PassManager(pipeline, verify=verify, backend=backend).run(schedule)
