"""Perf-regression gate for the vectorized validator and event simulator.

Marked ``perf`` so tier-1 (``pytest tests/``) never runs these; they are
timing-sensitive and belong in ``make bench``.  The headline acceptance
number for PR-1 is the validator speedup: on the P=256 all-to-all
broadcast (65,280 sends) the numpy engine must beat the scalar engine by
at least 5x while producing the identical (empty) violation list.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import bench_all_to_all, bench_broadcast, time_call  # noqa: E402
from repro.core.all_to_all import all_to_all_schedule  # noqa: E402
from repro.params import postal  # noqa: E402
from repro.sim.validate import violations  # noqa: E402
from repro.sim.validate_np import violations_np  # noqa: E402

pytestmark = pytest.mark.perf


def test_validate_np_speedup_on_p256_all_to_all():
    schedule = all_to_all_schedule(postal(P=256, L=4))
    assert len(schedule.sends) == 256 * 255 == 65_280
    scalar_s, scalar_v = time_call(
        lambda: violations(schedule, force_scalar=True), repeat=3
    )
    np_s, np_v = time_call(lambda: violations_np(schedule), repeat=3)
    assert scalar_v == np_v == []
    speedup = scalar_s / np_s
    assert speedup >= 5.0, (
        f"vectorized validator only {speedup:.1f}x faster than scalar "
        f"({scalar_s:.3f}s vs {np_s:.3f}s); acceptance floor is 5x"
    )


def test_dispatched_violations_uses_fast_path_at_scale():
    # the public entry point must route large schedules to numpy: it may
    # not be more than marginally slower than calling violations_np directly
    schedule = all_to_all_schedule(postal(P=128, L=4))
    auto_s, _ = time_call(lambda: violations(schedule), repeat=3)
    np_s, _ = time_call(lambda: violations_np(schedule), repeat=3)
    assert auto_s < 3 * np_s + 0.05


def test_event_driven_machine_skips_idle_cycles():
    # a 2-hop-per-relay chain at P=1024 spans ~6k cycles but only ~3k
    # events; the event-driven engine must finish far under a per-cycle
    # scan budget (~1s on any plausible box)
    row = bench_broadcast(1024, repeat=1)
    assert row["simulate_sends"] == 1023
    assert row["simulate_machine_s"] < 1.0


def test_bench_scenarios_produce_legal_schedules():
    # bench rows double as correctness probes: validators returned empty
    # (asserted inside), machine sends match the closed form P(P-1)
    row = bench_all_to_all(64, repeat=1)
    assert row["sends"] == 64 * 63
    assert row["simulate_sends"] == 64 * 63
    assert row["validate_speedup"] > 1.0
