"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_machine_args(self):
        args = build_parser().parse_args(
            ["plan-bcast", "--P", "8", "--L", "6", "--o", "2", "--g", "4"]
        )
        assert (args.P, args.L, args.o, args.g) == (8, 6, 2, 4)

    def test_sum_requires_n_or_t(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan-sum", "--P", "4", "--L", "2"])


class TestCommands:
    def test_plan_bcast(self, capsys):
        assert main(["plan-bcast", "--P", "8", "--L", "6", "--o", "2", "--g", "4"]) == 0
        out = capsys.readouterr().out
        assert "B(P) = 24" in out
        assert "binomial" in out

    def test_plan_bcast_tree_and_timeline(self, capsys):
        main(["plan-bcast", "--P", "4", "--L", "2", "--show-tree", "--timeline"])
        out = capsys.readouterr().out
        assert "P0 @0" in out  # tree
        assert "P0 " in out    # timeline rows

    def test_plan_kitem(self, capsys):
        assert main(["plan-kitem", "--P", "10", "--L", "3", "--k", "8"]) == 0
        out = capsys.readouterr().out
        assert "completion:             17" in out
        assert "lower bound:    15" in out

    def test_plan_kitem_table(self, capsys):
        main(["plan-kitem", "--P", "5", "--L", "2", "--k", "3", "--table"])
        out = capsys.readouterr().out
        assert "time" in out

    def test_plan_sum_by_n(self, capsys):
        assert main([
            "plan-sum", "--P", "8", "--L", "5", "--o", "2", "--g", "4", "--n", "79",
        ]) == 0
        out = capsys.readouterr().out
        assert "t = 28 cycles" in out

    def test_plan_sum_by_t(self, capsys):
        main(["plan-sum", "--P", "4", "--L", "2", "--t", "10"])
        out = capsys.readouterr().out
        assert "operands" in out

    def test_plan_allreduce(self, capsys):
        assert main(["plan-allreduce", "--P", "9", "--L", "3"]) == 0
        out = capsys.readouterr().out
        assert "T = 7" in out

    def test_figures_single(self, capsys):
        assert main(["figures", "--only", "1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "B(P) = 24" in out

    def test_report(self, capsys):
        assert main(["report", "--P", "8", "--L", "6", "--o", "2", "--g", "4"]) == 0
        out = capsys.readouterr().out
        assert "# LogP collectives report" in out
        assert "B(P) = 24" in out
        assert "Summation" in out


class TestRegistryCommands:
    def test_builders_lists_specs_with_theorem_tags(self, capsys):
        from repro import registry

        assert main(["builders"]) == 0
        out = capsys.readouterr().out
        for spec in registry.specs():
            assert spec.name in out
            assert spec.theorem in out

    def test_builders_names_matches_registry(self, capsys):
        from repro import registry

        assert main(["builders", "--names"]) == 0
        names = capsys.readouterr().out.split()
        assert tuple(names) == registry.spec_names()

    def test_plan_reports_tight_bound(self, capsys):
        assert main(
            ["plan", "broadcast", "--P", "8", "--L", "6", "--o", "2", "--g", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "completes in 24 cycles" in out
        assert "matches the Thm 2.1 lower bound of 24" in out

    def test_plan_accepts_aliases(self, capsys):
        assert main(["plan", "a2a", "--P", "4", "--L", "2"]) == 0
        assert "all-to-all" in capsys.readouterr().out

    def test_plan_unknown_collective_one_line_diagnostic(self, capsys):
        assert main(["plan", "scan", "--P", "4", "--L", "2"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error: unknown collective 'scan'")
        assert err.count("\n") == 1  # exactly one diagnostic line

    def test_plan_out_of_domain_one_line_diagnostic(self, capsys):
        assert main(["plan", "kitem", "--P", "1", "--L", "3", "--k", "2"]) == 2
        err = capsys.readouterr().err
        assert "repro: error: kitem: P must be >= 2, got 1" in err
        assert main(["plan", "kitem", "--P", "4", "--L", "3", "--k", "0"]) == 2
        assert "k must be >= 1" in capsys.readouterr().err


class TestLintCommand:
    def test_lint_builders_are_error_free(self, capsys):
        from repro import registry

        for builder in registry.spec_names():
            assert main(["lint", "--builder", builder]) == 0, builder
            out = capsys.readouterr().out
            assert "summary: 0 errors" in out

    def test_lint_builder_aliases_accepted(self, capsys):
        assert main(["lint", "--builder", "bcast"]) == 0
        assert "workload=broadcast" in capsys.readouterr().out

    def test_lint_unknown_builder_one_line_diagnostic(self, capsys):
        assert main(["lint", "--builder", "bogus"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error: unknown collective 'bogus'")
        assert err.count("\n") == 1

    def test_lint_malformed_json_one_line_diagnostic(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["lint", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith(f"repro: error: {path}: malformed JSON")
        assert err.count("\n") == 1

    def test_lint_missing_file_one_line_diagnostic(self, tmp_path, capsys):
        path = tmp_path / "nope.json"
        assert main(["lint", str(path)]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_lint_file_and_builder_conflict(self, tmp_path, capsys):
        path = tmp_path / "plan.json"
        path.write_text("{}")
        assert main(["lint", str(path), "--builder", "bcast"]) == 2
        err = capsys.readouterr().err
        assert "not both" in err
        assert err.count("\n") == 1

    def test_lint_neither_file_nor_builder(self, capsys):
        assert main(["lint"]) == 2
        assert "schedule JSON file or --builder" in capsys.readouterr().err

    def test_lint_from_file(self, tmp_path, capsys):
        from repro.core.single_item import optimal_broadcast_schedule
        from repro.params import LogPParams
        from repro.schedule.serialize import dump_schedule

        path = tmp_path / "bcast.json"
        dump_schedule(
            optimal_broadcast_schedule(LogPParams(P=8, L=6, o=2, g=4)), path
        )
        assert main(["lint", str(path)]) == 0
        assert "workload=broadcast" in capsys.readouterr().out

    def test_lint_fail_on_escalation(self, tmp_path, capsys):
        from repro.params import postal
        from repro.schedule.ops import Schedule, SendOp
        from repro.schedule.serialize import dump_schedule

        # legal but wasteful: proc 1 is delivered item 0 twice
        sched = Schedule(
            postal(3, 2),
            sends=[SendOp(0, 0, 1, 0), SendOp(1, 0, 2, 0), SendOp(4, 2, 1, 0)],
            initial={0: {0}},
        )
        path = tmp_path / "wasteful.json"
        dump_schedule(sched, path)
        assert main(["lint", str(path)]) == 0  # warnings pass --fail-on error
        capsys.readouterr()
        assert main(["lint", str(path), "--fail-on", "warning"]) == 1
        out = capsys.readouterr().out
        assert "SCHED005" in out
        assert main(["lint", str(path), "--fail-on", "never"]) == 0

    def test_lint_json_output_is_sarif(self, capsys):
        import json

        assert main(["lint", "--builder", "bcast", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["tool"]["driver"]["name"] == "repro-schedule-lint"

    def test_lint_select_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            main(["lint", "--builder", "bcast", "--select", "SCHED042"])


class TestOptCommand:
    def test_opt_builder_pipeline(self, capsys):
        assert main([
            "opt", "--builder", "bcast", "-P", "8", "-L", "6", "--o", "2",
            "--g", "4", "--pipeline", "reverse,canonicalize", "--verify-each",
        ]) == 0
        out = capsys.readouterr().out
        assert "[1] reverse" in out
        assert "[verified]" in out
        assert "pipeline: 2 passes" in out

    def test_opt_list_passes(self, capsys):
        assert main(["opt", "--list-passes"]) == 0
        out = capsys.readouterr().out
        for name in ("shift", "remap", "reverse", "concat", "restrict",
                     "canonicalize", "prune-dead-sends", "compact-time"):
            assert name in out
        assert "[LC]" in out  # legality+completion preserving passes

    def test_opt_requires_pipeline(self, capsys):
        assert main(["opt", "--builder", "bcast"]) == 2
        err = capsys.readouterr().err
        assert "requires --pipeline" in err
        assert err.count("\n") == 1

    def test_opt_unknown_pass_one_line_diagnostic(self, capsys):
        assert main(["opt", "--builder", "bcast", "--pipeline", "bogus"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error: unknown pass 'bogus'")
        assert err.count("\n") == 1

    def test_opt_file_and_builder_conflict(self, tmp_path, capsys):
        path = tmp_path / "plan.json"
        path.write_text("{}")
        assert main([
            "opt", str(path), "--builder", "bcast", "--pipeline", "canonicalize",
        ]) == 2
        assert "not both" in capsys.readouterr().err

    def test_opt_verification_failure_exits_one(self, capsys):
        # shifting by a huge offset keeps legality, so use a pipeline
        # whose parse succeeds but whose run violates an invariant:
        # shift below cycle 0 raises ValueError inside the pass
        assert main([
            "opt", "--builder", "bcast", "--pipeline", "shift{offset=-1}",
        ]) == 1
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")

    def test_opt_out_roundtrips(self, tmp_path, capsys):
        from repro.schedule.serialize import load_schedule
        from repro.sim.machine import replay

        path = tmp_path / "opt.json"
        assert main([
            "opt", "--builder", "all-to-all", "-P", "6", "-L", "2",
            "--pipeline", "reverse,canonicalize", "--out", str(path),
        ]) == 0
        assert f"wrote {path}" in capsys.readouterr().out
        replay(load_schedule(path))

    def test_opt_json_output_is_sarif(self, capsys):
        import json

        assert main([
            "opt", "--builder", "bcast", "--pipeline", "canonicalize",
            "--format", "json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
