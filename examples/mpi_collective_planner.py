#!/usr/bin/env python3
"""Plan MPI-style collectives for a measured machine.

Scenario: you have benchmarked your cluster's interconnect and obtained
LogP parameters (as the LogP methodology prescribes).  This planner
compares the schedules an MPI library would typically use (binomial /
binary / flat trees) against the provably optimal ones from the paper,
for MPI_Bcast, MPI_Reduce, MPI_Allreduce and MPI_Alltoall — and prints a
recommendation table.

Run:  python examples/mpi_collective_planner.py
"""

from dataclasses import dataclass

from repro import LogPParams, broadcast_time, combining_time, replay
from repro.baselines.trees import baseline_broadcast
from repro.core.all_to_all import all_to_all_schedule, all_to_all_time, is_tight
from repro.core.single_item import optimal_broadcast_schedule
from repro.schedule.analysis import broadcast_delay_per_proc, completion_time


@dataclass
class MachineProfile:
    name: str
    params: LogPParams


# LogP profiles in cycles: a low-latency fabric, a high-latency cloud
# interconnect, and an overhead-heavy TCP stack.
PROFILES = [
    MachineProfile("cm5-like   (L=6,  o=2, g=4)", LogPParams(P=32, L=6, o=2, g=4)),
    MachineProfile("fat-tree   (L=12, o=1, g=2)", LogPParams(P=32, L=12, o=1, g=2)),
    MachineProfile("tcp-heavy  (L=40, o=8, g=9)", LogPParams(P=32, L=40, o=8, g=9)),
]


def plan_bcast(params: LogPParams) -> dict[str, int]:
    times = {}
    for name in ("binomial", "binary", "flat"):
        schedule = baseline_broadcast(name, params)
        replay(schedule)
        times[name] = max(broadcast_delay_per_proc(schedule).values())
    optimal = optimal_broadcast_schedule(params)
    replay(optimal)
    times["optimal (paper)"] = max(broadcast_delay_per_proc(optimal).values())
    return times


def main() -> None:
    for profile in PROFILES:
        p = profile.params
        print(f"\n=== {profile.name}, P = {p.P} ===")

        times = plan_bcast(p)
        best_baseline = min(v for k, v in times.items() if k != "optimal (paper)")
        saving = 100 * (best_baseline - times["optimal (paper)"]) / best_baseline
        print("MPI_Bcast:")
        for name, cycles in sorted(times.items(), key=lambda kv: kv[1]):
            marker = "  <- recommended" if cycles == times["optimal (paper)"] else ""
            print(f"  {name:<18} {cycles:>6} cycles{marker}")
        print(f"  (optimal saves {saving:.0f}% over the best classic tree)")

        # Reduce is the time reversal of broadcast: same cost.
        print(f"MPI_Reduce:    {broadcast_time(p.P, p)} cycles (reversed broadcast)")

        # Allreduce via combining broadcast costs ONE reduction, not two.
        T = combining_time(p.P, p.to_postal().L)
        print(f"MPI_Allreduce: {T} postal steps via combining broadcast "
              f"(vs {2 * T} for reduce-then-broadcast)")

        a2a = all_to_all_schedule(p)
        replay(a2a)
        tightness = "tight" if is_tight(p) else "stretched for overhead interleaving"
        print(f"MPI_Alltoall:  {completion_time(a2a)} cycles "
              f"[{tightness}], schedule = cyclic shifts")


if __name__ == "__main__":
    main()
