"""Pruned broadcast trees.

The optimal tree on ``P(t)`` nodes is unique, but many constructions in
the paper need trees on *other* node counts or with extra slack in the
completion time: the ``L = 2`` continuous schedules of Theorem 3.5 and
the general single-sending k-item schedules of Theorem 3.6 both prune a
``T``-step optimal tree down to a target size.

A pruning repeatedly removes some node's *last* child when that child is
a leaf — this keeps every node's surviving children at consecutive delays
starting ``d + L``, the property the block machinery relies on (an
``r``-degree node sends on ``r`` consecutive steps).

:func:`candidate_trees` yields a small family of differently-shaped
prunings (plus the greedy optimal tree when it fits) for the word solver
to try.
"""

from __future__ import annotations

import random
from typing import Callable, Iterator

from repro.core.tree import BroadcastTree, TreeNode, optimal_tree, tree_for_time
from repro.params import LogPParams, postal

__all__ = ["prune_to_size", "candidate_trees"]


def _clone_nodes(tree: BroadcastTree) -> list[TreeNode]:
    return [
        TreeNode(
            index=n.index, delay=n.delay, parent=n.parent, children=list(n.children)
        )
        for n in tree.nodes
    ]


def _rebuild(nodes: list[TreeNode], removed: set[int], params: LogPParams) -> BroadcastTree:
    survivors = [n for n in nodes if n.index not in removed]
    remap = {n.index: i for i, n in enumerate(survivors)}
    for i, node in enumerate(survivors):
        node.index = i
        node.parent = None if node.parent is None else remap[node.parent]
        node.children = [remap[c] for c in node.children]
    return BroadcastTree(params.with_processors(len(survivors)), survivors)


def prune_to_size(
    T: int,
    L: int,
    size: int,
    chooser: Callable[[list[tuple[int, int]]], tuple[int, int]],
) -> BroadcastTree | None:
    """Prune the full ``T``-step tree (postal latency ``L``) to ``size`` nodes.

    ``chooser`` picks, from the list of currently removable
    ``(parent_index, leaf_index)`` pairs (last children that are leaves),
    the next removal.  Returns ``None`` if the full tree is already
    smaller than ``size``.
    """
    full = tree_for_time(T, postal(P=1, L=L))
    if len(full) < size:
        return None
    nodes = _clone_nodes(full)
    removed: set[int] = set()
    degree = {n.index: len(n.children) for n in nodes}

    def removable() -> list[tuple[int, int]]:
        out = []
        for n in nodes:
            if n.index in removed or not n.children:
                continue
            last = n.children[-1]
            if degree[last] == 0:
                out.append((n.index, last))
        return out

    to_remove = len(full) - size
    for _ in range(to_remove):
        options = removable()
        if not options:
            return None
        parent, leaf = chooser(options)
        nodes[parent].children.pop()
        degree[parent] -= 1
        removed.add(leaf)
    return _rebuild(nodes, removed, postal(P=size, L=L))


def candidate_trees(
    size: int, L: int, T: int, seeds: int = 4
) -> Iterator[BroadcastTree]:
    """Yield candidate per-item trees with ``size`` nodes, completion <= ``T``.

    Candidates, in order: the greedy optimal tree (when its completion is
    exactly within ``T``), then deterministic prunings of the full
    ``T``-step tree (latest-leaf-first, balance-degrees,
    earliest-removable-first), then ``seeds`` seeded random prunings.
    Duplicate shapes are not filtered (the word solver is cheap to retry).
    """
    greedy = optimal_tree(postal(P=size, L=L))
    if greedy.completion_time <= T:
        yield greedy

    full = tree_for_time(T, postal(P=1, L=L))
    if len(full) < size:
        return
    index = {n.index: n for n in full.nodes}

    def latest(options: list[tuple[int, int]]) -> tuple[int, int]:
        return max(options, key=lambda pr: (index[pr[1]].delay, pr[1]))

    def earliest(options: list[tuple[int, int]]) -> tuple[int, int]:
        return min(options, key=lambda pr: (index[pr[1]].delay, pr[1]))

    # `index` holds the full tree, so choosers may only use static node
    # delays; live degrees are re-derived from the options themselves.
    def balance_live(options: list[tuple[int, int]]) -> tuple[int, int]:
        from collections import Counter

        parent_counts = Counter(p for p, _leaf in options)
        return max(
            options,
            key=lambda pr: (parent_counts[pr[0]], index[pr[1]].delay),
        )

    for chooser in (latest, balance_live, earliest):
        tree = prune_to_size(T, L, size, chooser)
        if tree is not None:
            yield tree

    for seed in range(seeds):
        rng = random.Random((size, L, T, seed).__hash__())

        def pick(options: list[tuple[int, int]]) -> tuple[int, int]:
            return rng.choice(options)

        tree = prune_to_size(T, L, size, pick)
        if tree is not None:
            yield tree
