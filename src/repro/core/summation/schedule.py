"""Explicit optimal summation schedules (Section 5, Figure 6).

Expands the time-reversed broadcast tree into a cycle-accurate plan: per
processor, a chain of input-summing additions interleaved with the
receive-overhead/merge slots of incoming partial sums, and one outgoing
send.  The plan is verified functionally — operands are concrete
integers, every addition's inputs must exist when it fires, and the root
must hold the exact total at cycle ``t``.

Timing recap (processor = node ``i`` of the summation tree, delay ``d``,
``r`` children, ``S = t - d``):

* rank-``j`` child's partial arrives so that its merge completes at
  ``S - j*g`` (receive overhead ``[S - j*g - 1 - o, S - j*g - 1)``, merge
  add ``[S - j*g - 1, S - j*g)``);
* every cycle of ``[0, S)`` not spent on receive overhead or merges is
  an input-summing addition (consuming ``S - (o+1)r + 1`` operands);
* the processor sends its partial at ``S`` (the root's "send" at ``t``
  is the final addition's completion).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.summation.capacity import operand_distribution, summation_tree
from repro.core.tree import BroadcastTree
from repro.params import LogPParams
from repro.schedule.ops import ComputeOp, Schedule, SendOp

__all__ = ["SummationSchedule", "summation_schedule", "verify_summation"]


@dataclass
class SummationSchedule:
    """A complete summation plan for ``n`` operands on ``P`` processors."""

    params: LogPParams
    t: int
    tree: BroadcastTree
    operands: list[list[int]]  # operand values per processor (node order)
    sends: list[SendOp]
    computes: list[ComputeOp]

    @property
    def n(self) -> int:
        return sum(len(ops) for ops in self.operands)

    def total(self) -> int:
        return sum(sum(ops) for ops in self.operands)

    def to_schedule(self) -> Schedule:
        """Project onto the generic IR (for the LogP communication checks)."""
        return Schedule(
            params=self.params,
            sends=sorted(self.sends),
            initial={p: {("partial", p)} for p in range(self.params.P)},
            computes=sorted(self.computes),
        )


def summation_schedule(
    t: int, params: LogPParams, operands: list[int] | None = None
) -> SummationSchedule:
    """Build the optimal summation schedule for time budget ``t``.

    ``operands`` (defaults to ``1, 2, ..., n(t)``) are dealt to processors
    according to the optimal distribution; pass fewer than ``n(t)`` values
    is an error — use :func:`repro.core.summation.capacity.min_summation_time`
    to right-size ``t`` first.
    """
    dist = operand_distribution(t, params)
    n = sum(dist)
    if operands is None:
        operands = list(range(1, n + 1))
    if len(operands) != n:
        raise ValueError(f"expected exactly n(t)={n} operands, got {len(operands)}")
    tree = summation_tree(params)
    o, g = params.o, params.g

    per_proc: list[list[int]] = []
    cursor = 0
    for count in dist:
        per_proc.append(list(operands[cursor : cursor + count]))
        cursor += count

    sends: list[SendOp] = []
    computes: list[ComputeOp] = []
    for node in tree.nodes:
        i = node.index
        S = t - node.delay
        r = node.out_degree
        # blocked cycles: receive overhead + merge for each rank-j child
        blocked: set[int] = set()
        for j in range(r):
            merge_at = S - j * g - 1
            computes.append(
                ComputeOp(
                    time=merge_at,
                    proc=i,
                    result=("merge", i, j),
                    operands=(("partial", node.children[j]), ("acc", i)),
                )
            )
            for c in range(merge_at - o, merge_at + 1):
                blocked.add(c)
        # input-summing chain fills every unblocked cycle in [0, S)
        local_cycles = [c for c in range(S) if c not in blocked]
        expected = S - (o + 1) * r
        if len(local_cycles) != expected:
            raise AssertionError(
                f"node {i}: {len(local_cycles)} free cycles, expected {expected}"
            )
        for seq, cycle in enumerate(local_cycles):
            computes.append(
                ComputeOp(
                    time=cycle,
                    proc=i,
                    result=("acc", i, seq),
                    operands=(("input", i, seq),),
                )
            )
        if node.parent is not None:
            sends.append(
                SendOp(time=S, src=i, dst=node.parent, item=("partial", i))
            )
    return SummationSchedule(
        params=params,
        t=t,
        tree=tree,
        operands=per_proc,
        sends=sorted(sends),
        computes=sorted(computes),
    )


def verify_summation(plan: SummationSchedule) -> int:
    """Functionally execute the plan and return the root's final value.

    Checks, cycle by cycle: no processor does two things at once (receive
    overhead, merge, input add, send overhead all occupy cycles);
    partial sums arrive before they are merged; every operand is consumed
    exactly once; the root's value at ``t`` equals the true total.
    Raises ``AssertionError`` on any violation.
    """
    params = plan.params
    o, g = params.o, params.g
    L_sum = params.L  # summation messages travel the true latency L
    tree = plan.tree

    busy: dict[int, set[int]] = {node.index: set() for node in tree.nodes}

    def occupy(proc: int, start: int, end: int, what: str) -> None:
        for c in range(start, end):
            if c in busy[proc]:
                raise AssertionError(f"proc {proc} double-booked at cycle {c} ({what})")
            busy[proc].add(c)

    acc: dict[int, int] = {}
    consumed: dict[int, int] = {}
    partial_sent: dict[int, tuple[int, int]] = {}  # node -> (send time, value)

    # process nodes leaves-first (children strictly before parents)
    order = sorted(tree.nodes, key=lambda nd: -nd.delay)
    for node in order:
        i = node.index
        S = plan.t - node.delay
        r = node.out_degree
        merge_slots = {S - j * g - 1: j for j in range(r)}
        overhead = {
            c
            for merge in merge_slots
            for c in range(merge - o, merge)
        }
        value = 0
        started = False
        ops = plan.operands[i]
        taken = 0
        for cycle in range(S):
            if cycle in overhead:
                continue  # receive overhead; occupancy booked with the merge
            if cycle in merge_slots:
                j = merge_slots[cycle]
                child = node.children[j]
                send_time, child_value = partial_sent[child]
                # arrival consistency: overhead [send+o+L, send+o+L+o),
                # merge add right after — must equal this cycle
                expected_merge = send_time + 2 * o + L_sum
                if expected_merge != cycle:
                    raise AssertionError(
                        f"child {child} partial merges at {cycle}, "
                        f"expected {expected_merge}"
                    )
                occupy(i, cycle - o, cycle + 1, f"recv+merge child {child}")
                value += child_value
            elif cycle not in busy[i]:
                # an input-summing addition: consumes one operand (two for
                # the very first addition of the chain)
                occupy(i, cycle, cycle + 1, "input add")
                if not started:
                    if len(ops) == 1:
                        # a single operand needs no addition; treat the
                        # first cycle as loading it
                        value += ops[taken]
                        taken += 1
                    else:
                        value += ops[taken] + ops[taken + 1]
                        taken += 2
                    started = True
                else:
                    value += ops[taken]
                    taken += 1
        if not started and ops:
            # no free cycle at all: only legal when exactly one operand,
            # folded into the first merge
            if len(ops) != 1:
                raise AssertionError(f"proc {i} cannot consume {len(ops)} operands")
            value += ops[0]
            taken = 1
        if taken != len(ops):
            raise AssertionError(
                f"proc {i} consumed {taken} of {len(ops)} operands"
            )
        if node.parent is not None:
            occupy(i, S, S + o, "send overhead")
            partial_sent[i] = (S, value)
        else:
            root_value = value
    expected = plan.total()
    if root_value != expected:
        raise AssertionError(f"root computed {root_value}, expected {expected}")
    return root_value
