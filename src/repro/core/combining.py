"""Combining broadcast / all-reduce (Section 4.2, Theorem 4.1).

Every processor ``i`` holds a value ``x_i``; all processors must learn
``x_0 + ... + x_{P-1}`` (``+`` commutative and associative, assumed free)
in the postal model.  The paper's algorithm: at each step
``j = 0 .. T-L``, every processor sends its *current* combined value to
processor ``i + f_{j+L-1} (mod P)``; arrivals are folded into the
recipient's running value before its next send.  After ``T`` steps each
of the ``P = P(T; L, 0, 1)`` processors holds the full combination —
all-to-all combining costs no more than an all-to-one reduction.

:func:`simulate_combining` tracks the exact index *intervals* held by
each processor (Theorem 4.1's invariant: at time ``j`` processor ``i``
holds ``x[i - f_{j+L-1} + 1 : i]``, a cyclically contiguous window) and
returns both the message schedule and the per-step holdings so tests can
verify the invariant literally.

All-to-one *reduction* is the time reversal of an optimal broadcast
(:func:`reduction_schedule`), and the combining broadcast above matches
its ``T`` — a factor-2 saving over reduce-then-broadcast.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.fib import fib, fib_sequence
from repro.core.single_item import optimal_broadcast_schedule
from repro.params import LogPParams, postal
from repro.schedule.ops import Schedule, SendOp

__all__ = [
    "CombiningRun",
    "simulate_combining",
    "simulate_k_combining",
    "k_combining_time",
    "combining_time",
    "reduction_schedule",
]


def _window(i: int, width: int, P: int) -> frozenset[int]:
    """The cyclic interval ``{i - width + 1, ..., i} mod P``."""
    width = min(width, P)
    return frozenset((i - d) % P for d in range(width))


@dataclass
class CombiningRun:
    """Result of a combining-broadcast execution."""

    T: int
    L: int
    P: int
    schedule: Schedule
    # holdings[j][i]: indices combined into processor i's value at time j
    holdings: list[list[frozenset[int]]]

    def complete(self) -> bool:
        """True iff every processor holds all ``P`` indices at time ``T``."""
        full = frozenset(range(self.P))
        return all(h == full for h in self.holdings[self.T])

    def theorem_41_invariant(self) -> bool:
        """Check Theorem 4.1's invariant: at time ``j`` processor ``i``
        holds exactly the cyclic window ``x[i - f_j + 1 : i]`` of width
        ``f_j`` (so that the stride-``f_{j+L-1}`` send arriving at
        ``j + L`` extends the recipient's window contiguously:
        ``f_{j+L} = f_{j+L-1} + f_j``)."""
        for j in range(self.T + 1):
            width = fib(self.L, j)
            for i in range(self.P):
                if self.holdings[j][i] != _window(i, width, self.P):
                    return False
        return True


def combining_time(P: int, L: int) -> int:
    """Minimum ``T`` with ``P(T) >= P``: the combining broadcast time."""
    seq = [1]
    T = 0
    while seq[T] < P:
        T += 1
        seq = fib_sequence(L, T)
    return T


def simulate_combining(T: int, L: int) -> CombiningRun:
    """Run the Theorem 4.1 algorithm for ``P = P(T; L, 0, 1)`` processors.

    Returns the message schedule (items are ``("partial", src, step)``)
    and per-step holdings.  Arrivals at step ``m`` are combined before the
    sends of step ``m`` depart, matching the paper's zero-cost combining
    convention.
    """
    if T < L:
        raise ValueError(f"need T >= L, got T={T}, L={L}")
    P = fib(L, T)
    value: list[set[int]] = [{i} for i in range(P)]
    holdings: list[list[frozenset[int]]] = []
    pending: dict[int, list[tuple[int, frozenset[int]]]] = {}
    # a processor's step-j partial is derived locally, so every partial it
    # will ever emit is "initially held" as far as message causality goes
    schedule = Schedule(
        params=postal(P=P, L=L),
        initial={
            i: {("partial", i, j) for j in range(0, max(T - L, 0) + 1)}
            for i in range(P)
        },
    )
    for j in range(0, T + 1):
        # deliveries scheduled for step j are folded in first ...
        for dst, payload in pending.pop(j, []):
            value[dst] |= payload
        # ... then the state at time j is snapshot and the sends depart
        holdings.append([frozenset(v) for v in value])
        if j <= T - L:
            stride = fib(L, j + L - 1)
            for i in range(P):
                dst = (i + stride) % P
                schedule.add(time=j, src=i, dst=dst, item=("partial", i, j))
                pending.setdefault(j + L, []).append((dst, frozenset(value[i])))
    return CombiningRun(T=T, L=L, P=P, schedule=schedule, holdings=holdings)


def simulate_k_combining(T: int, L: int, k: int) -> list[CombiningRun]:
    """Pipeline ``k`` combining broadcasts back to back.

    Every processor sends at every step ``0 .. T-L`` of a combining
    broadcast, so two rounds cannot overlap their send phases; the
    tightest legal pipelining starts round ``i`` at step ``i (T-L+1)``,
    giving total time ``k (T-L+1) + L - 1``.  Each round is validated
    independently (complete + window invariant); the caller composes the
    rounds' schedules with :func:`repro.schedule.transform.shift` /
    ``concat`` when a single-schedule artifact is needed.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return [simulate_combining(T, L) for _ in range(k)]


def k_combining_time(T: int, L: int, k: int) -> int:
    """Completion time of the pipelined k-round combining broadcast."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return (k - 1) * (T - L + 1) + T


def reduction_schedule(params: LogPParams) -> Schedule:
    """All-to-one reduction: the time reversal of optimal broadcast.

    A broadcast message sent at ``s`` and received at ``s + L + 2o``
    becomes a reduction message sent at ``B - (s + L + 2o)`` and received
    at ``B - s``, where ``B = B(P)``.  Leaf processors send first; the
    root receives the final partial at time ``B``.  Items are labeled
    ``("red", src)``.

    Built as a verified pass pipeline: ``reverse{tag=red}`` on the
    optimal broadcast, with every processor starting out holding its own
    partial and the lint verifier (SCHED001-003) confirming legality of
    the reversal.
    """
    # passes -> transform -> analysis sits below this module in the
    # import graph only at runtime; import lazily to keep repro.__init__
    # (which imports combining before the registry) cycle-free.
    from repro.passes import PassManager, ReversePass

    broadcast = optimal_broadcast_schedule(params)
    manager = PassManager(
        [
            ReversePass(
                tag="red",
                initial={p: {("red", p)} for p in range(params.P)},
            )
        ],
        verify="errors",
    )
    return manager.run(broadcast)
