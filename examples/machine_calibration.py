#!/usr/bin/env python3
"""End to end: measure a machine, fit LogP, plan an application.

Scenario: you've run the standard LogP micro-benchmarks (ping-pong,
message burst, overlap probe) on a cluster and captured the raw numbers.
This example fits the `(L, o, g)` parameters from the (noisy)
measurements, then prices a CG-solver-like communication trace under the
optimal collectives vs a classic binomial-tree MPI suite — turning the
paper's theory into a deployment decision.

Run:  python examples/machine_calibration.py
"""

from repro.fitting import fit_logp, simulate_measurements
from repro.params import LogPParams
from repro.viz.svg import save_svg
from repro.core.single_item import optimal_broadcast_schedule
from repro.workload import WorkloadTrace, plan_workload

# The "real" machine we pretend to measure (unknown to the fitter).
TRUE_MACHINE = LogPParams(P=32, L=18, o=2, g=5)


def main() -> None:
    # --- 1. measure -------------------------------------------------------
    data = simulate_measurements(TRUE_MACHINE, noise=0.5, seed=3, trials=200)
    print(f"ping-pong mean: {data.pingpong.mean():.1f} cycles "
          f"({len(data.pingpong)} trials)")
    print(f"burst test: {len(data.burst_sizes)} sizes, "
          f"slope ~ {((data.burst_times[-1]-data.burst_times[0]) / (len(data.burst_sizes)-1)):.2f}")

    # --- 2. fit -----------------------------------------------------------
    fitted = fit_logp(data, P=TRUE_MACHINE.P)
    print(f"\nfitted machine: {fitted}")
    print(f"true machine:   {TRUE_MACHINE}")
    assert fitted == TRUE_MACHINE, "calibration failed"

    # --- 3. plan the application trace ------------------------------------
    # a CG-like iteration: 2 dot products (allreduce), 1 halo-ish bcast,
    # and a chunk of local compute — 50 iterations plus setup.
    postal_view = fitted.to_postal()
    trace = WorkloadTrace("cg-like", postal_view)
    trace.add("bcast", count=2)               # setup broadcasts
    trace.add("kitem_bcast", count=1, arg=16) # distribute 16 parameter blocks
    for _ in range(3):                        # compressed: 3 shown of 50
        trace.add("allreduce", count=2)
        trace.add("compute", count=1, arg=400)
    report = plan_workload(trace)
    print()
    print(report.render())

    # --- 4. artifacts ------------------------------------------------------
    schedule = optimal_broadcast_schedule(fitted)
    save_svg(schedule, "/tmp/optimal_bcast.svg",
             title=f"optimal broadcast, {fitted}")
    print("\nwrote /tmp/optimal_bcast.svg (open in a browser)")


if __name__ == "__main__":
    main()
