"""ASCII renderings of trees and activity timelines (Figures 1 and 6).

Pure-text output (the evaluation environment has no plotting stack); each
renderer returns a string so benchmarks can ``print`` it and tests can
assert on its structure.
"""

from __future__ import annotations

from repro.core.tree import BroadcastTree
from repro.schedule.ops import Schedule
from repro.sim.trace import Trace, trace_from_schedule

__all__ = ["render_tree", "render_activity", "render_schedule_activity"]


def render_tree(tree: BroadcastTree, label: str = "P") -> str:
    """Indented tree view with per-node delays, e.g.::

        P0 @0
          P1 @10
            P5 @20
          P2 @14
          ...
    """
    lines: list[str] = []

    def walk(index: int, depth: int) -> None:
        node = tree.nodes[index]
        lines.append(f"{'  ' * depth}{label}{index} @{node.delay}")
        for child in node.children:
            walk(child, depth + 1)

    walk(0, 0)
    return "\n".join(lines)


def render_activity(trace: Trace, width: int | None = None) -> str:
    """Per-processor activity timeline (the right panel of Figure 1).

    One row per processor; each column is a cycle: ``s`` send overhead,
    ``r`` receive overhead, ``+`` computation, ``.`` idle.
    """
    horizon = trace.horizon() if width is None else width
    rows: list[str] = []
    header = "     " + "".join(
        str(t % 10) if t % 5 == 0 else " " for t in range(horizon)
    )
    rows.append(header)
    symbols = {"send": "s", "recv": "r", "compute": "+"}
    for proc in sorted(trace.activities):
        cells = ["."] * horizon
        for act in trace.activities[proc]:
            for c in range(act.start, min(act.end, horizon)):
                cells[c] = symbols.get(act.kind, "?")
        rows.append(f"P{proc:<3} " + "".join(cells))
    return "\n".join(rows)


def render_schedule_activity(schedule: Schedule) -> str:
    """Convenience: trace a schedule and render its timeline."""
    return render_activity(trace_from_schedule(schedule))
