"""The plan service (`repro.serve`): keys, cache tiers, batching, HTTP.

Covers the PR-7 acceptance properties:

* cache-key invariance — aliases, dispatch environment, and
  columnar/implicit storage twins that materialize byte-identically all
  resolve to one cached plan;
* ``plan_many`` with N duplicate keys plans exactly once
  (counter-asserted);
* the on-disk tier survives corruption (truncated / garbage entries
  fall back to replanning and are rewritten, never crash);
* hypothesis round trip: ``plan_many`` over any request mix serves the
  same bytes as one-at-a-time ``plan``.
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import dispatch, registry
from repro.bench import latest_baseline
from repro.params import LogPParams
from repro.schedule.serialize import schedule_from_json, schedule_to_json
from repro.serve import (
    DiskCache,
    LRUCache,
    PlanService,
    canonical_request,
    content_hash,
    core_cache_stats,
    plan_content,
    request_key,
    request_key_hash,
    serve_http,
)

FIG1 = {"P": 8, "L": 6, "o": 2, "g": 4}


# -- request keys ---------------------------------------------------------


class TestRequestKeys:
    def test_alias_and_canonical_names_share_a_key(self):
        for alias, canonical, extra in [
            ("bcast", "broadcast", {"o": 2, "g": 4}),
            ("single-item", "broadcast", {"o": 2, "g": 4}),
            ("a2a", "all-to-all", {"o": 2, "g": 4}),
            ("sum", "summation", {"o": 2, "g": 4, "n": 32}),
            ("reduce", "reduction", {"o": 2, "g": 4}),
            ("combining", "allreduce", {}),  # postal model only
        ]:
            left = canonical_request(alias, P=8, L=6, **extra)
            right = canonical_request(canonical, P=8, L=6, **extra)
            assert left == right
            assert request_key(left) == request_key(right)

    def test_params_object_and_keywords_share_a_key(self):
        left = canonical_request("broadcast", LogPParams(**FIG1))
        right = canonical_request("broadcast", **FIG1)
        assert request_key(left) == request_key(right)

    def test_summation_n_and_equivalent_t_share_a_key(self):
        # canonicalization resolves the n/t pair, so the two spellings
        # of the same instance are one cache entry
        by_n = canonical_request("summation", P=8, L=5, o=2, g=4, n=79)
        t = dict(by_n.extra)["t"]
        by_t = canonical_request("summation", P=8, L=5, o=2, g=4, t=t)
        assert request_key(by_n) == request_key(by_t)

    def test_implicit_family_defaults_into_the_key(self):
        default = canonical_request("broadcast", storage="implicit", **FIG1)
        explicit = canonical_request(
            "broadcast", storage="implicit", family="optimal", **FIG1
        )
        assert request_key(default) == request_key(explicit)
        binomial = canonical_request(
            "broadcast", storage="implicit", family="binomial", **FIG1
        )
        assert request_key(binomial) != request_key(default)

    def test_key_is_independent_of_dispatch_policy(self):
        req = {"collective": "broadcast", **FIG1}
        outputs = []
        for mode in ("objects", "numpy", "auto"):
            previous = dispatch.set_policy(dispatch.DispatchPolicy(mode=mode))
            try:
                service = PlanService(capacity=4)
                outputs.append(
                    (
                        request_key(canonical_request("bcast", **FIG1)),
                        service.plan_json(req),
                    )
                )
            finally:
                dispatch.set_policy(previous)
        assert len({key for key, _ in outputs}) == 1
        assert len({content for _, content in outputs}) == 1

    def test_key_is_independent_of_dispatch_environment(self):
        # the real thing: fresh interpreters with REPRO_DISPATCH /
        # REPRO_FAST_PATH_THRESHOLD set must derive identical key and
        # content bytes (the env layers are read at import time)
        script = (
            "from repro.serve import canonical_request, request_key, "
            "PlanService\n"
            "req = canonical_request('bcast', P=8, L=6, o=2, g=4)\n"
            "print(request_key(req))\n"
            "print(PlanService(capacity=4).plan_json(req))\n"
        )
        outputs = set()
        for env in (
            {"REPRO_DISPATCH": "objects"},
            {"REPRO_DISPATCH": "numpy", "REPRO_FAST_PATH_THRESHOLD": "0"},
            {},
        ):
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
                env={
                    "PYTHONPATH": str(
                        Path(__file__).resolve().parent.parent / "src"
                    ),
                    **env,
                },
            )
            outputs.add(result.stdout)
        assert len(outputs) == 1

    def test_storage_twins_share_a_content_address(self, tmp_path):
        # at small P the universal tree and its closed-form twin emit
        # byte-identical materialized plans; distinct request keys must
        # then converge on one content hash and one stored blob
        service = PlanService(capacity=8, directory=tmp_path)
        columnar = canonical_request("broadcast", P=4, L=3)
        implicit = canonical_request("broadcast", P=4, L=3, storage="implicit")
        assert request_key(columnar) != request_key(implicit)
        left = service.plan_json(columnar)
        right = service.plan_json(implicit)
        assert left == right
        assert content_hash(left) == content_hash(right)
        stats = service.stats()["disk"]
        assert stats["index_entries"] == 2
        assert stats["blobs"] == 1

    def test_usage_errors_are_one_line_valueerrors(self):
        with pytest.raises(ValueError, match="unknown collective"):
            canonical_request("nope", P=4, L=2)
        with pytest.raises(ValueError, match="machine parameters missing"):
            canonical_request("broadcast")
        with pytest.raises(ValueError, match="storage must be"):
            canonical_request("broadcast", P=4, L=2, storage="weird")
        with pytest.raises(ValueError, match="no implicit builder"):
            canonical_request("all-to-all", P=4, L=2, storage="implicit")
        with pytest.raises(ValueError, match="family= only applies"):
            canonical_request("broadcast", P=4, L=2, family="optimal")
        with pytest.raises(ValueError, match="unknown implicit family"):
            canonical_request(
                "broadcast", P=4, L=2, storage="implicit", family="x"
            )
        with pytest.raises(ValueError, match="must be >= 1"):
            canonical_request("kitem", P=10, L=3, k=0)


# -- cache tiers ----------------------------------------------------------


class TestLRUCache:
    def test_bounded_with_eviction_counters(self):
        lru = LRUCache(capacity=2)
        lru.put("a", "1")
        lru.put("b", "2")
        assert lru.get("a") == "1"  # refresh a
        lru.put("c", "3")  # evicts b (least recent)
        assert lru.get("b") is None
        assert lru.get("a") == "1"
        assert lru.get("c") == "3"
        stats = lru.stats()
        assert stats["evictions"] == 1
        assert stats["size"] == 2
        assert stats["hits"] == 3
        assert stats["misses"] == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            LRUCache(capacity=0)


class TestDiskCache:
    def request(self):
        return canonical_request("broadcast", **FIG1)

    def entry(self):
        req = self.request()
        return request_key(req), request_key_hash(req), plan_content(
            registry.plan("broadcast", **FIG1)
        )

    def test_round_trip_and_blob_sharing(self, tmp_path):
        disk = DiskCache(tmp_path)
        key, key_hash, content = self.entry()
        disk.put(key, key_hash, content)
        assert disk.get(key, key_hash) == content
        # a second key for the same content shares the blob
        disk.put("other-key", "0" * 64, content)
        assert disk.stats()["blobs"] == 1
        assert disk.stats()["index_entries"] == 2

    def test_truncated_blob_is_a_miss_not_a_crash(self, tmp_path):
        disk = DiskCache(tmp_path)
        key, key_hash, content = self.entry()
        blob_hash = disk.put(key, key_hash, content)
        blob = disk.blob_dir / f"{blob_hash}.json"
        blob.write_text(content[: len(content) // 2])
        assert disk.get(key, key_hash) is None
        assert disk.stats()["corrupt_reads"] >= 1
        # rewrite replaces the corrupt copy
        disk.put(key, key_hash, content)
        assert disk.get(key, key_hash) == content

    def test_garbage_index_is_a_miss_not_a_crash(self, tmp_path):
        disk = DiskCache(tmp_path)
        key, key_hash, content = self.entry()
        disk.put(key, key_hash, content)
        (disk.index_dir / f"{key_hash}.json").write_text("{not json")
        assert disk.get(key, key_hash) is None
        assert disk.stats()["corrupt_reads"] >= 1

    def test_index_key_mismatch_is_rejected(self, tmp_path):
        # a sha collision (or a file copied between cache dirs) must not
        # serve another request's plan
        disk = DiskCache(tmp_path)
        key, key_hash, content = self.entry()
        disk.put(key, key_hash, content)
        assert disk.get("a different key", key_hash) is None

    def test_service_replans_and_rewrites_through_corruption(self, tmp_path):
        service = PlanService(capacity=4, directory=tmp_path)
        req = {"collective": "broadcast", **FIG1}
        first = service.plan_json(req)
        disk = service.cache.disk
        # corrupt every stored file, then drop the memory tier
        for path in list(disk.blob_dir.glob("*.json")):
            path.write_text("garbage" + path.read_text()[:10])
        fresh = PlanService(capacity=4, directory=tmp_path)
        second = fresh.plan_json(req)
        assert second == first
        assert fresh.planned == 1  # replanned, served correctly
        assert fresh.cache.disk.stats()["corrupt_reads"] >= 1
        # and the rewrite healed the cache for the next cold start
        healed = PlanService(capacity=4, directory=tmp_path)
        assert healed.plan_json(req) == first
        assert healed.planned == 0

    def test_disk_tier_survives_restarts(self, tmp_path):
        service = PlanService(capacity=4, directory=tmp_path)
        req = {"collective": "summation", "P": 8, "L": 5, "o": 2, "g": 4,
               "n": 79}
        content = service.plan_json(req)
        restarted = PlanService(capacity=4, directory=tmp_path)
        assert restarted.plan_json(req) == content
        assert restarted.planned == 0
        assert restarted.cache.disk.stats()["hits"] == 1


# -- the service ----------------------------------------------------------


class TestPlanService:
    def test_hit_serves_identical_bytes_without_replanning(self):
        service = PlanService(capacity=8)
        req = {"collective": "bcast", **FIG1}
        first = service.plan_json(req)
        second = service.plan_json(req)
        assert first == second
        assert service.planned == 1
        assert service.requests == 2
        assert service.stats()["memory"]["hits"] == 1

    def test_plan_many_duplicates_plan_exactly_once(self):
        service = PlanService(capacity=8)
        req = {"collective": "broadcast", **FIG1}
        results = service.plan_many_json([req] * 25)
        assert len(results) == 25
        assert len(set(results)) == 1
        assert service.planned == 1  # the acceptance counter
        assert service.deduped == 24

    def test_plan_many_preserves_order(self):
        service = PlanService(capacity=8)
        reqs = [
            {"collective": "broadcast", "P": P, "L": 4, "o": 1, "g": 2}
            for P in (2, 5, 3, 5, 2)
        ]
        results = service.plan_many_json(reqs)
        for req, content in zip(reqs, results):
            assert json.loads(content)["params"]["P"] == req["P"]

    def test_served_content_matches_direct_planning(self):
        service = PlanService(capacity=8)
        for spec in registry.specs():
            case = dict(spec.sample_cases[0]) if spec.sample_cases else None
            if case is None:
                continue
            served = service.plan_json({"collective": spec.name, **case})
            direct = plan_content(registry.plan(spec.name, **case))
            assert served == direct, spec.name

    def test_served_plans_deserialize_and_lint_clean(self):
        from repro.analyze import lint_schedule

        service = PlanService(capacity=8)
        content = service.plan_json({"collective": "bcast", **FIG1})
        schedule = schedule_from_json(content)
        assert lint_schedule(schedule).max_severity is None
        # canonical content is stable under a serialize round trip
        assert plan_content(schedule) == content

    def test_stats_exposes_bounded_core_caches(self):
        stats = PlanService(capacity=4).stats()
        core = stats["core_caches"]
        assert set(core) == {
            "fib.prefix_sums",
            "continuous.find_base_cases",
            "continuous.solve_cached",
        }
        for info in core.values():
            assert info["maxsize"] is not None  # bounded: PR-7 satellite
        assert core_cache_stats()["fib.prefix_sums"]["maxsize"] == 1024

    @given(
        requests=st.lists(
            st.one_of(
                st.builds(
                    lambda P, L: {"collective": "broadcast", "P": P, "L": L},
                    st.integers(2, 24),
                    st.integers(1, 6),
                ),
                st.builds(
                    lambda P, L: {"collective": "reduce", "P": P, "L": L},
                    st.integers(2, 16),
                    st.integers(1, 4),
                ),
                st.builds(
                    lambda P: {"collective": "a2a", "P": P, "L": 3},
                    st.integers(2, 10),
                ),
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_plan_many_equals_per_request_plan(self, requests):
        batched = PlanService(capacity=64).plan_many_json(requests)
        single = PlanService(capacity=64)
        assert batched == [single.plan_json(r) for r in requests]


# -- registry wiring ------------------------------------------------------


class TestRegistryCacheWiring:
    def test_plan_routes_through_the_cache(self):
        service = PlanService(capacity=8)
        first = registry.plan("broadcast", cache=service, **FIG1)
        again = registry.plan("bcast", cache=service, **FIG1)
        assert service.planned == 1
        assert service.requests == 2
        assert schedule_to_json(first) == schedule_to_json(again)
        direct = registry.plan("broadcast", **FIG1)
        assert plan_content(first) == plan_content(direct)
        # serialization orders sends canonically; compare as a multiset
        as_tuples = lambda s: sorted(  # noqa: E731
            (op.time, op.src, op.dst, op.item) for op in s.sends
        )
        assert as_tuples(first) == as_tuples(direct)

    def test_cache_rejects_implicit_storage_and_backend_pins(self):
        service = PlanService(capacity=8)
        with pytest.raises(ValueError, match="cache= does not apply"):
            registry.plan(
                "broadcast", storage="implicit", cache=service, **FIG1
            )
        with pytest.raises(ValueError, match="backend= does not combine"):
            registry.plan(
                "broadcast", backend="objects", cache=service, **FIG1
            )


# -- HTTP front end -------------------------------------------------------


@pytest.fixture
def running_server():
    server = serve_http(port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}", server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
        assert not thread.is_alive()


def _post(base: str, path: str, doc: dict) -> dict:
    request = urllib.request.Request(
        base + path,
        data=json.dumps(doc).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


class TestHTTP:
    def test_plan_endpoint_serves_a_loadable_plan(self, running_server):
        base, server = running_server
        doc = _post(base, "/plan", {"collective": "bcast", **FIG1})
        assert doc["content_hash"] == content_hash(
            json.dumps(doc["plan"], sort_keys=True, separators=(",", ":"))
        )
        schedule = schedule_from_json(json.dumps(doc["plan"]))
        assert schedule.params == LogPParams(**FIG1)
        assert json.loads(doc["key"])["collective"] == "broadcast"

    def test_plan_many_endpoint_plans_duplicates_once(self, running_server):
        base, server = running_server
        batch = [{"collective": "broadcast", **FIG1}] * 8
        doc = _post(base, "/plan_many", {"requests": batch})
        assert doc["count"] == 8
        assert len({json.dumps(p) for p in doc["plans"]}) == 1
        assert server.service.planned == 1

    def test_stats_endpoint_reports_counters(self, running_server):
        base, _ = running_server
        _post(base, "/plan", {"collective": "bcast", **FIG1})
        _post(base, "/plan", {"collective": "bcast", **FIG1})
        with urllib.request.urlopen(base + "/stats") as response:
            stats = json.loads(response.read())
        assert stats["requests"] == 2
        assert stats["planned"] == 1
        assert stats["memory"]["hits"] == 1
        assert "fib.prefix_sums" in stats["core_caches"]

    def test_bad_requests_get_one_line_400s(self, running_server):
        base, _ = running_server
        for path, doc, fragment in [
            ("/plan", {"collective": "nope", "P": 2, "L": 2}, "unknown collective"),
            ("/plan", {"P": 2, "L": 2}, "collective"),
            ("/plan", {"collective": "broadcast"}, "machine parameters"),
            ("/plan_many", {"oops": []}, "requests"),
        ]:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(base, path, doc)
            assert excinfo.value.code == 400
            assert fragment in json.loads(excinfo.value.read())["error"]

    def test_malformed_json_body_is_a_400(self, running_server):
        base, _ = running_server
        request = urllib.request.Request(
            base + "/plan", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_unknown_paths_are_404(self, running_server):
        base, _ = running_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(base + "/nope")
        assert excinfo.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base, "/nope", {})
        assert excinfo.value.code == 404


# -- bench satellites ------------------------------------------------------


class TestBenchBaseline:
    def test_picks_the_numerically_newest(self, tmp_path):
        for name in ("BENCH_PR2.json", "BENCH_PR10.json", "BENCH_PR7.json"):
            (tmp_path / name).write_text("{}")
        (tmp_path / "BENCH_NIGHTLY.json").write_text("{}")
        assert latest_baseline(tmp_path) == "BENCH_PR10.json"

    def test_empty_directory_yields_none(self, tmp_path):
        assert latest_baseline(tmp_path) is None

    def test_repo_checkout_resolves_to_a_baseline(self):
        name = latest_baseline(Path(__file__).resolve().parent.parent)
        assert name is not None and name.startswith("BENCH_PR")

    def test_serve_request_points_are_canonicalizable(self):
        from repro.bench import serve_request_points
        from repro.serve import request_from_mapping

        points = serve_request_points(limit=200)
        assert len(points) == 200
        keys = {request_key(request_from_mapping(p)) for p in points}
        assert len(keys) == 200  # all distinct
