"""Single-sending k-item broadcast schedules (Theorems 3.6/3.7, Cor 3.1).

Two constructors:

* :func:`continuous_based_schedule` — the Corollary 3.1 route: when
  ``P - 1 = P(t)`` and the block-cyclic machinery solves ``I(t)``, reuse
  the optimal continuous broadcast for the ``k`` items; total time
  ``L + B(P-1) + k - 1``, which is within ``L`` of Theorem 3.1's general
  lower bound (since ``k* <= L``) and *meets* the single-sending lower
  bound exactly.

* :func:`greedy_single_sending_schedule` — a deterministic constructive
  scheduler for arbitrary ``(k, P, L)``: the source emits item ``i`` at
  step ``i`` (single-sending); every informed processor relays at every
  step, choosing the item/destination by a most-useful-first rule
  (rarest newest item to the processor that will need it longest).  The
  result is machine-validated; the test-suite and benchmarks confirm it
  meets Theorem 3.6's ``B(P-1) + 2L + k - 2`` bound across parameter
  sweeps (the paper's hand construction guarantees that bound; the greedy
  scheduler typically matches or beats it).

Both emit ordinary :class:`~repro.schedule.ops.Schedule` objects that
replay cleanly on the LogP simulator.
"""

from __future__ import annotations

from repro.core.continuous.assignment import find_base_cases, solve
from repro.core.continuous.general import solve_general_words
from repro.core.continuous.schedule import GeneralAssignment, expand, expand_assignment
from repro.core.fib import broadcast_time_postal, reachable_postal
from repro.core.kitem.bounds import kitem_upper_bound
from repro.core.pruning import candidate_trees
from repro.params import postal
from repro.schedule.ops import Schedule, SendOp

__all__ = [
    "continuous_based_schedule",
    "pruned_tree_assignment",
    "greedy_single_sending_schedule",
    "single_sending_schedule",
    "completion",
]


def completion(schedule: Schedule) -> int:
    """Completion time: cycle by which every payload has landed."""
    return max(op.arrival(schedule.params) for op in schedule.sends)


def continuous_based_schedule(k: int, t: int, L: int) -> Schedule | None:
    """Broadcast ``k`` items to ``P - 1 = P(t)`` processors in
    ``L + t + k - 1`` steps via optimal continuous broadcast (Cor 3.1).

    Returns ``None`` when the block-cyclic instance ``I(t)`` is unsolvable
    (possible for small ``t`` or ``L = 2`` — see Theorems 3.4/3.5).
    """
    if L < 3:
        return None
    assignment = solve(t, L)
    if assignment is None:
        return None
    return expand_assignment(assignment, num_items=k)


def greedy_single_sending_schedule(k: int, P: int, L: int) -> Schedule:
    """Greedy constructive single-sending schedule for any ``(k, P, L)``.

    Policy per step, in the postal model:

    * the source sends item ``min(step, k-1)`` — distinct items for the
      first ``k`` steps (the Theorem 3.2 continuous phase), then repeats
      the last item to otherwise-idle processors;
    * every other informed processor picks, among items it holds that
      some processor still needs, the one held by the *fewest* processors
      (ties: the newer item), and sends it to the lowest-numbered
      processor that lacks it and is not already being sept that item.
    """
    if P < 2:
        return Schedule(params=postal(P=max(P, 1), L=L), initial={0: set(range(k))})
    params = postal(P=P, L=L)
    have: list[set[int]] = [set(range(k))] + [set() for _ in range(P - 1)]
    # in_flight[(dst, item)] -> earliest arrival
    incoming: dict[int, list[tuple[int, int]]] = {p: [] for p in range(P)}
    promised: set[tuple[int, int]] = set()
    booked: set[tuple[int, int]] = set()  # (dst, arrival step) reception slots
    holders = [1] * k  # how many processors hold each item (source counts)
    sends: list[SendOp] = []
    source_next = 0

    step = 0
    horizon = kitem_upper_bound(P, L, k) + L * (P + k)  # generous safety cap
    while any(len(have[p]) < k for p in range(P)) and step <= horizon:
        # deliveries scheduled to land this step
        for p in range(P):
            arrived = [item for (when, item) in incoming[p] if when == step]
            incoming[p] = [(when, item) for (when, item) in incoming[p] if when > step]
            for item in arrived:
                have[p].add(item)
                holders[item] += 1

        # each processor sends at most one message this step
        for p in range(P):
            if p == 0:
                if source_next < k:
                    item = source_next
                else:
                    continue
            else:
                wanted = [
                    item
                    for item in have[p]
                    if any(
                        item not in have[q] and (q, item) not in promised
                        for q in range(P)
                    )
                ]
                if not wanted:
                    continue
                item = min(wanted, key=lambda it: (holders[it], -it))
            candidates = [
                q
                for q in range(P)
                if q != p
                and item not in have[q]
                and (q, item) not in promised
                and (q, step + L) not in booked
            ]
            if not candidates:
                continue
            # prefer the candidate missing the most items (it has the most
            # remaining work, so informing it early lets it relay sooner)
            dst = min(candidates, key=lambda q: (len(have[q]), q))
            sends.append(SendOp(time=step, src=p, dst=dst, item=item))
            incoming[dst].append((step + L, item))
            promised.add((dst, item))
            booked.add((dst, step + L))
            if p == 0:
                source_next += 1
        step += 1
    if any(len(have[p]) < k for p in range(P)):
        raise RuntimeError(
            f"greedy scheduler failed to converge for k={k}, P={P}, L={L}"
        )
    return Schedule(
        params=params,
        sends=sends,
        initial={0: set(range(k))},
        source_items={i: i for i in range(k)},
    )


def pruned_tree_assignment(
    P: int, L: int, budget: int = 200_000, max_extra: int | None = None
) -> GeneralAssignment | None:
    """Find a per-item tree + word assignment for arbitrary ``(P, L)``.

    Searches per-item trees with completion ``T`` from ``B(P-1)`` up to
    ``B(P-1) + L - 1`` (candidate prunings of the ``T``-step optimal
    tree) and solves each with the general word solver.  A solution with
    completion ``T`` broadcasts ``k`` items in ``L + T + k - 1`` steps —
    at worst ``B(P-1) + 2L + k - 2``, Theorem 3.6's bound.

    ``max_extra`` caps how far past ``B(P-1)`` the search goes (callers
    with a guaranteed fallback — the star construction — bound the work).
    """
    if P < 3:
        return None
    t = broadcast_time_postal(P - 1, L)
    extra = L if max_extra is None else min(L, max_extra)
    for T in range(t, t + extra):
        for tree in candidate_trees(P - 1, L, T):
            assignment = solve_general_words(tree, L, budget=budget)
            if assignment is not None:
                return assignment
    return None


def single_sending_schedule(k: int, P: int, L: int) -> Schedule:
    """Best available single-sending schedule for ``(k, P, L)``.

    Resolution order:

    1. ``P = 2``: the source simply streams the items (time ``L + k - 1``).
    2. ``P - 1 = P(t)`` with the stitched block-cyclic machinery
       available (``3 <= L <= 10``, the paper's verified range): exact
       ``L + B + k - 1`` (Corollary 3.1).
    3. pruned-tree search (Theorems 3.5/3.6 generalized): time
       ``L + T + k - 1 <= B + 2L + k - 2``; when the star fallback is
       available the search is bounded to a few ``T`` values.
    4. star trees (large-``L`` regime, ``P - 2 <= B(P-1)``): closed-form
       construction in ``2L + P + k - 4 <= B + 2L + k - 2``.
    5. greedy constructive scheduler (no a-priori bound; measured).
    """
    from repro.core.kitem.star import star_assignment, star_fits

    if P < 2:
        raise ValueError("broadcast needs at least 2 processors")
    if P == 2:
        schedule = Schedule(
            params=postal(P=2, L=L),
            initial={0: set(range(k))},
            source_items={i: i for i in range(k)},
        )
        for i in range(k):
            schedule.add(time=i, src=0, dst=1, item=i)
        return schedule
    t = broadcast_time_postal(P - 1, L)
    # The stitched continuous machinery covers L up to 10 (the paper's
    # range), but deriving base cases is expensive beyond L = 6 (minutes);
    # the pruned-tree search below subsumes those cases for scheduling
    # purposes (it tries the same optimal tree first), so the eager path
    # stays within the cheap range.
    if (
        3 <= L <= 6
        and reachable_postal(t, L) == P - 1
        and t >= find_base_cases(L)[0]
    ):
        schedule = continuous_based_schedule(k, t, L)
        if schedule is not None:
            return schedule
    has_star = star_fits(P, L)
    if has_star and L > 10:
        # deep-tree word problems at large L rarely solve within any
        # reasonable budget, and the star is already within Thm 3.6
        assignment = None
    else:
        assignment = pruned_tree_assignment(
            P,
            L,
            budget=100_000 if has_star else 400_000,
            max_extra=2 if has_star else None,
        )
    if assignment is not None:
        return expand(assignment, num_items=k)
    if has_star:
        star = star_assignment(P, L)
        if star is not None:
            return expand(star, num_items=k)
    return greedy_single_sending_schedule(k, P, L)
