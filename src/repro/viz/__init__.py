"""ASCII renderers for the paper's figures."""

from repro.viz.ascii import render_activity, render_schedule_activity, render_tree
from repro.viz.digraph import render_digraph
from repro.viz.tables import (
    buffered_reception_table,
    reception_table,
    render_reception_table,
)

__all__ = [
    "render_tree", "render_activity", "render_schedule_activity",
    "reception_table", "render_reception_table", "buffered_reception_table",
    "render_digraph",
]
