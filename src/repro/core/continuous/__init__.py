"""Continuous broadcast (Sections 3.1-3.3): block-cyclic schedules."""
