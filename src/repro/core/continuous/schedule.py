"""Expansion of block-cyclic assignments into explicit schedules.

The assignment machinery reasons about *steady state*: one reception
multiset per step, words cycling within blocks.  This module turns an
assignment plus a window of items ``0 .. num_items-1`` into an explicit
:class:`~repro.schedule.ops.Schedule` — every send with its cycle, source
and destination — which is then machine-checked by the LogP simulator.

The expansion is written against a *general* form (:class:`GBlock`) in
which each block names the tree-node class it serves by ``(delay,
degree)`` and carries its word as leaf *delays*.  The standard
block-cyclic assignments of Section 3.2 convert losslessly into this form
(:func:`general_form`), and the pruned-tree constructions for ``L = 2``
(Theorem 3.5, :mod:`repro.core.continuous.l2`) use it directly.

Conventions: the source is processor 0 and emits item ``i`` at step ``i``;
non-source processors are numbered from 1, block by block, with the
receive-only processor(s) last.  Within a block of size ``r`` the ``j``-th
processor's reception at step ``tau`` is pattern phase ``(tau - j) mod r``
(phase 0 being the uppercase duty, followed by ``r`` consecutive sends).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

from repro.core.continuous.assignment import BlockCyclicAssignment
from repro.core.tree import BroadcastTree, tree_for_time
from repro.params import postal
from repro.schedule.ops import Schedule

__all__ = [
    "GBlock",
    "GeneralAssignment",
    "general_form",
    "expand",
    "expand_assignment",
    "continuous_delay_lower_bound",
]


@dataclass(frozen=True)
class GBlock:
    """A block serving one internal node of the per-item tree.

    ``upper_delay`` and ``size`` identify the node class (its delay and
    out-degree; block size always equals the out-degree so that the
    ``size`` consecutive sends fit the cyclic period).  ``word`` lists the
    leaf *delays* received in the ``size - 1`` off-duty phases.
    """

    upper_delay: int
    size: int
    word: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.word) != self.size - 1:
            raise ValueError(
                f"GBlock of size {self.size} needs {self.size - 1} word "
                f"entries, got {len(self.word)}"
            )


@dataclass
class GeneralAssignment:
    """A block-cyclic solution in general (delay-based) form."""

    tree: BroadcastTree  # the per-item broadcast tree
    L: int
    blocks: list[GBlock]
    receive_only: tuple[int, ...]  # leaf delays of receive-only processors

    @property
    def completion(self) -> int:
        """Per-item tree completion time ``T`` (delay achieved is ``L + T``)."""
        return self.tree.completion_time

    @property
    def delay(self) -> int:
        return self.L + self.completion

    def validate(self) -> None:
        """Cover check: blocks ↔ internal nodes, words+receive-only ↔ leaves."""
        internal: Counter = Counter()
        for node in self.tree.internal_nodes():
            internal[(node.delay, node.out_degree)] += 1
        got: Counter = Counter()
        for block in self.blocks:
            got[(block.upper_delay, block.size)] += 1
        if internal != got:
            raise ValueError(
                f"blocks {dict(got)} do not cover internal nodes {dict(internal)}"
            )
        leaf_census: Counter = Counter(n.delay for n in self.tree.leaves())
        consumed: Counter = Counter()
        for block in self.blocks:
            consumed.update(block.word)
        consumed.update(self.receive_only)
        if leaf_census != consumed:
            raise ValueError(
                f"leaf cover mismatch: consumed {dict(consumed)}, "
                f"tree has {dict(leaf_census)}"
            )


def general_form(assignment: BlockCyclicAssignment) -> GeneralAssignment:
    """Convert a standard (offset-based) assignment to general form.

    In the optimal tree for time ``t`` an internal node with ``r`` children
    sits at delay ``t - L - r + 1`` and a lowercase offset ``m`` names the
    leaf delay ``t - m``.
    """
    L, t = assignment.L, assignment.t
    tree = tree_for_time(t, postal(P=1, L=L))
    blocks = [
        GBlock(
            upper_delay=t - L - b.size + 1,
            size=b.size,
            word=tuple(t - m for m in b.word),
        )
        for b in assignment.blocks
    ]
    general = GeneralAssignment(
        tree=tree,
        L=L,
        blocks=blocks,
        receive_only=(t - assignment.receive_only,),
    )
    general.validate()
    return general


def expand(general: GeneralAssignment, num_items: int) -> Schedule:
    """Expand a general assignment over items ``0 .. num_items - 1``.

    Returns a schedule in which every item is created at the source at
    step ``i``, received once by every non-source processor, and completes
    with delay exactly ``L + T``.
    """
    tree = general.tree
    L = general.L
    if num_items < 1:
        raise ValueError("need at least one item")

    # --- processor numbering -------------------------------------------
    proc_of_block: list[list[int]] = []
    next_proc = 1
    for block in general.blocks:
        proc_of_block.append(list(range(next_proc, next_proc + block.size)))
        next_proc += block.size
    receive_only_procs = list(range(next_proc, next_proc + len(general.receive_only)))
    next_proc += len(general.receive_only)
    num_procs = next_proc  # includes the source

    # --- pair blocks with concrete internal nodes ----------------------
    internal_by_class: dict[tuple[int, int], list[int]] = defaultdict(list)
    for node in tree.internal_nodes():
        internal_by_class[(node.delay, node.out_degree)].append(node.index)
    block_node: list[int] = []
    cursor: dict[tuple[int, int], int] = defaultdict(int)
    for block in general.blocks:
        key = (block.upper_delay, block.size)
        block_node.append(internal_by_class[key][cursor[key]])
        cursor[key] += 1

    leaves_by_delay: dict[int, list[int]] = defaultdict(list)
    for node in tree.leaves():
        leaves_by_delay[node.delay].append(node.index)

    # --- who receives which node of item i ------------------------------
    # proc_for[(item, node_index)] = receiving processor
    proc_for: dict[tuple[int, int], int] = {}
    horizon = L + num_items - 1 + tree.completion_time
    for tau in range(L, horizon + 1):
        # receivers of leaf receptions this step, keyed by leaf delay
        leaf_receivers: dict[int, list[int]] = defaultdict(list)
        for b_index, block in enumerate(general.blocks):
            r = block.size
            procs = proc_of_block[b_index]
            # uppercase duty
            item = tau - L - block.upper_delay
            if 0 <= item < num_items:
                proc_for[(item, block_node[b_index])] = procs[tau % r]
            for phase, leaf_delay in enumerate(block.word, start=1):
                item = tau - L - leaf_delay
                if 0 <= item < num_items:
                    leaf_receivers[leaf_delay].append(procs[(tau - phase) % r])
        for leaf_delay, proc in zip(general.receive_only, receive_only_procs):
            item = tau - L - leaf_delay
            if 0 <= item < num_items:
                leaf_receivers[leaf_delay].append(proc)
        for leaf_delay, receivers in leaf_receivers.items():
            item = tau - L - leaf_delay
            nodes = leaves_by_delay[leaf_delay]
            if len(receivers) != len(nodes):
                raise AssertionError(
                    f"step {tau}: {len(receivers)} receivers for "
                    f"{len(nodes)} leaves at delay {leaf_delay}"
                )
            for proc, node_index in zip(sorted(receivers), nodes):
                proc_for[(item, node_index)] = proc

    # --- emit sends ------------------------------------------------------
    params = postal(P=num_procs, L=L)
    schedule = Schedule(
        params=params,
        initial={0: set(range(num_items))},
        source_items={i: i for i in range(num_items)},
    )
    for item in range(num_items):
        for node in tree.nodes:
            dst = proc_for[(item, node.index)]
            if node.parent is None:
                schedule.add(time=item, src=0, dst=dst, item=item)
            else:
                parent = tree.nodes[node.parent]
                rank = parent.children.index(node.index)
                src = proc_for[(item, parent.index)]
                schedule.add(
                    time=L + item + parent.delay + rank, src=src, dst=dst, item=item
                )
    return schedule


def expand_assignment(assignment: BlockCyclicAssignment, num_items: int) -> Schedule:
    """Expand a standard block-cyclic assignment (convenience wrapper)."""
    return expand(general_form(assignment), num_items)


def continuous_delay_lower_bound(P: int, L: int) -> int:
    """The delay lower bound ``L + B(P-1)`` of Section 3.1."""
    from repro.core.fib import broadcast_time_postal

    return L + broadcast_time_postal(P - 1, L)
