"""Dedicated tests for the general word-assignment solver."""

import pytest

from repro.core.continuous.assignment import solve_instance
from repro.core.continuous.general import solve_general_words
from repro.core.continuous.relative import instance_for
from repro.core.kitem.star import star_tree
from repro.core.tree import tree_for_time
from repro.params import postal


class TestAgreementWithStandardSolver:
    @pytest.mark.parametrize("t,L", [(5, 3), (7, 3), (9, 4), (10, 5)])
    def test_solvability_agrees(self, t, L):
        tree = tree_for_time(t, postal(P=1, L=L))
        general = solve_general_words(tree, L)
        standard = solve_instance(instance_for(t, L))
        assert (general is None) == (standard is None)
        if general is not None:
            assert general.delay == L + t

    def test_l4_t8_infeasible_in_general_form_too(self):
        tree = tree_for_time(8, postal(P=1, L=4))
        assert solve_general_words(tree, 4) is None


class TestBudget:
    def test_unbudgeted_is_exhaustive(self):
        # None result without a budget is a proof of infeasibility
        tree = tree_for_time(6, postal(P=1, L=2))
        assert solve_general_words(tree, 2) is None

    def test_budget_zero_gives_up_gracefully(self):
        tree = tree_for_time(7, postal(P=1, L=3))
        result = solve_general_words(tree, 3, budget=0)
        assert result is None  # gave up, not crashed

    def test_budget_large_enough_solves(self):
        tree = tree_for_time(7, postal(P=1, L=3))
        assert solve_general_words(tree, 3, budget=10**6) is not None


class TestStarTrees:
    def test_small_star_solvable_by_search(self):
        # the DFS finds star assignments for small n (the closed form
        # exists for all n; this checks the two agree on feasibility)
        tree = star_tree(8, 12)
        result = solve_general_words(tree, 12, budget=500_000)
        assert result is not None
        assert result.completion == tree.completion_time

    def test_receive_only_is_single_letter(self):
        tree = tree_for_time(7, postal(P=1, L=3))
        result = solve_general_words(tree, 3)
        assert len(result.receive_only) == 1


class TestValidationHooks:
    def test_cover_mismatch_detected(self):
        from repro.core.continuous.schedule import GBlock, GeneralAssignment

        tree = tree_for_time(7, postal(P=1, L=3))
        bogus = GeneralAssignment(
            tree=tree,
            L=3,
            blocks=[GBlock(upper_delay=0, size=5, word=(7, 7, 7, 7))],
            receive_only=(7,),
        )
        with pytest.raises(ValueError):
            bogus.validate()
