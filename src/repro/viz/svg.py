"""Self-contained SVG Gantt charts of schedule executions.

No plotting dependencies: the renderer emits a standalone ``.svg`` file
(openable in any browser) with one row per processor, colored bars for
send overhead / receive overhead / computation, and thin arcs for
messages in flight.  This is the publication-quality counterpart of the
ASCII timelines in :mod:`repro.viz.ascii`.
"""

from __future__ import annotations

from repro.schedule.ops import Schedule
from repro.sim.trace import Trace, trace_from_schedule

__all__ = ["schedule_to_svg", "save_svg"]

_COLORS = {
    "send": "#e4a33d",     # amber
    "recv": "#4f81bd",     # blue
    "compute": "#6aa84f",  # green
}
_ROW_H = 26
_BAR_H = 16
_LEFT = 56
_TOP = 34
_PX_PER_CYCLE = 14
_MESSAGE_COLOR = "#999999"


def _esc(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def schedule_to_svg(schedule: Schedule, title: str = "") -> str:
    """Render a schedule as an SVG document string."""
    trace = trace_from_schedule(schedule)
    params = schedule.params
    procs = sorted(set(trace.activities) | set(range(params.P)))
    horizon = max(trace.horizon(), 1)
    width = _LEFT + horizon * _PX_PER_CYCLE + 20
    height = _TOP + len(procs) * _ROW_H + 30

    def x(cycle: float) -> float:
        return _LEFT + cycle * _PX_PER_CYCLE

    def y(proc_index: int) -> float:
        return _TOP + proc_index * _ROW_H

    row_of = {p: i for i, p in enumerate(procs)}
    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{_LEFT}" y="16" font-size="13">{_esc(title)}</text>'
        )

    # grid + axis labels every 5 cycles
    step = 1 if horizon <= 30 else 5 if horizon <= 150 else 10
    for c in range(0, horizon + 1, step):
        parts.append(
            f'<line x1="{x(c)}" y1="{_TOP - 6}" x2="{x(c)}" '
            f'y2="{height - 24}" stroke="#eeeeee"/>'
        )
        parts.append(
            f'<text x="{x(c) - 3}" y="{_TOP - 10}" fill="#666666">{c}</text>'
        )

    # processor rows
    for p in procs:
        parts.append(
            f'<text x="6" y="{y(row_of[p]) + _BAR_H - 3}">P{p}</text>'
        )
        parts.append(
            f'<line x1="{_LEFT}" y1="{y(row_of[p]) + _BAR_H + 2}" '
            f'x2="{x(horizon)}" y2="{y(row_of[p]) + _BAR_H + 2}" '
            f'stroke="#f5f5f5"/>'
        )

    # message arcs (send start -> receive start)
    for op in schedule.sorted_sends():
        x1 = x(op.time + params.o)
        y1 = y(row_of[op.src]) + _BAR_H / 2
        x2 = x(op.receive_start(params))
        y2 = y(row_of[op.dst]) + _BAR_H / 2
        parts.append(
            f'<line x1="{x1}" y1="{y1}" x2="{x2}" y2="{y2}" '
            f'stroke="{_MESSAGE_COLOR}" stroke-width="0.7" opacity="0.6"/>'
        )

    # activity bars on top of the arcs
    for p in procs:
        for act in trace.activities.get(p, []):
            color = _COLORS.get(act.kind, "#cccccc")
            w = max((act.end - act.start) * _PX_PER_CYCLE - 1, 2)
            label = f"{act.kind} item={act.item!r}"
            parts.append(
                f'<rect x="{x(act.start)}" y="{y(row_of[p])}" width="{w}" '
                f'height="{_BAR_H}" fill="{color}" rx="2">'
                f"<title>{_esc(label)} @[{act.start},{act.end})</title></rect>"
            )

    # legend
    lx = _LEFT
    ly = height - 14
    for kind, color in _COLORS.items():
        parts.append(
            f'<rect x="{lx}" y="{ly - 10}" width="12" height="10" fill="{color}"/>'
        )
        parts.append(f'<text x="{lx + 16}" y="{ly}">{kind}</text>')
        lx += 90

    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(schedule: Schedule, path: str, title: str = "") -> None:
    """Write the SVG rendering of ``schedule`` to ``path``."""
    with open(path, "w") as handle:
        handle.write(schedule_to_svg(schedule, title=title))
