"""Tests for the independent optimality provers.

These certify the paper's headline optimality claims *by brute force* on
small instances, with none of the paper's structural arguments assumed.
"""

import pytest

from repro.core.fib import (
    broadcast_time_postal,
    k_star,
    kitem_lower_bound,
    kitem_lower_bound_closed_form,
    reachable_postal,
)
from repro.core.kitem.single_sending import completion, single_sending_schedule
from repro.core.optimality import (
    broadcast_time_certified,
    counting_kitem_lower_bound,
    max_informed_dp,
    max_items_by_counting,
    min_kitem_time_exhaustive,
)


class TestBroadcastDP:
    @pytest.mark.parametrize("L", [1, 2, 3, 4])
    def test_dp_certifies_theorem_22(self, L):
        # exact optimization over ALL send-count sequences = f_t
        for t in range(9):
            assert max_informed_dp(t, L) == reachable_postal(t, L)

    def test_dp_certifies_B(self):
        for L in (1, 2, 3):
            for P in (2, 3, 5, 8, 13):
                assert broadcast_time_certified(P, L) == broadcast_time_postal(P, L)

    def test_trivial_cases(self):
        assert max_informed_dp(0, 3) == 1
        assert broadcast_time_certified(1, 2) == 0


class TestCountingBound:
    def test_matches_closed_form_beyond_kstar(self):
        for L in (1, 2, 3, 4):
            for P in (3, 5, 10, 14, 22):
                ks = k_star(P, L)
                for k in range(ks + 1, ks + 6):
                    assert counting_kitem_lower_bound(P, L, k) == \
                        kitem_lower_bound_closed_form(P, L, k)

    def test_closed_form_overshoots_for_small_k(self):
        # the library's documented correction: P=5, L=2, k=1
        assert kitem_lower_bound(5, 2, 1) == 4
        assert kitem_lower_bound_closed_form(5, 2, 1) == 5

    def test_monotone_in_deadline(self):
        caps = [max_items_by_counting(10, 3, d) for d in range(25)]
        assert caps == sorted(caps)

    def test_zero_before_first_arrival(self):
        assert max_items_by_counting(5, 4, 3) == 0


EXHAUSTIVE_CASES = [
    (2, 2, 3),
    (3, 1, 2),
    (3, 2, 2),
    (3, 2, 3),
    (4, 1, 2),
    (4, 2, 2),
    (4, 2, 3),
    (4, 3, 2),
    (5, 1, 2),
    (5, 1, 3),
    (5, 2, 2),
]


class TestExhaustiveKItem:
    @pytest.mark.parametrize("P,L,k", EXHAUSTIVE_CASES)
    def test_theorem_31_tight_on_small_instances(self, P, L, k):
        # complete search over ALL schedules: the counting lower bound is
        # achieved exactly — no schedule does better, some schedule matches
        opt = min_kitem_time_exhaustive(P, L, k)
        assert opt == kitem_lower_bound(P, L, k)

    @pytest.mark.parametrize("P,L,k", [(3, 2, 2), (4, 2, 2), (5, 2, 2)])
    def test_library_schedules_certified_near_optimal(self, P, L, k):
        opt = min_kitem_time_exhaustive(P, L, k)
        ours = completion(single_sending_schedule(k, P, L))
        # ours is single-sending; the exhaustive optimum may use multi-
        # sending, so allow the k* gap but nothing more
        assert opt <= ours <= opt + k_star(P, L)

    def test_degenerate(self):
        assert min_kitem_time_exhaustive(1, 2, 3) == 0
        assert min_kitem_time_exhaustive(3, 2, 0) == 0
