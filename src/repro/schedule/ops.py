"""Schedule intermediate representation.

All algorithms in this library — the paper's optimal constructions and the
baselines alike — emit the same IR: a :class:`Schedule` holding a list of
:class:`SendOp` records plus the machine parameters and the initial item
placement.  The simulator (:mod:`repro.sim`) replays this IR, enforcing
every LogP constraint, and the analysis helpers compute completion times
and per-item delays from it.

Timing convention (integer cycles):

* a ``SendOp`` with start time ``s`` occupies the **sender** during
  ``[s, s+o)``;
* the message is in transit during ``[s+o, s+o+L)``;
* it occupies the **receiver** during ``[s+o+L, s+o+L+o)``;
* the payload is **available** at the receiver at ``s + L + 2o``.

In the postal model (``o=0``) this degenerates to: sent at ``s``,
available at ``s + L``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator

from repro.params import LogPParams

__all__ = ["SendOp", "ComputeOp", "Schedule"]

Item = Hashable


@dataclass(frozen=True, slots=True, order=True)
class SendOp:
    """A single point-to-point message.

    Ordering is by ``(time, src, dst)`` so sorted schedules replay in
    chronological order.
    """

    time: int
    src: int
    dst: int
    item: Item = 0

    def arrival(self, params: LogPParams) -> int:
        """Cycle at which the payload becomes available at ``dst``."""
        return self.time + params.L + 2 * params.o

    def receive_start(self, params: LogPParams) -> int:
        """Cycle at which the receive overhead begins at ``dst``."""
        return self.time + params.o + params.L


@dataclass(frozen=True, slots=True, order=True)
class ComputeOp:
    """A unit-time local computation (used by summation schedules).

    ``operands`` names the values combined and ``result`` the value
    produced; the processor is busy during ``[time, time + duration)``.
    """

    time: int
    proc: int
    result: Item = 0
    operands: tuple[Item, ...] = ()
    duration: int = 1


@dataclass
class Schedule:
    """A complete communication (and optionally computation) schedule.

    Parameters
    ----------
    params:
        The LogP machine this schedule targets.
    sends:
        All messages; need not be pre-sorted.
    initial:
        Map ``proc -> set of items`` available at time 0.  Defaults to the
        single item ``0`` at processor 0 (the classic broadcast setup).
    computes:
        Optional local-computation ops (summation schedules).
    source_items:
        For multi-item broadcasts: map ``item -> time it is created`` at
        the source.  Items default to being available at time 0.
    """

    params: LogPParams
    sends: list[SendOp] = field(default_factory=list)
    initial: dict[int, set[Item]] = field(default_factory=dict)
    computes: list[ComputeOp] = field(default_factory=list)
    source_items: dict[Item, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.initial:
            self.initial = {0: {0}}

    def add(self, time: int, src: int, dst: int, item: Item = 0) -> SendOp:
        op = SendOp(time=time, src=src, dst=dst, item=item)
        self.sends.append(op)
        return op

    def sorted_sends(self) -> list[SendOp]:
        return sorted(self.sends)

    def sends_by_proc(self) -> dict[int, list[SendOp]]:
        """Map processor -> its outgoing sends in chronological order."""
        out: dict[int, list[SendOp]] = {}
        for op in self.sorted_sends():
            out.setdefault(op.src, []).append(op)
        return out

    def receives_by_proc(self) -> dict[int, list[SendOp]]:
        """Map processor -> incoming sends ordered by receive time."""
        incoming: dict[int, list[SendOp]] = {}
        for op in self.sends:
            incoming.setdefault(op.dst, []).append(op)
        for ops in incoming.values():
            ops.sort(key=lambda op: (op.receive_start(self.params), op.src))
        return incoming

    def items(self) -> set[Item]:
        found: set[Item] = set()
        for items in self.initial.values():
            found |= items
        for op in self.sends:
            found.add(op.item)
        return found

    def processors(self) -> set[int]:
        procs = set(self.initial)
        for op in self.sends:
            procs.add(op.src)
            procs.add(op.dst)
        return procs

    def item_creation_time(self, item: Item) -> int:
        return self.source_items.get(item, 0)

    def __len__(self) -> int:
        return len(self.sends)

    def __iter__(self) -> Iterator[SendOp]:
        return iter(self.sorted_sends())

    def extend(self, ops: Iterable[SendOp]) -> None:
        self.sends.extend(ops)
