"""Shared per-run state for the lint rules.

Every rule consumes the same handful of derived arrays (the columnar
view, the availability table, the replay order, per-send availability
lookups).  :class:`LintContext` computes each of them lazily and exactly
once per engine run, so a ten-rule sweep over a million-send schedule
costs one availability sort, not ten.  Everything here is numpy over
:class:`~repro.schedule.columnar.ScheduleColumns` — no rule or helper
ever iterates ``schedule.sends`` (the AST gate in
``tools/lint_hot_loops.py`` enforces this).

Workload detection (:func:`detect_workload`) classifies the *shape* of
the initial placement so the paper-specific rules (optimality gaps,
single-sending, Theorem 3.2 endgame) know which closed forms apply:

* ``broadcast`` — one processor holds one item (Section 2);
* ``kitem`` — one processor holds ``k > 1`` items (Section 3);
* ``scattered`` — every initial processor holds its own disjoint items
  (all-to-all, reductions, combining broadcasts; Sections 4-5);
* ``empty`` / ``unknown`` — nothing to say structurally.

Detection reads only the initial placement; rules that need to know
whether a scattered schedule is genuinely an all-to-all (every item
reaches every participant) ask :attr:`LintContext.holders_per_item`.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.params import LogPParams
from repro.schedule.analysis_np import availability_arrays
from repro.schedule.columnar import ScheduleColumns
from repro.schedule.ops import Schedule

__all__ = ["Workload", "detect_workload", "LintContext"]


class Workload:
    """Workload-shape constants (plain strings, so reports serialize)."""

    EMPTY = "empty"
    BROADCAST = "broadcast"
    KITEM = "kitem"
    SCATTERED = "scattered"
    UNKNOWN = "unknown"


def detect_workload(schedule: Schedule) -> str:
    """Classify the schedule's initial placement (see module docstring)."""
    placements = {
        proc: items for proc, items in schedule.initial.items() if items
    }
    if not placements and schedule.num_sends == 0:
        return Workload.EMPTY
    if len(placements) == 1:
        (items,) = placements.values()
        return Workload.BROADCAST if len(items) == 1 else Workload.KITEM
    if len(placements) > 1:
        seen: set[Hashable] = set()
        for items in placements.values():
            if seen & items:
                return Workload.UNKNOWN
            seen |= items
        return Workload.SCATTERED
    return Workload.UNKNOWN


class LintContext:
    """Lazily-computed arrays shared by every rule in one lint run."""

    def __init__(self, schedule: Schedule):
        self.schedule = schedule
        self.params: LogPParams = schedule.params
        self.cols: ScheduleColumns = schedule.columns()
        self.workload: str = detect_workload(schedule)
        self._avail: (
            tuple[np.ndarray, np.ndarray, dict[Hashable, int], int] | None
        ) = None
        self._send_avail: np.ndarray | None = None
        self._dst_first: np.ndarray | None = None
        self._replay_order: np.ndarray | None = None
        self._participants: np.ndarray | None = None
        self._initial_keys: np.ndarray | None = None
        self._holders: np.ndarray | None = None
        self._source_counts: np.ndarray | None = None

    # -- basic shape -----------------------------------------------------

    def __len__(self) -> int:
        return len(self.cols)

    @property
    def start_time(self) -> int:
        """Earliest send start (the schedule's time origin for bounds).

        Note ``min(initial=0)`` would be wrong here: ``initial`` joins
        the reduction, which would pin the origin to 0 and break shift
        invariance for schedules starting later.
        """
        if len(self.cols) == 0:
            return 0
        return int(self.cols.times.min())

    @property
    def makespan(self) -> int:
        """Completion relative to :attr:`start_time` (shift-invariant)."""
        if len(self.cols) == 0:
            return 0
        return int(self.cols.arrivals.max()) - self.start_time

    @property
    def source(self) -> int | None:
        """The single initial processor for broadcast/kitem workloads."""
        if self.workload not in (Workload.BROADCAST, Workload.KITEM):
            return None
        return next(
            proc for proc, items in self.schedule.initial.items() if items
        )

    # -- availability ----------------------------------------------------

    @property
    def avail(self) -> tuple[np.ndarray, np.ndarray, dict[Hashable, int], int]:
        """``(keys, times, item_ids, n_items)`` availability table.

        ``keys`` is sorted ``proc * n_items + item_id``; ``times[i]`` is
        the earliest cycle that pair holds the item (initial placements
        and arrivals folded together).  See
        :func:`repro.schedule.analysis_np.availability_arrays`.
        """
        if self._avail is None:
            self._avail = availability_arrays(self.schedule, self.cols)
        return self._avail

    @property
    def n_items(self) -> int:
        """Distinct items across sends *and* initial placements."""
        return self.avail[3]

    def item_of(self, code: int) -> Hashable:
        """Decode an extended item id back to the item value."""
        _, _, item_ids, _ = self.avail
        table = self.cols.table.items
        if code < len(table):
            return table[code]
        for item, idx in item_ids.items():
            if idx == code:
                return item
        raise KeyError(code)

    def _lookup(self, pair_keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """First-availability time for encoded (proc, item) keys.

        Returns ``(found, times)``; ``times`` is meaningless where
        ``found`` is False (the pair never holds the item).
        """
        keys, times, _, _ = self.avail
        if len(keys) == 0:
            n = len(pair_keys)
            return np.zeros(n, dtype=bool), np.zeros(n, dtype=np.int64)
        pos = np.searchsorted(keys, pair_keys)
        pos_c = np.minimum(pos, len(keys) - 1)
        found = keys[pos_c] == pair_keys
        return found, np.where(found, times[pos_c], 0)

    @property
    def src_keys(self) -> np.ndarray:
        return self.cols.srcs * self.n_items + self.cols.items

    @property
    def dst_keys(self) -> np.ndarray:
        return self.cols.dsts * self.n_items + self.cols.items

    @property
    def send_avail(self) -> tuple[np.ndarray, np.ndarray]:
        """Per send: (sender ever holds the item, first time it does)."""
        if self._send_avail is None:
            self._send_avail = self._lookup(self.src_keys)
        return self._send_avail

    @property
    def dst_first_avail(self) -> np.ndarray:
        """Per send: first cycle the *destination* holds the sent item.

        Always found — the send's own arrival is in the table.
        """
        if self._dst_first is None:
            _, self._dst_first = self._lookup(self.dst_keys)
        return self._dst_first

    @property
    def initial_keys(self) -> np.ndarray:
        """Sorted encoded (proc, item) pairs of the initial placement."""
        if self._initial_keys is None:
            _, _, item_ids, n_items = self.avail
            entries = [
                proc * n_items + item_ids[item]
                for proc, items in self.schedule.initial.items()
                for item in items
            ]
            self._initial_keys = np.array(sorted(entries), dtype=np.int64)
        return self._initial_keys

    # -- orders and aggregates -------------------------------------------

    @property
    def replay_order(self) -> np.ndarray:
        """Indices ordering sends by ``(time, src, dst)`` (stable)."""
        if self._replay_order is None:
            cols = self.cols
            self._replay_order = np.lexsort((cols.dsts, cols.srcs, cols.times))
        return self._replay_order

    @property
    def participants(self) -> np.ndarray:
        """Sorted processor ids that appear anywhere in the schedule.

        On a fault-masked machine the expected survivor set joins the
        union: a surviving leaf that an over-eager ``restrict`` removed
        from every send would otherwise vanish from the observed
        participants and slip past coverage lint (SCHED010).
        """
        if self._participants is None:
            procs = np.union1d(self.cols.srcs, self.cols.dsts)
            initial = np.fromiter(
                (p for p, items in self.schedule.initial.items() if items),
                dtype=np.int64,
            )
            participants = np.union1d(procs, initial)
            machine = self.schedule.machine
            if machine is not None:
                expected = machine.expected_participants()
                if expected is not None:
                    participants = np.union1d(participants, expected)
            self._participants = participants
        return self._participants

    @property
    def holders_per_item(self) -> np.ndarray:
        """Distinct processors that ever hold each item (by extended id)."""
        if self._holders is None:
            keys, _, _, n_items = self.avail
            self._holders = np.bincount(
                keys % n_items, minlength=n_items
            ).astype(np.int64)
        return self._holders

    @property
    def source_item_send_counts(self) -> np.ndarray:
        """How often the broadcast source transmits each item code.

        Indexed by the *column table's* dense item codes; only meaningful
        for broadcast/kitem workloads (empty array otherwise).
        """
        if self._source_counts is None:
            source = self.source
            if source is None:
                self._source_counts = np.zeros(0, dtype=np.int64)
            else:
                mask = self.cols.srcs == source
                self._source_counts = np.bincount(
                    self.cols.items[mask],
                    minlength=len(self.cols.table.items),
                ).astype(np.int64)
        return self._source_counts

    def describe_send(self, index: int) -> str:
        """``t=<time> <src>-><dst> item <item>`` for one storage index."""
        cols = self.cols
        item = cols.table.items[int(cols.items[index])]
        return (
            f"t={int(cols.times[index])} "
            f"{int(cols.srcs[index])}->{int(cols.dsts[index])} "
            f"item {item!r}"
        )
