#!/usr/bin/env python3
"""Two-level broadcast on a cluster of multicore nodes.

Scenario: 8 nodes x 8 cores.  Within a node messages are cheap
(L=2, o=1, g=1); across nodes they are expensive (L=24, o=2, g=6).
A topology-oblivious broadcast pays inter-node cost for most hops; the
two-level plan broadcasts among node leaders on the slow fabric, then
fans out inside each node on the fast one.  This example prices both
with the optimal planners and shows the decomposition — and also what
the *best case* (all 64 ranks on the fast fabric) would cost, bounding
what any topology-aware scheme could hope for.

Run:  python examples/hierarchical_broadcast.py
"""

from repro.comm import Communicator, embed_plan
from repro.core.fib import broadcast_time
from repro.params import LogPParams

NODES, CORES = 8, 8
INTER = LogPParams(P=NODES, L=24, o=2, g=6)       # leader <-> leader
INTRA = LogPParams(P=CORES, L=2, o=1, g=1)        # within one node
FLAT = LogPParams(P=NODES * CORES, L=24, o=2, g=6)  # oblivious view


def main() -> None:
    total_ranks = NODES * CORES
    print(f"cluster: {NODES} nodes x {CORES} cores = {total_ranks} ranks")
    print(f"inter-node fabric: {INTER}")
    print(f"intra-node fabric: {INTRA}\n")

    # --- topology-oblivious: optimal tree over the slow fabric ---------
    flat_cycles = broadcast_time(total_ranks, FLAT)
    print(f"flat (oblivious) optimal broadcast: {flat_cycles} cycles")

    # --- two-level: leaders first, then local fan-out -------------------
    leaders = Communicator(INTER)
    inter_plan = leaders.bcast(root=0)
    local = Communicator(INTRA)
    intra_plan = local.bcast(root=0)
    two_level = inter_plan.cycles + intra_plan.cycles
    print(
        f"two-level broadcast: {inter_plan.cycles} (leaders) + "
        f"{intra_plan.cycles} (intra-node) = {two_level} cycles"
    )
    speedup = flat_cycles / two_level
    print(f"topology awareness buys {speedup:.2f}x on this machine\n")

    # --- what's the floor? all ranks on the fast fabric -----------------
    dream = broadcast_time(total_ranks, INTRA.with_processors(total_ranks))
    print(f"(lower bound if the whole cluster had the fast fabric: {dream} cycles)")

    # --- show the leader plan embedded on global ranks ------------------
    # leaders sit at global ranks 0, 8, 16, ...
    mapping = {i: i * CORES for i in range(NODES)}
    lifted = embed_plan(inter_plan, mapping)
    sends = [(op.time, op.src, op.dst) for op in lifted.sorted_sends()]
    print("\nleader-phase messages on global ranks (time, src, dst):")
    for row in sends:
        print(f"  {row}")


if __name__ == "__main__":
    main()
