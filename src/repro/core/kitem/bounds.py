"""Bounds and structure for k-item broadcast (Theorems 3.1, 3.2, 3.6).

All in the postal model (``g = 1``, ``o = 0``) in which the paper analyses
the problem.  ``B`` denotes ``B(P-1)``, the optimal single-item broadcast
time among the ``P - 1`` non-source processors, and ``k*`` the endgame
size (both from :mod:`repro.core.fib`).

* **General lower bound** (Thm 3.1): ``B + L + (k-1) - k*``.
* **Single-sending lower bound**: ``B + L + k - 1``.
* **Upper bound** (Thm 3.6): a single-sending schedule always exists with
  time ``B + 2L + k - 2`` — within ``L-1`` of the single-sending bound.
* **Continuous-based** (Cor 3.1): when ``P - 1 = P(t)`` and the
  block-cyclic machinery solves ``I(t)``, time ``L + B + k - 1`` exactly.
* **Structure** (Thm 3.2): any bound-meeting schedule sends distinct items
  in the first ``k - k*`` steps (continuous phase), then an endgame.
"""

from __future__ import annotations

from repro.core.fib import (
    broadcast_time_postal,
    k_star,
    kitem_lower_bound,
    single_sending_lower_bound,
)

__all__ = [
    "kitem_lower_bound",
    "single_sending_lower_bound",
    "kitem_upper_bound",
    "continuous_based_time",
    "continuous_phase_length",
    "endgame_length",
    "k_star",
]


def kitem_upper_bound(P: int, L: int, k: int) -> int:
    """Theorem 3.6: ``B(P-1) + 2L + k - 2`` steps always suffice."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if P < 2:
        return 0
    return broadcast_time_postal(P - 1, L) + 2 * L + k - 2


def continuous_based_time(P: int, L: int, k: int) -> int:
    """Corollary 3.1: ``L + B(P-1) + k - 1`` via optimal continuous
    broadcast (requires ``P - 1 = P(t)`` and a solvable ``I(t)``)."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if P < 2:
        return 0
    return L + broadcast_time_postal(P - 1, L) + k - 1


def continuous_phase_length(P: int, L: int, k: int) -> int:
    """Length ``k - k*`` of the continuous phase (Theorem 3.2)."""
    return max(0, k - min(k_star(P, L), k))


def endgame_length(P: int, L: int) -> int:
    """Duration ``B(P-1)`` of the endgame (Theorem 3.2 discussion)."""
    return broadcast_time_postal(P - 1, L)
