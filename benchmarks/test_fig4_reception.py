"""FIG4: within-block reception table, L=5, size-7 block, k=16 (Figure 4).

The paper prints the hand-crafted case-2 reception table of Theorem 3.7
for a 7-block with L=5 and k=16.  We regenerate the equivalent table from
the machine-checked single-sending schedule on the machine whose optimal
tree has a size-7 root block (P-1 = P(11) = 11 for L=5) and assert the
schedule's completion is within Theorem 3.6's bound B + 2L + k - 2
(our searched schedule actually meets the single-sending lower bound,
beating the paper's construction by L - 1 steps).
"""

from repro.experiments.figures import fig4_reception_table


def test_fig4(benchmark):
    result = benchmark(fig4_reception_table)
    m = result.measured
    assert m["completion"] <= m["paper_bound_B+2L+k-2"]
    assert m["completion"] >= m["single_sending_lower_bound"] - 0
    assert len(m["block"]) == 7
    print()
    print(result)
