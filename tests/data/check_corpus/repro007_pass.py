"""Planted REPRO007: a registered pass that declares nothing."""

from repro.passes.base import SchedulePass, refuse_implicit, register_pass


@register_pass
class SilentPass(SchedulePass):
    name = "silent"
    summary = "declares no invariants and no implicit contract"

    def run(self, schedule):
        return schedule


@register_pass
class DeclaredPass(SchedulePass):
    name = "declared"
    summary = "declares everything REPRO007 wants"
    preserves_legality = True
    preserves_completion = False
    run_implicit = refuse_implicit("needs materialized columns")

    def run(self, schedule):
        return schedule
