"""Property tests: lint verdicts across schedule transforms and mutations.

Two invariance tiers (see :mod:`repro.analyze.diagnostics`):

* legality-preserving *relabelings* — :func:`shift`, :func:`remap`,
  :func:`reverse` — keep a clean schedule free of WARNING-and-above
  findings (INFO observations may appear; ``reverse`` legitimately has
  slack on the reversed critical path);
* *compositions* — :func:`concat`, :func:`restrict` — only promise
  error-freedom: ``concat`` inserts idle spacing and merges initial
  placements by design, and ``restrict`` drops completeness, so
  WARNING-tier waste findings are expected and correct there.

The mutation properties are the flip side: corrupting a clean schedule
must trip the matching rule — the engine has no false negatives on the
defect classes it claims to catch.
"""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analyze import Severity, Workload, lint_schedule
from repro.core.kitem.single_sending import single_sending_schedule
from repro.core.single_item import optimal_broadcast_schedule
from repro.params import LogPParams
from repro.schedule.ops import Schedule, SendOp
from repro.schedule.transform import concat, remap, restrict, reverse, shift

SETTINGS = settings(max_examples=25, deadline=None)


@st.composite
def clean_schedules(draw):
    """A builder-produced schedule that lints clean at WARNING+."""
    kind = draw(st.sampled_from(["bcast", "bcast-logp", "kitem"]))
    if kind == "bcast":
        P = draw(st.integers(2, 12))
        L = draw(st.integers(1, 6))
        return optimal_broadcast_schedule(LogPParams(P=P, L=L, o=0, g=1))
    if kind == "bcast-logp":
        P = draw(st.integers(2, 9))
        L = draw(st.integers(2, 6))
        g = draw(st.integers(1, 4))
        o = draw(st.integers(1, min(2, g)))  # LogPParams requires o <= g
        return optimal_broadcast_schedule(LogPParams(P=P, L=L, o=o, g=g))
    k = draw(st.integers(2, 5))
    P = draw(st.integers(2, 8))
    L = draw(st.integers(1, 5))
    return single_sending_schedule(k, P, L)


def warnings_and_up(schedule: Schedule):
    return {d.rule for d in lint_schedule(schedule).at_least(Severity.WARNING)}


# Builders are error-free but not always warning-free: for some (P, L)
# the k-item construction lands strictly between the Thm 3.7 lower bound
# and the Thm 3.6 upper bound (the lower bound needs P - 1 = P(t), Cor
# 3.1), so SCHED008 correctly reports the gap.  The invariance contract
# is therefore relative: a relabeling introduces no *new* findings.


class TestRelabelingInvariance:
    @SETTINGS
    @given(sched=clean_schedules(), offset=st.integers(0, 50))
    def test_shift_introduces_no_warnings(self, sched, offset):
        assert warnings_and_up(shift(sched, offset)) <= warnings_and_up(sched)

    @SETTINGS
    @given(sched=clean_schedules(), data=st.data())
    def test_remap_introduces_no_warnings(self, sched, data):
        procs = sorted(sched.processors())
        image = data.draw(st.permutations(procs))
        remapped = remap(sched, dict(zip(procs, image)))
        assert warnings_and_up(remapped) <= warnings_and_up(sched)

    @SETTINGS
    @given(sched=clean_schedules())
    def test_reverse_introduces_no_warnings(self, sched):
        # per-(dst, item) labels: the default ("rev", dst) tag collapses
        # the k items a single edge carries into one, which would turn a
        # legal k-item reversal into genuine duplicate deliveries
        reversed_ = reverse(sched, item_of=lambda op: ("rev", op.dst, op.item))
        assert warnings_and_up(reversed_) <= warnings_and_up(sched)


class TestCompositionErrorFreedom:
    @SETTINGS
    @given(sched=clean_schedules())
    def test_concat_with_itself_is_error_free(self, sched):
        # concat raises on conflicting source_items keys, so
        # self-composition is only well-defined without creation times —
        # drop them (making items available from t=0 is strictly more
        # permissive, per the "caller's responsibility" clause)
        base = Schedule(sched.params, sends=list(sched.sends), initial=sched.initial)
        report = lint_schedule(concat(base, base))
        assert report.errors == []

    @SETTINGS
    @given(sched=clean_schedules(), data=st.data())
    def test_restrict_to_receive_closed_subset_is_error_free(self, sched, data):
        procs = sorted(sched.processors())
        keep = set(data.draw(st.sets(st.sampled_from(procs), min_size=1)))
        # close under "receives from": drop any proc fed by an excluded
        # one, so every kept proc keeps its full provenance chain
        changed = True
        while changed:
            changed = False
            for op in sched.sends:
                if op.dst in keep and op.src not in keep:
                    keep.discard(op.dst)
                    changed = True
        assume(keep)
        report = lint_schedule(restrict(sched, keep))
        assert report.errors == []


class TestMutationsTrip:
    @SETTINGS
    @given(sched=clean_schedules(), data=st.data())
    def test_negative_time_trips_sched003(self, sched, data):
        i = data.draw(st.integers(0, sched.num_sends - 1))
        sends = list(sched.sends)
        op = sends[i]
        sends[i] = SendOp(time=-1 - op.time, src=op.src, dst=op.dst, item=op.item)
        mutated = Schedule(sched.params, sends=sends, initial=sched.initial)
        assert "SCHED003" in lint_schedule(mutated).rule_ids()

    @SETTINGS
    @given(sched=clean_schedules(), data=st.data())
    def test_duplicated_send_trips_sched005(self, sched, data):
        i = data.draw(st.integers(0, sched.num_sends - 1))
        op = sched.sends[i]
        horizon = int(max(o.arrival(sched.params) for o in sched.sends))
        dup = SendOp(
            time=horizon + 1, src=op.src, dst=op.dst, item=op.item
        )
        mutated = Schedule(
            sched.params, sends=[*sched.sends, dup], initial=sched.initial
        )
        ids = lint_schedule(mutated).rule_ids()
        assert "SCHED005" in ids
        assert "SCHED004" in ids  # a re-delivery is also a dead send

    @SETTINGS
    @given(sched=clean_schedules(), data=st.data())
    def test_self_send_trips_sched002(self, sched, data):
        i = data.draw(st.integers(0, sched.num_sends - 1))
        sends = list(sched.sends)
        op = sends[i]
        sends[i] = SendOp(time=op.time, src=op.src, dst=op.src, item=op.item)
        mutated = Schedule(sched.params, sends=sends, initial=sched.initial)
        assert "SCHED002" in lint_schedule(mutated).rule_ids()

    @SETTINGS
    @given(sched=clean_schedules(), data=st.data())
    def test_dropping_an_internal_delivery_trips_sched001(self, sched, data):
        # only deliveries whose destination later forwards the *same*
        # item are guaranteed to leave a dangling (acausal) send behind
        internal = [
            i
            for i, op in enumerate(sched.sends)
            if op.dst not in sched.initial
            and any(
                later.src == op.dst and later.item == op.item
                for later in sched.sends
                if later.time > op.time
            )
        ]
        assume(internal)
        i = data.draw(st.sampled_from(internal))
        sends = [op for j, op in enumerate(sched.sends) if j != i]
        mutated = Schedule(sched.params, sends=sends, initial=sched.initial)
        report = lint_schedule(mutated)
        assert "SCHED001" in report.rule_ids()
        assert report.max_severity is Severity.ERROR

    @SETTINGS
    @given(P=st.integers(4, 12), L=st.integers(1, 6), slip=st.integers(1, 20))
    def test_delaying_the_last_send_trips_a_gap_or_slack(self, P, L, slip):
        sched = optimal_broadcast_schedule(LogPParams(P=P, L=L, o=0, g=1))
        times = np.array([op.time for op in sched.sends])
        i = int(times.argmax())
        sends = list(sched.sends)
        op = sends[i]
        sends[i] = SendOp(
            time=op.time + slip, src=op.src, dst=op.dst, item=op.item
        )
        mutated = Schedule(sched.params, sends=sends, initial=sched.initial)
        report = lint_schedule(mutated)
        # the delayed finale shows up as an optimality gap (the makespan
        # grew) and as idle slack on the late send
        assert "SCHED008" in report.rule_ids()
        assert "SCHED007" in report.rule_ids()
        assert report.workload == Workload.BROADCAST
