"""LogP parameter estimation from micro-benchmark measurements.

The LogP methodology prescribes extracting ``(L, o, g)`` from two
micro-benchmarks; this module implements both directions so an adopter
can go from wall-clock measurements to a :class:`~repro.params.LogPParams`
to feed the planners:

* **ping-pong** — a round trip of single messages costs
  ``2 (L + 2o)``; its half gives ``L + 2o``.
* **message ramp (burst test)** — firing ``m`` back-to-back messages and
  waiting for the last acknowledgment costs
  ``(m - 1) g + (L + 2o) + (L + 2o)``-ish; the *slope* of time vs ``m``
  is ``g``, separating the gap from the latency.
* **overlap probe** — interleaving computation between sends isolates
  ``o``: the sender is only busy ``o`` per message, so the largest
  computation insertable without slowing the burst is ``g - o``.

:func:`fit_logp` performs a least-squares fit (numpy) of the three
parameters from synthetic or real measurement tables;
:func:`simulate_measurements` produces the synthetic tables from a known
machine (with optional noise) so the fit is testable end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.params import LogPParams

__all__ = [
    "Measurements",
    "simulate_measurements",
    "fit_logp",
]


@dataclass
class Measurements:
    """Micro-benchmark observations.

    ``pingpong`` — round-trip times of single messages (one per trial);
    ``burst_sizes`` / ``burst_times`` — burst test: time until the sender
    may retire after injecting ``m`` messages (send start of the last
    message plus its full delivery);
    ``overlap_probe`` — computation grains ``c`` paired with the observed
    per-message cost ``max(g, o + c)`` when ``c`` cycles of computation
    are inserted between sends.
    """

    pingpong: np.ndarray
    burst_sizes: np.ndarray
    burst_times: np.ndarray
    probe_grains: np.ndarray
    probe_costs: np.ndarray


def simulate_measurements(
    machine: LogPParams,
    trials: int = 32,
    noise: float = 0.0,
    seed: int = 0,
    max_burst: int = 32,
) -> Measurements:
    """Generate the micro-benchmark tables a real machine would produce.

    ``noise`` is the standard deviation of gaussian perturbation added to
    every observation (cycles).
    """
    rng = np.random.default_rng(seed)

    def jitter(shape) -> np.ndarray:
        return rng.normal(0.0, noise, size=shape) if noise > 0 else np.zeros(shape)

    rtt = 2 * (machine.L + 2 * machine.o)
    pingpong = rtt + jitter(trials)

    sizes = np.arange(1, max_burst + 1)
    # m messages: last send starts at (m-1) g, delivered L + 2o later
    burst = (sizes - 1) * machine.g + machine.L + 2 * machine.o
    burst_times = burst + jitter(len(sizes))

    grains = np.arange(0, 3 * machine.g + 1)
    costs = np.maximum(machine.g, machine.o + grains) + jitter(len(grains))

    return Measurements(
        pingpong=pingpong,
        burst_sizes=sizes,
        burst_times=burst_times,
        probe_grains=grains,
        probe_costs=costs,
    )


def fit_logp(data: Measurements, P: int) -> LogPParams:
    """Least-squares fit of ``(L, o, g)`` from the measurement tables.

    * ``g`` = slope of the burst line (robust to the intercept);
    * ``o`` = from the overlap probe: the per-message cost for large
      grains follows ``o + c``, so ``o`` is the mean of ``cost - c`` on
      the linear tail;
    * ``L`` = ``pingpong/2 - 2o``.

    Values are rounded to integers and clamped to the model's validity
    ranges (``L >= 1``, ``0 <= o <= g``, ``g >= 1``).
    """
    sizes = np.asarray(data.burst_sizes, dtype=float)
    times = np.asarray(data.burst_times, dtype=float)
    slope, _intercept = np.polyfit(sizes, times, 1)
    g = max(1, round(float(slope)))

    grains = np.asarray(data.probe_grains, dtype=float)
    costs = np.asarray(data.probe_costs, dtype=float)
    tail = grains >= max(g, 1)  # beyond the plateau, cost = o + c
    if tail.any():
        o = round(float(np.mean(costs[tail] - grains[tail])))
    else:
        o = 0
    o = min(max(o, 0), g)

    half_rtt = float(np.mean(data.pingpong)) / 2.0
    L = max(1, round(half_rtt - 2 * o))

    return LogPParams(P=P, L=L, o=o, g=g)
