"""Unit tests for the repro.checkers framework + the ``repro check`` CLI.

The corpus regression lives in ``tests/test_check_corpus.py``; this file
covers the framework mechanics (registry resolution, profile targeting,
pragma and suppression parsing, engine errors, SARIF shape) and the two
acceptance gates: the repository checks clean under all eight rules, and
the full sweep stays fast.
"""

import json
import time

import pytest

from repro.checkers import (
    CHECKERS,
    FileContext,
    Severity,
    check_context,
    check_paths,
    checker_ids,
    classify,
    expand_paths,
    get_checker,
    parse_suppressions,
    pragma_profiles,
    resolve_checkers,
    to_sarif,
)
from repro.cli import main

ALL_RULES = [f"REPRO{i:03d}" for i in range(1, 9)]


# -- registry -------------------------------------------------------------


def test_all_eight_rules_are_registered():
    assert checker_ids() == ALL_RULES


def test_get_checker_resolves_ids_and_names():
    assert get_checker("REPRO001").name == "hot-loop-over-sends"
    assert get_checker("hot-loop-over-sends").id == "REPRO001"
    with pytest.raises(ValueError, match="unknown rule"):
        get_checker("REPRO999")


def test_resolve_checkers_select_ignore():
    assert [c.id for c in resolve_checkers()] == ALL_RULES
    assert [c.id for c in resolve_checkers(select=["REPRO005"])] == ["REPRO005"]
    assert [
        c.id for c in resolve_checkers(ignore=["REPRO003", "opaque-raise"])
    ] == [r for r in ALL_RULES if r not in ("REPRO003", "REPRO008")]
    # selection order does not matter: runs happen in catalogue order
    assert [
        c.id for c in resolve_checkers(select=["REPRO007", "REPRO001"])
    ] == ["REPRO001", "REPRO007"]


def test_profile_predicates():
    hot = get_checker("REPRO001")
    assert hot.applies(frozenset({"hot"}))
    assert not hot.applies(frozenset())
    gate = get_checker("REPRO002")
    assert gate.applies(frozenset())
    assert not gate.applies(frozenset({"dispatch-owner"}))
    everywhere = get_checker("REPRO003")
    assert everywhere.applies(frozenset())
    assert all(c.severity in (Severity.ERROR, Severity.WARNING) for c in CHECKERS)


# -- profiles / pragmas ---------------------------------------------------


def test_classify_by_path_suffix():
    assert "hot" in classify("src/repro/schedule/columnar.py")
    assert "hot" in classify("/abs/checkout/src/repro/passes/library.py")
    assert "dispatch-owner" in classify("src/repro/dispatch.py")
    assert "keying" in classify("src/repro/serve/cache.py")
    assert "cli" in classify("src/repro/cli.py")
    assert "cli" in classify("src/repro/serve/service.py")
    assert classify("tests/test_checkers.py") == frozenset()


def test_pragma_overrides_path_classification():
    assert pragma_profiles("# repro: profile=hot,keying\nx = 1\n") == {
        "hot",
        "keying",
    }
    # empty list opts out of every profile
    assert pragma_profiles("# repro: profile=\nx = 1\n") == frozenset()
    assert pragma_profiles("x = 1\n") is None
    # only the leading lines are scanned
    late = "\n" * 20 + "# repro: profile=hot\n"
    assert pragma_profiles(late) is None


# -- suppressions ---------------------------------------------------------


def test_parse_suppressions():
    source = (
        "x = 1\n"
        "y = f()  # repro: ignore[REPRO005]\n"
        "z = g()  # repro: ignore[REPRO001, REPRO002] -- rationale\n"
    )
    assert parse_suppressions(source) == {
        2: {"REPRO005"},
        3: {"REPRO001", "REPRO002"},
    }


def test_unused_suppression_only_for_rules_that_ran():
    source = "# repro: profile=\nx = sorted([3, 1])  # repro: ignore[REPRO005]\n"
    ctx = FileContext.from_source(source, "mem.py")
    # REPRO005 requires the keying profile, so it never ran: no REPRO000
    diags, ran = check_context(ctx, resolve_checkers())
    assert "REPRO005" not in ran
    assert diags == []


# -- engine ---------------------------------------------------------------


def test_expand_paths_missing_is_an_error(tmp_path):
    with pytest.raises(ValueError, match="missing files"):
        expand_paths([tmp_path / "nope.py"])


def test_syntax_error_is_a_one_line_value_error(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(:\n")
    with pytest.raises(ValueError, match="cannot parse"):
        check_paths([bad])


def test_diagnostics_sorted_by_path_line_rule(tmp_path):
    a = tmp_path / "a.py"
    a.write_text(
        "# repro: profile=cli\n"
        "def g():\n"
        "    raise RuntimeError\n"
        "def f():\n"
        "    raise ValueError\n"
    )
    report = check_paths([a])
    assert [d.line for d in report.diagnostics] == [3, 5]


# -- the repository's own acceptance gates --------------------------------


def test_repo_checks_clean_under_all_eight_rules():
    report = check_paths(["src/repro"])
    assert report.rules_run == ALL_RULES
    assert report.diagnostics == []


def test_full_sweep_is_fast():
    started = time.perf_counter()
    check_paths(["src/repro"])
    assert time.perf_counter() - started < 5.0


# -- CLI ------------------------------------------------------------------


def test_cli_check_clean_tree_exits_zero(capsys):
    assert main(["check", "src/repro"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("repro-check: ")
    assert "summary: 0 errors, 0 warnings, 0 info" in out


def test_cli_check_fails_on_violations(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("# repro: profile=cli\ndef f():\n    raise ValueError\n")
    assert main(["check", str(bad)]) == 1  # warning >= default --fail-on
    assert main(["check", "--fail-on", "error", str(bad)]) == 0
    assert main(["check", "--fail-on", "never", str(bad)]) == 0
    capsys.readouterr()
    assert main(["check", "--ignore", "REPRO008", str(bad)]) == 0


def test_cli_check_usage_errors_exit_two(tmp_path, capsys):
    assert main(["check", str(tmp_path / "ghost.py")]) == 2
    assert "repro: error:" in capsys.readouterr().err
    assert main(["check", "--select", "BOGUS", "src/repro"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_check_sarif_shape(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("# repro: profile=cli\ndef f():\n    raise ValueError\n")
    main(["check", "--format", "sarif", str(bad)])
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-check"
    (result,) = run["results"]
    assert result["ruleId"] == "REPRO008"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"].endswith("bad.py")
    assert location["region"]["startLine"] == 3
    assert run["properties"]["ruleTotals"] == {"REPRO008": 1}


def test_sarif_rules_metadata_lists_ran_rules():
    doc = to_sarif(check_paths(["src/repro/dispatch.py"]))
    rules = doc["runs"][0]["tool"]["driver"]["rules"]
    ids = [r["id"] for r in rules]
    # dispatch.py is the dispatch owner: REPRO002 must NOT have run
    assert "REPRO002" not in ids
    assert "REPRO003" in ids
