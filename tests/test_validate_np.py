"""Scalar/vectorized validator agreement (property-based).

The numpy engine in :mod:`repro.sim.validate_np` must report *exactly*
the same violation strings as the pure-Python reference in
:mod:`repro.sim.validate` — same messages, same multiplicities — on any
schedule, legal or hostile.  Order may differ (the scalar walker emits
per-check, the vectorized one per-array-pass), so agreement is checked
as a multiset.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.all_to_all import all_to_all_schedule, k_item_all_to_all_schedule
from repro.core.single_item import optimal_broadcast_schedule
from repro.params import LogPParams, postal
from repro.schedule.ops import Schedule
from repro.sim.validate import violations
from repro.sim.validate_np import violations_np


def assert_agree(schedule: Schedule, check_capacity: bool = True) -> None:
    scalar = violations(schedule, check_capacity=check_capacity, force_scalar=True)
    vector = violations_np(schedule, check_capacity=check_capacity)
    assert Counter(scalar) == Counter(vector)


@st.composite
def _hostile_schedules(draw):
    """Arbitrary (mostly illegal) schedules exercising every check."""
    g = draw(st.integers(1, 4))
    params = LogPParams(
        P=draw(st.integers(2, 7)),
        L=draw(st.integers(1, 6)),
        o=draw(st.integers(0, min(3, g))),
        g=g,
    )
    n_items = draw(st.integers(1, 3))
    initial: dict[int, set] = {}
    for item in range(n_items):
        if draw(st.booleans()):
            initial.setdefault(draw(st.integers(0, params.P - 1)), set()).add(item)
    schedule = Schedule(params=params, initial=initial or {0: {0}})
    n_sends = draw(st.integers(0, 12))
    for _ in range(n_sends):
        schedule.add(
            time=draw(st.integers(0, 15)),
            src=draw(st.integers(0, params.P - 1)),
            dst=draw(st.integers(0, params.P - 1)),
            item=draw(st.integers(0, n_items - 1)),
        )
    return schedule


class TestFuzzedAgreement:
    @given(schedule=_hostile_schedules())
    @settings(max_examples=200, deadline=None)
    def test_hostile_schedules_agree(self, schedule):
        assert_agree(schedule)

    @given(schedule=_hostile_schedules())
    @settings(max_examples=60, deadline=None)
    def test_agreement_without_capacity_check(self, schedule):
        assert_agree(schedule, check_capacity=False)

    @given(
        g=st.integers(1, 4),
        P=st.integers(2, 24),
        L=st.integers(1, 8),
        o_raw=st.integers(0, 3),
    )
    @settings(max_examples=60, deadline=None)
    def test_optimal_broadcasts_clean_on_both(self, g, P, L, o_raw):
        params = LogPParams(P=P, L=L, o=min(o_raw, g), g=g)
        schedule = optimal_broadcast_schedule(params)
        assert violations(schedule, force_scalar=True) == []
        assert violations_np(schedule) == []

    @given(P=st.integers(2, 16), L=st.integers(1, 6), k=st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_all_to_all_clean_on_both(self, P, L, k):
        schedule = k_item_all_to_all_schedule(postal(P=P, L=L), k)
        assert violations(schedule, force_scalar=True) == []
        assert violations_np(schedule) == []


class TestDispatch:
    def test_large_schedule_routes_to_numpy_with_identical_result(self):
        # 48*47 = 2256 sends > FAST_PATH_THRESHOLD: the public entry point
        # dispatches to numpy; force_scalar pins the reference path
        schedule = all_to_all_schedule(postal(P=48, L=4))
        assert len(schedule.sends) >= 1024
        assert violations(schedule) == violations(schedule, force_scalar=True) == []

    def test_large_corrupted_schedule_same_messages(self):
        schedule = all_to_all_schedule(postal(P=48, L=4))
        schedule.add(time=0, src=1, dst=1, item=("a2a", 1))  # self-send
        schedule.add(time=0, src=2, dst=3, item=("a2a", 5))  # causality
        auto = violations(schedule)
        scalar = violations(schedule, force_scalar=True)
        assert Counter(auto) == Counter(scalar)
        assert any("self-send" in v for v in auto)
        assert any("causality" in v for v in auto)

    def test_empty_schedule(self):
        assert_agree(Schedule(params=postal(P=2, L=1)))


class TestTargetedParity:
    """One deterministic case per violation family (message-exact)."""

    def test_never_held(self):
        s = Schedule(params=postal(P=3, L=2))
        s.add(time=0, src=1, dst=2, item=0)
        assert_agree(s)

    def test_held_too_late(self):
        s = Schedule(params=postal(P=3, L=5))
        s.add(time=0, src=0, dst=1, item=0)
        s.add(time=3, src=1, dst=2, item=0)
        assert_agree(s)

    def test_send_and_receive_gaps(self):
        p = LogPParams(P=4, L=3, o=0, g=3)
        s = Schedule(params=p, initial={0: {0}, 1: {1}})
        s.add(time=0, src=0, dst=2, item=0)
        s.add(time=1, src=0, dst=3, item=0)  # send gap
        s.add(time=0, src=1, dst=2, item=1)  # receive gap at proc 2
        assert_agree(s)

    def test_overhead_overlap(self):
        p = LogPParams(P=3, L=6, o=2, g=4)
        s = Schedule(params=p, initial={0: {0}, 1: {1}})
        s.add(time=0, src=0, dst=1, item=0)
        s.add(time=9, src=1, dst=2, item=1)  # send during recv overhead
        assert_agree(s)

    def test_capacity_overflow(self):
        p = LogPParams(P=5, L=3, o=0, g=1)
        s = Schedule(params=p)
        for i in range(1, 5):
            s.add(time=0, src=0, dst=i, item=0)  # 4 in flight, cap = 3
        assert_agree(s)
