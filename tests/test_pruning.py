"""Tests for tree pruning and candidate generation."""

import pytest

from repro.core.fib import broadcast_time_postal, reachable_postal
from repro.core.pruning import candidate_trees, prune_to_size
from repro.core.continuous.general import solve_general_words
from repro.params import postal


def latest_chooser(options):
    return max(options)


class TestPruneToSize:
    def test_exact_size(self):
        for L in (2, 3):
            for T in (6, 8):
                full = reachable_postal(T, L)
                for size in (full, full - 1, full - 3, max(2, full // 2)):
                    tree = prune_to_size(T, L, size, latest_chooser)
                    assert tree is not None and len(tree) == size

    def test_pruned_tree_validates(self):
        tree = prune_to_size(8, 3, 10, latest_chooser)
        tree.validate()  # consecutive-children labeling preserved

    def test_target_larger_than_full_returns_none(self):
        assert prune_to_size(4, 3, 100, latest_chooser) is None

    def test_completion_within_T(self):
        tree = prune_to_size(9, 3, 12, latest_chooser)
        assert tree.completion_time <= 9


class TestCandidateTrees:
    @pytest.mark.parametrize("size,L", [(7, 2), (11, 3), (14, 4)])
    def test_candidates_have_right_size(self, size, L):
        t = broadcast_time_postal(size, L)
        for tree in candidate_trees(size, L, t + 1):
            assert len(tree) == size
            assert tree.completion_time <= t + 1
            tree.validate()

    def test_greedy_tree_first_when_it_fits(self):
        size, L = 9, 3
        t = broadcast_time_postal(size, L)
        first = next(iter(candidate_trees(size, L, t)))
        assert first.completion_time == t

    def test_candidates_deterministic(self):
        a = [t.delays() for t in candidate_trees(10, 3, 8)]
        b = [t.delays() for t in candidate_trees(10, 3, 8)]
        assert a == b


class TestGeneralSolverOnPrunedTrees:
    def test_solves_unique_optimal_tree(self):
        # for P-1 = P(t) the general solver agrees with the standard one
        tree = prune_to_size(7, 3, 9, latest_chooser)
        a = solve_general_words(tree, 3)
        assert a is not None
        assert a.delay == 10

    def test_budget_limits_work(self):
        tree = prune_to_size(8, 3, 13, latest_chooser)
        # tiny budget may fail, but must not crash
        result = solve_general_words(tree, 3, budget=1)
        assert result is None or result.delay == 11

    def test_exhaustive_none_is_proof(self):
        # L=2, t=7 optimal tree has no assignment (Theorem 3.4 regime)
        from repro.core.tree import tree_for_time

        tree = tree_for_time(7, postal(P=1, L=2))
        assert solve_general_words(tree, 2) is None
