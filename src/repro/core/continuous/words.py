"""Legal reception words and the word automaton (Section 3.2, Lemma 3.1).

A processor in a block of size ``r`` has a periodic reception pattern of
period ``r``: the uppercase letter ``R_r`` (offset ``r + L - 1``) at phase
0, and a *word* of ``r - 1`` lowercase letters (offsets ``0 .. L-1``) at
phases ``1 .. r-1``.

**Correctness** requires the processor never receive the same item twice.
Under relative addressing, receptions at steps ``tau`` and ``tau + s``
(``s >= 1``) with offsets ``m1`` and ``m2`` are the same item iff
``m1 - m2 == s``; for a pattern of period ``n`` this becomes the purely
combinatorial test of :func:`is_legal_pattern`.

**Send non-interference** requires an uppercase holder (busy sending for
``r`` consecutive steps) not to be handed another uppercase meanwhile; for
the standard one-uppercase block this holds automatically, and
:func:`is_legal_general_pattern` checks it for the mixed patterns used by
the ``L = 2`` constructions.

Lemma 3.1's key word family (letters written as offsets, ``a=0, b=1,
c=2``) is ``F1(p, q) = a^{L-2} (ca)^p b^q``, the normal form the Section
3.3 induction appends ``b`` to.  (The published text lists further
families, but its typography is ambiguous and the literal readings fail
the legality check, so the solvers pair F1 with exhaustive enumeration
instead.)  Every family word is re-verified by :func:`is_legal_word` at
generation time, so a misremembered family fails loudly rather than
corrupting a schedule.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterator, Sequence

import networkx as nx

from repro.core.continuous.relative import letter_name, uppercase_offset

__all__ = [
    "is_legal_pattern",
    "is_legal_word",
    "is_legal_general_pattern",
    "family_f1",
    "family_words",
    "enumerate_legal_words",
    "word_automaton",
    "word_to_str",
]

Word = tuple[int, ...]


def is_legal_pattern(pattern: Sequence[int]) -> bool:
    """Correctness check for a cyclic reception pattern of offsets.

    ``pattern[j]`` is the offset received at phases ``j (mod n)``.  The
    pattern is legal iff no two receptions ever name the same item:
    for all phases ``j1, j2`` the difference ``pattern[j1] - pattern[j2]``
    must not be a positive integer congruent to ``j2 - j1`` modulo ``n``.
    """
    n = len(pattern)
    if n == 0:
        return True
    for j1 in range(n):
        for j2 in range(n):
            diff = pattern[j1] - pattern[j2]
            if diff >= 1 and (j2 - j1) % n == diff % n:
                return False
    return True


def is_legal_word(r: int, word: Sequence[int], L: int) -> bool:
    """Check a lowercase word of length ``r - 1`` for a standard block of
    size ``r`` (uppercase ``R_r`` at phase 0)."""
    if len(word) != r - 1:
        return False
    if any(not 0 <= m < L for m in word):
        return False
    return is_legal_pattern((uppercase_offset(r, L), *word))


def is_legal_general_pattern(
    entries: Sequence[tuple[int, int]],
) -> bool:
    """Check a mixed pattern of ``(offset, out_degree)`` entries.

    ``out_degree == 0`` marks a leaf reception.  Verifies correctness
    (offset injectivity) *and* send non-interference: an entry with degree
    ``r`` occupies the processor's send port for ``r`` consecutive steps,
    so the next internal-node reception (cyclically) must be at least ``r``
    phases away, and ``r`` must not exceed the period.
    """
    offsets = [m for m, _r in entries]
    if not is_legal_pattern(offsets):
        return False
    n = len(entries)
    internal_phases = [(j, r) for j, (_m, r) in enumerate(entries) if r > 0]
    for j, r in internal_phases:
        if r > n:
            return False
        for j2, _r2 in internal_phases:
            gap = (j2 - j - 1) % n + 1  # smallest positive phase distance
            if (j2, _r2) == (j, r):
                gap = n
            if gap < r and (j2 != j):
                return False
    return True


def _checked(r: int, word: Word, L: int) -> Word:
    if not is_legal_word(r, word, L):
        raise AssertionError(
            f"family produced illegal word {word_to_str(word)} for r={r}, L={L}"
        )
    return word


def family_f1(r: int, L: int) -> Iterator[Word]:
    """All ``a^{L-2}(ca)^p b^q`` words of length exactly ``r - 1``."""
    base = L - 2
    length = r - 1
    if length < base:
        return
    for p in range((length - base) // 2 + 1):
        q = length - base - 2 * p
        word = (0,) * base + (2, 0) * p + (1,) * q
        yield _checked(r, word, L)


def family_words(r: int, L: int) -> list[Word]:
    """All Lemma-3.1 family-F1 words for a block of size ``r``.

    The paper's other families could not be reconstructed unambiguously
    from the published text (our legality checker refutes the literal
    readings), so the solvers pair F1 — whose role in the Section 3.3
    induction is essential and machine-verified — with exhaustive
    enumeration for the remaining blocks.
    """
    return list(family_f1(r, L))


def enumerate_legal_words(
    r: int,
    L: int,
    census: Counter | None = None,
    limit: int | None = None,
) -> list[Word]:
    """Exhaustively enumerate legal words of length ``r - 1``.

    Optionally restricted to words whose letter multiset fits within
    ``census``.  Exponential in ``r``; intended for ``r - 1 <= ~8`` (the
    DFS solver's fallback) and for validating the automaton construction.
    """
    upper = uppercase_offset(r, L)
    results: list[Word] = []

    def extend(prefix: list[int], remaining: Counter | None) -> None:
        if limit is not None and len(results) >= limit:
            return
        if len(prefix) == r - 1:
            results.append(tuple(prefix))
            return
        for m in range(L):
            if remaining is not None and remaining[m] <= 0:
                continue
            prefix.append(m)
            # incremental legality: check full cyclic pattern only at the
            # end is wasteful; the partial linear check prunes most branches
            if _partial_ok(upper, prefix):
                if remaining is not None:
                    remaining[m] -= 1
                extend(prefix, remaining)
                if remaining is not None:
                    remaining[m] += 1
            prefix.pop()

    def _partial_ok(upper_offset: int, word: list[int]) -> bool:
        pattern = [upper_offset, *word]
        n = r  # final period; partial entries occupy phases 0..len(word)
        for j1 in range(len(pattern)):
            for j2 in range(len(pattern)):
                diff = pattern[j1] - pattern[j2]
                if diff >= 1 and (j2 - j1) % n == diff % n:
                    return False
        return True

    extend([], Counter(census) if census is not None else None)
    return [w for w in results if is_legal_word(r, w, L)]


def word_automaton(L: int) -> nx.DiGraph:
    """The automaton of legal letter adjacencies (Figure 2, bottom-left).

    States are windows of ``L - 1`` consecutive lowercase offsets that are
    internally collision-free; an edge ``u -> v`` exists when ``u``'s tail
    equals ``v``'s head and appending ``v``'s last letter keeps the window
    collision-free.  Closed walks of length ``r`` through the automaton
    correspond to the cyclically-legal lowercase cores of words (the
    paper's three-step recipe).  Start states (the paper's double circles)
    are marked with the ``start`` node attribute: windows that may follow
    the uppercase letter, i.e. remain legal when the window is preceded by
    an uppercase reception.
    """
    if L < 2:
        raise ValueError("the automaton needs L >= 2")
    window = L - 1

    def window_ok(win: tuple[int, ...]) -> bool:
        for i in range(len(win)):
            for j in range(i + 1, len(win)):
                if win[i] - win[j] == j - i:
                    return False
        return True

    def start_ok(win: tuple[int, ...]) -> bool:
        # Within a window of width L-1, the uppercase letter R_r behaves
        # exactly like the top lowercase letter (offset L-1): a letter m
        # at distance s <= L-1 after the uppercase collides iff
        # s ≡ (r + L - 1) - m (mod r), whose only representative in
        # [1, L-1] for r >= L is s = L - 1 - m — the same rule as for the
        # letter L-1.  The paper's start states (double circles) are thus
        # the windows that BEGIN with the top letter: the walk's first
        # letter stands in for the uppercase duty.
        return win[0] == L - 1

    graph = nx.DiGraph()
    states = [
        win
        for win in _all_windows(L, window)
        if window_ok(win)
    ]
    for win in states:
        graph.add_node(win, start=start_ok(win), label="".join(letter_name(m, L) for m in win))
    for u in states:
        for m in range(L):
            v = u[1:] + (m,)
            if v in graph and window_ok(u + (m,)):
                graph.add_edge(u, v)
    return graph


def _all_windows(L: int, width: int) -> Iterator[tuple[int, ...]]:
    if width == 0:
        yield ()
        return
    for rest in _all_windows(L, width - 1):
        for m in range(L):
            yield (m, *rest)


def words_from_automaton(r: int, L: int) -> set[Word]:
    """The paper's three-step recipe (Figure 2c) for legal words.

    "Start at one of the start states … follow a directed path with ``r``
    edges that ends in the same state.  This yields a word of length
    ``r + 2``, including the two letters of the start state.  Delete the
    first letter and the last two letters of this word to obtain a word
    of length ``r - 1``."

    Implemented over the window automaton of :func:`word_automaton`
    (window width ``L - 1``; the recipe as printed is for ``L = 3``).
    The test suite cross-validates the produced set against the exact
    enumerator — agreement for ``L = 3`` confirms the automaton encodes
    precisely the correctness constraints the paper derives.
    """
    if L != 3:
        raise ValueError(
            "the paper's printed recipe is specific to the L=3 automaton"
        )
    auto = word_automaton(L)
    results: set[Word] = set()

    def walks(state, remaining: int, path: list[int]) -> Iterator[list[int]]:
        if remaining == 0:
            yield path
            return
        for _u, v in auto.out_edges(state):
            yield from walks(v, remaining - 1, path + [v[-1]])

    for start, data in auto.nodes(data=True):
        if not data["start"]:
            continue
        for walk in walks(start, r, list(start)):
            # cyclically closed: the path's final window is again a start
            # window whose second letter matches the word's first letter
            # (the deleted first/last letters are the uppercase, which the
            # automaton represents by the top letter)
            if tuple(walk[-2:]) != start:
                continue
            word = tuple(walk[1 : 1 + (r - 1)])  # drop first, last two
            if len(word) == r - 1:
                results.add(word)
    return results


def word_to_str(word: Sequence[int]) -> str:
    """Render a word of offsets as letters, e.g. ``(0,2,0,1) -> 'acab'``."""
    return "".join(chr(ord("a") + m) for m in word)
