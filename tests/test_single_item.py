"""Tests for optimal single-item broadcast (Section 2, Theorem 2.1)."""

import pytest

from repro.core.fib import broadcast_time
from repro.core.single_item import (
    optimal_broadcast_schedule,
    optimal_broadcast_time,
    schedule_from_tree,
)
from repro.core.tree import optimal_tree
from repro.params import LogPParams, postal
from repro.schedule.analysis import broadcast_delay_per_proc
from tests.conftest import assert_broadcast_complete


class TestOptimalSchedule:
    def test_fig1_completion(self, fig1_params):
        delays = assert_broadcast_complete(
            optimal_broadcast_schedule(fig1_params), P=8
        )
        assert max(delays.values()) == 24
        assert sorted(delays.values()) == [0, 10, 14, 18, 20, 22, 24, 24]

    @pytest.mark.parametrize("params", [
        postal(P=2, L=1),
        postal(P=9, L=3),
        postal(P=41, L=3),
        LogPParams(P=8, L=6, o=2, g=4),
        LogPParams(P=16, L=4, o=1, g=2),
        LogPParams(P=25, L=2, o=0, g=3),
    ])
    def test_completion_equals_B(self, params):
        delays = assert_broadcast_complete(
            optimal_broadcast_schedule(params), P=params.P
        )
        assert max(delays.values()) == broadcast_time(params.P, params)

    def test_every_proc_receives_once(self):
        params = postal(P=20, L=3)
        schedule = optimal_broadcast_schedule(params)
        targets = [op.dst for op in schedule.sends]
        assert sorted(targets) == list(range(1, 20))

    def test_delays_match_tree_labels(self):
        params = LogPParams(P=12, L=5, o=1, g=3)
        tree = optimal_tree(params)
        schedule = optimal_broadcast_schedule(params)
        delays = broadcast_delay_per_proc(schedule)
        for node in tree.nodes:
            assert delays[node.index] == node.delay

    def test_single_proc_empty(self):
        schedule = optimal_broadcast_schedule(postal(P=1, L=3))
        assert len(schedule) == 0

    def test_optimal_time_helper(self, fig1_params):
        assert optimal_broadcast_time(fig1_params) == 24


class TestScheduleFromTree:
    def test_start_time_shift(self):
        params = postal(P=4, L=2)
        tree = optimal_tree(params)
        shifted = schedule_from_tree(tree, start_time=10)
        delays = broadcast_delay_per_proc(shifted)
        base = broadcast_delay_per_proc(schedule_from_tree(tree))
        assert {p: d - 10 for p, d in delays.items() if p != 0} == {
            p: d for p, d in base.items() if p != 0
        }

    def test_proc_map(self):
        params = postal(P=4, L=2)
        tree = optimal_tree(params)
        mapping = {0: 3, 1: 2, 2: 1, 3: 0}
        schedule = schedule_from_tree(tree, proc_map=mapping)
        delays = broadcast_delay_per_proc(schedule)
        assert delays[3] == 0  # the root is now processor 3

    def test_custom_item_label(self):
        params = postal(P=3, L=2)
        schedule = schedule_from_tree(optimal_tree(params), item="msg")
        assert all(op.item == "msg" for op in schedule.sends)
