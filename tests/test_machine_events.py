"""Event-driven machine regression: corpus replay + engine equivalence.

``tests/data/machine_corpus.json`` was captured from the per-cycle
machine *before* the event-driven rewrite.  The rewritten
:meth:`Machine.run` must reproduce every realized schedule in the corpus
byte-for-byte (same sends, same order, same initial placement), and must
agree with the retained cycle-stepped reference engine
(:meth:`Machine._run_cycle_stepped`) on fuzzed programs.
"""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.params import LogPParams, postal
from repro.sim.machine import Machine, replay

CORPUS = Path(__file__).parent / "data" / "machine_corpus.json"


class Flood:
    def on_start(self, ctx):
        if ctx.has(0):
            for dst in range(ctx.params.P):
                if dst != ctx.proc:
                    ctx.send(dst, 0)

    def on_receive(self, ctx, item, src):
        pass


class GreedyRelay:
    def on_start(self, ctx):
        if ctx.has(0):
            self._relay(ctx)

    def on_receive(self, ctx, item, src):
        self._relay(ctx)

    def _relay(self, ctx):
        for dst in range(ctx.proc + 1, ctx.params.P):
            ctx.send(dst, 0)


class Ring:
    def __init__(self, nxt):
        self.nxt = nxt

    def on_start(self, ctx):
        if ctx.has("token") and self.nxt is not None:
            ctx.send(self.nxt, "token")

    def on_receive(self, ctx, item, src):
        if self.nxt is not None:
            ctx.send(self.nxt, item)


class MultiSender:
    def on_start(self, ctx):
        for item in ("a", "b", "c"):
            if ctx.has(item):
                ctx.send(1, item)

    def on_receive(self, ctx, item, src):
        pass


class AllToAll:
    def on_start(self, ctx):
        P = ctx.params.P
        for d in range(1, P):
            ctx.send((ctx.proc + d) % P, ("a2a", ctx.proc))

    def on_receive(self, ctx, item, src):
        pass


def _case_machine(name: str, params: LogPParams) -> Machine:
    """Rebuild the exact (program, initial) setup each corpus case used."""
    P = params.P
    if name.startswith("flood"):
        return Machine(params, {0: Flood()})
    if name.startswith("greedy"):
        return Machine(params, {p: GreedyRelay() for p in range(P)})
    if name.startswith("ring"):
        programs = {p: Ring((p + 1) % P if p != P - 1 else None) for p in range(P)}
        return Machine(params, programs, initial={0: {"token"}})
    if name.startswith("multisender"):
        return Machine(params, {0: MultiSender()}, initial={0: {"a", "b", "c"}})
    if name.startswith("alltoall"):
        return Machine(
            params,
            {p: AllToAll() for p in range(P)},
            initial={p: {("a2a", p)} for p in range(P)},
        )
    raise KeyError(name)


def _load_corpus():
    return json.loads(CORPUS.read_text())


@pytest.mark.parametrize("case", _load_corpus(), ids=lambda c: c["name"])
def test_corpus_reproduced_byte_identically(case):
    params = LogPParams(*case["params"])
    for engine in ("run", "_run_cycle_stepped"):
        machine = _case_machine(case["name"], params)
        schedule = getattr(machine, engine)()
        got = [[op.time, op.src, op.dst, repr(op.item)] for op in schedule.sends]
        assert got == case["sends"], f"{case['name']} diverged under {engine}"
        got_initial = {
            str(p): sorted(map(repr, items)) for p, items in schedule.initial.items()
        }
        assert got_initial == case["initial"]
        replay(schedule)  # every corpus schedule is strictly legal


def test_corpus_covers_the_interesting_regimes():
    names = [c["name"] for c in _load_corpus()]
    assert len(names) == 8
    assert any("o2" in n for n in names)  # nonzero overhead
    assert any("postal" in n for n in names)  # o=0 double-drain path
    assert any("g3" in n for n in names)  # g > 1 send-gap retries


@st.composite
def _fuzz_setup(draw):
    g = draw(st.integers(1, 4))
    params = LogPParams(
        P=draw(st.integers(2, 8)),
        L=draw(st.integers(1, 6)),
        o=draw(st.integers(0, min(3, g))),
        g=g,
    )
    kind = draw(st.sampled_from(["flood", "greedy", "alltoall", "ring"]))
    return params, kind


def _build(params: LogPParams, kind: str) -> Machine:
    P = params.P
    if kind == "flood":
        return Machine(params, {0: Flood()})
    if kind == "greedy":
        return Machine(params, {p: GreedyRelay() for p in range(P)})
    if kind == "ring":
        programs = {p: Ring((p + 1) % P if p != P - 1 else None) for p in range(P)}
        return Machine(params, programs, initial={0: {"token"}})
    return Machine(
        params,
        {p: AllToAll() for p in range(P)},
        initial={p: {("a2a", p)} for p in range(P)},
    )


class TestEngineEquivalence:
    @given(setup=_fuzz_setup())
    @settings(max_examples=80, deadline=None)
    def test_event_engine_matches_cycle_stepped(self, setup):
        params, kind = setup
        fast = _build(params, kind).run()
        slow = _build(params, kind)._run_cycle_stepped()
        assert fast.sends == slow.sends
        assert fast.initial == slow.initial
        replay(fast)

    @given(setup=_fuzz_setup())
    @settings(max_examples=30, deadline=None)
    def test_rerun_is_deterministic(self, setup):
        params, kind = setup
        assert _build(params, kind).run().sends == _build(params, kind).run().sends


class TestEventSkipping:
    def test_long_latency_chain_is_cheap(self):
        # L=5000 means ~20k idle cycles for a 4-hop chain; the event
        # engine must not iterate them (guarded via a tiny max_cycles
        # budget that a per-cycle scan could never have survived)
        P = 5
        params = postal(P=P, L=5000)
        programs = {p: Ring((p + 1) % P if p != P - 1 else None) for p in range(P)}
        machine = Machine(params, programs, initial={0: {"token"}},
                          max_cycles=10**9)
        schedule = machine.run()
        assert len(schedule.sends) == P - 1
        assert max(op.time for op in schedule.sends) == (P - 2) * 5000
