"""Tests for relative addressing and the per-step multiset (Section 3.2)."""

import pytest

from repro.core.continuous.relative import (
    Instance,
    delay_of_offset,
    instance_for,
    letter_name,
    offset_of_delay,
    step_multiset,
    uppercase_offset,
)
from repro.core.fib import reachable_postal


class TestAddressing:
    def test_offset_delay_roundtrip(self):
        for t in (5, 7, 10):
            for d in range(t + 1):
                assert delay_of_offset(offset_of_delay(d, t), t) == d

    def test_uppercase_offsets_match_paper(self):
        # L=3: H5 has offset 7, E2 offset 4, D1 offset 3
        assert uppercase_offset(5, 3) == 7
        assert uppercase_offset(2, 3) == 4
        assert uppercase_offset(1, 3) == 3

    def test_letter_names(self):
        assert letter_name(0, 3) == "a"
        assert letter_name(2, 3) == "c"
        assert letter_name(7, 3) == "H5"
        assert letter_name(4, 3) == "E2"
        assert letter_name(3, 3) == "D1"


class TestStepMultiset:
    def test_paper_s7(self):
        # S7 = {a, a, a, b, b, c, D1, E2, H5}
        s = step_multiset(7, 3)
        assert s.letters() == ["a", "a", "a", "b", "b", "c", "D1", "E2", "H5"]

    def test_total_equals_processors(self):
        for L in (2, 3, 4):
            for t in range(L, 12):
                s = step_multiset(t, L)
                assert s.total == reachable_postal(t, L)

    def test_leaf_offsets_below_L(self):
        s = step_multiset(9, 4)
        assert all(0 <= m < 4 for m in s.leaves)


class TestInstance:
    def test_fig2_instance(self):
        inst = instance_for(7, 3)
        assert dict(inst.block_sizes) == {5: 1, 2: 1, 1: 1}
        assert dict(inst.letter_census) == {0: 3, 1: 2, 2: 1}
        assert inst.P_minus_1 == 9

    def test_budget_matches_census(self):
        for L in (2, 3, 4, 5):
            for t in range(L, 14):
                inst = instance_for(t, L)
                assert inst.consistent()

    def test_word_budget_formula(self):
        inst = instance_for(7, 3)
        # sum (r-1) over blocks + 1 = 4 + 1 + 0 + 1 = 6 letters
        assert inst.word_budget() == 6
