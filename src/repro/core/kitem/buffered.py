"""k-item broadcast on the buffered (modified) model (Theorem 3.8, Fig 5).

Section 3.5 modifies the postal model: each processor has an input
*buffer* holding items that arrived (were sent >= ``L`` steps earlier)
but have not yet been *received*; one item may be received per step, and
the processor may choose which.  Under this model the single-sending
lower bound ``B(P-1) + L + k - 1`` is achievable, with buffers never
holding more than 2 items.

Construction (following the paper's sketch): item ``i`` leaves the source
at step ``i`` and is relayed along the optimal ``t``-step tree
(``t = B(P-1)``, ``P - 1 = P(t)``).  Processors are grouped into the
r-blocks of Section 3.4; the member ``p_{i mod r}`` of each block takes
the *active* (internal-node) reception of item ``i`` and performs the
node's ``r`` consecutive sends.  Leaf (inactive) copies are directed to
the processors that still need the item; an inactive item landing in the
same step as an active one is *delayed* — it waits in the buffer until a
step with no active arrival (the paper's circled/boxed entries in
Figure 5).

The destination of each leaf send is chosen greedily (fewest buffered
items, then least-loaded); the result is machine-checked by
:meth:`BufferedSchedule.validate`: unique receptions, one reception per
processor per step, receive-after-arrival, buffer occupancy <= 2, and
completion exactly ``B + L + k - 1``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.fib import broadcast_time_postal, reachable_postal
from repro.core.kitem.bounds import single_sending_lower_bound
from repro.core.tree import tree_for_time
from repro.params import postal
from repro.schedule.ops import SendOp

__all__ = ["BufferedSchedule", "buffered_schedule"]


@dataclass
class BufferedSchedule:
    """A k-item broadcast execution on the buffered model."""

    P: int
    L: int
    t: int
    k: int
    sends: list[SendOp]
    # (proc, item) -> (arrival step, reception step, active?)
    receptions: dict[tuple[int, int], tuple[int, int, bool]]
    buffer_peak: int

    @property
    def completion(self) -> int:
        return max(recv for _a, recv, _act in self.receptions.values())

    @property
    def bound(self) -> int:
        """The single-sending lower bound this schedule achieves."""
        return single_sending_lower_bound(self.P, self.L, self.k)

    def delayed_items(self) -> list[tuple[int, int]]:
        """(proc, item) pairs whose reception was delayed by buffering
        (Figure 5's boxed entries)."""
        return sorted(
            key
            for key, (arrival, recv, active) in self.receptions.items()
            if not active and recv > arrival
        )

    def validate(self) -> None:
        procs = range(1, self.P)
        for p in procs:
            for item in range(self.k):
                if (p, item) not in self.receptions:
                    raise ValueError(f"proc {p} never receives item {item}")
        by_step: dict[tuple[int, int], int] = defaultdict(int)
        for (p, _item), (arrival, recv, _active) in self.receptions.items():
            if recv < arrival:
                raise ValueError(f"proc {p} receives before arrival")
            by_step[(p, recv)] += 1
        if any(count > 1 for count in by_step.values()):
            raise ValueError("a processor receives two items in one step")
        if self.buffer_peak > 2:
            raise ValueError(f"buffer occupancy reached {self.buffer_peak} (> 2)")
        if self.completion > self.bound:
            raise ValueError(
                f"completion {self.completion} exceeds bound {self.bound}"
            )
        sent_by_source = [op for op in self.sends if op.src == 0]
        if sorted(op.item for op in sent_by_source) != list(range(self.k)):
            raise ValueError("source is not single-sending")


def buffered_schedule(
    k: int, t: int, L: int, dest_strategy: str = "greedy"
) -> BufferedSchedule:
    """Build the Theorem 3.8 schedule for ``P - 1 = P(t)`` processors.

    Achieves completion ``B(P-1) + L + k - 1`` with input buffers of size
    at most 2 (validated).  ``dest_strategy`` picks how leaf (inactive)
    copies choose their receiver:

    * ``"greedy"`` (default) — avoid processors actively receiving at the
      arrival step, then lightest inactive load (the ablation shows this
      is what keeps buffers at <= 1);
    * ``"round_robin"`` — naive rotation; still correct but buffers and
      per-item delays grow (used by the ablation benchmark).
    """
    tree = tree_for_time(t, postal(P=1, L=L))
    n = len(tree)  # P - 1
    P = n + 1

    # --- block layout ----------------------------------------------------
    internal = sorted(
        tree.internal_nodes(), key=lambda nd: (-nd.out_degree, nd.delay, nd.index)
    )
    proc_of_block: list[list[int]] = []
    next_proc = 1
    for node in internal:
        proc_of_block.append(list(range(next_proc, next_proc + node.out_degree)))
        next_proc += node.out_degree
    receive_only = next_proc
    assert receive_only == P - 1

    duty_holder: dict[tuple[int, int], int] = {}  # (item, node index) -> proc
    duty_steps: dict[int, set[int]] = defaultdict(set)  # proc -> active steps
    for b, node in enumerate(internal):
        r = node.out_degree
        procs = proc_of_block[b]
        for item in range(k):
            holder = procs[(L + item + node.delay) % r]
            duty_holder[(item, node.index)] = holder
            duty_steps[holder].add(L + item + node.delay)

    # --- emit sends, choosing leaf destinations greedily -----------------
    sends: list[SendOp] = []
    # arrivals[(step)] -> list of (proc, item, active)
    arrivals: list[tuple[int, int, int, bool]] = []  # (step, proc, item, active)
    assigned: dict[int, set[int]] = defaultdict(set)  # item -> procs covered
    inactive_load: dict[int, int] = defaultdict(int)

    leaf_events: list[tuple[int, int, int, int]] = []  # (arrival, item, src, rank)
    for item in range(k):
        for node in tree.nodes:
            parent = node.parent
            if parent is None:
                root_proc = duty_holder[(item, node.index)]
                sends.append(SendOp(time=item, src=0, dst=root_proc, item=item))
                arrivals.append((item + L, root_proc, item, True))
                assigned[item].add(root_proc)
                continue
            pnode = tree.nodes[parent]
            rank = pnode.children.index(node.index)
            src = duty_holder[(item, parent)]
            send_time = L + item + pnode.delay + rank
            if node.children:
                dst = duty_holder[(item, node.index)]
                sends.append(SendOp(time=send_time, src=src, dst=dst, item=item))
                arrivals.append((send_time + L, dst, item, True))
                assigned[item].add(dst)
            else:
                leaf_events.append((send_time + L, item, src, send_time))

    # leaf destinations: per arrival step, pick the neediest free processor
    leaf_events.sort()
    rotation = [0]
    for arrival, item, src, send_time in leaf_events:
        candidates = [
            p
            for p in range(1, P)
            if p not in assigned[item]
        ]
        if not candidates:
            raise AssertionError(f"no receiver left for item {item}")
        if dest_strategy == "round_robin":
            dst = candidates[rotation[0] % len(candidates)]
            rotation[0] += 1
        elif dest_strategy == "greedy":
            # prefer processors not actively receiving at this step, with
            # the lightest inactive load so buffers stay shallow
            dst = min(
                candidates,
                key=lambda p: (
                    arrival in duty_steps[p],
                    inactive_load[p],
                    p,
                ),
            )
        else:
            raise ValueError(f"unknown dest_strategy {dest_strategy!r}")
        assigned[item].add(dst)
        inactive_load[dst] += 1
        sends.append(SendOp(time=send_time, src=src, dst=dst, item=item))
        arrivals.append((arrival, dst, item, False))

    # --- simulate buffered reception -------------------------------------
    arrivals.sort(key=lambda ev: (ev[0], ev[1], not ev[3], ev[2]))
    by_step: dict[int, list[tuple[int, int, bool]]] = defaultdict(list)
    horizon = 0
    for step, proc, item, active in arrivals:
        by_step[step].append((proc, item, active))
        horizon = max(horizon, step)

    buffers: dict[int, list[tuple[int, int]]] = defaultdict(list)  # proc -> [(arrival, item)]
    receptions: dict[tuple[int, int], tuple[int, int, bool]] = {}
    buffer_peak = 0
    step = 0
    while step <= horizon or any(buffers.values()):
        active_arrival: dict[int, tuple[int, int]] = {}
        for proc, item, active in by_step.get(step, ()):
            if active:
                active_arrival[proc] = (step, item)
            else:
                buffers[proc].append((step, item))
        for proc in set(buffers) | set(active_arrival):
            if proc in active_arrival:
                arrival, item = active_arrival[proc]
                receptions[(proc, item)] = (arrival, step, True)
            elif buffers.get(proc):
                arrival, item = buffers[proc].pop(0)
                receptions[(proc, item)] = (arrival, step, False)
        for buf in buffers.values():
            buffer_peak = max(buffer_peak, len(buf))
        step += 1
        if step > horizon + n * k + 10:  # pragma: no cover - safety net
            raise RuntimeError("buffered reception failed to drain")

    schedule = BufferedSchedule(
        P=P,
        L=L,
        t=t,
        k=k,
        sends=sorted(sends),
        receptions=receptions,
        buffer_peak=buffer_peak,
    )
    return schedule
