"""Analysis of schedules: availability, completion times, per-item delays.

These helpers are *descriptive* — they compute when items become available
under the IR's timing convention without judging legality.  Legality
checking lives in :mod:`repro.sim.validate`.

Large schedules are routed through the vectorized kernels in
:mod:`repro.schedule.analysis_np`; results are identical
(property-tested).  The objects-vs-numpy decision is owned by
:mod:`repro.dispatch` — pass ``backend="objects"``/``"numpy"`` to any
helper here to override the process-wide policy for one call.
"""

from __future__ import annotations

from typing import Hashable

from repro import dispatch as _dispatch
from repro.schedule import analysis_np as _np_kernels
from repro.schedule.ops import Schedule, SendOp

__all__ = [
    "availability",
    "completion_time",
    "item_completion_times",
    "item_delays",
    "max_delay",
    "broadcast_delay_per_proc",
]

Item = Hashable


def availability(
    schedule: Schedule, backend: str | None = None
) -> dict[tuple[int, Item], int]:
    """Map ``(proc, item) -> earliest cycle the item is available there``.

    Initial placements are available at time 0 (or at the item's creation
    time for source items); each send makes its item available at the
    destination at ``time + L + 2o``.  If an item reaches a processor more
    than once, the earliest arrival wins.
    """
    if schedule.machine is not None and not schedule.machine.is_flat:
        # per-edge arrivals live in the column view; the scalar loop
        # below prices every send with the flat params
        return _np_kernels.availability_np(schedule)
    if _dispatch.use_numpy(schedule.num_sends, override=backend):
        return _np_kernels.availability_np(schedule)
    avail: dict[tuple[int, Item], int] = {}
    for proc, items in schedule.initial.items():
        for item in items:
            created = schedule.item_creation_time(item)
            key = (proc, item)
            avail[key] = min(avail.get(key, created), created)
    for op in schedule.sends:
        arrival = op.arrival(schedule.params)
        key = (op.dst, op.item)
        if key not in avail or arrival < avail[key]:
            avail[key] = arrival
    return avail


def completion_time(schedule: Schedule, backend: str | None = None) -> int:
    """Cycle at which the last payload lands (0 for an empty schedule)."""
    if not schedule.num_sends:
        return 0
    if schedule.machine is not None and not schedule.machine.is_flat:
        return _np_kernels.completion_time_np(schedule.columns())
    if _dispatch.use_numpy(schedule.num_sends, override=backend):
        return _np_kernels.completion_time_np(schedule.columns())
    return max(op.arrival(schedule.params) for op in schedule.sends)


def item_completion_times(
    schedule: Schedule,
    procs: set[int] | None = None,
    backend: str | None = None,
) -> dict[Item, int]:
    """Map item -> cycle by which *every* processor in ``procs`` holds it.

    ``procs`` defaults to every processor mentioned by the schedule.
    Raises ``ValueError`` if some item never reaches some processor.
    """
    if procs is None:
        procs = schedule.processors()
    if _dispatch.use_numpy(schedule.num_sends, override=backend):
        return _np_kernels.item_completion_times_np(schedule, procs)
    avail = availability(schedule)
    out: dict[Item, int] = {}
    for item in schedule.items():
        worst = 0
        for proc in procs:
            when = avail.get((proc, item))
            if when is None:
                raise ValueError(f"item {item!r} never reaches processor {proc}")
            worst = max(worst, when)
        out[item] = worst
    return out


def item_delays(schedule: Schedule, procs: set[int] | None = None) -> dict[Item, int]:
    """Map item -> its *delay*: completion time minus creation time.

    This is the figure of merit of the continuous broadcast problem
    (Section 3.1 of the paper).
    """
    completion = item_completion_times(schedule, procs)
    return {
        item: done - schedule.item_creation_time(item)
        for item, done in completion.items()
    }


def max_delay(schedule: Schedule, procs: set[int] | None = None) -> int:
    """The maximum per-item delay (the continuous-broadcast objective)."""
    delays = item_delays(schedule, procs)
    return max(delays.values()) if delays else 0


def broadcast_delay_per_proc(
    schedule: Schedule, item: Item = 0, backend: str | None = None
) -> dict[int, int]:
    """For a single-item broadcast: map proc -> time it first holds ``item``."""
    if _dispatch.use_numpy(schedule.num_sends, override=backend):
        return _np_kernels.broadcast_delay_np(schedule, item)
    avail = availability(schedule)
    return {
        proc: when for (proc, it), when in avail.items() if it == item
    }
