"""The lint engine: run the rule registry over one schedule.

:func:`lint_schedule` is the single entry point — it builds a
:class:`~repro.analyze.context.LintContext` (one shared set of derived
arrays), runs every applicable rule from
:data:`~repro.analyze.rules.RULES`, and returns a
:class:`~repro.analyze.diagnostics.LintReport`.  No simulation happens:
every rule is a static property of the columnar IR, so linting a
schedule is orders of magnitude cheaper than replaying it.

Rule selection accepts both rule ids (``SCHED004``) and rule names
(``dead-send``); ``select`` restricts the sweep, ``ignore`` drops rules
from it.  Unknown ids raise immediately so typos cannot silently skip
checks.
"""

from __future__ import annotations

import time
from typing import Iterable

from repro.analyze.context import LintContext
from repro.analyze.diagnostics import Diagnostic, LintReport, Severity
from repro.analyze.rules import RULES, Rule
from repro.schedule.ops import Schedule

__all__ = ["lint_schedule", "assert_lint_clean", "resolve_rules"]


def resolve_rules(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Rule]:
    """Resolve id/name selections against the registry (order-preserving)."""
    by_key = {rule.id: rule for rule in RULES}
    by_key.update({rule.name: rule for rule in RULES})

    def lookup(key: str) -> Rule:
        try:
            return by_key[key]
        except KeyError:
            known = sorted({r.id for r in RULES} | {r.name for r in RULES})
            raise ValueError(
                f"unknown rule {key!r}; known rules: {known}"
            ) from None

    chosen = (
        list(RULES)
        if select is None
        else [lookup(key) for key in select]
    )
    if ignore:
        dropped = {lookup(key).id for key in ignore}
        chosen = [rule for rule in chosen if rule.id not in dropped]
    # registry order, deduplicated
    seen: set[str] = set()
    ordered = []
    for rule in RULES:
        if rule.id in {c.id for c in chosen} and rule.id not in seen:
            seen.add(rule.id)
            ordered.append(rule)
    return ordered


def lint_schedule(
    schedule: Schedule,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> LintReport:
    """Run the static rule sweep over ``schedule`` (no simulation).

    Consumes the schedule's cached :class:`ScheduleColumns` zero-copy —
    array-backed schedules are never materialized into ``SendOp``
    objects.  Returns the structured report; ``report.errors`` empty
    means the schedule passes every structural check the paper's
    theorems give us.
    """
    started = time.perf_counter()
    ctx = LintContext(schedule)
    diagnostics: list[Diagnostic] = []
    rules_run: list[str] = []
    totals: dict[str, int] = {}
    for rule in resolve_rules(select, ignore):
        if not rule.applies(ctx):
            continue
        emitted, total = rule.run(ctx)
        rules_run.append(rule.id)
        totals[rule.id] = total
        diagnostics.extend(emitted)
    diagnostics.sort(key=lambda d: (d.rule, d.sends or (-1,)))
    return LintReport(
        diagnostics=diagnostics,
        rules_run=rules_run,
        rule_totals=totals,
        num_sends=len(ctx),
        workload=ctx.workload,
        elapsed_s=time.perf_counter() - started,
    )


def assert_lint_clean(
    schedule: Schedule, severity: Severity = Severity.ERROR
) -> LintReport:
    """Lint and raise ``ValueError`` if anything at/above ``severity`` fired.

    The test-suite smoke helper: builders call this to assert their
    output is structurally sound without running the simulator.
    """
    report = lint_schedule(schedule)
    offending = report.at_least(severity)
    if offending:
        preview = "\n  ".join(d.message for d in offending[:10])
        more = (
            f"\n  ... and {len(offending) - 10} more"
            if len(offending) > 10
            else ""
        )
        raise ValueError(f"schedule fails lint:\n  {preview}{more}")
    return report
