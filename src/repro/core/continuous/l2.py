"""Continuous broadcast with ``L = 2`` (Theorems 3.4 and 3.5).

For ``L = 2`` the delay lower bound ``L + B(P-1)`` is *not* generally
achievable: with only two lowercase letters the correctness and
non-interference requirements contradict each other once ``t >= 7``
(Theorem 3.4).  :func:`block_cyclic_feasible` verifies this
computationally — the exact-cover search of
:mod:`repro.core.continuous.assignment` comes up empty.

Theorem 3.5 recovers a delay of ``L + B(P-1) + 1`` by *pruning* the
optimal tree for ``t + 1`` down to ``P(t)`` nodes — removing both leaf
children from every node with >= 4 children and from ``x`` of the 3-child
nodes, and the later leaf child from every 2-child node and ``y`` of the
1-child nodes — then solving the resulting generalized word-assignment
problem.  :func:`delay_plus_one_schedule` searches the ``(x, y)`` space,
solves the word problem in general (delay-based) form, and returns a
machine-checked :class:`~repro.core.continuous.schedule.GeneralAssignment`.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

from repro.core.continuous.assignment import solve_instance
from repro.core.continuous.relative import instance_for
from repro.core.continuous.schedule import GBlock, GeneralAssignment
from repro.core.continuous.general import solve_general_words
from repro.core.fib import reachable_postal
from repro.core.tree import BroadcastTree, TreeNode, tree_for_time
from repro.params import postal

__all__ = [
    "block_cyclic_feasible",
    "infeasible_range",
    "prune_tree",
    "delay_plus_one_assignment",
]

L2 = 2


def block_cyclic_feasible(t: int) -> bool:
    """Can a block-cyclic schedule achieve delay ``2 + t`` for ``L = 2``?

    Theorem 3.4 implies this fails for all ``t >= 7``; the search here is
    exhaustive over legal words, so ``False`` is a proof for the given
    ``t``.
    """
    return solve_instance(instance_for(t, L2)) is not None


def infeasible_range(t_max: int) -> list[int]:
    """All ``t <= t_max`` for which no block-cyclic optimum exists."""
    return [t for t in range(1, t_max + 1) if not block_cyclic_feasible(t)]


def _clone(tree: BroadcastTree) -> list[TreeNode]:
    return [
        TreeNode(
            index=n.index, delay=n.delay, parent=n.parent, children=list(n.children)
        )
        for n in tree.nodes
    ]


def prune_tree(T: int, x: int, y: int) -> BroadcastTree:
    """Prune the optimal ``T``-step tree (``L = 2``) per Theorem 3.5.

    Removes the two largest-delay (leaf) children from every node with
    >= 4 children and from the first ``x`` nodes with exactly 3 children;
    removes the largest-delay child from every 2-child node and from the
    first ``y`` 1-child nodes.  Children are always removed from the tail,
    so surviving children stay at consecutive delays — the property the
    block machinery needs for ``r`` consecutive sends.
    """
    full = tree_for_time(T, postal(P=1, L=L2))
    nodes = _clone(full)
    removed: set[int] = set()
    seen3 = seen1 = 0
    for node in nodes:
        degree = len(node.children)
        drop = 0
        if degree >= 4:
            drop = 2
        elif degree == 3:
            if seen3 < x:
                drop = 2
            seen3 += 1
        elif degree == 2:
            drop = 1
        elif degree == 1:
            if seen1 < y:
                drop = 1
            seen1 += 1
        for child in node.children[degree - drop:]:
            removed.add(child)
        del node.children[degree - drop:]
    if seen3 < x or seen1 < y:
        raise ValueError(f"not enough 3-child ({seen3}) or 1-child ({seen1}) nodes")
    survivors = [n for n in nodes if n.index not in removed]
    remap = {n.index: i for i, n in enumerate(survivors)}
    for i, node in enumerate(survivors):
        node.index = i
        node.parent = None if node.parent is None else remap[node.parent]
        node.children = [remap[c] for c in node.children]
    return BroadcastTree(postal(P=len(survivors), L=L2), survivors)


def delay_plus_one_assignment(t: int) -> GeneralAssignment | None:
    """Theorem 3.5: a continuous-broadcast assignment with delay
    ``2 + t + 1`` for ``P - 1 = P(t)`` processors, ``L = 2``.

    Searches the pruning parameters ``(x, y)`` and solves each candidate's
    word problem; returns the first assignment found (or ``None`` if the
    construction fails for this ``t`` — not observed for ``t >= 3``).
    """
    T = t + 1
    target = reachable_postal(t, L2)
    full = tree_for_time(T, postal(P=1, L=L2))
    degree_counts = Counter(n.out_degree for n in full.internal_nodes())
    c4plus = sum(c for d, c in degree_counts.items() if d >= 4)
    c3 = degree_counts.get(3, 0)
    c2 = degree_counts.get(2, 0)
    c1 = degree_counts.get(1, 0)
    must_remove = len(full) - target
    for x in range(c3 + 1):
        y = must_remove - 2 * c4plus - 2 * x - c2
        if not 0 <= y <= c1:
            continue
        pruned = prune_tree(T, x, y)
        assert len(pruned) == target
        assignment = solve_general_words(pruned, L2)
        if assignment is not None:
            return assignment
    return None
