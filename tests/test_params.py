"""Tests for the LogP parameter bundle."""

import math

import pytest

from repro.params import LogPParams, postal


class TestConstruction:
    def test_basic_fields(self):
        p = LogPParams(P=8, L=6, o=2, g=4)
        assert (p.P, p.L, p.o, p.g) == (8, 6, 2, 4)

    def test_defaults_are_postal(self):
        p = LogPParams(P=4, L=3)
        assert p.o == 0 and p.g == 1
        assert p.is_postal

    def test_postal_helper(self):
        p = postal(P=10, L=3)
        assert p == LogPParams(P=10, L=3, o=0, g=1)

    @pytest.mark.parametrize("field,value", [
        ("P", 0), ("P", -1), ("L", 0), ("o", -1), ("g", 0),
    ])
    def test_rejects_out_of_range(self, field, value):
        kwargs = dict(P=4, L=3, o=1, g=2)
        kwargs[field] = value
        with pytest.raises(ValueError):
            LogPParams(**kwargs)

    @pytest.mark.parametrize("field", ["P", "L", "o", "g"])
    def test_rejects_non_int(self, field):
        kwargs = dict(P=4, L=3, o=1, g=2)
        kwargs[field] = 2.5
        with pytest.raises(TypeError):
            LogPParams(**kwargs)

    def test_frozen(self):
        p = postal(P=4, L=2)
        with pytest.raises(AttributeError):
            p.P = 5


class TestDerived:
    def test_send_cost(self):
        assert LogPParams(P=8, L=6, o=2, g=4).send_cost == 10
        assert postal(P=4, L=3).send_cost == 3

    @pytest.mark.parametrize("L,g,expected", [(6, 4, 2), (3, 1, 3), (4, 4, 1), (5, 2, 3)])
    def test_capacity_is_ceil_L_over_g(self, L, g, expected):
        assert LogPParams(P=4, L=L, o=0, g=g).capacity == expected
        assert LogPParams(P=4, L=L, o=0, g=g).capacity == math.ceil(L / g)

    def test_to_postal_folds_overhead(self):
        p = LogPParams(P=8, L=6, o=2, g=2)
        q = p.to_postal()
        assert q.L == 10 and q.o == 0 and q.g == 1 and q.P == 8

    def test_rejects_overhead_dominated(self):
        with pytest.raises(ValueError, match="o must be <= g"):
            LogPParams(P=8, L=6, o=2, g=1)

    def test_with_processors(self):
        p = LogPParams(P=8, L=6, o=2, g=4)
        q = p.with_processors(16)
        assert q.P == 16 and (q.L, q.o, q.g) == (p.L, p.o, p.g)
        assert p.P == 8  # original untouched
