"""Experiment harness: figure regeneration and parameter sweeps."""
