"""Tests for combining broadcast and reduction (§4.2, Theorem 4.1)."""

import pytest

from repro.core.combining import (
    combining_time,
    reduction_schedule,
    simulate_combining,
)
from repro.core.fib import broadcast_time, fib
from repro.params import LogPParams, postal
from repro.schedule.analysis import availability
from repro.sim.machine import replay


class TestTheorem41:
    @pytest.mark.parametrize("L", [1, 2, 3, 4])
    def test_all_processors_complete(self, L):
        for T in range(L, L + 6):
            run = simulate_combining(T, L)
            assert run.P == fib(L, T)
            assert run.complete()

    @pytest.mark.parametrize("L", [1, 2, 3])
    def test_window_invariant(self, L):
        for T in range(L, L + 6):
            assert simulate_combining(T, L).theorem_41_invariant()

    def test_schedule_is_legal(self):
        run = simulate_combining(6, 3)
        replay(run.schedule)

    def test_combining_matches_all_to_one_time(self):
        # all-to-all combining takes no longer than all-to-one reduction:
        # T steps reach P(T) processors, exactly the broadcast bound
        for L in (1, 2, 3):
            for T in range(L, L + 5):
                P = fib(L, T)
                assert combining_time(P, L) <= T

    def test_rejects_T_below_L(self):
        with pytest.raises(ValueError):
            simulate_combining(1, 3)

    def test_factor_two_saving_vs_reduce_then_broadcast(self):
        # reduce-then-broadcast needs 2B(P); combining needs B(P)
        L = 3
        T = 8
        P = fib(L, T)
        assert combining_time(P, L) == T
        # so the saving is exactly 2x
        assert 2 * T > T


class TestReduction:
    def test_reversal_completes_at_B(self, fig1_params):
        s = reduction_schedule(fig1_params)
        replay(s)
        av = availability(s)
        root_done = max(t for (p, _i), t in av.items() if p == 0)
        assert root_done == broadcast_time(8, fig1_params)

    def test_root_receives_all_partials(self):
        params = postal(P=9, L=3)
        s = reduction_schedule(params)
        replay(s)
        av = availability(s)
        # every processor's contribution reaches processor 0 (directly or
        # folded; here messages carry the sender's id)
        senders = {op.src for op in s.sends}
        assert senders == set(range(1, 9))

    def test_each_proc_sends_once(self):
        params = postal(P=13, L=2)
        s = reduction_schedule(params)
        counts = {}
        for op in s.sends:
            counts[op.src] = counts.get(op.src, 0) + 1
        assert all(c == 1 for c in counts.values())
        assert len(counts) == 12


class TestKCombining:
    def test_rounds_all_valid(self):
        from repro.core.combining import simulate_k_combining

        runs = simulate_k_combining(6, 3, 4)
        assert len(runs) == 4
        for run in runs:
            assert run.complete() and run.theorem_41_invariant()

    def test_pipelined_time_formula(self):
        from repro.core.combining import k_combining_time

        # one round: exactly T
        assert k_combining_time(7, 3, 1) == 7
        # each extra round adds the send-phase length T-L+1
        assert k_combining_time(7, 3, 3) == 2 * (7 - 3 + 1) + 7

    def test_pipelining_beats_sequential(self):
        from repro.core.combining import k_combining_time

        T, L, k = 8, 3, 5
        assert k_combining_time(T, L, k) < k * T

    def test_composed_schedule_replays(self):
        from repro.core.combining import simulate_k_combining
        from repro.schedule.transform import concat

        runs = simulate_k_combining(5, 2, 3)
        combined = runs[0].schedule
        for run in runs[1:]:
            # items collide across rounds (same labels); relabel by shift
            from repro.schedule.ops import Schedule, SendOp

            relabeled = Schedule(
                params=run.schedule.params,
                sends=[
                    SendOp(op.time, op.src, op.dst, (id(run), *op.item))
                    for op in run.schedule.sends
                ],
                initial={
                    p: {(id(run), *i) for i in items}
                    for p, items in run.schedule.initial.items()
                },
            )
            combined = concat(combined, relabeled)
        replay(combined)
