"""Baseline summation strategies.

* **binary-tree reduction** — deal the operands evenly, sum locally,
  then combine up a balanced binary tree.  The workhorse of most
  reduction implementations; its capacity ``n(t)`` trails the optimal
  (time-reversed universal tree) plan because high tree levels idle
  while waiting for whole subtree rounds.
* **sequential** — one processor sums everything: ``n - 1`` cycles.

Capacities are expressed the same way as the optimal plan's
(:func:`repro.core.summation.capacity.summation_capacity`): the maximum
number of operands finishable within ``t`` cycles.
"""

from __future__ import annotations

from repro.params import LogPParams

__all__ = [
    "binary_reduction_capacity",
    "binary_reduction_time",
    "sequential_time",
]


def binary_reduction_time(n: int, params: LogPParams) -> int:
    """Completion time of binary-tree reduction of ``n`` operands.

    Phase 1: each processor sums ``ceil(n / P)`` local operands
    (``ceil(n/P) - 1`` cycles).  Phase 2: ``ceil(log2 P)`` rounds of
    recursive halving; each round costs one message (``L + 2o``) plus the
    one-cycle merge add.  Rounds cannot be pipelined — every survivor
    waits for its peer's full partial.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    P = min(params.P, n)
    local = -(-n // P) - 1
    rounds = 0
    while (1 << rounds) < P:
        rounds += 1
    return local + rounds * (params.send_cost + 1)


def binary_reduction_capacity(t: int, params: LogPParams) -> int:
    """Maximum ``n`` finishable in ``t`` cycles by binary-tree reduction."""
    lo, hi = 1, max(2, (t + 1) * params.P)
    while binary_reduction_time(hi, params) <= t:
        hi *= 2
    best = 0
    while lo <= hi:
        mid = (lo + hi) // 2
        if binary_reduction_time(mid, params) <= t:
            best = mid
            lo = mid + 1
        else:
            hi = mid - 1
    return best


def sequential_time(n: int) -> int:
    """One processor: ``n - 1`` addition cycles."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return n - 1
