"""Edge cases and cross-cutting invariants not covered elsewhere."""

import pytest

from repro import (
    LogPParams,
    broadcast_time,
    optimal_broadcast_schedule,
    postal,
    replay,
)
from repro.core.continuous.relative import instance_for
from repro.core.fib import kitem_items_by_deadline, kitem_lower_bound
from repro.core.summation.capacity import min_summation_time, summation_capacity
from repro.core.tree import optimal_tree, tree_for_time


class TestDegenerateMachines:
    def test_single_processor_everything_trivial(self):
        p = postal(P=1, L=3)
        assert broadcast_time(1, p) == 0
        assert len(optimal_broadcast_schedule(p)) == 0

    def test_two_processors(self):
        p = LogPParams(P=2, L=7, o=3, g=4)
        s = optimal_broadcast_schedule(p)
        replay(s)
        assert broadcast_time(2, p) == 7 + 6

    def test_minimum_latency(self):
        p = postal(P=16, L=1)
        s = optimal_broadcast_schedule(p)
        replay(s)
        assert broadcast_time(16, p) == 4  # doubling

    def test_huge_latency_small_P(self):
        p = postal(P=3, L=100)
        assert broadcast_time(3, p) == 101  # source sends twice, 0 and 1


class TestInstanceEdges:
    def test_t_below_L_single_node(self):
        inst = instance_for(2, 5)
        assert inst.P_minus_1 == 1
        assert sum(inst.block_sizes.values()) == 0

    def test_t_equals_L(self):
        # first nontrivial tree: root + one leaf
        inst = instance_for(5, 5)
        assert inst.P_minus_1 == 2
        assert dict(inst.block_sizes) == {1: 1}


class TestCountingEdges:
    def test_deadline_zero(self):
        assert kitem_items_by_deadline(10, 3, 0) == 0

    def test_one_item_needs_full_broadcast(self):
        for L in (1, 2, 3, 5):
            for P in (2, 5, 13):
                lb = kitem_lower_bound(P, L, 1)
                # the true single-item optimum B(P) is within the bound
                assert lb <= broadcast_time(P, postal(P=P, L=L))

    def test_lower_bound_monotone_in_k(self):
        vals = [kitem_lower_bound(10, 3, k) for k in range(1, 20)]
        assert vals == sorted(vals)


class TestSummationEdges:
    def test_capacity_with_tiny_budgets(self):
        p = postal(P=2, L=1)
        # t=1 can't even fit the child's send (latency L+1=2): infeasible
        with pytest.raises(ValueError):
            summation_capacity(1, p)
        # t=3: child sends at 1, root merges at 3; both chains contribute
        assert summation_capacity(3, p) >= 3

    def test_min_time_prefers_subsets(self):
        # adding processors must never hurt (the planner may ignore them)
        p_small = LogPParams(P=2, L=5, o=1, g=2)
        p_big = LogPParams(P=16, L=5, o=1, g=2)
        for n in (3, 10, 40):
            assert min_summation_time(n, p_big) <= min_summation_time(n, p_small)


class TestTreeUniqueness:
    def test_full_trees_are_deterministic(self):
        a = tree_for_time(9, postal(P=1, L=3))
        b = tree_for_time(9, postal(P=1, L=3))
        assert a.delays() == b.delays()
        assert [n.children for n in a.nodes] == [n.children for n in b.nodes]

    def test_optimal_tree_subset_of_universal(self):
        # every delay in B(P) appears in the full tree for its horizon
        p = postal(P=17, L=3)
        tree = optimal_tree(p)
        t = tree.completion_time
        full = tree_for_time(t, postal(P=1, L=3))
        from collections import Counter

        small = Counter(tree.delays())
        big = Counter(full.delays())
        assert all(small[d] <= big[d] for d in small)
