"""Tests for the LogP legality validator."""

import pytest

from repro.params import LogPParams, postal
from repro.schedule.ops import Schedule
from repro.sim.validate import (
    assert_valid,
    is_single_sending,
    single_reception_violations,
    violations,
)


def postal_sched(P=4, L=3) -> Schedule:
    return Schedule(params=postal(P=P, L=L))


class TestCausality:
    def test_sending_unheld_item(self):
        s = postal_sched()
        s.add(time=0, src=1, dst=2, item=0)  # proc 1 never holds item 0
        assert any("causality" in v for v in violations(s))

    def test_sending_before_arrival(self):
        s = postal_sched(L=5)
        s.add(time=0, src=0, dst=1, item=0)  # arrives at 5
        s.add(time=3, src=1, dst=2, item=0)  # too early
        assert any("causality" in v for v in violations(s))

    def test_forward_after_arrival_ok(self):
        s = postal_sched(L=5)
        s.add(time=0, src=0, dst=1, item=0)
        s.add(time=5, src=1, dst=2, item=0)
        assert violations(s) == []

    def test_self_send_rejected(self):
        s = postal_sched()
        s.add(time=0, src=0, dst=0, item=0)
        assert any("self-send" in v for v in violations(s))


class TestGaps:
    def test_send_gap_violation(self):
        p = LogPParams(P=4, L=3, o=0, g=2)
        s = Schedule(params=p)
        s.add(time=0, src=0, dst=1, item=0)
        s.add(time=1, src=0, dst=2, item=0)  # < g apart
        assert any("send gap" in v for v in violations(s))

    def test_receive_gap_violation(self):
        # two messages land at proc 2 in the same step
        s = Schedule(params=postal(P=3, L=3), initial={0: {0}, 1: {1}})
        s.add(time=0, src=0, dst=2, item=0)
        s.add(time=0, src=1, dst=2, item=1)
        assert any("receive gap" in v for v in violations(s))

    def test_gap_exactly_g_ok(self):
        p = LogPParams(P=4, L=3, o=0, g=2)
        s = Schedule(params=p)
        s.add(time=0, src=0, dst=1, item=0)
        s.add(time=2, src=0, dst=2, item=0)
        assert violations(s) == []


class TestOverhead:
    def test_send_recv_overlap_rejected(self):
        # proc 1 receives during [8, 10) (o=2, L=6) and tries to send at 9
        p = LogPParams(P=3, L=6, o=2, g=4)
        s = Schedule(params=p, initial={0: {0}, 1: {1}})
        s.add(time=0, src=0, dst=1, item=0)
        s.add(time=9, src=1, dst=2, item=1)
        assert any("overhead" in v for v in violations(s))

    def test_back_to_back_ok(self):
        p = LogPParams(P=3, L=6, o=2, g=4)
        s = Schedule(params=p, initial={0: {0}, 1: {1}})
        s.add(time=0, src=0, dst=1, item=0)
        s.add(time=10, src=1, dst=2, item=1)  # right after recv overhead ends
        assert violations(s) == []


class TestCapacity:
    def test_gap_respecting_pipeline_is_within_capacity(self):
        # the capacity bound ceil(L/g) is exactly what a g-spaced sender
        # produces, so a legal pipeline never trips it
        s = Schedule(params=postal(P=6, L=3))
        for i in range(4):
            s.add(time=i, src=0, dst=i + 1, item=0)
        assert violations(s) == []

    def test_burst_to_one_destination_over_capacity(self):
        # g=2 -> capacity ceil(4/2)=2, but three messages from proc 0 are
        # in transit simultaneously when sent 2 apart with L=8
        p = LogPParams(P=5, L=8, o=0, g=2)
        s = Schedule(params=p)
        s.add(time=0, src=0, dst=1, item=0)
        s.add(time=2, src=0, dst=2, item=0)
        s.add(time=4, src=0, dst=3, item=0)
        # in transit from proc 0 during [4, 8): three messages > capacity 4?
        # capacity = ceil(8/2) = 4 -> legal; shrink to L=3, g=2 (capacity 2)
        p2 = LogPParams(P=5, L=3, o=0, g=2)
        s2 = Schedule(params=p2)
        s2.add(time=0, src=0, dst=1, item=0)
        s2.add(time=1, src=0, dst=2, item=0)  # violates send gap AND capacity
        s2.add(time=2, src=0, dst=3, item=0)
        msgs = violations(s2)
        assert any("capacity" in v for v in msgs)

    def test_capacity_check_can_be_disabled(self):
        p2 = LogPParams(P=5, L=3, o=0, g=2)
        s2 = Schedule(params=p2)
        s2.add(time=0, src=0, dst=1, item=0)
        s2.add(time=1, src=0, dst=2, item=0)
        s2.add(time=2, src=0, dst=3, item=0)
        msgs = violations(s2, check_capacity=False)
        assert not any("capacity" in v for v in msgs)


class TestAssertValid:
    def test_raises_with_details(self):
        s = postal_sched()
        s.add(time=0, src=2, dst=1, item=0)
        with pytest.raises(ValueError, match="causality"):
            assert_valid(s)

    def test_passes_clean(self):
        s = postal_sched(L=2)
        s.add(time=0, src=0, dst=1, item=0)
        assert_valid(s)


class TestProblemSpecific:
    def test_duplicate_reception_flagged(self):
        s = postal_sched(L=2)
        s.add(time=0, src=0, dst=1, item=0)
        s.add(time=3, src=0, dst=1, item=0)
        assert len(single_reception_violations(s)) == 1

    def test_receiving_initial_item_flagged(self):
        s = Schedule(params=postal(P=2, L=2), initial={0: {0}, 1: {0}})
        s.add(time=0, src=0, dst=1, item=0)
        assert len(single_reception_violations(s)) == 1

    def test_single_sending_detection(self):
        s = Schedule(params=postal(P=3, L=1), initial={0: {0, 1}})
        s.add(time=0, src=0, dst=1, item=0)
        s.add(time=1, src=0, dst=2, item=1)
        assert is_single_sending(s)
        s.add(time=2, src=0, dst=2, item=0)
        assert not is_single_sending(s)

    def test_untransmitted_item_is_not_single_sending(self):
        # regression: source holds {0, 1} but only ever sends item 0 —
        # the old predicate vacuously returned True
        s = Schedule(params=postal(P=3, L=1), initial={0: {0, 1}})
        s.add(time=0, src=0, dst=1, item=0)
        assert not is_single_sending(s)

    def test_source_sending_nothing_is_not_single_sending(self):
        s = Schedule(params=postal(P=3, L=1), initial={0: {0}})
        assert not is_single_sending(s)

    def test_explicit_item_set_overrides_initial(self):
        # quantify over item 0 only: the untransmitted item 1 is excused
        s = Schedule(params=postal(P=3, L=1), initial={0: {0, 1}})
        s.add(time=0, src=0, dst=1, item=0)
        assert is_single_sending(s, items={0})
        assert not is_single_sending(s, items={0, 1})

    def test_duplicate_send_outside_item_set_still_rejected(self):
        s = Schedule(params=postal(P=4, L=1), initial={0: {0}})
        s.add(time=0, src=0, dst=1, item=0)
        s.add(time=1, src=0, dst=2, item=7)
        s.add(time=2, src=0, dst=3, item=7)  # item 7 sent twice
        assert not is_single_sending(s, items={0})

    def test_non_default_source(self):
        s = Schedule(params=postal(P=3, L=1), initial={1: {"x"}})
        s.add(time=0, src=1, dst=0, item="x")
        assert is_single_sending(s, source=1)
        assert not is_single_sending(s, source=2, items={"x"})
