"""FIG3: block transmission digraph, L=3, P-1 = P(11) = 41 (Figure 3).

Rebuilds the r-block decomposition and the endgame routing digraph of
Theorem 3.7; asserts the paper's vertex set (blocks 9,6,5,4,3,3,2,2,2,
1,1,1,1 plus the receive-only vertex) and flow conservation (inbound =
outbound = r at every block).
"""

from repro.experiments.figures import fig3_digraph


def test_fig3(benchmark):
    result = benchmark(fig3_digraph)
    m = result.measured
    assert m["P_minus_1"] == m["paper_P_minus_1"] == 41
    assert m["block_sizes"] == [9, 6, 5, 4, 3, 3, 2, 2, 2, 1, 1, 1, 1]
    assert m["flow_conserved"]
    print()
    print(result)
