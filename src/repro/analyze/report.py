"""Render lint reports: human text and SARIF-shaped JSON.

The text form is deliberately byte-stable (sorted diagnostics, fixed
field order, no timestamps) so the corpus tests in
``tests/test_lint_corpus.py`` can pin it across refactors.  The JSON
form follows the SARIF 2.1.0 shape (``runs[].tool.driver.rules`` +
``runs[].results``) closely enough for SARIF-aware viewers to ingest,
with send indices carried as logical locations — schedules have no
files or line numbers, so physical locations are omitted.
"""

from __future__ import annotations

import json
from typing import Any

from repro.analyze.diagnostics import LintReport, Severity
from repro.analyze.rules import RULES

__all__ = ["render_text", "to_sarif", "sarif_json"]


def render_text(report: LintReport, verbose: bool = False) -> str:
    """One line per diagnostic plus a summary (stable across runs)."""
    lines = [
        f"schedule-lint: {report.num_sends} sends, "
        f"workload={report.workload}, {len(report.rules_run)} rules run"
    ]
    for diag in report.diagnostics:
        lines.append(f"{diag.rule} {diag.severity.label}: {diag.message}")
        if verbose and diag.fixit:
            lines.append(f"    fix: {diag.fixit}")
    for rule_id in sorted(report.rule_totals):
        total = report.rule_totals[rule_id]
        emitted = sum(1 for d in report.diagnostics if d.rule == rule_id)
        if total > emitted:
            lines.append(
                f"{rule_id}: {total - emitted} further findings not shown "
                f"({total} total)"
            )
    errors = report.count(Severity.ERROR)
    warnings = report.count(Severity.WARNING)
    infos = report.count(Severity.INFO)
    lines.append(f"summary: {errors} errors, {warnings} warnings, {infos} info")
    return "\n".join(lines)


def to_sarif(report: LintReport) -> dict[str, Any]:
    """The report as a SARIF-2.1.0-shaped dict (see module docstring)."""
    ran = set(report.rules_run)
    rules_meta = [
        {
            "id": rule.id,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "defaultConfiguration": {"level": rule.severity.sarif_level},
        }
        for rule in RULES
        if rule.id in ran
    ]
    results = []
    for diag in report.diagnostics:
        result: dict[str, Any] = {
            "ruleId": diag.rule,
            "level": diag.severity.sarif_level,
            "message": {"text": diag.message},
            "locations": [
                {
                    "logicalLocations": [
                        {"name": f"send[{index}]", "index": index}
                    ]
                }
                for index in diag.sends
            ],
        }
        if diag.data:
            result["properties"] = diag.data
        if diag.fixit:
            result["fixes"] = [{"description": {"text": diag.fixit}}]
        results.append(result)
    return {
        "version": "2.1.0",
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-schedule-lint",
                        "informationUri": (
                            "https://doi.org/10.1145/165231.165250"
                        ),
                        "rules": rules_meta,
                    }
                },
                "results": results,
                "properties": {
                    "numSends": report.num_sends,
                    "workload": report.workload,
                    "rulesRun": report.rules_run,
                    "ruleTotals": report.rule_totals,
                },
            }
        ],
    }


def sarif_json(report: LintReport, indent: int | None = 2) -> str:
    """The SARIF dict serialized to JSON text."""
    return json.dumps(to_sarif(report), indent=indent, sort_keys=False)
