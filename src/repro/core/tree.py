"""The universal optimal broadcast tree (Definitions 2.3 and 2.4).

The universal tree ``B`` for parameters ``(L, o, g)`` is the infinite
labeled ordered tree whose root has label 0 and in which a node with label
``s`` has children labeled ``s + i*g + L + 2o`` for ``i >= 0``.  The label
of a node is the *delay* of the corresponding processor: the time at which
it first holds the datum.

``B(P)`` — built here by :func:`optimal_tree` — is the rooted subtree
consisting of the ``P`` nodes with smallest labels (ties broken
deterministically in favour of earlier-informed parents), and Theorem 2.1
states it is an optimal single-item broadcast: all informed processors
relay the datum as early and as often as possible.

:func:`tree_for_time` builds the *complete* subtree of all nodes with label
at most ``t`` (``P(t)`` nodes), which is the unique optimal tree used by the
continuous-broadcast machinery of Section 3.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterator

import networkx as nx

from repro.params import LogPParams

__all__ = ["TreeNode", "BroadcastTree", "optimal_tree", "tree_for_time"]


@dataclass(slots=True)
class TreeNode:
    """One node of a broadcast tree.

    ``index`` is the node's position in the tree's node list (root is 0);
    ``delay`` is its label (the time the corresponding processor is first
    informed); ``children`` are node indices ordered by increasing delay.
    """

    index: int
    delay: int
    parent: int | None
    children: list[int] = field(default_factory=list)

    @property
    def out_degree(self) -> int:
        return len(self.children)

    @property
    def is_leaf(self) -> bool:
        return not self.children


class BroadcastTree:
    """A finite subtree of the universal optimal broadcast tree.

    Nodes are held in creation order (root first, then by increasing
    delay).  The tree knows its LogP parameters so it can reason about
    send times: a node with delay ``d`` and ``r`` children starts its
    ``j``-th send (0-based) at time ``d + j*g``, which is received at
    ``d + j*g + L + 2o`` — precisely the child's delay.
    """

    def __init__(self, params: LogPParams, nodes: list[TreeNode]):
        if not nodes:
            raise ValueError("a broadcast tree needs at least a root node")
        if nodes[0].parent is not None or nodes[0].delay != 0:
            raise ValueError("node 0 must be the root with delay 0")
        self.params = params
        self.nodes = nodes

    # -- basic shape -----------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[TreeNode]:
        return iter(self.nodes)

    @property
    def P(self) -> int:
        """Number of processors in the tree (including the root)."""
        return len(self.nodes)

    @property
    def root(self) -> TreeNode:
        return self.nodes[0]

    @property
    def completion_time(self) -> int:
        """The broadcast's running time: the largest delay in the tree."""
        return max(node.delay for node in self.nodes)

    def delays(self) -> list[int]:
        """Delays of all nodes, in node order."""
        return [node.delay for node in self.nodes]

    def delay_census(self) -> dict[int, int]:
        """Map delay -> number of nodes informed exactly at that delay."""
        census: dict[int, int] = {}
        for node in self.nodes:
            census[node.delay] = census.get(node.delay, 0) + 1
        return census

    def out_degree_census(self) -> dict[int, int]:
        """Map out-degree -> number of nodes with that many children."""
        census: dict[int, int] = {}
        for node in self.nodes:
            census[node.out_degree] = census.get(node.out_degree, 0) + 1
        return census

    def internal_nodes(self) -> list[TreeNode]:
        return [node for node in self.nodes if node.children]

    def leaves(self) -> list[TreeNode]:
        return [node for node in self.nodes if not node.children]

    def nodes_at_delay(self, delay: int) -> list[TreeNode]:
        return [node for node in self.nodes if node.delay == delay]

    # -- structural checks -----------------------------------------------

    def validate(self) -> None:
        """Check internal consistency and the universal-tree labeling rule.

        Raises ``ValueError`` on the first violated invariant.
        """
        cost = self.params.send_cost
        g = self.params.g
        seen_children: set[int] = set()
        for node in self.nodes:
            for j, child_index in enumerate(node.children):
                child = self.nodes[child_index]
                if child.parent != node.index:
                    raise ValueError(
                        f"node {child_index} has parent {child.parent}, "
                        f"expected {node.index}"
                    )
                expected = node.delay + j * g + cost
                if child.delay != expected:
                    raise ValueError(
                        f"child {child_index} of node {node.index} has delay "
                        f"{child.delay}, expected {expected}"
                    )
                if child_index in seen_children:
                    raise ValueError(f"node {child_index} has two parents")
                seen_children.add(child_index)
        if len(seen_children) != len(self.nodes) - 1:
            raise ValueError("tree is not connected")

    # -- conversions -------------------------------------------------------

    def to_networkx(self) -> nx.DiGraph:
        """Export as a networkx DiGraph with ``delay`` node attributes."""
        graph = nx.DiGraph()
        for node in self.nodes:
            graph.add_node(node.index, delay=node.delay)
        for node in self.nodes:
            for child in node.children:
                graph.add_edge(node.index, child)
        return graph

    def parent_of(self, index: int) -> int | None:
        return self.nodes[index].parent

    def child_rank(self, index: int) -> int:
        """Position of node ``index`` among its parent's ordered children."""
        parent = self.nodes[index].parent
        if parent is None:
            raise ValueError("the root has no child rank")
        return self.nodes[parent].children.index(index)


def optimal_tree(params: LogPParams) -> BroadcastTree:
    """Build ``B(P)``: the optimal single-item broadcast tree (Thm 2.1).

    Greedy construction: maintain a min-heap of candidate child labels; the
    next processor is always attached at the smallest available label.  Ties
    are broken in favour of the earliest-created parent, which makes the
    construction deterministic (the paper breaks ties arbitrarily).
    """
    P = params.P
    cost = params.send_cost
    g = params.g
    nodes = [TreeNode(index=0, delay=0, parent=None)]
    # heap entries: (candidate delay, parent index, child slot)
    heap: list[tuple[int, int, int]] = [(cost, 0, 0)]
    while len(nodes) < P:
        delay, parent, slot = heapq.heappop(heap)
        index = len(nodes)
        nodes.append(TreeNode(index=index, delay=delay, parent=parent))
        nodes[parent].children.append(index)
        heapq.heappush(heap, (delay + g, parent, slot + 1))
        heapq.heappush(heap, (delay + cost, index, 0))
    return BroadcastTree(params, nodes)


def tree_for_time(t: int, params: LogPParams) -> BroadcastTree:
    """Build the complete optimal tree of all nodes with label <= ``t``.

    This is the unique optimal tree on ``P(t)`` processors; Section 3 uses
    it (in the postal model) as the per-item tree of continuous broadcast.
    The ``P`` field of ``params`` is ignored.
    """
    if t < 0:
        raise ValueError(f"t must be >= 0, got {t}")
    cost = params.send_cost
    g = params.g
    nodes = [TreeNode(index=0, delay=0, parent=None)]
    frontier = [0]
    while frontier:
        next_frontier: list[int] = []
        for parent in frontier:
            delay = nodes[parent].delay + cost
            while delay <= t:
                index = len(nodes)
                nodes.append(TreeNode(index=index, delay=delay, parent=parent))
                nodes[parent].children.append(index)
                next_frontier.append(index)
                delay += g
        frontier = next_frontier
    nodes.sort(key=lambda n: (n.delay, n.index))
    remap = {node.index: i for i, node in enumerate(nodes)}
    for i, node in enumerate(nodes):
        node.index = i
        node.parent = None if node.parent is None else remap[node.parent]
        node.children = sorted(remap[c] for c in node.children)
    tree = BroadcastTree(params.with_processors(len(nodes)), nodes)
    return tree
