"""k-item broadcast (Section 3): bounds, blocks, schedules."""
