"""Textual pipeline syntax: ``"shift{offset=5},remap{perm=reverse}"``.

The grammar follows the MLIR/xdsl pass-pipeline shape: a comma-separated
sequence of pass invocations, each a registered pass name optionally
followed by ``{key=value,...}`` parameters.  Integer-looking values are
coerced to ``int`` (with an optional leading ``-``); everything else is
passed through as a string, which covers ``perm=reverse``, ``tag=red``
and the ``procs=0:4`` / ``procs=0+2+5`` processor-set grammar.

All syntax and unknown-name errors are raised as ``ValueError`` with the
offending segment quoted, so the CLI can surface them as one-line
``repro: error:`` diagnostics.
"""

from __future__ import annotations

import re

from repro.passes.base import SchedulePass, make_pass

__all__ = ["parse_pipeline", "format_pipeline"]

_SEGMENT = re.compile(
    r"^(?P<name>[A-Za-z][A-Za-z0-9_-]*)(?:\{(?P<params>[^{}]*)\})?$"
)
_INT = re.compile(r"^-?\d+$")


def _split_segments(text: str) -> list[str]:
    """Split on commas outside braces; rejects unbalanced braces."""
    segments: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in text:
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            if depth < 0:
                raise ValueError(f"unbalanced '}}' in pipeline {text!r}")
        if ch == "," and depth == 0:
            segments.append("".join(current))
            current = []
        else:
            current.append(ch)
    if depth != 0:
        raise ValueError(f"unbalanced '{{' in pipeline {text!r}")
    segments.append("".join(current))
    return segments


def _parse_params(params_text: str, segment: str) -> dict[str, int | str]:
    params: dict[str, int | str] = {}
    for part in params_text.split(","):
        part = part.strip()
        if not part:
            continue
        key, eq, raw = part.partition("=")
        key = key.strip()
        raw = raw.strip()
        if not eq or not key or not raw:
            raise ValueError(
                f"malformed pass parameter {part!r} in {segment!r} "
                "(expected key=value)"
            )
        if key in params:
            raise ValueError(f"duplicate parameter {key!r} in {segment!r}")
        params[key] = int(raw) if _INT.match(raw) else raw
    return params


def parse_pipeline(text: str) -> list[SchedulePass]:
    """Parse pipeline text into instantiated passes.

    >>> [p.describe() for p in parse_pipeline("shift{offset=5},canonicalize")]
    ['shift{offset=5}', 'canonicalize']
    """
    stripped = text.strip()
    if not stripped:
        raise ValueError("empty pipeline")
    passes: list[SchedulePass] = []
    for raw_segment in _split_segments(stripped):
        segment = raw_segment.strip()
        if not segment:
            raise ValueError(f"empty pass segment in pipeline {text!r}")
        match = _SEGMENT.match(segment)
        if match is None:
            raise ValueError(f"malformed pass segment {segment!r}")
        params_text = match.group("params")
        params = (
            _parse_params(params_text, segment)
            if params_text is not None
            else {}
        )
        passes.append(make_pass(match.group("name"), **params))
    return passes


def format_pipeline(passes: list[SchedulePass]) -> str:
    """Inverse of :func:`parse_pipeline` for text-constructible passes."""
    return ",".join(p.describe() for p in passes)
