"""Unit tests for the implicit O(log P) schedule IR and its consumers.

Covers the tree families against brute-force materialization, the
chunking contract, the O(1) shift/remap rewrites, the pass-framework
integration (``run_implicit`` twins + materialization guards), the
registry ``storage="implicit"`` flag, the chunked lint engine's
agreement with the full engine, the chunked validator, and the CLI
``--implicit`` path.  The randomized twins live in
``test_implicit_properties.py``; these are the deterministic anchors.
"""

import numpy as np
import pytest

from repro import registry
from repro.analyze import lint_schedule
from repro.analyze.chunked import (
    AGGREGATE_RULES,
    PER_CHUNK_RULES,
    WHOLE_SCHEDULE_RULES,
    lint_implicit,
)
from repro.cli import main
from repro.core.fib import broadcast_time
from repro.params import LogPParams, postal
from repro.passes import PassManager
from repro.passes.library import CanonicalizePass, RemapPass, ShiftPass
from repro.schedule.columnar import materialize_sends
from repro.schedule.implicit import (
    DEFAULT_CHUNK_SENDS,
    BinomialTreeFamily,
    ImplicitSchedule,
    OptimalTreeFamily,
    implicit_broadcast,
    implicit_families,
    implicit_reduction,
)
from repro.schedule.serialize import schedule_to_json
from repro.sim.validate import violations
from repro.sim.validate_np import violations_np, violations_np_implicit

FIG1 = LogPParams(P=8, L=6, o=2, g=4)

MACHINES = [
    FIG1,
    postal(P=10, L=3),
    LogPParams(P=23, L=2, o=1, g=1),
    LogPParams(P=64, L=1, o=0, g=3),
]

FAMILIES = ["optimal", "binomial"]


class EarlyFamily(BinomialTreeFamily):
    """A broken family: claims rank 1 is informed before its edge could
    even be sent, so the edge into rank 1 leaves at cycle -1."""

    name = "early"

    def inform_times(self, ranks: np.ndarray) -> np.ndarray:
        informs = super().inform_times(ranks)
        return np.where(ranks == 1, informs - self.params.send_cost - 1, informs)


class LyingFamily(BinomialTreeFamily):
    """A broken family: rank 2 informed one cycle early, so its parent's
    send sequence violates the gap ``g`` (but no per-edge SCHED rule)."""

    name = "lying"

    def inform_times(self, ranks: np.ndarray) -> np.ndarray:
        informs = super().inform_times(ranks)
        return np.where(ranks == 2, informs - 1, informs)


class TestFamilies:
    @pytest.mark.parametrize("params", MACHINES, ids=lambda p: f"P{p.P}")
    @pytest.mark.parametrize("family", FAMILIES)
    def test_materialized_broadcast_is_legal(self, params, family):
        sched = implicit_broadcast(params, family=family).materialize()
        assert violations(sched) == []

    @pytest.mark.parametrize("params", MACHINES, ids=lambda p: f"P{p.P}")
    @pytest.mark.parametrize("family", FAMILIES)
    def test_materialized_reduction_is_legal(self, params, family):
        sched = implicit_reduction(params, family=family).materialize()
        assert violations(sched) == []

    @pytest.mark.parametrize("params", MACHINES, ids=lambda p: f"P{p.P}")
    def test_optimal_family_makespan_is_exactly_B(self, params):
        impl = implicit_broadcast(params, family="optimal")
        assert impl.makespan == broadcast_time(params.P, params)

    @pytest.mark.parametrize("params", MACHINES, ids=lambda p: f"P{p.P}")
    @pytest.mark.parametrize("family", FAMILIES)
    def test_makespan_matches_materialized_arrivals(self, params, family):
        impl = implicit_broadcast(params, family=family)
        cols = impl.chunk(0, impl.num_sends)
        assert impl.makespan == int(cols.arrivals.max())
        assert int(cols.times.min()) == 0

    @pytest.mark.parametrize("family", FAMILIES)
    def test_parents_precede_children(self, family):
        impl = implicit_broadcast(LogPParams(P=200, L=3, o=1, g=2), family=family)
        ranks = np.arange(1, 200, dtype=np.int64)
        parents = impl.family.parents(ranks)
        assert (parents < ranks).all()
        assert (parents >= 0).all()
        # strict progress: the parent holds the item strictly earlier
        assert (
            impl.family.inform_times(parents) < impl.family.inform_times(ranks)
        ).all()

    @pytest.mark.parametrize("family", FAMILIES)
    def test_trivial_sizes(self, family):
        one = implicit_broadcast(LogPParams(P=1, L=2, o=1, g=1), family=family)
        assert one.num_sends == 0
        assert one.makespan == 0
        assert list(one.iter_chunks()) == []
        assert violations(one.materialize()) == []
        two = implicit_broadcast(LogPParams(P=2, L=2, o=1, g=1), family=family)
        assert two.num_sends == 1
        assert two.makespan == two.params.send_cost

    def test_family_listing_and_unknown_name(self):
        assert implicit_families() == ("binomial", "optimal")
        with pytest.raises(ValueError, match="unknown implicit family 'fft'"):
            implicit_broadcast(FIG1, family="fft")


class TestQueries:
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("reduction", [False, True], ids=["bcast", "reduce"])
    def test_sends_of_covers_materialized_sends(self, family, reduction):
        build = implicit_reduction if reduction else implicit_broadcast
        impl = build(FIG1, family=family)
        expected = {
            (op.time, op.src, op.dst, op.item)
            for op in impl.materialize().sends
        }
        got = set()
        for proc in range(impl.num_procs):
            cols = impl.sends_of(proc)
            assert (np.diff(cols.times) >= 0).all()
            for op in materialize_sends(cols):
                assert op.src == proc
                got.add((op.time, op.src, op.dst, op.item))
        assert got == expected

    @pytest.mark.parametrize("family", FAMILIES)
    def test_parent_matches_realized_edges(self, family):
        impl = implicit_broadcast(FIG1, family=family)
        by_dst = {op.dst: op.src for op in impl.materialize().sends}
        assert impl.parent(0) is None
        for proc in range(1, FIG1.P):
            assert impl.parent(proc) == by_dst[proc]
            assert impl.parent(proc, item=0) == by_dst[proc]

    def test_parent_checks_item_and_rank(self):
        impl = implicit_broadcast(FIG1)
        with pytest.raises(ValueError, match="handles item 0"):
            impl.parent(3, item="wrong")
        with pytest.raises(ValueError, match="not a rank"):
            impl.parent(FIG1.P)
        red = implicit_reduction(FIG1)
        assert red.parent(3, item=("rev", 3)) is not None
        with pytest.raises(ValueError, match=r"handles item \('rev', 3\)"):
            red.parent(3, item=("rev", 4))

    def test_sends_of_unused_label_is_empty(self):
        impl = implicit_broadcast(FIG1).remapped({0: 100})
        assert len(impl.sends_of(0)) == 0  # label vacated by the remap
        assert len(impl.sends_of(100)) == FIG1.g and impl.parent(1) == 100


class TestChunking:
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("max_sends", [1, 3, 64])
    def test_chunks_partition_the_edge_list(self, family, max_sends):
        impl = implicit_broadcast(postal(P=37, L=2), family=family)
        chunks = list(impl.iter_chunks(max_sends=max_sends))
        assert sum(len(c) for c in chunks) == impl.num_sends
        whole = impl.chunk(0, impl.num_sends)
        times = np.concatenate([c.times for c in chunks])
        srcs = np.concatenate([c.srcs for c in chunks])
        dsts = np.concatenate([c.dsts for c in chunks])
        assert (times == whole.times).all()
        assert (srcs == whole.srcs).all()
        assert (dsts == whole.dsts).all()

    def test_chunk_range_and_size_validation(self):
        impl = implicit_broadcast(FIG1)
        with pytest.raises(ValueError, match="outside"):
            impl.chunk(3, 2)
        with pytest.raises(ValueError, match="outside"):
            impl.chunk(0, impl.num_sends + 1)
        with pytest.raises(ValueError, match="max_sends must be >= 1"):
            list(impl.iter_chunks(max_sends=0))

    def test_chunk_facts_are_closed_form_availability(self):
        impl = implicit_broadcast(FIG1)
        facts = impl.chunk_with_facts(0, impl.num_sends)
        # the sender holds the item when it sends, the destination first
        # holds it exactly at this edge's arrival (tree: unique delivery)
        assert (facts.send_avail <= facts.cols.times).all()
        assert (facts.dst_avail == facts.cols.arrivals).all()


class TestRewrites:
    def test_shift_is_a_query_rewrite(self):
        impl = implicit_broadcast(FIG1)
        moved = impl.shifted(5).shifted(2)
        assert moved.start_time == 7
        assert moved.makespan == impl.makespan
        assert (moved.chunk(0, 3).times == impl.chunk(0, 3).times + 7).all()
        back = moved.shifted(-7)
        assert back.start_time == 0

    def test_shift_below_zero_matches_materialized_error(self):
        from repro.passes.kernels import SHIFT_BEFORE_ZERO

        impl = implicit_broadcast(FIG1)
        with pytest.raises(ValueError) as excinfo:
            impl.shifted(-1)
        assert str(excinfo.value) == SHIFT_BEFORE_ZERO

    def test_remap_relabels_and_composes(self):
        impl = implicit_broadcast(FIG1)
        swapped = impl.remapped({0: 1, 1: 0})
        assert swapped.source == 1
        assert swapped.parent(0) == 1
        # composing the swap with itself is the identity
        identity = swapped.remapped({0: 1, 1: 0})
        assert schedule_to_json(identity.materialize()) == schedule_to_json(
            impl.materialize()
        )

    def test_remap_validation(self):
        impl = implicit_broadcast(FIG1)
        with pytest.raises(ValueError, match="not injective"):
            impl.remapped({0: 5, 1: 5})
        with pytest.raises(ValueError, match="not injective"):
            impl.remapped({0: 3})  # collides with untouched rank 3
        with pytest.raises(ValueError, match="non-negative"):
            impl.remapped({0: -1})
        # like the materialized remap, unused labels are silently ignored
        same = impl.remapped({FIG1.P + 5: 99})
        assert same.mapping is None
        with pytest.raises(ValueError, match="not a rank"):
            ImplicitSchedule(impl.family, mapping={FIG1.P: 99})

    @pytest.mark.parametrize("reduction", [False, True], ids=["bcast", "reduce"])
    def test_rewrites_match_materialized_passes(self, reduction):
        from repro.schedule.transform import remap, shift

        build = implicit_reduction if reduction else implicit_broadcast
        impl = build(FIG1)
        mapping = {0: 9, 3: 0, 9: 3} if not reduction else {1: 11}
        twin = shift(remap(impl.materialize(), mapping), 4)
        ours = impl.remapped(mapping).shifted(4).materialize()
        assert schedule_to_json(ours) == schedule_to_json(twin)


class TestPassIntegration:
    def test_shift_and_remap_passes_route_to_rewrites(self):
        impl = implicit_broadcast(FIG1)
        moved = ShiftPass(3).run_implicit(impl)
        assert isinstance(moved, ImplicitSchedule) and moved.start_time == 3
        renamed = RemapPass(mapping={0: 7, 7: 0}).run_implicit(impl)
        assert isinstance(renamed, ImplicitSchedule) and renamed.source == 7

    def test_materializing_pass_refuses_implicit(self):
        impl = implicit_broadcast(FIG1)
        with pytest.raises(TypeError, match="would materialize"):
            CanonicalizePass().run_implicit(impl)

    def test_pass_manager_refuses_implicit(self):
        impl = implicit_broadcast(FIG1)
        with pytest.raises(TypeError, match="materialized schedules"):
            PassManager([ShiftPass(1)]).run(impl)


class TestRegistryStorage:
    def test_plan_implicit_broadcast_and_reduction(self):
        impl = registry.plan("broadcast", FIG1, storage="implicit")
        assert isinstance(impl, ImplicitSchedule)
        assert impl.family.name == "optimal" and not impl.is_reduction
        red = registry.plan(
            "reduce", FIG1, storage="implicit", family="binomial"
        )
        assert red.is_reduction and red.family.name == "binomial"

    def test_plan_storage_validation(self):
        with pytest.raises(ValueError, match="storage must be"):
            registry.plan("broadcast", FIG1, storage="sparse")
        with pytest.raises(ValueError, match="supported by: broadcast, reduction"):
            registry.plan("kitem", postal(P=8, L=2), storage="implicit", k=3)
        with pytest.raises(ValueError, match="backend= does not apply"):
            registry.plan(
                "broadcast", FIG1, storage="implicit", backend="columnar"
            )
        with pytest.raises(ValueError, match="unknown implicit family"):
            registry.plan("broadcast", FIG1, storage="implicit", family="fft")


class TestChunkedLint:
    def test_rule_split_is_total(self):
        from repro.analyze import rule_ids

        covered = set(PER_CHUNK_RULES) | set(AGGREGATE_RULES) | set(
            WHOLE_SCHEDULE_RULES
        )
        assert covered == set(rule_ids())

    @pytest.mark.parametrize("params", MACHINES, ids=lambda p: f"P{p.P}")
    @pytest.mark.parametrize("family", FAMILIES)
    def test_clean_plans_lint_clean(self, params, family):
        report = lint_implicit(implicit_broadcast(params, family=family))
        assert report.errors == []
        assert sorted(report.rules_run) == sorted(
            PER_CHUNK_RULES + AGGREGATE_RULES
        )
        # legal plans trip no structural rule; the binomial family may
        # carry a (warning-severity) SCHED008 gap above B(P)
        for rule_id in PER_CHUNK_RULES + ("SCHED010",):
            assert report.rule_totals[rule_id] == 0

    def test_optimal_family_has_zero_optimality_gap(self):
        report = lint_implicit(implicit_broadcast(FIG1, family="optimal"))
        assert report.rule_totals["SCHED008"] == 0

    @pytest.mark.parametrize("max_sends", [1, 4, DEFAULT_CHUNK_SENDS])
    def test_agreement_with_full_engine_on_broken_family(self, max_sends):
        impl = ImplicitSchedule(EarlyFamily(FIG1))
        chunked = lint_implicit(impl, max_sends=max_sends)
        full = lint_schedule(impl.materialize())
        assert chunked.rule_totals["SCHED001"] >= 1
        assert chunked.rule_totals["SCHED003"] >= 1
        for rule_id in chunked.rules_run:
            if rule_id in full.rule_totals:
                assert (
                    chunked.rule_totals[rule_id] == full.rule_totals[rule_id]
                ), rule_id
        # per-chunk messages must be byte-identical; SCHED008's numbers
        # legitimately differ here — this family breaks the "earliest
        # send at cycle 0" contract, so the implicit (nominal) makespan
        # and the realized one disagree
        ours = sorted(
            d.message for d in chunked.diagnostics if d.rule in PER_CHUNK_RULES
        )
        theirs = sorted(
            d.message for d in full.diagnostics if d.rule in PER_CHUNK_RULES
        )
        assert ours == theirs

    def test_selecting_whole_schedule_rule_raises(self):
        impl = implicit_broadcast(FIG1)
        for rule_id, reason in WHOLE_SCHEDULE_RULES.items():
            with pytest.raises(ValueError, match=rule_id):
                lint_implicit(impl, select=[rule_id])
        # ...but a default sweep silently skips them
        report = lint_implicit(impl)
        assert not set(WHOLE_SCHEDULE_RULES) & set(report.rules_run)

    def test_select_and_ignore_narrow_the_sweep(self):
        impl = implicit_broadcast(FIG1)
        only = lint_implicit(impl, select=["SCHED002"])
        assert only.rules_run == ["SCHED002"]
        without = lint_implicit(impl, ignore=["SCHED008"])
        assert "SCHED008" not in without.rules_run


class TestChunkedValidator:
    @pytest.mark.parametrize("params", MACHINES, ids=lambda p: f"P{p.P}")
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("reduction", [False, True], ids=["bcast", "reduce"])
    def test_legal_plans_validate_clean(self, params, family, reduction):
        build = implicit_reduction if reduction else implicit_broadcast
        impl = build(params, family=family)
        assert violations_np_implicit(impl, max_sends=5) == []

    def test_gap_violation_matches_materialized_validator(self):
        impl = ImplicitSchedule(LyingFamily(FIG1))
        chunked = violations_np_implicit(impl)
        materialized = violations_np(impl.materialize())
        assert chunked, "the lying family must trip the send-gap check"
        # chunk-local gap checks are sound (never a false positive), so
        # everything they report is also in the whole-schedule sweep
        assert set(chunked) <= set(materialized)
        assert any("gap" in v for v in chunked)

    def test_causality_violation_string_matches(self):
        impl = ImplicitSchedule(EarlyFamily(LogPParams(P=4, L=1, o=0, g=2)))
        chunked = violations_np_implicit(impl, max_sends=2)
        materialized = violations_np(impl.materialize())
        causal = [v for v in chunked if v.startswith("causality:")]
        assert causal and set(causal) <= set(materialized)


class TestCLI:
    def test_lint_implicit_small(self, capsys):
        code = main(
            [
                "lint", "--builder", "bcast", "--implicit",
                "-P", "1000", "-L", "2", "--o", "1", "--g", "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "whole-schedule rules skipped: SCHED006, SCHED007, SCHED009" in out

    def test_lint_implicit_binomial_reduction(self, capsys):
        code = main(
            [
                "lint", "--builder", "reduce", "--implicit",
                "--family", "binomial", "--chunk-sends", "128",
                "-P", "500", "-L", "3", "--o", "1", "--g", "2",
            ]
        )
        assert code == 0

    def test_lint_implicit_requires_builder(self, capsys):
        assert main(["lint", "--implicit", "-P", "8", "-L", "2"]) == 2
        err = capsys.readouterr().err
        assert "--builder" in err

    def test_lint_implicit_rejects_unsupported_builder(self, capsys):
        code = main(
            [
                "lint", "--builder", "kitem", "--implicit",
                "-P", "8", "-L", "2", "--k", "3",
            ]
        )
        assert code == 2
        assert "broadcast, reduction" in capsys.readouterr().err
