"""Unified collective registry and planner.

One lookup table for every collective the repo builds, and one entry
point to build them::

    from repro.registry import plan

    sched = plan("broadcast", P=8, L=6, o=2, g=4)
    sched = plan("kitem", P=10, L=3, k=8)
    sched = plan("summation", P=8, L=5, o=2, g=4, n=79)

:func:`plan` resolves the collective by canonical name or alias,
validates the machine and the collective-specific parameters against the
spec's declared domain (uniform one-line ``ValueError``\\ s instead of
builder-specific crashes), picks a storage backend through the
:mod:`repro.dispatch` policy for builders that support both, and runs
the builder.

The same records drive the CLI's builder tables, the bench harness, the
figure scripts and SCHED008's closed-form optimality bounds
(:func:`closed_form_bound`), so a new collective added to
:mod:`repro.registry.specs` shows up everywhere at once.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro import dispatch as _dispatch
from repro.params import LogPParams
from repro.registry.spec import BoundQuery, CollectiveSpec, ParamField
from repro.registry.specs import SPECS
from repro.schedule.ops import Schedule

if TYPE_CHECKING:
    from repro.schedule.implicit import ImplicitSchedule

__all__ = [
    "BoundQuery",
    "CollectiveSpec",
    "ParamField",
    "SPECS",
    "specs",
    "spec_names",
    "all_names",
    "get_spec",
    "plan",
    "lower_bound",
    "closed_form_bound",
    "completion",
    "figure_builders",
]

_BY_NAME: dict[str, CollectiveSpec] = {}
for _spec in SPECS:
    for _name in _spec.all_names():
        if _name in _BY_NAME:
            raise RuntimeError(f"duplicate collective name: {_name}")
        _BY_NAME[_name] = _spec
del _spec, _name


def specs() -> tuple[CollectiveSpec, ...]:
    """All registered collective specs, in registration order."""
    return SPECS


def spec_names() -> tuple[str, ...]:
    """Canonical names of all registered collectives."""
    return tuple(s.name for s in SPECS)


def all_names() -> tuple[str, ...]:
    """Every accepted collective name, canonical names first."""
    return tuple(s.name for s in SPECS) + tuple(
        a for s in SPECS for a in s.aliases
    )


def get_spec(name: str) -> CollectiveSpec:
    """Resolve a canonical name or alias to its spec.

    Raises a one-line ``ValueError`` naming the known collectives for
    anything unknown.
    """
    spec = _BY_NAME.get(name)
    if spec is None:
        known = ", ".join(s.name for s in SPECS)
        raise ValueError(f"unknown collective {name!r} (known: {known})")
    return spec


def _machine_from_kwargs(kwargs: dict[str, Any]) -> LogPParams:
    P = kwargs.pop("P", None)
    if P is None:
        raise ValueError(
            "plan: machine parameters missing — pass params=LogPParams(...) "
            "or at least P= and L="
        )
    L = kwargs.pop("L", None)
    if L is None:
        raise ValueError("plan: L= is required when P= is given")
    return LogPParams(P=P, L=L, o=kwargs.pop("o", 0), g=kwargs.pop("g", 1))


def plan(
    name: str,
    params: LogPParams | None = None,
    *,
    backend: str | None = None,
    storage: str = "materialized",
    cache: Any | None = None,
    execute: str | None = None,
    machine: Any | None = None,
    **kwargs: Any,
) -> Schedule | ImplicitSchedule:
    """Build the named collective's schedule.

    Machine parameters come either as ``params=LogPParams(...)`` or as
    the keywords ``P``/``L``/``o``/``g`` (postal defaults ``o=0, g=1``).
    ``machine=`` names the full topology (a
    :class:`~repro.machine.model.MachineModel`): when given, ``params``
    defaults to ``machine.flat_params`` (and must equal it if passed
    explicitly).  Machine-aware collectives (``hier-bcast``,
    ``hier-reduce``) receive the topology and attach it to the built
    schedule, switching validation/lint/exec to per-edge pricing; other
    collectives accept a :class:`~repro.machine.model.FlatMachine`
    (identical semantics, ignored) and reject anything else.
    Collective-specific parameters (``k``, ``n``, ``t``) are validated
    against the spec's declared domain.  ``backend`` pins the storage
    backend (``"columnar"``/``"objects"``) for builders that support
    both; the default follows the :mod:`repro.dispatch` policy.

    ``storage="implicit"`` returns an O(log P)-state
    :class:`~repro.schedule.implicit.ImplicitSchedule` instead of
    materialized columns, for specs with a closed-form builder
    (broadcast and reduction); an optional ``family=`` keyword selects
    the tree family (``"optimal"``/``"binomial"``).  ``backend`` does
    not apply — implicit plans have no column storage to pick.

    ``cache=`` routes the request through a
    :class:`~repro.serve.PlanService` (the content-addressed plan
    cache): hits deserialize the cached canonical plan JSON instead of
    rebuilding.  Cached plans round-trip through serialization, so they
    come back object-stored with redundant time-0 ``source_items``
    normalized away — byte-identical canonical JSON, not identical
    Python object graphs.  ``backend=`` (a compute hint, deliberately
    outside the cache key) and ``storage="implicit"`` (an O(log P)
    build, cheaper than any lookup) are rejected alongside ``cache=``.

    ``execute=`` names a transport (``"inproc"``/``"mp"``/``"mpi"``):
    the built schedule is lowered to per-rank programs, run on that
    transport, and verified against the simulator (delivered multisets
    byte-identical) before being returned — "plan it, then prove it
    runs".  Implicit storage is rejected with ``execute=`` (execution
    is inherently O(num_sends); materialize first).
    """
    spec = get_spec(name)
    if machine is not None and not spec.machine_aware and not machine.is_flat:
        aware = ", ".join(s.name for s in SPECS if s.machine_aware)
        raise ValueError(
            f"{spec.name}: does not accept a machine topology "
            f"(machine-aware collectives: {aware})"
        )
    if machine is not None and storage == "implicit":
        raise ValueError(
            f"{spec.name}: machine= does not apply to storage='implicit' "
            f"(per-edge pricing needs materialized columns)"
        )
    if execute is not None and storage == "implicit":
        raise ValueError(
            f"{spec.name}: execute= does not apply to storage='implicit' "
            f"(execution is O(num_sends); build materialized or call "
            f"repro.exec.execute on schedule.materialize())"
        )
    if cache is not None:
        if storage == "implicit":
            raise ValueError(
                f"{spec.name}: cache= does not apply to storage='implicit' "
                f"(implicit plans are O(log P) to build; the serve layer "
                f"caches their materialized form instead)"
            )
        if backend is not None:
            raise ValueError(
                f"{spec.name}: backend= does not combine with cache= "
                f"(cache keys are dispatch-independent by design)"
            )
        from repro.schedule.serialize import schedule_from_json
        from repro.serve import canonical_request

        if machine is not None and params is None:
            params = machine.flat_params
        request = canonical_request(spec.name, params, machine=machine, **kwargs)
        return _maybe_execute(
            schedule_from_json(cache.plan_json(request)), execute
        )
    if params is None and machine is not None:
        params = machine.flat_params
    if params is None:
        params = _machine_from_kwargs(kwargs)
    elif "P" in kwargs or "L" in kwargs:
        raise ValueError(
            f"{spec.name}: give either params=LogPParams(...) or "
            f"P=/L= keywords, not both"
        )
    if machine is not None and params != machine.flat_params:
        raise ValueError(
            f"{spec.name}: params {params} conflict with the machine's "
            f"flat envelope {machine.flat_params}"
        )
    if storage not in ("materialized", "implicit"):
        raise ValueError(
            f"{spec.name}: storage must be 'materialized' or 'implicit', "
            f"got {storage!r}"
        )
    if spec.check_machine is not None:
        spec.check_machine(params)
    if storage == "implicit":
        if spec.implicit_build is None:
            supported = ", ".join(
                s.name for s in SPECS if s.implicit_build is not None
            )
            raise ValueError(
                f"{spec.name}: no implicit builder "
                f"(storage='implicit' is supported by: {supported})"
            )
        if backend is not None:
            raise ValueError(
                f"{spec.name}: backend= does not apply to implicit "
                f"storage (implicit plans have no column backend)"
            )
        family = kwargs.pop("family", None)
        extra = spec.validate_extra(params, kwargs)
        if family is not None:
            extra["family"] = family
        return spec.implicit_build(params, **extra)
    extra = spec.validate_extra(params, kwargs)
    if spec.machine_aware:
        # machines travel outside the int-only extra_params validation
        extra["machine"] = machine
    if len(spec.backends) > 1:
        extra["backend"] = _dispatch.builder_backend(
            spec.backends, override=backend
        )
    elif backend is not None and backend not in spec.backends:
        raise ValueError(
            f"{spec.name}: backend {backend!r} not supported "
            f"(supported: {', '.join(spec.backends)})"
        )
    return _maybe_execute(spec.build(params, **extra), execute)


def _maybe_execute(schedule: Schedule, execute: str | None) -> Schedule:
    """Run the built schedule on a transport with verification on.

    Raises the exec stack's errors unchanged: ``ValueError`` for an
    unknown transport name,
    :class:`~repro.exec.errors.TransportUnavailable` when the backend
    cannot run here, and
    :class:`~repro.exec.errors.ExecVerificationError` if the delivered
    multiset diverges from the simulator's.
    """
    if execute is None:
        return schedule
    from repro.exec import execute as _run

    _run(schedule, transport=execute, verify=True)
    return schedule


def lower_bound(
    name: str, params: LogPParams, **kwargs: Any
) -> int | None:
    """The spec's closed-form lower bound for this instance, if any."""
    spec = get_spec(name)
    if spec.lower_bound is None:
        return None
    if spec.check_machine is not None:
        spec.check_machine(params)
    extra = spec.validate_extra(params, kwargs)
    return spec.lower_bound(params, **extra)


def closed_form_bound(query: BoundQuery) -> tuple[int, str] | None:
    """Answer a lint-engine bound query from the spec owning the workload.

    Returns ``(bound, kind)`` — the closed-form optimal completion time
    and a human-readable tag naming the theorem — or ``None`` when no
    registered collective has a closed form for the query's workload.
    """
    for spec in SPECS:
        if spec.workload == query.workload and spec.lint_bound is not None:
            return spec.lint_bound(query)
    return None


def completion(schedule: Schedule) -> int:
    """Cycle at which the schedule finishes: last payload arrival or the
    end of the last local computation, whichever is later."""
    from repro.schedule.analysis import completion_time

    done = completion_time(schedule)
    for op in schedule.computes:
        done = max(done, op.time + op.duration)
    return done


def figure_builders() -> dict[str, Any]:
    """Map figure key -> zero-argument figure builder, from the specs.

    Lazily imports :mod:`repro.experiments.figures` so the registry has
    no matplotlib-adjacent import cost on the hot paths.
    """
    from repro.experiments import figures as fig_mod

    out: dict[str, Any] = {}
    for spec in SPECS:
        for key, attr in spec.figures:
            out[key] = getattr(fig_mod, attr)
    return out
