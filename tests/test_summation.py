"""Tests for optimal summation (Section 5, Lemma 5.1, Figure 6)."""

import pytest

from repro.core.summation.capacity import (
    min_summation_time,
    operand_distribution,
    summation_capacity,
    summation_tree,
)
from repro.core.summation.schedule import summation_schedule, verify_summation
from repro.params import LogPParams, postal
from repro.sim.machine import replay

FIG6 = LogPParams(P=8, L=5, o=2, g=4)


class TestSummationTree:
    def test_is_broadcast_tree_for_L_plus_1(self):
        # Fig 6 uses t=28, P=8, L=5, g=4, o=2; the communication tree is
        # the optimal broadcast tree for L=6 — exactly Figure 1's tree
        tree = summation_tree(FIG6)
        assert sorted(tree.delays()) == [0, 10, 14, 18, 20, 22, 24, 24]

    def test_postal_case(self):
        tree = summation_tree(postal(P=9, L=2))
        assert tree.params.L == 3


class TestCapacity:
    def test_fig6_capacity(self):
        assert summation_capacity(28, FIG6) == 79

    def test_distribution_sums_to_capacity(self):
        for t in (26, 28, 35):
            assert sum(operand_distribution(t, FIG6)) == summation_capacity(t, FIG6)

    def test_capacity_increases_by_P_per_cycle(self):
        # each extra cycle buys one more operand per processor
        assert summation_capacity(29, FIG6) - summation_capacity(28, FIG6) == 8

    def test_too_small_t_rejected(self):
        with pytest.raises(ValueError):
            operand_distribution(5, FIG6)

    def test_single_processor(self):
        p = LogPParams(P=1, L=3, o=1, g=2)
        assert summation_capacity(7, p) == 8  # n-1 additions in t cycles


class TestMinTime:
    def test_inverse_of_capacity(self):
        for n in (2, 9, 30, 79):
            t = min_summation_time(n, FIG6)
            # some P' <= P achieves n by time t, none by t-1
            assert any(
                summation_capacity(t, FIG6.with_processors(P)) >= n
                for P in range(1, 9)
                if _feasible(t, FIG6.with_processors(P))
            ) or t == n - 1

    def test_small_n_prefers_fewer_processors(self):
        # two operands: a single processor adds them in 1 cycle; any
        # communication costs at least L + 2o + 1 = 10
        assert min_summation_time(2, FIG6) == 1

    def test_n1_is_free(self):
        assert min_summation_time(1, FIG6) == 0

    def test_monotone(self):
        times = [min_summation_time(n, FIG6) for n in range(1, 100, 7)]
        assert times == sorted(times)


def _feasible(t: int, params: LogPParams) -> bool:
    try:
        operand_distribution(t, params)
        return True
    except ValueError:
        return False


class TestSchedule:
    def test_fig6_verifies(self):
        plan = summation_schedule(28, FIG6)
        assert plan.n == 79
        assert verify_summation(plan) == plan.total()

    def test_comm_part_is_legal_logp(self):
        plan = summation_schedule(28, FIG6)
        replay(plan.to_schedule())

    def test_custom_operands(self):
        n = summation_capacity(28, FIG6)
        values = [3] * n
        plan = summation_schedule(28, FIG6, operands=values)
        assert verify_summation(plan) == 3 * n

    def test_wrong_operand_count_rejected(self):
        with pytest.raises(ValueError):
            summation_schedule(28, FIG6, operands=[1, 2, 3])

    @pytest.mark.parametrize("params", [
        postal(P=4, L=2),
        postal(P=9, L=3),
        LogPParams(P=5, L=3, o=1, g=2),
        LogPParams(P=2, L=1, o=0, g=1),
    ])
    def test_verifies_across_machines(self, params):
        tree = summation_tree(params)
        t_min = max(
            nd.delay + (params.o + 1) * nd.out_degree for nd in tree.nodes
        )
        for t in (t_min, t_min + 5):
            plan = summation_schedule(t, params)
            verify_summation(plan)
            replay(plan.to_schedule())

    def test_every_processor_busy_until_send(self):
        # optimality hinges on zero idle cycles before each send
        plan = summation_schedule(28, FIG6)
        spans = {}
        for cop in plan.computes:
            lo, hi = spans.get(cop.proc, (10**9, -1))
            spans[cop.proc] = (min(lo, cop.time), max(hi, cop.time + cop.duration))
        for node in plan.tree.nodes:
            S = plan.t - node.delay
            if S > 0:
                lo, hi = spans[node.index]
                assert hi == S  # last computation ends exactly at the send
