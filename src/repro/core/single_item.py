"""Single-item broadcast (Section 2).

Builds the optimal schedule of Theorem 2.1 from the universal broadcast
tree: processor ``i`` is assigned to tree node ``i`` (the root / source is
processor 0), and a node with delay ``d`` and children at delays
``d + j*g + L + 2o`` starts its ``j``-th send at cycle ``d + j*g``.

The schedule's running time equals ``B(P; L, o, g)`` by construction, and
:func:`repro.sim.machine.replay` verifies it is a legal LogP execution.
"""

from __future__ import annotations

import numpy as np

from repro.core.fib import broadcast_time
from repro.core.tree import BroadcastTree, optimal_tree
from repro.params import LogPParams
from repro.schedule.columnar import ItemTable
from repro.schedule.ops import Schedule

__all__ = [
    "schedule_from_tree",
    "optimal_broadcast_schedule",
    "optimal_broadcast_time",
]


def schedule_from_tree(
    tree: BroadcastTree,
    item: object = 0,
    start_time: int = 0,
    proc_map: dict[int, int] | None = None,
    *,
    backend: str = "columnar",
) -> Schedule:
    """Expand a broadcast tree into an explicit schedule.

    The default backend emits all sends as one numpy batch (node ``i``'s
    ``j``-th send starts at ``delay_i + j*g``) into an array-backed
    schedule; ``backend="objects"`` is the original per-send loop, kept
    as the oracle.

    Parameters
    ----------
    tree:
        Any :class:`BroadcastTree` (optimal or not — baselines reuse this).
    item:
        The datum's identity in the emitted ops.
    start_time:
        Cycle at which the root first holds the item (delays shift by it).
    proc_map:
        Optional map from tree-node index to physical processor id;
        defaults to the identity.
    """
    params = tree.params
    g = params.g
    if backend == "objects":
        proc = (lambda i: i) if proc_map is None else (lambda i: proc_map[i])
        schedule = Schedule(
            params=params,
            initial={proc(0): {item}},
            source_items={item: start_time},
        )
        for node in tree.nodes:
            for j, child in enumerate(node.children):
                schedule.add(
                    time=start_time + node.delay + j * g,
                    src=proc(node.index),
                    dst=proc(child),
                    item=item,
                )
        return schedule
    if backend != "columnar":
        raise ValueError(f"unknown backend {backend!r}")
    n_nodes = len(tree.nodes)
    degrees = np.fromiter(
        (len(node.children) for node in tree.nodes), dtype=np.int64, count=n_nodes
    )
    total = int(degrees.sum())
    src_nodes = np.repeat(np.arange(n_nodes, dtype=np.int64), degrees)
    dst_nodes = np.fromiter(
        (child for node in tree.nodes for child in node.children),
        dtype=np.int64,
        count=total,
    )
    # j = each send's rank among its node's children
    group_starts = np.cumsum(degrees) - degrees
    ranks = np.arange(total, dtype=np.int64) - np.repeat(group_starts, degrees)
    delays = np.fromiter(
        (node.delay for node in tree.nodes), dtype=np.int64, count=n_nodes
    )
    times = start_time + np.repeat(delays, degrees) + ranks * g
    if proc_map is None:
        root_proc = 0
        srcs, dsts = src_nodes, dst_nodes
    else:
        root_proc = proc_map[0]
        lut = np.fromiter(
            (proc_map[i] for i in range(n_nodes)), dtype=np.int64, count=n_nodes
        )
        srcs, dsts = lut[src_nodes], lut[dst_nodes]
    return Schedule.from_arrays(
        params,
        times,
        srcs,
        dsts,
        item_table=ItemTable([item]),
        initial={root_proc: {item}},
        source_items={item: start_time},
    )


def optimal_broadcast_schedule(params: LogPParams) -> Schedule:
    """The optimal single-item broadcast schedule ``B(P)`` (Theorem 2.1)."""
    return schedule_from_tree(optimal_tree(params))


def optimal_broadcast_time(params: LogPParams) -> int:
    """``B(P; L, o, g)``, the single-item broadcast complexity."""
    return broadcast_time(params.P, params)
