"""Vectorized (numpy) schedule analysis for large schedules.

The pure-Python helpers in :mod:`repro.schedule.analysis` are fine for
the paper-scale instances; sweeping thousands of processors or long
continuous windows (hundreds of thousands of sends) wants vectorization.
These functions return the same values as their scalar counterparts
(property-tested) but operate on column arrays.

Columns are materialized once per schedule via :func:`columns`, so
repeated queries amortize the conversion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro.schedule.ops import Schedule

__all__ = [
    "ScheduleColumns",
    "columns",
    "completion_time_np",
    "per_proc_first_arrival_np",
    "per_item_completion_np",
    "send_load_np",
    "in_transit_profile",
    "per_proc_egress_peak",
]


@dataclass
class ScheduleColumns:
    """Column-oriented view of a schedule's sends.

    ``item_ids`` maps each distinct item to a dense integer id; the
    ``items`` column stores those ids.
    """

    times: np.ndarray
    srcs: np.ndarray
    dsts: np.ndarray
    items: np.ndarray
    arrivals: np.ndarray
    item_ids: dict[Hashable, int]
    num_procs: int


def columns(schedule: Schedule) -> ScheduleColumns:
    """Convert a schedule to column arrays (one pass)."""
    sends = schedule.sends
    n = len(sends)
    times = np.empty(n, dtype=np.int64)
    srcs = np.empty(n, dtype=np.int64)
    dsts = np.empty(n, dtype=np.int64)
    items = np.empty(n, dtype=np.int64)
    item_ids: dict[Hashable, int] = {}
    for i, op in enumerate(sends):
        times[i] = op.time
        srcs[i] = op.src
        dsts[i] = op.dst
        key = op.item
        if key not in item_ids:
            item_ids[key] = len(item_ids)
        items[i] = item_ids[key]
    cost = schedule.params.send_cost
    arrivals = times + cost
    num_procs = int(max(srcs.max(initial=-1), dsts.max(initial=-1))) + 1 if n else 0
    num_procs = max(num_procs, (max(schedule.initial) + 1) if schedule.initial else 0)
    return ScheduleColumns(
        times=times,
        srcs=srcs,
        dsts=dsts,
        items=items,
        arrivals=arrivals,
        item_ids=item_ids,
        num_procs=num_procs,
    )


def completion_time_np(cols: ScheduleColumns) -> int:
    """Last arrival cycle (0 for an empty schedule)."""
    return int(cols.arrivals.max(initial=0))


def per_proc_first_arrival_np(cols: ScheduleColumns, item: Hashable = 0) -> np.ndarray:
    """First arrival of ``item`` at each processor (``-1`` = never).

    Vectorized equivalent of
    :func:`repro.schedule.analysis.broadcast_delay_per_proc` for the
    non-initial processors.
    """
    out = np.full(cols.num_procs, -1, dtype=np.int64)
    item_id = cols.item_ids.get(item)
    if item_id is None:
        return out
    mask = cols.items == item_id
    dsts = cols.dsts[mask]
    arrivals = cols.arrivals[mask]
    order = np.argsort(arrivals)[::-1]  # later arrivals first, overwritten
    out[dsts[order]] = arrivals[order]
    return out


def per_item_completion_np(cols: ScheduleColumns) -> np.ndarray:
    """Completion (max arrival) per dense item id."""
    n_items = len(cols.item_ids)
    out = np.zeros(n_items, dtype=np.int64)
    np.maximum.at(out, cols.items, cols.arrivals)
    return out


def send_load_np(cols: ScheduleColumns) -> np.ndarray:
    """Messages sent per processor (the communicator's load profile)."""
    out = np.zeros(cols.num_procs, dtype=np.int64)
    np.add.at(out, cols.srcs, 1)
    return out


def in_transit_profile(cols: ScheduleColumns, L: int, o: int = 0) -> np.ndarray:
    """Messages in flight at each cycle (network occupancy over time).

    A message occupies the network during ``[time + o, time + o + L)``.
    Returns an array indexed by cycle, length = horizon + 1.
    """
    if len(cols.times) == 0:
        return np.zeros(1, dtype=np.int64)
    starts = cols.times + o
    ends = starts + L
    horizon = int(ends.max())
    deltas = np.zeros(horizon + 2, dtype=np.int64)
    np.add.at(deltas, starts, 1)
    np.add.at(deltas, ends, -1)
    return np.cumsum(deltas)[: horizon + 1]


def per_proc_egress_peak(cols: ScheduleColumns, L: int, o: int = 0) -> np.ndarray:
    """Peak simultaneous in-flight messages *from* each processor.

    The LogP capacity constraint bounds this by ``ceil(L/g)``; the
    returned profile lets benchmarks confirm optimal schedules saturate
    it while baselines underuse the network.
    """
    peaks = np.zeros(cols.num_procs, dtype=np.int64)
    if len(cols.times) == 0:
        return peaks
    horizon = int((cols.times + o + L).max())
    for proc in np.unique(cols.srcs):
        mask = cols.srcs == proc
        starts = cols.times[mask] + o
        ends = starts + L
        deltas = np.zeros(horizon + 2, dtype=np.int64)
        np.add.at(deltas, starts, 1)
        np.add.at(deltas, ends, -1)
        peaks[proc] = int(np.cumsum(deltas).max())
    return peaks
