"""Ablation benchmarks for the library's design decisions (DESIGN.md §5).

* Which pruned-tree candidate strategy actually wins the Theorem 3.6
  search, per machine shape;
* how much the buffered model's greedy destination choice buys over a
  naive rotation (buffer depth);
* how much summation capacity each baseline communication-tree shape
  forfeits relative to the optimal (universal) tree.
"""

from repro.experiments.ablations import (
    buffered_destination_ablation,
    pruning_strategy_ablation,
    summation_tree_shape_ablation,
)


def test_pruning_strategies(benchmark):
    rows = benchmark(pruning_strategy_ablation)
    # the search always succeeds within the Thm 3.6 slack
    for row in rows:
        assert row["winner"] != "NONE", row
        assert row["T_used"] <= row["B"] + row["L"] - 1
    winners = {row["winner"] for row in rows}
    print(f"\nwinning strategies across machines: {sorted(winners)}")
    # the greedy optimal tree is NOT always solvable: the ablation must
    # show at least one machine where a pruned tree rescued the search
    assert any(row["winner"] != "greedy-optimal" for row in rows)


def test_buffered_destination_choice(benchmark):
    rows = benchmark(buffered_destination_ablation)
    for row in rows:
        # both strategies complete at the single-sending bound...
        assert row["greedy_completion"] == row["bound"]
        assert row["round_robin_completion"] == row["bound"]
        # ...but greedy keeps buffers within the paper's <= 2 claim
        assert row["greedy_buffer_peak"] <= 2
        assert row["greedy_buffer_peak"] <= row["round_robin_buffer_peak"]
    print("\nk  t  L  greedy-buf  roundrobin-buf")
    for row in rows:
        print(f"{row['k']:<3}{row['t']:<3}{row['L']:<3}"
              f"{row['greedy_buffer_peak']:<12}{row['round_robin_buffer_peak']}")


def test_summation_tree_shapes(benchmark):
    rows = benchmark(summation_tree_shape_ablation)
    by_tree = {row["tree"]: row for row in rows}
    # optimal minimizes the delay sum, hence maximizes capacity
    assert by_tree["optimal"]["sum_delays"] == min(r["sum_delays"] for r in rows)
    feasible_42 = {
        name: row["capacity@t=42"]
        for name, row in by_tree.items()
        if isinstance(row["capacity@t=42"], int)
    }
    assert feasible_42["optimal"] == max(feasible_42.values())
    print("\ntree       sum_delays  capacity@28  capacity@42")
    for row in rows:
        print(f"{row['tree']:<11}{row['sum_delays']:<12}"
              f"{str(row['capacity@t=28']):<13}{row['capacity@t=42']}")
