"""Compile a schedule into per-rank programs (:class:`ExecPlan`).

The lowering turns the *global, timed* schedule IR into *local,
ordered* instruction streams: each LogP send becomes a ``SendInstr`` on
the sender and a matching ``RecvInstr`` on the receiver, each
``ComputeOp`` becomes a ``ReduceInstr``, and times are erased in favor
of program order plus data-dependency tokens.

Why erasing times is sound: within one rank, events are ordered by the
model's availability times (sends by start time, receives by payload
arrival ``t + L + 2o``, reductions by completion ``t + duration``),
with receives/reductions ordered before sends on ties.  For a legal
schedule this order is causal — a rank never sends an item before the
instruction that produced it — so executing each rank's stream in
program order with blocking matched receives reproduces exactly the
schedule's message multiset on any transport, with no deadlock.
Lowering checks the causal structure (every sent item is initially
held or produced earlier on that rank) and leaves timing legality to
the validator.

This module is on the ``repro check`` HOT list: it consumes the
columnar storage (or an implicit schedule's chunk stream) and computes
dependencies with vectorized segment scans — no per-``SendOp`` objects,
no ``.sends`` loops.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.exec.errors import LoweringError
from repro.exec.program import (
    KIND_RECV,
    KIND_REDUCE,
    KIND_SEND,
    ExecPlan,
    RankProgram,
)
from repro.params import LogPParams
from repro.schedule.columnar import ItemTable
from repro.schedule.implicit import DEFAULT_CHUNK_SENDS, ImplicitSchedule
from repro.schedule.ops import ComputeOp, Item, Schedule

if TYPE_CHECKING:
    from collections.abc import Sequence

__all__ = ["lower_schedule"]


def lower_schedule(
    schedule: Schedule | ImplicitSchedule,
    *,
    chunk_sends: int = DEFAULT_CHUNK_SENDS,
) -> ExecPlan:
    """Lower a (materialized or implicit) schedule to per-rank programs.

    Implicit schedules are materialized through their bounded
    ``iter_chunks(chunk_sends)`` stream — execution is inherently
    O(num_sends), so the columns are assembled once here.

    Raises :class:`LoweringError` when a rank sends an item it neither
    holds initially nor produces earlier in its own stream.
    """
    if isinstance(schedule, ImplicitSchedule):
        return _lower_implicit(schedule, chunk_sends)
    cols = schedule.columns()
    return _lower_columns(
        schedule.params,
        times=cols.times,
        srcs=cols.srcs,
        dsts=cols.dsts,
        codes=cols.items,
        arrivals=cols.arrivals,
        table=cols.table.copy(),
        initial=schedule.initial,
        computes=schedule.computes,
    )


def _lower_implicit(schedule: ImplicitSchedule, chunk_sends: int) -> ExecPlan:
    params = schedule.params
    table = ItemTable()
    parts_t: list[np.ndarray] = []
    parts_s: list[np.ndarray] = []
    parts_d: list[np.ndarray] = []
    parts_i: list[np.ndarray] = []
    for chunk in schedule.iter_chunks(chunk_sends):
        recode = np.fromiter(
            (table.intern(item) for item in chunk.table.items),
            dtype=np.int64,
            count=len(chunk.table),
        )
        parts_t.append(chunk.times)
        parts_s.append(chunk.srcs)
        parts_d.append(chunk.dsts)
        parts_i.append(recode[chunk.items])
    empty = np.empty(0, dtype=np.int64)
    times = np.concatenate(parts_t) if parts_t else empty
    srcs = np.concatenate(parts_s) if parts_s else empty
    dsts = np.concatenate(parts_d) if parts_d else empty
    codes = np.concatenate(parts_i) if parts_i else empty
    return _lower_columns(
        params,
        times=times,
        srcs=srcs,
        dsts=dsts,
        codes=codes,
        arrivals=times + params.send_cost,
        table=table,
        initial=schedule.initial_placement(),
        computes=[],
    )


def _lower_columns(
    params: LogPParams,
    *,
    times: np.ndarray,
    srcs: np.ndarray,
    dsts: np.ndarray,
    codes: np.ndarray,
    arrivals: np.ndarray,
    table: ItemTable,
    initial: dict[int, set[Item]],
    computes: "Sequence[ComputeOp]",
) -> ExecPlan:
    n = int(times.shape[0])
    c = len(computes)
    m = 2 * n + c

    # Event table: one send + one recv event per message, one reduce
    # event per ComputeOp.  Keys are per-rank availability times; kind
    # doubles as the same-time priority (recv < reduce < send).
    ranks = np.concatenate(
        (srcs, dsts, np.fromiter((op.proc for op in computes), np.int64, c))
    )
    keys = np.concatenate(
        (
            times,
            arrivals,
            np.fromiter((op.time + op.duration for op in computes), np.int64, c),
        )
    )
    kinds = np.concatenate(
        (
            np.full(n, KIND_SEND, dtype=np.int8),
            np.full(n, KIND_RECV, dtype=np.int8),
            np.full(c, KIND_REDUCE, dtype=np.int8),
        )
    )
    peers = np.concatenate((dsts, srcs, np.full(c, -1, dtype=np.int64)))
    compute_codes = np.fromiter(
        (table.intern(op.result) for op in computes), np.int64, c
    )
    items = np.concatenate((codes, codes, compute_codes))
    # aux points reduce events back at their ComputeOp (operand lists
    # are tiny and ragged; they stay a Python side table)
    aux = np.concatenate(
        (np.full(2 * n, -1, dtype=np.int64), np.arange(c, dtype=np.int64))
    )

    order = np.lexsort((items, peers, kinds, keys, ranks))
    ranks_s = ranks[order]
    kinds_s = kinds[order]
    peers_s = peers[order]
    items_s = items[order]
    aux_s = aux[order]

    # Per-rank local instruction indices.
    uniq_ranks, first = np.unique(ranks_s, return_index=True)
    starts = first[np.searchsorted(uniq_ranks, ranks_s)]
    local = np.arange(m, dtype=np.int64) - starts

    deps_s = _send_deps(ranks_s, kinds_s, items_s, local)

    # sort before interning: set iteration order must not leak into the
    # code assignment (plans should be bit-stable across runs)
    initial_codes: dict[int, tuple[int, ...]] = {
        rank: tuple(
            sorted(table.intern(item) for item in sorted(held, key=repr))
        )
        for rank, held in sorted(initial.items())
    }
    _check_send_sources(
        ranks_s, kinds_s, items_s, deps_s, initial_codes, table
    )

    operands: dict[int, dict[int, tuple[int, ...]]] = {}
    for pos in np.flatnonzero(kinds_s == KIND_REDUCE):
        op = computes[int(aux_s[pos])]
        operands.setdefault(int(ranks_s[pos]), {})[int(local[pos])] = tuple(
            table.intern(operand) for operand in op.operands
        )

    programs: dict[int, RankProgram] = {}
    bounds = np.append(first, m)
    for idx, rank in enumerate(uniq_ranks.tolist()):
        lo, hi = int(bounds[idx]), int(bounds[idx + 1])
        programs[rank] = RankProgram(
            rank=rank,
            kinds=kinds_s[lo:hi].copy(),
            peers=peers_s[lo:hi].copy(),
            items=items_s[lo:hi].copy(),
            deps=deps_s[lo:hi].copy(),
            reduce_operands=operands.get(rank, {}),
            table=table,
        )
    if operands:
        _check_reduce_operands(programs, initial_codes, table)
    return ExecPlan(
        params=params,
        table=table,
        programs=programs,
        initial=initial_codes,
        num_sends=n,
    )


def _send_deps(
    ranks_s: np.ndarray,
    kinds_s: np.ndarray,
    items_s: np.ndarray,
    local: np.ndarray,
) -> np.ndarray:
    """Vectorized dependency tokens: for each send, the local index of
    the latest earlier producer (recv or reduce) of the same item on the
    same rank, or ``-1`` if none.

    Segment scan: regroup events by ``(rank, item)`` keeping program
    order, then take an exclusive running maximum of producer indices,
    offset per group so groups never bleed into each other.
    """
    m = int(ranks_s.shape[0])
    deps = np.full(m, -1, dtype=np.int64)
    if m == 0:
        return deps
    ord2 = np.lexsort((np.arange(m), items_s, ranks_s))
    g_rank = ranks_s[ord2]
    g_item = items_s[ord2]
    new_group = np.ones(m, dtype=bool)
    new_group[1:] = (g_rank[1:] != g_rank[:-1]) | (g_item[1:] != g_item[:-1])
    group_id = np.cumsum(new_group) - 1
    produced = kinds_s[ord2] != KIND_SEND
    prod_local = np.where(produced, local[ord2], -1)
    big = np.int64(m + 2)
    keyed = group_id * big + np.where(produced, prod_local + 1, 0)
    running = np.maximum.accumulate(keyed)
    excl = np.empty(m, dtype=np.int64)
    excl[0] = -1
    excl[1:] = running[:-1]
    base = group_id * big
    dep_here = np.where(excl >= base + 1, excl - base - 1, -1)
    is_send = kinds_s[ord2] == KIND_SEND
    deps[ord2[is_send]] = dep_here[is_send]
    return deps


def _check_send_sources(
    ranks_s: np.ndarray,
    kinds_s: np.ndarray,
    items_s: np.ndarray,
    deps_s: np.ndarray,
    initial_codes: dict[int, tuple[int, ...]],
    table: ItemTable,
) -> None:
    """Every dependency-free send must draw on the initial placement."""
    rootless = (kinds_s == KIND_SEND) & (deps_s == -1)
    if not bool(rootless.any()):
        return
    num_items = np.int64(len(table) + 1)
    held_keys = np.fromiter(
        (
            np.int64(rank) * num_items + code
            for rank, held in initial_codes.items()
            for code in held
        ),
        dtype=np.int64,
    )
    send_keys = ranks_s[rootless] * num_items + items_s[rootless]
    ok = np.isin(send_keys, held_keys)
    if bool(ok.all()):
        return
    bad = int(np.flatnonzero(rootless)[np.flatnonzero(~ok)[0]])
    rank = int(ranks_s[bad])
    item = table.decode(int(items_s[bad]))
    raise LoweringError(
        f"cannot lower: rank {rank} sends item {item!r} but never holds "
        f"it (not in the initial placement and not received or reduced "
        f"earlier on that rank)"
    )


def _check_reduce_operands(
    programs: dict[int, RankProgram],
    initial_codes: dict[int, tuple[int, ...]],
    table: ItemTable,
) -> None:
    """Walk only the ranks hosting reductions and confirm each operand
    is available (initial, received or reduced) before the fold.

    Operands that are never defined anywhere on the rank — no initial
    placement, no receive, no reduction result — are *ambient local
    inputs* (e.g. the summation schedule's ``("input", i, seq)``
    operands and its symbolic running accumulator): they exist outside
    the message causality this check guards, so they are exempt.  Only
    a defined-but-not-yet operand is a real ordering violation."""
    for rank, program in programs.items():
        if not program.reduce_operands:
            continue
        available = set(initial_codes.get(rank, ()))
        defined = set(available)
        produced = program.kinds != KIND_SEND
        defined.update(int(code) for code in program.items[produced])
        for i in range(len(program)):
            kind = int(program.kinds[i])
            if kind == KIND_RECV:
                available.add(int(program.items[i]))
            elif kind == KIND_REDUCE:
                missing = [
                    code
                    for code in program.reduce_operands[i]
                    if code not in available and code in defined
                ]
                if missing:
                    raise LoweringError(
                        f"cannot lower: rank {rank} reduces into "
                        f"{table.decode(int(program.items[i]))!r} but "
                        f"operand {table.decode(missing[0])!r} is not "
                        f"available at that point"
                    )
                available.add(int(program.items[i]))
