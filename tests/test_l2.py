"""Tests for the L = 2 results (Theorems 3.4 and 3.5)."""

import pytest

from repro.core.continuous.l2 import (
    block_cyclic_feasible,
    delay_plus_one_assignment,
    infeasible_range,
    prune_tree,
)
from repro.core.continuous.schedule import expand
from repro.core.fib import reachable_postal
from repro.schedule.analysis import item_delays
from repro.sim.machine import replay
from repro.sim.validate import single_reception_violations


class TestTheorem34:
    def test_infeasible_from_small_t(self):
        # the exhaustive search refutes block-cyclic optimality; the paper
        # proves impossibility (for any schedule) from t >= 7
        infeasible = infeasible_range(9)
        assert set(range(7, 10)) <= set(infeasible)

    def test_tiny_t_feasible(self):
        # t <= 3 instances are trivially solvable (few letters)
        assert block_cyclic_feasible(2)
        assert block_cyclic_feasible(3)


class TestPruning:
    def test_prune_keeps_consecutive_children(self):
        tree = prune_tree(8, x=1, y=1)
        tree.validate()  # validate() checks the consecutive-delay labeling

    def test_prune_counts(self):
        # removing 2 from >=4-degree and 1 from 2-degree nodes exactly
        full = prune_tree(6, x=0, y=0)
        assert len(full) < reachable_postal(6, 2)

    def test_prune_rejects_excess(self):
        with pytest.raises(ValueError):
            prune_tree(5, x=100, y=0)


class TestTheorem35:
    @pytest.mark.parametrize("t", [3, 4, 5, 6, 7, 8])
    def test_delay_plus_one_achievable(self, t):
        a = delay_plus_one_assignment(t)
        assert a is not None, f"construction failed for t={t}"
        assert a.delay == 2 + t + 1
        # the tree really has P(t) nodes (not P(t+1))
        assert len(a.tree) == reachable_postal(t, 2)

    def test_expanded_schedule_valid(self):
        a = delay_plus_one_assignment(6)
        schedule = expand(a, num_items=5)
        replay(schedule)
        assert not single_reception_violations(schedule)
        P_minus_1 = len(a.tree)
        delays = item_delays(schedule, procs=set(range(1, P_minus_1 + 1)))
        assert set(delays.values()) == {2 + 6 + 1}
