"""Theorem-validation sweeps (THM22, THM31/36, THM41, LEM51).

These benchmarks regenerate the paper's quantitative claims across
parameter grids rather than a single figure:

* THM22 — ``P(t) = f_t`` (generalized Fibonacci) for every ``L, t``;
* THM31/THM36 — measured k-item broadcast times sit between the
  Theorem 3.1 lower bound and the Theorem 3.6 upper bound everywhere;
* THM41 — combining broadcast reaches ``P(T)`` processors in ``T`` steps
  with the exact window invariant, a 2x saving over reduce+broadcast;
* LEM51 — the summation capacity formula matches, and dominates
  binary-tree reduction everywhere.
"""

from repro.experiments.sweeps import (
    combining_sweep,
    kitem_bounds_sweep,
    pt_recurrence_sweep,
    summation_capacity_sweep,
)


def test_thm22_pt_equals_fib(benchmark):
    rows = benchmark(pt_recurrence_sweep)
    assert rows, "sweep must produce rows"
    for row in rows:
        assert row["P(t)_tree"] == row["f_t"], row
    print(f"\nTHM22: P(t) == f_t on all {len(rows)} (L, t) points")


def test_thm31_thm36_sandwich(benchmark):
    rows = benchmark(kitem_bounds_sweep)
    for row in rows:
        assert row["lower_bound"] <= row["ours"] <= row["upper_bound_thm36"], row
        assert row["repeated_bcast"] >= row["ours"], row
    wins = [row["repeated_bcast"] / row["ours"] for row in rows if row["P"] >= 5]
    print(f"\nTHM31/36: sandwich holds on {len(rows)} points; "
          f"pipelining beats repeated broadcast by up to {max(wins):.1f}x")


def test_thm41_combining(benchmark):
    rows = benchmark(combining_sweep)
    for row in rows:
        assert row["complete"] and row["invariant"], row
        assert row["T"] <= row["reduce_then_broadcast"], row
    print(f"\nTHM41: combining completes with the window invariant on {len(rows)} points")


def test_lem51_capacity(benchmark):
    rows = benchmark(summation_capacity_sweep)
    for row in rows:
        assert row["optimal_n"] >= row["binary_reduction_n"], row
    gains = [
        row["optimal_n"] / max(row["binary_reduction_n"], 1) for row in rows
    ]
    print(f"\nLEM51: optimal capacity dominates binary reduction "
          f"(up to {max(gains):.0f}x more operands in the same time)")


def test_thm34_thm35_l2(benchmark):
    """L=2: the optimum is unachievable (exhaustive refutation) while the
    Theorem 3.5 pruned-tree construction delivers delay+1 every time."""
    from repro.core.continuous.l2 import (
        block_cyclic_feasible,
        delay_plus_one_assignment,
    )

    def run():
        infeasible = [t for t in range(4, 9) if not block_cyclic_feasible(t)]
        achieved = {}
        for t in range(3, 9):
            a = delay_plus_one_assignment(t)
            achieved[t] = a.delay if a else None
        return infeasible, achieved

    infeasible, achieved = benchmark(run)
    assert infeasible == list(range(4, 9))
    for t, delay in achieved.items():
        assert delay == 2 + t + 1, (t, delay)
    print(f"\nTHM34: no block-cyclic optimum for t in {infeasible}; "
          f"THM35: delay+1 achieved at every t in {sorted(achieved)}")
