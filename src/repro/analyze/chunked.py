"""Chunked lint engine for implicit schedules (bounded-memory SCHED sweep).

:func:`lint_implicit` runs the registered SCHED rules over an
:class:`~repro.schedule.implicit.ImplicitSchedule` by streaming
fixed-size :class:`~repro.schedule.implicit.ChunkFacts` blocks, so a
P=10^6 broadcast plan lints in memory bounded by the chunk size — the
full column arrays are never held at once.

The rule split (documented here, asserted by the test suite):

**Per-chunk** (verdict depends only on one edge + closed-form facts):

* SCHED001 non-causal — send time vs the closed-form sender hold time;
* SCHED002 self-send;
* SCHED003 negative time;
* SCHED004 dead send — send time vs the closed-form destination hold;
* SCHED005 duplicate delivery — arrival vs the closed-form first hold.

**Aggregate** (O(1) closed-form facts, no column scan):

* SCHED008 optimality gap — the implicit makespan against the same
  :func:`repro.registry.closed_form_bound` query the full engine builds;
* SCHED010 coverage — edge counting over the dst-rank enumeration
  contract (each non-root rank owns exactly one delivery).

**Whole-schedule** (:data:`WHOLE_SCHEDULE_RULES`, skipped with a
documented reason; selecting one explicitly raises): SCHED006 and
SCHED009 need the source's full per-item send multiset (both are
kitem-only, so they would not apply to the implicit workloads anyway);
SCHED007 ranks idle gaps across each processor's complete send
sequence, which no chunk-local view can order.

Rule metadata (severity, names, message wording) is shared with
:mod:`repro.analyze.rules`, so reports render identically to the full
engine's; at small P the property suite pins ``rule_totals`` equal on
every rule both engines run.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable

import numpy as np

from repro.analyze.diagnostics import (
    MAX_EMITTED_PER_RULE,
    Diagnostic,
    LintReport,
)
from repro.analyze.engine import resolve_rules
from repro.analyze.rules import Rule, get_rule
from repro.registry import closed_form_bound
from repro.registry.spec import BoundQuery
from repro.schedule.columnar import ScheduleColumns
from repro.schedule.implicit import (
    DEFAULT_CHUNK_SENDS,
    ChunkFacts,
    ImplicitSchedule,
)

__all__ = [
    "PER_CHUNK_RULES",
    "AGGREGATE_RULES",
    "WHOLE_SCHEDULE_RULES",
    "lint_implicit",
]

#: Rules evaluated per streamed chunk from closed-form facts.
PER_CHUNK_RULES = ("SCHED001", "SCHED002", "SCHED003", "SCHED004", "SCHED005")

#: Rules answered from O(1) aggregate closed forms after the stream.
AGGREGATE_RULES = ("SCHED008", "SCHED010")

#: Rules that need the whole schedule at once: rule id -> why.
WHOLE_SCHEDULE_RULES = {
    "SCHED006": "single-sending counts need the source's full send multiset",
    "SCHED007": "slack ranking orders each processor's complete send sequence",
    "SCHED009": "the Theorem 3.2 endgame is a property of the global prefix",
}


EmitFn = Callable[[ChunkFacts, int], Diagnostic]


def _describe(cols: ScheduleColumns, index: int) -> str:
    """Mirror ``LintContext.describe_send`` for a chunk-local index."""
    item = cols.table.items[int(cols.items[index])]
    return (
        f"t={int(cols.times[index])} "
        f"{int(cols.srcs[index])}->{int(cols.dsts[index])} "
        f"item {item!r}"
    )


class _RuleTally:
    """Accumulates one rule's findings across chunks, capping emission."""

    def __init__(self, rule: Rule):
        self.rule = rule
        self.total = 0
        self.diagnostics: list[Diagnostic] = []

    def add(self, facts: ChunkFacts, mask: np.ndarray, make: EmitFn) -> None:
        count = int(mask.sum())
        if not count:
            return
        self.total += count
        room = MAX_EMITTED_PER_RULE - len(self.diagnostics)
        if room <= 0:
            return
        for local in np.flatnonzero(mask)[:room].tolist():
            self.diagnostics.append(make(facts, int(local)))


def _chunk_masks(rule_id: str, facts: ChunkFacts) -> tuple[np.ndarray, EmitFn]:
    """The violation mask for one per-chunk rule, plus its emitter."""
    cols = facts.cols
    if rule_id == "SCHED001":
        mask = cols.times < facts.send_avail

        def emit_causal(f: ChunkFacts, i: int) -> Diagnostic:
            have = int(f.send_avail[i])
            return Diagnostic(
                rule="SCHED001",
                severity=get_rule("SCHED001").severity,
                message=(
                    f"non-causal: {_describe(f.cols, i)} — the sender only "
                    f"holds the item from t={have}"
                ),
                sends=(f.lo + i,),
                data={"holds_from": have},
                fixit=f"delay the send to t>={have}",
            )

        return mask, emit_causal
    if rule_id == "SCHED002":
        mask = cols.srcs == cols.dsts

        def emit_self(f: ChunkFacts, i: int) -> Diagnostic:
            return Diagnostic(
                rule="SCHED002",
                severity=get_rule("SCHED002").severity,
                message=f"self-send: {_describe(f.cols, i)}",
                sends=(f.lo + i,),
                fixit="drop the send; a processor already holds what it sends",
            )

        return mask, emit_self
    if rule_id == "SCHED003":
        mask = cols.times < 0

        def emit_negative(f: ChunkFacts, i: int) -> Diagnostic:
            return Diagnostic(
                rule="SCHED003",
                severity=get_rule("SCHED003").severity,
                message=(
                    f"negative time: {_describe(f.cols, i)} starts before "
                    f"cycle 0"
                ),
                sends=(f.lo + i,),
                fixit="shift the schedule so every send starts at t>=0",
            )

        return mask, emit_negative
    if rule_id == "SCHED004":
        mask = facts.dst_avail <= cols.times

        def emit_dead(f: ChunkFacts, i: int) -> Diagnostic:
            first = int(f.dst_avail[i])
            return Diagnostic(
                rule="SCHED004",
                severity=get_rule("SCHED004").severity,
                message=(
                    f"dead send: {_describe(f.cols, i)} — the destination "
                    f"already holds the item (since t={first}), so "
                    f"this send informs no new processor"
                ),
                sends=(f.lo + i,),
                data={"held_since": first},
                fixit="drop the send or retarget it at an uninformed processor",
            )

        return mask, emit_dead
    assert rule_id == "SCHED005"
    mask = facts.dst_avail < cols.arrivals

    def emit_duplicate(f: ChunkFacts, i: int) -> Diagnostic:
        first = int(f.dst_avail[i])
        return Diagnostic(
            rule="SCHED005",
            severity=get_rule("SCHED005").severity,
            message=(
                f"duplicate delivery: {_describe(f.cols, i)} — the "
                f"destination is already delivered this item "
                f"(first held at t={first})"
            ),
            sends=(f.lo + i,),
            data={"first_held": first},
            fixit="each (destination, item) pair should be delivered once",
        )

    return mask, emit_duplicate


def _optimality_gap(impl: ImplicitSchedule) -> tuple[list[Diagnostic], int]:
    """SCHED008 from closed forms (mirrors ``rules._rule_optimality_gap``)."""
    participants = impl.num_participants
    if participants < 2:
        return [], 0
    # full coverage: in reduction mode each partial is held by exactly
    # its sender and the receiving parent, so coverage is total only at
    # P == 2; broadcast workloads never take the scattered branch.
    full_coverage = impl.is_reduction and participants == 2
    bound_kind = closed_form_bound(
        BoundQuery(
            workload=impl.workload,
            params=impl.params,
            participants=participants,
            n_items=impl.n_items,
            single_sending=False,
            full_coverage=full_coverage,
        )
    )
    if bound_kind is None:
        return [], 0
    bound, kind = bound_kind
    makespan = impl.makespan
    gap = makespan - bound
    if gap == 0:
        return [], 0
    if gap > 0:
        msg = (
            f"optimality gap: completes in {makespan} cycles, "
            f"{gap} above the {kind} lower bound of {bound}"
        )
        fixit = "compare against the paper's optimal construction"
    else:
        msg = (
            f"impossible completion: {makespan} cycles is below the "
            f"{kind} lower bound of {bound} — the schedule cannot be "
            f"doing the detected workload"
        )
        fixit = "check the initial placement / workload detection"
    return [
        Diagnostic(
            rule="SCHED008",
            severity=get_rule("SCHED008").severity,
            message=msg,
            data={"makespan": makespan, "bound": bound, "gap": gap},
            fixit=fixit,
        )
    ], 1


def _coverage(impl: ImplicitSchedule) -> tuple[list[Diagnostic], int]:
    """SCHED010 by edge counting over the dst-rank enumeration contract:
    every non-root rank receives exactly one (distinct) delivery, so the
    broadcast item reaches ``1 + num_sends`` processors."""
    participants = impl.num_participants
    holders = 1 + impl.num_sends
    if holders >= participants:
        return [], 0
    return [
        Diagnostic(
            rule="SCHED010",
            severity=get_rule("SCHED010").severity,
            message=(
                f"incomplete coverage: item {0!r} "
                f"reaches only {holders} of {participants} participating "
                f"processors"
            ),
            data={"holders": holders, "participants": participants},
            fixit="extend the schedule until every processor is informed",
        )
    ], 1


def _applies(rule: Rule, impl: ImplicitSchedule) -> bool:
    """Mirror ``Rule.applies`` for an implicit schedule."""
    if impl.num_sends == 0:
        return False
    return not rule.workloads or impl.workload in rule.workloads


def lint_implicit(
    impl: ImplicitSchedule,
    max_sends: int = DEFAULT_CHUNK_SENDS,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> LintReport:
    """Lint an implicit schedule in streamed chunks of ``max_sends``.

    Runs every applicable per-chunk and aggregate rule (see module
    docstring for the split); whole-schedule rules are skipped silently
    on a default sweep but raise ``ValueError`` when named in
    ``select``, so a caller cannot believe SCHED007 ran when it cannot.
    Returns the same :class:`~repro.analyze.diagnostics.LintReport`
    shape as :func:`repro.analyze.lint_schedule`.
    """
    started = time.perf_counter()
    chosen = resolve_rules(select, ignore)
    if select is not None:
        for rule in chosen:
            reason = WHOLE_SCHEDULE_RULES.get(rule.id)
            if reason is not None:
                raise ValueError(
                    f"rule {rule.id} needs the whole schedule and cannot "
                    f"run on an implicit plan ({reason}); materialize() "
                    f"first"
                )
    per_chunk = [
        _RuleTally(rule)
        for rule in chosen
        if rule.id in PER_CHUNK_RULES and _applies(rule, impl)
    ]
    aggregate = [
        rule
        for rule in chosen
        if rule.id in AGGREGATE_RULES and _applies(rule, impl)
    ]
    if per_chunk:
        for lo in range(0, impl.num_sends, max(int(max_sends), 1)):
            hi = min(lo + max(int(max_sends), 1), impl.num_sends)
            facts = impl.chunk_with_facts(lo, hi)
            for tally in per_chunk:
                mask, make = _chunk_masks(tally.rule.id, facts)
                tally.add(facts, mask, make)
    diagnostics: list[Diagnostic] = []
    rules_run: list[str] = []
    totals: dict[str, int] = {}
    for tally in per_chunk:
        rules_run.append(tally.rule.id)
        totals[tally.rule.id] = tally.total
        diagnostics.extend(tally.diagnostics)
    for rule in aggregate:
        emitted, total = (
            _optimality_gap(impl)
            if rule.id == "SCHED008"
            else _coverage(impl)
        )
        rules_run.append(rule.id)
        totals[rule.id] = total
        diagnostics.extend(emitted)
    diagnostics.sort(key=lambda d: (d.rule, d.sends or (-1,)))
    return LintReport(
        diagnostics=diagnostics,
        rules_run=rules_run,
        rule_totals=totals,
        num_sends=impl.num_sends,
        workload=impl.workload,
        elapsed_s=time.perf_counter() - started,
    )
