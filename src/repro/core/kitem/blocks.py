"""r-blocks and the block transmission digraph (Section 3.4, Figure 3).

The single-sending construction of Theorem 3.7 organizes the ``P - 1``
non-source processors into *blocks*: one block of ``r`` processors per
internal node of the optimal ``t``-step tree with ``r`` children (its
members take turns being the *r-sender*, i.e. receiving the item actively
during the optimal broadcast phase), plus one receive-only processor.

The *block transmission digraph* records how each item flows between
blocks each "period":

* a **thick** (active) edge into every block from the block holding its
  tree parent (the largest block receives its active copy from the
  source, drawn from the special vertex ``"src"``);
* **weighted** (inactive) edges carrying the endgame copies, assigned by
  the paper's case analysis — self-loops for the within-block
  receptions, 1-blocks feeding the giants and the receive-only vertex
  ``0``, helper blocks one size larger than needed whose spare
  transmissions feed the 2-blocks.

Flow conservation holds at every vertex: inbound weight equals the block
size ``r`` (one copy per member per item) and outbound weight equals the
``r`` transmissions its r-sender makes per item.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

import networkx as nx

from repro.core.fib import broadcast_time_postal, reachable_postal
from repro.core.tree import tree_for_time
from repro.params import postal

__all__ = ["BlockLayout", "block_layout", "block_transmission_digraph"]


@dataclass
class BlockLayout:
    """The block decomposition for ``P - 1 = P(t)`` processors.

    ``blocks[i]`` is the size of the ``i``-th block (descending); block
    ``i`` serves tree node ``node_of_block[i]``.  The receive-only
    processor is not in any block.
    """

    L: int
    t: int
    blocks: list[int]
    node_of_block: list[int]
    tree_nodes: int

    @property
    def P_minus_1(self) -> int:
        return sum(self.blocks) + 1

    def sizes(self) -> Counter:
        return Counter(self.blocks)


def block_layout(t: int, L: int) -> BlockLayout:
    """Decompose the optimal ``t``-step tree into r-blocks."""
    tree = tree_for_time(t, postal(P=1, L=L))
    internal = sorted(
        tree.internal_nodes(), key=lambda n: (-n.out_degree, n.delay, n.index)
    )
    return BlockLayout(
        L=L,
        t=t,
        blocks=[n.out_degree for n in internal],
        node_of_block=[n.index for n in internal],
        tree_nodes=len(tree),
    )


def block_transmission_digraph(t: int, L: int) -> nx.MultiDiGraph:
    """Build the digraph of Figure 3 for ``P - 1 = P(t)``, odd ``L``.

    Vertices: one per block, keyed ``("blk", i)`` with a ``size``
    attribute; ``("recv", 0)`` for the receive-only processor (label 0);
    ``"src"`` for the source.  Edges carry ``kind`` (``"active"`` or
    ``"inactive"``) and ``weight`` (copies per item).  Raises
    ``ValueError`` when the paper's accounting cannot be balanced (the
    construction is stated for odd ``L`` and ``P - 1 = P(t)``).
    """
    if L % 2 == 0:
        raise ValueError("the paper's endgame accounting is stated for odd L")
    layout = block_layout(t, L)
    tree = tree_for_time(t, postal(P=1, L=L))
    sizes = layout.blocks
    graph = nx.MultiDiGraph()
    graph.add_node("src", size=None)
    graph.add_node(("recv", 0), size=0)
    for i, r in enumerate(sizes):
        graph.add_node(("blk", i), size=r)

    block_of_node = {
        node: i for i, node in enumerate(layout.node_of_block)
    }

    # --- active (thick) edges: tree parent -> child, among internal nodes
    for i, node_index in enumerate(layout.node_of_block):
        node = tree.nodes[node_index]
        if node.parent is None:
            graph.add_edge("src", ("blk", i), kind="active", weight=1)
        else:
            parent_block = block_of_node[node.parent]
            graph.add_edge(
                ("blk", parent_block), ("blk", i), kind="active", weight=1
            )

    # --- inactive edges per the Theorem 3.7 case analysis ---------------
    # available outbound inactive capacity per block: min(L, r), minus
    # what the case analysis reserves.
    by_size: dict[int, list[int]] = defaultdict(list)
    for i, r in enumerate(sizes):
        by_size[r].append(i)

    free_ones = list(by_size.get(1, []))  # 1-blocks, each 1 send/item
    spare_donors: list[int] = []  # blocks with one spare send per item

    def take_helper(size: int) -> int:
        """Claim an unused helper block of exactly ``size``."""
        pool = helpers_free.get(size, [])
        if not pool:
            raise ValueError(
                f"endgame accounting failed: no free helper block of size {size} "
                f"(t={t}, L={L})"
            )
        return pool.pop()

    # helper availability: blocks can serve as helpers only if their own
    # needs leave sends spare; per the paper, helpers are drawn from
    # blocks of size < L (cases 4/5 chain) — we track all blocks whose
    # within-block usage leaves capacity.
    helpers_free: dict[int, list[int]] = defaultdict(list)
    for r in sorted(by_size):
        if r < L:
            helpers_free[r] = list(by_size[r])

    for i, r in enumerate(sizes):
        if r >= 2 * L:
            graph.add_edge(("blk", i), ("blk", i), kind="inactive", weight=L)
            for _ in range(r - 2 * L):
                donor = free_ones.pop()
                graph.add_edge(
                    ("blk", donor), ("blk", i), kind="inactive", weight=1
                )
                helpers_free[1].remove(donor)
            helper = take_helper(L - 1)
            graph.add_edge(
                ("blk", helper), ("blk", i), kind="inactive", weight=L - 1
            )
        elif L + 1 < r < 2 * L:
            graph.add_edge(("blk", i), ("blk", i), kind="inactive", weight=L)
            helper = take_helper(r - L)
            graph.add_edge(
                ("blk", helper), ("blk", i), kind="inactive", weight=r - L - 1
            )
            spare_donors.append(helper)  # helper one larger than needed
        elif r == L + 1:
            graph.add_edge(("blk", i), ("blk", i), kind="inactive", weight=L)
        elif r == L:
            graph.add_edge(("blk", i), ("blk", i), kind="inactive", weight=L - 1)
            spare_donors.append(i)  # min(L, r) = L sends, L-1 used
        elif 2 < r < L:
            helper = take_helper(r - 1)
            graph.add_edge(
                ("blk", helper), ("blk", i), kind="inactive", weight=r - 1
            )
        # r == 2 handled below from spare donors; r == 1 all-active.

    for i in by_size.get(2, []):
        if not spare_donors:
            raise ValueError(
                f"endgame accounting failed: no spare send for a 2-block "
                f"(t={t}, L={L})"
            )
        donor = spare_donors.pop()
        graph.add_edge(("blk", donor), ("blk", i), kind="inactive", weight=1)

    if not free_ones:
        raise ValueError(
            f"endgame accounting failed: no 1-block left for the "
            f"receive-only processor (t={t}, L={L})"
        )
    donor = free_ones.pop()
    graph.add_edge(("blk", donor), ("recv", 0), kind="inactive", weight=1)

    _check_flow(graph)
    return graph


def _check_flow(graph: nx.MultiDiGraph) -> None:
    """Verify in-weight == size and in == 1 active edge per block."""
    for node, data in graph.nodes(data=True):
        size = data["size"]
        if size is None:  # the source
            continue
        inbound = sum(d["weight"] for _u, _v, d in graph.in_edges(node, data=True))
        active_in = sum(
            1
            for _u, _v, d in graph.in_edges(node, data=True)
            if d["kind"] == "active"
        )
        if size == 0:
            if inbound != 1 or active_in != 0:
                raise ValueError(f"receive-only vertex has inbound {inbound}")
            continue
        if active_in != 1:
            raise ValueError(f"block {node} has {active_in} active in-edges")
        if inbound != size:
            raise ValueError(
                f"block {node} (size {size}) has inbound weight {inbound}"
            )
        outbound = sum(
            d["weight"] for _u, _v, d in graph.out_edges(node, data=True)
        )
        if outbound != size:
            raise ValueError(
                f"block {node} (size {size}) has outbound weight {outbound}"
            )
