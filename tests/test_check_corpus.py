"""Corpus regression: planted code defects reproduce pinned diagnostics.

Mirrors ``tests/test_lint_corpus.py`` one tier up.  Each
``tests/data/check_corpus/<name>.py`` plants exactly one rule's
violation (or, for ``clean``, none; for ``suppressed``, only the
stale-suppression meta finding); ``expected.json`` pins the rule ids per
file and ``expected_text.txt`` pins the full rendered report
byte-for-byte, with paths rendered corpus-relative so the pin survives
checkout relocation.

The hypothesis property at the bottom closes the suppression loop:
appending ``# repro: ignore[<rule>]`` to any diagnostic's line removes
exactly that line's findings for that rule — nothing else changes and
no stale-suppression warning appears, because the suppression is used.
"""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkers import (
    UNUSED_SUPPRESSION,
    FileContext,
    check_context,
    check_paths,
    render_text,
    resolve_checkers,
)

CORPUS = Path(__file__).parent / "data" / "check_corpus"
EXPECTED = json.loads((CORPUS / "expected.json").read_text())


def corpus_names():
    return sorted(EXPECTED)


def test_manifest_covers_exactly_the_corpus_files():
    files = {p.stem for p in CORPUS.glob("*.py")}
    assert files == set(EXPECTED)


def test_every_rule_is_exercised_by_some_corpus_file():
    fired = {rule for ids in EXPECTED.values() for rule in ids}
    assert fired == {f"REPRO{i:03d}" for i in range(1, 9)} | {
        UNUSED_SUPPRESSION
    }


@pytest.mark.parametrize("name", corpus_names())
def test_pinned_rule_ids(name):
    report = check_paths([CORPUS / f"{name}.py"], display_root=CORPUS)
    assert report.rule_ids() == EXPECTED[name]


def test_full_corpus_report_is_byte_stable():
    report = check_paths([CORPUS], display_root=CORPUS)
    pinned = (CORPUS / "expected_text.txt").read_text()
    assert render_text(report) + "\n" == pinned
    # a second run renders identically (no ambient order, no timestamps)
    again = check_paths([CORPUS], display_root=CORPUS)
    assert render_text(again) == render_text(report)


def test_clean_canary_is_fully_clean():
    report = check_paths([CORPUS / "clean.py"], display_root=CORPUS)
    assert len(report) == 0
    assert report.max_severity is None


def test_removing_a_used_suppression_resurfaces_the_finding():
    source = (CORPUS / "suppressed.py").read_text()
    stripped = source.replace("  # repro: ignore[REPRO005]", "")
    ctx = FileContext.from_source(
        stripped, "suppressed.py", origin=CORPUS / "suppressed.py"
    )
    diags, _ = check_context(ctx, resolve_checkers())
    assert sorted({d.rule for d in diags}) == [UNUSED_SUPPRESSION, "REPRO005"]


def _diagnostic_sites():
    """Every (corpus file, line, rule) a diagnostic anchors to."""
    sites = []
    for name in corpus_names():
        path = CORPUS / f"{name}.py"
        report = check_paths([path], display_root=CORPUS)
        for diag in report.diagnostics:
            if diag.rule != UNUSED_SUPPRESSION:
                sites.append((path, diag.line, diag.rule))
    return sorted(set(sites), key=str)


@settings(max_examples=30, deadline=None)
@given(site=st.sampled_from(_diagnostic_sites()))
def test_suppression_toggles_exactly_the_targeted_diagnostic(site):
    path, line, rule = site
    source = path.read_text()
    before_ctx = FileContext.from_source(source, path.name, origin=path)
    before, _ = check_context(before_ctx, resolve_checkers())

    lines = source.splitlines(keepends=True)
    text = lines[line - 1].rstrip("\n")
    lines[line - 1] = f"{text}  # repro: ignore[{rule}]\n"
    after_ctx = FileContext.from_source("".join(lines), path.name, origin=path)
    after, _ = check_context(after_ctx, resolve_checkers())

    def key(diag):
        return (diag.path, diag.line, diag.rule, diag.message)

    removed = {key(d) for d in before} - {key(d) for d in after}
    added = {key(d) for d in after} - {key(d) for d in before}
    assert removed == {
        key(d) for d in before if d.line == line and d.rule == rule
    }
    assert removed  # the targeted diagnostic really was there
    assert added == set()  # in particular: no REPRO000, it was used
