"""Schedule serialization: JSON export/import.

Lets external runtimes (an MPI progress engine, a NIC command-queue
compiler, a visualizer) consume plans produced by this library.  The
format is stable and self-describing::

    {
      "format": "logp-schedule/1",
      "params": {"P": 8, "L": 6, "o": 2, "g": 4},
      "initial": [[0, [[0]]]],
      "source_items": [],
      "sends": [[0, 0, 1, [0]], ...]        # [time, src, dst, item]
    }

Items are encoded structurally (ints, strings, and tuples thereof) so the
tuple-tagged items used across the library round-trip exactly.  Schedules
targeting a non-default machine carry an extra ``"machine"`` key holding
the topology's canonical doc (see
:meth:`repro.machine.model.MachineModel.canonical_doc`); flat schedules
omit it, so their serialized bytes — and cached content hashes — are
unchanged from earlier format revisions.
"""

from __future__ import annotations

import json
from typing import Any

from repro.params import LogPParams
from repro.schedule.ops import Schedule, SendOp

__all__ = [
    "encode_item",
    "schedule_payload",
    "schedule_to_json",
    "schedule_from_json",
    "dump_schedule",
    "load_schedule",
]

FORMAT = "logp-schedule/1"

#: ``json.dumps`` keywords for ``canonical=True`` output: one byte
#: sequence per payload, independent of dict insertion order.  The plan
#: cache (:mod:`repro.serve`) content-hashes this form, so changing it
#: invalidates every on-disk cache entry — treat it as a format constant.
CANONICAL_DUMPS: dict[str, Any] = {"sort_keys": True, "separators": (",", ":")}


def _encode_item(item: Any) -> Any:
    if isinstance(item, tuple):
        return {"t": [_encode_item(x) for x in item]}
    if isinstance(item, (int, str)):
        return item
    if isinstance(item, frozenset):
        return {"fs": sorted(_encode_item(x) for x in item)}
    raise TypeError(f"cannot serialize item of type {type(item).__name__}")


# public alias: the executor's trace layer (repro.exec.trace) emits the
# same item encoding so exec and simulator payloads are byte-comparable
encode_item = _encode_item


def _decode_item(obj: Any) -> Any:
    if isinstance(obj, dict):
        if "t" in obj:
            return tuple(_decode_item(x) for x in obj["t"])
        if "fs" in obj:
            return frozenset(_decode_item(x) for x in obj["fs"])
        raise ValueError(f"unknown item encoding {obj!r}")
    return obj


def schedule_payload(schedule: Schedule) -> dict[str, Any]:
    """The schedule's JSON-ready payload dict (the serialized form,
    before ``json.dumps``).

    Sends are emitted in replay order straight from the schedule's cached
    column arrays (each distinct item is encoded once via the interning
    table), so array-backed schedules serialize without ever
    materializing ``SendOp`` objects.
    """
    from repro.schedule.columnar import sort_order

    cols = schedule.columns()
    order = sort_order(cols)
    encoded_items = [_encode_item(item) for item in cols.table.items]
    payload: dict[str, Any] = {
        "format": FORMAT,
        "params": {
            "P": schedule.params.P,
            "L": schedule.params.L,
            "o": schedule.params.o,
            "g": schedule.params.g,
        },
        "initial": [
            [proc, [_encode_item(item) for item in sorted(items, key=repr)]]
            for proc, items in sorted(schedule.initial.items())
        ],
        "source_items": [
            [_encode_item(item), when]
            for item, when in sorted(schedule.source_items.items(), key=repr)
        ],
        "sends": [
            [t, s, d, encoded_items[c]]
            for t, s, d, c in zip(
                cols.times[order].tolist(),
                cols.srcs[order].tolist(),
                cols.dsts[order].tolist(),
                cols.items[order].tolist(),
            )
        ],
    }
    if schedule.machine is not None:
        # only present for machine-attached schedules, so every flat
        # payload (and its cached content hash) stays byte-identical
        payload["machine"] = schedule.machine.canonical_doc()
    return payload


def schedule_to_json(schedule: Schedule, canonical: bool = False) -> str:
    """Serialize a schedule to a JSON string.

    ``canonical=True`` emits the byte-canonical form (sorted keys,
    compact separators — :data:`CANONICAL_DUMPS`) used by the plan
    cache's content hashing; the default form keeps ``json.dumps``'s
    standard separators, which every checked-in corpus file was written
    with.  Both forms carry the identical payload
    (:func:`schedule_payload`) and load back identically.
    """
    payload = schedule_payload(schedule)
    if canonical:
        return json.dumps(payload, **CANONICAL_DUMPS)
    # The non-canonical default is the checked-in corpus format; nothing
    # hashes these bytes (content keys always pass canonical=True).
    return json.dumps(payload)  # repro: ignore[REPRO005]


def schedule_from_json(text: str) -> Schedule:
    """Reconstruct a schedule from its JSON form."""
    payload = json.loads(text)
    if payload.get("format") != FORMAT:
        raise ValueError(
            f"unsupported format {payload.get('format')!r}; expected {FORMAT!r}"
        )
    params = LogPParams(**payload["params"])
    machine = None
    if "machine" in payload:
        from repro.machine.model import machine_from_doc

        machine = machine_from_doc(payload["machine"])
    schedule = Schedule(
        params=params,
        initial={
            proc: {_decode_item(item) for item in items}
            for proc, items in payload["initial"]
        },
        source_items={
            _decode_item(item): when for item, when in payload["source_items"]
        },
        machine=machine,
    )
    schedule.extend(
        SendOp(time=time, src=src, dst=dst, item=_decode_item(item))
        for time, src, dst, item in payload["sends"]
    )
    return schedule


def dump_schedule(schedule: Schedule, path: str) -> None:
    """Write a schedule to ``path`` as JSON."""
    with open(path, "w") as handle:
        handle.write(schedule_to_json(schedule))


def load_schedule(path: str) -> Schedule:
    """Read a schedule previously written by :func:`dump_schedule`."""
    with open(path) as handle:
        return schedule_from_json(handle.read())
