"""Tests for the high-level Communicator / VirtualCluster API."""

import operator

import pytest

from repro.comm import Communicator, VirtualCluster
from repro.core.fib import broadcast_time, broadcast_time_postal
from repro.params import LogPParams, postal

FIG1 = LogPParams(P=8, L=6, o=2, g=4)


class TestCommunicatorPlans:
    def test_bcast_cycles(self):
        comm = Communicator(FIG1)
        assert comm.bcast().cycles == 24

    def test_bcast_rooted(self):
        comm = Communicator(postal(P=6, L=2))
        plan = comm.bcast(root=4)
        # processor 4 never receives; everyone else exactly once
        receivers = sorted(op.dst for op in plan.schedule.sends)
        assert receivers == [0, 1, 2, 3, 5]

    def test_bcast_root_out_of_range(self):
        with pytest.raises(ValueError):
            Communicator(FIG1).bcast(root=8)

    def test_plans_cached(self):
        comm = Communicator(FIG1)
        assert comm.bcast() is comm.bcast()
        assert comm.bcast(1) is not comm.bcast(2)

    def test_kitem_requires_postal(self):
        with pytest.raises(ValueError):
            Communicator(FIG1).kitem_bcast(4)

    def test_kitem_cycles(self):
        comm = Communicator(postal(P=10, L=3))
        plan = comm.kitem_bcast(8)
        assert plan.cycles == 17

    def test_scatter_gather_symmetric(self):
        comm = Communicator(FIG1)
        assert comm.scatter().cycles == comm.gather().cycles

    def test_reduce_matches_bcast(self):
        comm = Communicator(FIG1)
        assert comm.reduce().cycles == comm.bcast().cycles == 24

    def test_allreduce_combining_when_sized(self):
        comm = Communicator(postal(P=9, L=3))  # 9 = f_7 for L=3
        plan = comm.allreduce()
        assert plan.meta["algorithm"] == "combining"
        assert plan.cycles == 7

    def test_allreduce_fallback(self):
        comm = Communicator(postal(P=7, L=3))  # 7 is not a P(T) value
        plan = comm.allreduce()
        assert plan.meta["algorithm"] == "reduce+bcast"
        assert plan.cycles == 2 * broadcast_time_postal(7, 3)

    def test_allgather_alltoall(self):
        comm = Communicator(postal(P=5, L=2))
        assert comm.allgather().cycles == 2 + 3  # L + (P-2)g
        assert comm.alltoall().cycles == 2 + 3


class TestVirtualClusterData:
    def test_bcast_values(self):
        cluster = VirtualCluster(FIG1)
        values, cycles = cluster.bcast("payload", root=3)
        assert values == ["payload"] * 8
        assert cycles == 24

    def test_kitem_values(self):
        cluster = VirtualCluster(postal(P=10, L=3))
        data = [f"item{i}" for i in range(8)]
        results, cycles = cluster.kitem_bcast(data, root=0)
        assert all(r == data for r in results)
        assert cycles == 17

    def test_scatter_values(self):
        cluster = VirtualCluster(postal(P=4, L=2))
        values, _ = cluster.scatter(["a", "b", "c", "d"], root=1)
        assert values == ["a", "b", "c", "d"]

    def test_scatter_wrong_count(self):
        with pytest.raises(ValueError):
            VirtualCluster(postal(P=4, L=2)).scatter(["a"], root=0)

    def test_reduce_sum(self):
        cluster = VirtualCluster(postal(P=9, L=3))
        total, cycles = cluster.reduce(list(range(9)))
        assert total == sum(range(9))
        assert cycles == broadcast_time(9, postal(P=9, L=3))

    def test_reduce_custom_op(self):
        cluster = VirtualCluster(postal(P=5, L=2))
        result, _ = cluster.reduce([3, 1, 4, 1, 5], op=max)
        assert result == 5

    def test_allreduce_combining_values(self):
        cluster = VirtualCluster(postal(P=9, L=3))
        results, cycles = cluster.allreduce(list(range(1, 10)))
        assert results == [45] * 9
        assert cycles == 7

    def test_allreduce_fallback_values(self):
        cluster = VirtualCluster(postal(P=7, L=3))
        results, _ = cluster.allreduce([1] * 7)
        assert results == [7] * 7

    def test_allgather_values(self):
        cluster = VirtualCluster(postal(P=4, L=2))
        results, _ = cluster.allgather(["w", "x", "y", "z"])
        assert all(r == ["w", "x", "y", "z"] for r in results)

    def test_alltoall_values(self):
        P = 4
        cluster = VirtualCluster(postal(P=P, L=2))
        matrix = [[f"{i}->{j}" for j in range(P)] for i in range(P)]
        results, _ = cluster.alltoall(matrix)
        for dst in range(P):
            assert results[dst] == [f"{src}->{dst}" for src in range(P)]

    def test_alltoall_shape_checked(self):
        with pytest.raises(ValueError):
            VirtualCluster(postal(P=3, L=2)).alltoall([[1, 2], [3, 4]])

    def test_allreduce_max(self):
        cluster = VirtualCluster(postal(P=9, L=3))
        results, _ = cluster.allreduce([2, 9, 4, 7, 1, 8, 3, 5, 6], op=max)
        assert results == [9] * 9


class TestSubCommunicators:
    def test_subset_bcast_embeds(self):
        from repro.comm import embed_plan

        parent = Communicator(postal(P=12, L=3))
        sub, mapping = parent.subset([2, 5, 7, 9, 11])
        assert sub.params.P == 5
        plan = sub.bcast(root=0)
        lifted = embed_plan(plan, mapping, params=parent.params)
        # all traffic stays within the chosen physical ranks
        used = {op.src for op in lifted.sends} | {op.dst for op in lifted.sends}
        assert used <= {2, 5, 7, 9, 11}
        # the sub-root is physical rank 2
        assert all(op.src == 2 or op.src in used for op in lifted.sends)

    def test_subset_deduplicates_and_validates(self):
        parent = Communicator(postal(P=6, L=2))
        sub, mapping = parent.subset([1, 1, 3])
        assert sub.params.P == 2 and mapping == {0: 1, 1: 3}
        with pytest.raises(ValueError):
            parent.subset([99])
        with pytest.raises(ValueError):
            parent.subset([])
