"""Tests for the Markdown machine-report generator."""

import pytest

from repro.params import LogPParams, postal
from repro.report import machine_report


class TestReport:
    def test_fig1_machine(self):
        text = machine_report(LogPParams(P=8, L=6, o=2, g=4), ks=(2, 8), ns=(16,))
        assert "# LogP collectives report" in text
        assert "B(P) = 24" in text
        assert "| binomial | 30 |" in text
        assert "k\\* =" in text
        assert "Summation" in text

    def test_combining_machine_gets_the_callout(self):
        # P = 9 = P(7) for L = 3: the all-reduce should use combining
        text = machine_report(postal(P=9, L=3), ks=(2,), ns=(8,))
        assert "same cost as a plain reduction" in text

    def test_non_pt_machine_gets_the_hint(self):
        text = machine_report(postal(P=7, L=3), ks=(2,), ns=(8,))
        assert "consider rounding the group" in text

    def test_every_section_present(self):
        text = machine_report(postal(P=10, L=3), ks=(4,), ns=(20,))
        for heading in (
            "## Single-item broadcast",
            "## k-item broadcast",
            "## Other collectives",
            "## Summation",
        ):
            assert heading in text

    def test_tables_are_wellformed(self):
        text = machine_report(postal(P=5, L=2), ks=(3,), ns=(10,))
        for line in text.splitlines():
            if line.startswith("|"):
                assert line.count("|") >= 3
