"""Implicit O(log P)-state schedules: closed-form plans, no send columns.

Every other builder in this repo materializes O(#sends) columns, which
caps "large P" at whatever fits in memory (the P=1024 all-to-all is
already ~1M sends).  Träff (arXiv:2407.18004) shows the useful queries —
who is my parent, when do I send, how long does the whole thing take —
have closed forms computable in O(log P) time per rank for the classic
broadcast trees.  This module is that representation:

* a :class:`TreeFamily` answers ``parents`` / ``inform_times`` /
  ``children`` / ``makespan`` from closed forms alone.  Two families are
  provided: :class:`BinomialTreeFamily` (Träff's binomial tree, one new
  rank per set bit) and :class:`OptimalTreeFamily` (the paper's
  universal broadcast tree of Definition 2.3, reaching ``P`` ranks in
  exactly ``B(P)`` cycles via the :func:`~repro.core.fib.node_census`
  recurrence);
* an :class:`ImplicitSchedule` wraps a family as a broadcast or (by
  exact time reversal, the paper's Section 4.2/5 correspondence) an
  all-to-one reduction, carries ``shift``/``remap`` as O(1) query
  rewrites, and *streams* materialization: :meth:`ImplicitSchedule.iter_chunks`
  yields fixed-size :class:`~repro.schedule.columnar.ScheduleColumns`
  blocks whose concatenation is byte-identical (canonical JSON) to the
  full :meth:`ImplicitSchedule.materialize` build.

Edges are enumerated in *destination-rank order*: edge ``i`` delivers to
rank ``i + 1`` (broadcast) or is the single upward send of rank
``i + 1`` (reduction).  That order is the chunking contract every
streaming consumer relies on — each non-root rank owns exactly one edge,
so chunks partition the edge set deterministically and per-chunk
closed-form facts (:meth:`ImplicitSchedule.chunk_with_facts`) let the
chunked lint engine (:mod:`repro.analyze.chunked`) and the chunked
validator (:func:`repro.sim.validate_np.violations_np_implicit`) verify
a P=10^6 plan in memory bounded by the chunk size, never by ``P``.

Registry access: ``plan("broadcast", params, storage="implicit")``;
CLI: ``repro lint --builder bcast --implicit -P 1000000``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator, Mapping

import numpy as np

from repro.core.fib import broadcast_time, node_census
from repro.params import LogPParams
from repro.schedule.columnar import ItemTable, ScheduleColumns
from repro.schedule.ops import Schedule

__all__ = [
    "DEFAULT_CHUNK_SENDS",
    "TreeFamily",
    "BinomialTreeFamily",
    "OptimalTreeFamily",
    "ChunkFacts",
    "ImplicitSchedule",
    "implicit_broadcast",
    "implicit_reduction",
    "implicit_families",
]

Item = Hashable

#: Default streaming block size: large enough that per-chunk numpy
#: overhead vanishes, small enough that five int64 columns stay ~2.5 MB.
DEFAULT_CHUNK_SENDS = 65536

#: Kept textually identical to the guard in ``repro.passes.kernels`` /
#: ``repro.schedule.transform`` (pinned by a test) so implicit and
#: materialized shifts fail the same way.
_SHIFT_ERROR = "shift would move a send or item creation before cycle 0"


def _msb_index(values: np.ndarray) -> np.ndarray:
    """Index of the highest set bit, elementwise (values must be >= 1)."""
    result = np.zeros_like(values)
    work = values.copy()
    for step in (32, 16, 8, 4, 2, 1):
        high = work >= (1 << step)
        result[high] += step
        work[high] >>= step
    return result


class TreeFamily:
    """A broadcast tree over ranks ``0..P-1``, rooted at rank 0, defined
    entirely by closed forms.

    The contract (relied on by :class:`ImplicitSchedule`):

    * every rank ``r >= 1`` has exactly one parent ``parents(r) < r``
      holding the item strictly earlier;
    * ``inform_times(r)`` is the cycle rank ``r`` first holds the item
      (``0`` for the root); the edge into ``r`` is sent at
      ``inform_times(r) - send_cost``;
    * the root's first send leaves at cycle 0, so the tree's earliest
      send time is 0 and :attr:`makespan` is the last inform time.
    """

    #: Registry key (``implicit_broadcast(family=...)``).
    name: str = ""

    def __init__(self, params: LogPParams):
        self.params = params
        self.P = params.P

    def parents(self, ranks: np.ndarray) -> np.ndarray:
        """Parent rank of each rank (all inputs must be >= 1)."""
        raise NotImplementedError

    def inform_times(self, ranks: np.ndarray) -> np.ndarray:
        """Cycle each rank first holds the item (0 for the root)."""
        raise NotImplementedError

    def children(self, rank: int) -> np.ndarray:
        """Child ranks of ``rank`` in increasing send-time order."""
        raise NotImplementedError

    @property
    def makespan(self) -> int:
        """Last inform time (0 when ``P == 1``)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} P={self.P}>"


class BinomialTreeFamily(TreeFamily):
    """Träff-style binomial broadcast tree with closed-form bit queries.

    Rank ``r``'s parent is ``r`` with its highest set bit cleared; a
    parent ``p`` sends its bit-``b`` child ``p + 2**b`` every ``g``
    cycles starting right after its own inform time.  Writing ``pc`` for
    popcount and ``m`` for the highest-bit index, the inform time is::

        T(0) = 0
        T(r) = pc(r) * (L + 2o) + g * (m(r) - pc(r) + 1)

    (each of the ``pc`` tree hops costs ``L + 2o``; the remaining factor
    counts the ``g``-paced queueing before each hop).  Out-of-range
    children (``>= P``) are a suffix of each parent's send sequence, so
    dropping them keeps the remaining sends ``g``-paced and legal.  The
    makespan is **not** monotone in ``r`` — it is maximized over a
    ``(popcount, msb)`` candidate set of at most ~128 ranks.
    """

    name = "binomial"

    def parents(self, ranks: np.ndarray) -> np.ndarray:
        return ranks - (np.int64(1) << _msb_index(ranks))

    def inform_times(self, ranks: np.ndarray) -> np.ndarray:
        cost = self.params.send_cost
        g = self.params.g
        positive = np.maximum(ranks, 1)
        pc = np.bitwise_count(positive).astype(np.int64)
        msb = _msb_index(positive)
        informs = pc * cost + g * (msb - pc + 1)
        return np.where(ranks == 0, 0, informs)

    def children(self, rank: int) -> np.ndarray:
        first_bit = rank.bit_length() if rank else 0
        kids = []
        bit = first_bit
        while rank + (1 << bit) < self.P:
            kids.append(rank + (1 << bit))
            bit += 1
        return np.asarray(kids, dtype=np.int64)

    @property
    def makespan(self) -> int:
        top = self.P - 1
        if top <= 0:
            return 0
        cost = self.params.send_cost
        g = self.params.g
        highest = top.bit_length() - 1
        best = 0
        for msb in range(highest + 1):
            if msb < highest:
                max_pc = msb + 1
            else:
                # max popcount of a value <= top with this msb: top
                # itself, or clear one set bit and set everything below
                max_pc = bin(top).count("1")
                above = 1
                for bit in range(highest - 1, -1, -1):
                    if top >> bit & 1:
                        max_pc = max(max_pc, above + bit)
                        above += 1
            # T is linear in popcount, so the endpoints suffice
            for pc in (1, max_pc):
                best = max(best, pc * cost + g * (msb - pc + 1))
        return best


class OptimalTreeFamily(TreeFamily):
    """The paper's universal broadcast tree (Definition 2.3), rank-coded.

    Ranks are assigned in inform-time order using the
    :func:`~repro.core.fib.node_census` counts ``N(d)``: the ranks
    informed exactly at delay ``d`` occupy the contiguous block
    ``[cum(d), cum(d) + N(d))`` where ``cum`` is the exclusive census
    prefix sum, ordered within the block by (gap index ``j``, parent
    offset).  Parent and child queries are then prefix-sum arithmetic
    plus a ``searchsorted`` over per-delay gap sums; the state is the
    O(B(P)) census table, never O(P).  The makespan is exactly
    ``B(P)`` (Theorem 2.1), which is what makes a lint of this family
    report a zero SCHED008 optimality gap.
    """

    name = "optimal"

    def __init__(self, params: LogPParams):
        super().__init__(params)
        self._t = broadcast_time(self.P, params)
        census = node_census(self._t, params)
        prefix = [0] * (len(census) + 1)
        for delay, count in enumerate(census):
            prefix[delay + 1] = prefix[delay] + count
        self._census = np.asarray(census, dtype=np.int64)
        self._cum_excl = np.asarray(prefix, dtype=np.int64)

    def delays(self, ranks: np.ndarray) -> np.ndarray:
        """Inform delay of each rank (== inform time; labels are cycles)."""
        found = np.searchsorted(self._cum_excl, ranks, side="right") - 1
        return found.astype(np.int64)

    def inform_times(self, ranks: np.ndarray) -> np.ndarray:
        return self.delays(ranks)

    def parents(self, ranks: np.ndarray) -> np.ndarray:
        cost = self.params.send_cost
        g = self.params.g
        delays = self.delays(ranks)
        offsets = ranks - self._cum_excl[delays]
        out = np.empty(len(ranks), dtype=np.int64)
        # a 64K-rank chunk spans only a handful of distinct delays (the
        # census grows geometrically), so this loop is O(B(P)) total
        for delay in np.unique(delays).tolist():
            group = delays == delay
            # nodes at this delay, grouped by the parent's gap index j:
            # gap j holds N(delay - cost - j*g) of them
            gap_counts = self._census[delay - cost :: -g]
            gap_sums = np.cumsum(gap_counts)
            j = np.searchsorted(gap_sums, offsets[group], side="right")
            before = np.where(j > 0, gap_sums[np.maximum(j - 1, 0)], 0)
            parent_delay = delay - cost - j * g
            out[group] = self._cum_excl[parent_delay] + offsets[group] - before
        return out

    def children(self, rank: int) -> np.ndarray:
        cost = self.params.send_cost
        g = self.params.g
        delay = int(self.delays(np.asarray([rank], dtype=np.int64))[0])
        offset = rank - int(self._cum_excl[delay])
        kids = []
        ahead = 0  # sum of N(delay + m*g) for m = 1..j
        gap = 0
        child_delay = delay + cost
        while child_delay <= self._t:
            child = int(self._cum_excl[child_delay]) + ahead + offset
            if child < self.P:
                kids.append(child)
            gap += 1
            # beyond B(P) the census is all zeros (and unstored)
            if delay + gap * g <= self._t:
                ahead += int(self._census[delay + gap * g])
            child_delay += g
        return np.asarray(kids, dtype=np.int64)

    @property
    def makespan(self) -> int:
        return self._t if self.P > 1 else 0


def _validated_mapping(
    mapping: Mapping[int, int] | None, num_ranks: int
) -> dict[int, int] | None:
    if not mapping:
        return None
    cleaned = {
        int(old): int(new) for old, new in mapping.items() if int(old) != int(new)
    }
    if not cleaned:
        return None
    for old, new in cleaned.items():
        if old < 0 or old >= num_ranks:
            raise ValueError(
                f"remap key {old} is not a rank in [0, {num_ranks})"
            )
        if new < 0:
            raise ValueError("processor ids must be non-negative")
    targets = list(cleaned.values())
    if len(set(targets)) != len(targets):
        raise ValueError("processor mapping is not injective on used processors")
    for new in targets:
        if new < num_ranks and new not in cleaned:
            raise ValueError(
                "processor mapping is not injective on used processors"
            )
    return cleaned


@dataclass(frozen=True)
class ChunkFacts:
    """One streamed block plus the closed-form facts chunked checkers need.

    ``send_avail[i]`` / ``dst_avail[i]`` are the cycles the edge's sender
    / destination first hold the transported item — by *closed form*, not
    by scanning other chunks, which is exactly what makes SCHED001-005
    (and the causality half of the validator) chunk-local.
    """

    lo: int
    hi: int
    cols: ScheduleColumns
    send_avail: np.ndarray
    dst_avail: np.ndarray


class ImplicitSchedule:
    """A broadcast/reduction plan held as closed forms, not columns.

    Construct via :func:`implicit_broadcast` / :func:`implicit_reduction`
    (or ``plan(name, params, storage="implicit")``).  Supports the
    per-rank queries of the materialized IR (:meth:`sends_of`,
    :meth:`parent`, :attr:`num_sends`, :attr:`makespan`), O(1)
    ``shift``/``remap`` rewrites (:meth:`shifted`, :meth:`remapped` — the
    pass framework routes :class:`~repro.passes.library.ShiftPass` /
    ``RemapPass`` here via ``run_implicit``), and streaming
    materialization (:meth:`iter_chunks`).  Reduction mode is the exact
    time reversal of the family's broadcast: rank ``r`` forwards its
    partial ``("rev", r)`` to its tree parent at ``makespan -
    inform_times(r)``, mirroring the ``reverse`` pass's item convention.
    """

    def __init__(
        self,
        family: TreeFamily,
        *,
        reduction: bool = False,
        offset: int = 0,
        mapping: Mapping[int, int] | None = None,
    ):
        self.family = family
        self.params = family.params
        self.is_reduction = reduction
        self.offset = int(offset)
        self.mapping = _validated_mapping(mapping, family.P)

    # -- closed-form scalars ---------------------------------------------

    @property
    def num_sends(self) -> int:
        """``P - 1``: one edge per non-root rank, in dst-rank order."""
        return max(self.family.P - 1, 0)

    @property
    def num_procs(self) -> int:
        procs = self.family.P
        if self.mapping:
            procs = max(procs, max(self.mapping.values()) + 1)
        return procs

    @property
    def num_participants(self) -> int:
        """Distinct processors taking part (count, not max label)."""
        return self.family.P

    @property
    def makespan(self) -> int:
        """Completion minus start time; shift- and remap-invariant."""
        return self.family.makespan if self.num_sends else 0

    @property
    def start_time(self) -> int:
        """Earliest send time (the family contract pins the base at 0)."""
        return self.offset

    @property
    def completion_time(self) -> int:
        return self.start_time + self.makespan

    @property
    def workload(self) -> str:
        """The detected-workload constant the lint engine would assign."""
        return "scattered" if self.is_reduction else "broadcast"

    @property
    def n_items(self) -> int:
        return self.num_sends if self.is_reduction else 1

    @property
    def source(self) -> int | None:
        """Broadcast root's (post-remap) label; ``None`` in reduction mode."""
        if self.is_reduction:
            return None
        return self._map_scalar(0)

    def __len__(self) -> int:
        return self.num_sends

    def __repr__(self) -> str:
        kind = "reduction" if self.is_reduction else "broadcast"
        return (
            f"<ImplicitSchedule {kind} family={self.family.name} "
            f"P={self.family.P} sends={self.num_sends}>"
        )

    # -- rank relabelling -------------------------------------------------

    def _map_scalar(self, rank: int) -> int:
        if self.mapping is None:
            return rank
        return self.mapping.get(rank, rank)

    def _map_array(self, ranks: np.ndarray) -> np.ndarray:
        if self.mapping is None:
            return ranks
        out = ranks.copy()
        for old, new in self.mapping.items():
            out[ranks == old] = new
        return out

    def _preimage(self, proc: int) -> int | None:
        """The family rank labelled ``proc``, or ``None`` if no rank is."""
        if self.mapping is not None:
            inverse = {new: old for old, new in self.mapping.items()}
            if proc in inverse:
                return inverse[proc]
            if proc in self.mapping:
                return None  # label vacated by the remap
        return proc if 0 <= proc < self.family.P else None

    # -- edge enumeration -------------------------------------------------

    def _check_range(self, lo: int, hi: int) -> None:
        if not 0 <= lo <= hi <= self.num_sends:
            raise ValueError(
                f"chunk range [{lo}, {hi}) outside [0, {self.num_sends}]"
            )

    def _edge_arrays(
        self, lo: int, hi: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(dst_ranks, informs, times, srcs, dsts)`` for edges [lo, hi).

        ``dst_ranks``/``informs`` are pre-remap family facts; ``times``
        carry the shift offset and ``srcs``/``dsts`` the remap.
        """
        ranks = np.arange(lo + 1, hi + 1, dtype=np.int64)
        informs = self.family.inform_times(ranks)
        parents = self.family.parents(ranks)
        if self.is_reduction:
            times = (self.family.makespan - informs) + self.offset
            srcs, dsts = ranks, parents
        else:
            times = (informs - self.params.send_cost) + self.offset
            srcs, dsts = parents, ranks
        return ranks, informs, times, self._map_array(srcs), self._map_array(dsts)

    def _columns(
        self,
        ranks: np.ndarray,
        times: np.ndarray,
        srcs: np.ndarray,
        dsts: np.ndarray,
    ) -> ScheduleColumns:
        if self.is_reduction:
            table = ItemTable(("rev", int(rank)) for rank in ranks.tolist())
            codes = np.arange(len(ranks), dtype=np.int64)
        else:
            table = ItemTable([0])
            codes = np.zeros(len(ranks), dtype=np.int64)
        return ScheduleColumns(
            times=times,
            srcs=srcs,
            dsts=dsts,
            items=codes,
            arrivals=times + self.params.send_cost,
            table=table,
            num_procs=self.num_procs,
        )

    def chunk(self, lo: int, hi: int) -> ScheduleColumns:
        """Materialize edges ``[lo, hi)`` of the canonical enumeration.

        Reduction chunks carry their own per-chunk :class:`ItemTable`
        (codes are chunk-local); broadcast chunks share the single-item
        convention (all codes 0).
        """
        self._check_range(lo, hi)
        ranks, _, times, srcs, dsts = self._edge_arrays(lo, hi)
        return self._columns(ranks, times, srcs, dsts)

    def chunk_with_facts(self, lo: int, hi: int) -> ChunkFacts:
        """:meth:`chunk` plus closed-form availability facts (see
        :class:`ChunkFacts`)."""
        self._check_range(lo, hi)
        ranks, informs, times, srcs, dsts = self._edge_arrays(lo, hi)
        cols = self._columns(ranks, times, srcs, dsts)
        if self.is_reduction:
            # each partial is created at its (single) send; it reaches
            # the parent exactly at this edge's arrival
            send_avail = times
            dst_avail = cols.arrivals
        else:
            parents = self.family.parents(ranks)
            send_avail = self.family.inform_times(parents) + self.offset
            dst_avail = informs + self.offset
        return ChunkFacts(
            lo=lo, hi=hi, cols=cols, send_avail=send_avail, dst_avail=dst_avail
        )

    def iter_chunks(
        self, max_sends: int = DEFAULT_CHUNK_SENDS
    ) -> Iterator[ScheduleColumns]:
        """Stream the whole plan as blocks of at most ``max_sends`` edges.

        Concatenating the blocks reproduces :meth:`materialize` exactly
        (same storage order — the property suite pins byte-identical
        canonical JSON).
        """
        if max_sends < 1:
            raise ValueError(f"max_sends must be >= 1, got {max_sends}")
        for lo in range(0, self.num_sends, max_sends):
            yield self.chunk(lo, min(lo + max_sends, self.num_sends))

    # -- per-rank queries -------------------------------------------------

    def sends_of(self, proc: int) -> ScheduleColumns:
        """Every send ``proc`` performs, in increasing time order."""
        rank = self._preimage(int(proc))
        empty = np.zeros(0, dtype=np.int64)
        if self.is_reduction:
            if rank is None or rank == 0:
                return self._columns(empty, empty, empty, empty)
            arr = np.asarray([rank], dtype=np.int64)
            informs = self.family.inform_times(arr)
            times = (self.family.makespan - informs) + self.offset
            dsts = self._map_array(self.family.parents(arr))
            srcs = np.asarray([proc], dtype=np.int64)
            return self._columns(arr, times, srcs, dsts)
        if rank is None:
            return self._columns(empty, empty, empty, empty)
        kids = self.family.children(rank)
        times = (
            self.family.inform_times(kids) - self.params.send_cost + self.offset
        )
        srcs = np.full(len(kids), proc, dtype=np.int64)
        return self._columns(kids, times, srcs, self._map_array(kids))

    def parent(self, proc: int, item: Item | None = None) -> int | None:
        """The (post-remap) rank ``proc`` receives the item from in a
        broadcast / forwards its partial to in a reduction; ``None`` for
        the root.  ``item`` (optional) must be the item ``proc`` handles.
        """
        rank = self._preimage(int(proc))
        if rank is None:
            raise ValueError(f"proc {proc} is not a rank of this schedule")
        if item is not None:
            expected: Item = ("rev", rank) if self.is_reduction else 0
            if item != expected:
                raise ValueError(
                    f"proc {proc} handles item {expected!r}, not {item!r}"
                )
        if rank == 0:
            return None
        arr = np.asarray([rank], dtype=np.int64)
        return self._map_scalar(int(self.family.parents(arr)[0]))

    # -- materialization ---------------------------------------------------

    def initial_placement(self) -> dict[int, set[Item]]:
        """Initial item placement; O(P) in reduction mode, so this is for
        :meth:`materialize` — chunked consumers use closed forms."""
        if not self.is_reduction:
            return {self._map_scalar(0): {0}}
        return {
            self._map_scalar(rank): {("rev", rank)}
            for rank in range(1, self.family.P)
        }

    def source_items(self) -> dict[Item, int]:
        """``item -> creation time`` (reduction partials are created at
        their send; broadcast item 0 is initial).  O(P) in reduction
        mode, for :meth:`materialize` only."""
        if not self.is_reduction or not self.num_sends:
            return {}
        ranks, _, times, _, _ = self._edge_arrays(0, self.num_sends)
        return {
            ("rev", int(rank)): int(when)
            for rank, when in zip(ranks.tolist(), times.tolist())
        }

    def materialize(self) -> Schedule:
        """Expand to an array-backed :class:`~repro.schedule.ops.Schedule`.

        O(num_sends) memory — the whole point of the implicit IR is that
        large-P consumers never call this; it exists for small-P twins,
        materializing passes, and the simulator.
        """
        if not self.num_sends:
            return Schedule(
                params=self.params,
                sends=[],
                initial=self.initial_placement(),
                source_items=self.source_items(),
            )
        cols = self.chunk(0, self.num_sends)
        codes = cols.items if self.is_reduction else None
        table = cols.table if self.is_reduction else None
        return Schedule.from_arrays(
            self.params,
            cols.times,
            cols.srcs,
            cols.dsts,
            codes,
            table,
            initial=self.initial_placement(),
            source_items=self.source_items(),
        )

    # -- O(1) rewrites -----------------------------------------------------

    def shifted(self, offset: int) -> ImplicitSchedule:
        """Time-translate by ``offset`` as a query rewrite (no columns).

        Raises the same ``ValueError`` as the materialized ``shift`` pass
        when the result would start before cycle 0.
        """
        offset = int(offset)
        if self.num_sends and self.start_time + offset < 0:
            raise ValueError(_SHIFT_ERROR)
        return ImplicitSchedule(
            self.family,
            reduction=self.is_reduction,
            offset=self.offset + offset,
            mapping=self.mapping,
        )

    def remapped(self, mapping: Mapping[int, int]) -> ImplicitSchedule:
        """Relabel processors as a query rewrite (no columns).

        ``mapping`` is over *current* labels (composition with an earlier
        remap is handled here); like the materialized ``remap`` pass it
        must be injective on the ranks in use.
        """
        incoming = {int(old): int(new) for old, new in mapping.items()}
        base = self.mapping or {}
        inverse = {new: old for old, new in base.items()}
        candidates = set(base)
        for label in incoming:
            if label in inverse:
                candidates.add(inverse[label])
            elif label not in base and 0 <= label < self.family.P:
                candidates.add(label)
        composed: dict[int, int] = {}
        for rank in candidates:
            current = base.get(rank, rank)
            composed[rank] = incoming.get(current, current)
        return ImplicitSchedule(
            self.family,
            reduction=self.is_reduction,
            offset=self.offset,
            mapping=composed,
        )


_FAMILY_TYPES: dict[str, type[TreeFamily]] = {
    BinomialTreeFamily.name: BinomialTreeFamily,
    OptimalTreeFamily.name: OptimalTreeFamily,
}


def implicit_families() -> tuple[str, ...]:
    """Names accepted by ``implicit_broadcast(family=...)``, sorted."""
    return tuple(sorted(_FAMILY_TYPES))


def _make_family(params: LogPParams, family: str) -> TreeFamily:
    cls = _FAMILY_TYPES.get(family)
    if cls is None:
        known = ", ".join(implicit_families())
        raise ValueError(f"unknown implicit family {family!r} (known: {known})")
    return cls(params)


def implicit_broadcast(
    params: LogPParams, family: str = "optimal"
) -> ImplicitSchedule:
    """An implicit single-item broadcast plan (root rank 0).

    ``family="optimal"`` (default) is the paper's universal tree — its
    makespan is exactly ``B(P)``; ``family="binomial"`` is the Träff
    binomial tree (legal, generally a few cycles above ``B(P)``).
    """
    return ImplicitSchedule(_make_family(params, family))


def implicit_reduction(
    params: LogPParams, family: str = "optimal"
) -> ImplicitSchedule:
    """An implicit all-to-one reduction: the family's exact time reversal
    (Section 4.2/5 correspondence), partials labelled ``("rev", rank)``."""
    return ImplicitSchedule(_make_family(params, family), reduction=True)
