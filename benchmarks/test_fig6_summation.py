"""FIG6: optimal summation, t=28, P=8, L=5, g=4, o=2 (Figure 6).

The communication pattern is the time reversal of the optimal broadcast
tree for L+1 = 6 (exactly Figure 1's tree); the computation schedule
keeps every processor busy until its send.  Asserts the Lemma 5.1
capacity n(28) = 79 and functional correctness of the full plan.
"""

from repro.experiments.figures import fig6_summation


def test_fig6(benchmark):
    result = benchmark(fig6_summation)
    m = result.measured
    assert m["n(t)"] == m["capacity_formula"] == 79
    assert m["verified_total"]
    assert sum(m["operands_per_proc"]) == 79
    print()
    print(result)
