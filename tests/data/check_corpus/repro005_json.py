# repro: profile=keying
"""Planted REPRO005: non-canonical json.dumps in a keying module."""

import json

CANONICAL_DUMPS = {"sort_keys": True, "separators": (",", ":")}


def content_key(payload):
    return json.dumps(payload)


def canonical_key(payload):
    return json.dumps(payload, **CANONICAL_DUMPS)
