"""Generalized Fibonacci machinery: ``f_i``, ``P(t)``, ``B(P)`` and ``k*``.

Definition 2.5 of the paper fixes an integer ``L > 0`` and defines::

    f_i = 1                  for 0 <= i < L
    f_i = f_{i-1} + f_{i-L}  otherwise

Theorem 2.2 states that in the postal model (``o = 0``, ``g = 1``) the
maximum number of processors reachable by a single-item broadcast in ``t``
steps is ``P(t; L, 0, 1) = f_t``.  Fact 2.1 gives the prefix-sum identity
``1 + sum_{i<=t} f_i = f_{t+L}``.

For general LogP parameters the same quantities are obtained by counting
nodes of the universal broadcast tree (Definition 2.3): a node with label
``s`` has children labeled ``s + L + 2o + i*g`` for ``i >= 0``, so the
number of nodes with label exactly ``d`` obeys::

    N(0) = 1
    N(d) = sum_{i >= 0, d - (L+2o) - i*g >= 0} N(d - (L+2o) - i*g)

and ``P(t) = sum_{d<=t} N(d)``.  Everything here is exact integer
arithmetic (Python ints, no overflow).
"""

from __future__ import annotations

from functools import lru_cache

from repro.params import LogPParams

__all__ = [
    "fib_sequence",
    "fib",
    "reachable_postal",
    "broadcast_time_postal",
    "node_census",
    "reachable",
    "broadcast_time",
    "k_star",
    "kitem_items_by_deadline",
    "kitem_lower_bound",
    "kitem_lower_bound_closed_form",
    "single_sending_lower_bound",
]


def fib_sequence(L: int, upto: int) -> list[int]:
    """Return ``[f_0, f_1, ..., f_upto]`` for the given latency ``L``.

    >>> fib_sequence(3, 8)
    [1, 1, 1, 2, 3, 4, 6, 9, 13]
    >>> fib_sequence(1, 5)
    [1, 2, 4, 8, 16, 32]
    """
    if L < 1:
        raise ValueError(f"L must be >= 1, got {L}")
    if upto < 0:
        raise ValueError(f"upto must be >= 0, got {upto}")
    seq = [1] * min(L, upto + 1)
    for i in range(L, upto + 1):
        seq.append(seq[i - 1] + seq[i - L])
    return seq


def fib(L: int, i: int) -> int:
    """Return ``f_i`` for latency ``L`` (Definition 2.5)."""
    return fib_sequence(L, i)[i]


def reachable_postal(t: int, L: int) -> int:
    """``P(t; L, 0, 1) = f_t``: processors reachable in ``t`` postal steps.

    Theorem 2.2.  ``t < 0`` reaches only the source itself is not meaningful;
    we require ``t >= 0`` (``P(0) = 1``, the source alone).
    """
    if t < 0:
        raise ValueError(f"t must be >= 0, got {t}")
    return fib(L, t)


def broadcast_time_postal(P: int, L: int) -> int:
    """``B(P; L, 0, 1)``: the minimum number of postal steps to reach ``P``
    processors, i.e. the least ``t`` with ``f_t >= P``.

    >>> broadcast_time_postal(9, 3)
    7
    >>> broadcast_time_postal(1, 3)
    0
    """
    if P < 1:
        raise ValueError(f"P must be >= 1, got {P}")
    seq = [1]
    t = 0
    while seq[t] < P:
        t += 1
        if t < L:
            seq.append(1)
        else:
            seq.append(seq[t - 1] + (seq[t - L] if t - L >= 0 else 0))
    return t


def node_census(t: int, params: LogPParams) -> list[int]:
    """Number of universal-tree nodes at each label ``0..t`` for general LogP.

    Element ``d`` of the result is ``N(d)``, the number of processors that an
    optimal broadcast informs exactly at time ``d``.
    """
    if t < 0:
        raise ValueError(f"t must be >= 0, got {t}")
    cost = params.send_cost
    g = params.g
    census = [0] * (t + 1)
    census[0] = 1
    for d in range(1, t + 1):
        total = 0
        s = d - cost
        while s >= 0:
            total += census[s]
            s -= g
        census[d] = total
    return census


def reachable(t: int, params: LogPParams) -> int:
    """``P(t; L, o, g)``: processors reachable in ``t`` cycles, general LogP.

    Coincides with :func:`reachable_postal` when ``params.is_postal``.
    """
    return sum(node_census(t, params))


def broadcast_time(P: int, params: LogPParams) -> int:
    """``B(P; L, o, g)``: minimum cycles for a ``P``-processor broadcast.

    Computed by growing the universal-tree census until ``P`` nodes fit.
    """
    if P < 1:
        raise ValueError(f"P must be >= 1, got {P}")
    if P == 1:
        return 0
    cost = params.send_cost
    g = params.g
    census = [1]
    total = 1
    d = 0
    while total < P:
        d += 1
        count = 0
        s = d - cost
        while s >= 0:
            count += census[s]
            s -= g
        census.append(count)
        total += count
    return d


# Bounded since PR 7: the serve bench's full Zipf mix touches well under
# a hundred distinct (L, upto) pairs, so 1024 entries never evicts on
# realistic traffic while capping a long-running server's memo growth
# (entries are O(upto) tuples, so the worst case mattered).
# Exposed via repro.serve's /stats endpoint (core_cache_stats).
@lru_cache(maxsize=1024)
def _prefix_sums(L: int, upto: int) -> tuple[int, ...]:
    seq = fib_sequence(L, upto)
    sums = []
    acc = 0
    for value in seq:
        acc += value
        sums.append(acc)
    return tuple(sums)


def k_star(P: int, L: int) -> int:
    """The endgame size ``k*`` of Theorem 3.1 (postal model).

    Let ``n`` be the index with ``f_n < P-1 <= f_{n+1}`` (so that
    ``B(P-1) = n + 1``); then ``k* = floor(sum_{t=0}^{n} f_t / (P-1))``.
    The paper proves ``k* <= L``.  Requires ``P >= 3`` so that ``n`` exists
    (``P - 1 >= 2 > f_0``); for ``P = 2`` every item goes straight to the
    single receiver and we define ``k* = 1`` (each item is its own endgame).
    """
    if P < 2:
        raise ValueError(f"k* needs at least 2 processors, got P={P}")
    if P == 2:
        return 1
    n = broadcast_time_postal(P - 1, L) - 1
    return _prefix_sums(L, n)[n] // (P - 1)


def kitem_items_by_deadline(P: int, L: int, deadline: int) -> int:
    """Theorem 3.1's counting argument: at most ``min(f_j, P-1)`` useful
    receptions occur at step ``L + j``, so at most
    ``floor(sum_{j <= deadline-L} min(f_j, P-1) / (P-1))`` items can be
    fully broadcast by ``deadline``."""
    if P < 2:
        return 10**9
    horizon = deadline - L
    if horizon < 0:
        return 0
    seq = fib_sequence(L, horizon)
    return sum(min(f, P - 1) for f in seq[: horizon + 1]) // (P - 1)


def kitem_lower_bound(P: int, L: int, k: int) -> int:
    """The Theorem 3.1 lower bound: the smallest deadline whose counting
    capacity (:func:`kitem_items_by_deadline`) reaches ``k`` items.

    For ``k > k*`` this equals the paper's closed form
    ``B(P-1) + L + (k-1) - k*`` (see
    :func:`kitem_lower_bound_closed_form`); for ``k <= k*`` the closed
    form can *overshoot* the true optimum (e.g. ``P=5, L=2, k=1``: the
    closed form says 5 but a plain broadcast finishes in ``B(5) = 4``),
    because the counting argument's ``= k* + t - n`` step assumes
    ``t >= n``.  The inversion here is the bound the proof actually
    establishes for every ``k``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if P < 2:
        return 0
    deadline = 0
    while kitem_items_by_deadline(P, L, deadline) < k:
        deadline += 1
    return deadline


def kitem_lower_bound_closed_form(P: int, L: int, k: int) -> int:
    """The paper's printed formula ``B(P-1) + L + (k-1) - k*``.

    Valid (and equal to :func:`kitem_lower_bound`) whenever ``k > k*``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if P < 2:
        return 0
    return broadcast_time_postal(P - 1, L) + L + (k - 1) - k_star(P, L)


def single_sending_lower_bound(P: int, L: int, k: int) -> int:
    """Lower bound ``B(P-1) + L + k - 1`` for single-sending schedules.

    A single-sending schedule transmits each item from the source exactly
    once; the last item leaves no earlier than ``k - 1``, takes ``L`` to its
    first destination and at least ``B(P-1)`` more to reach everyone.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if P < 2:
        return 0
    return broadcast_time_postal(P - 1, L) + L + k - 1
