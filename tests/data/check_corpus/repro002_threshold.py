"""Planted REPRO002: dispatch threshold compared outside repro.dispatch."""

FAST_PATH_THRESHOLD = 4096


def use_numpy(num_sends):
    return num_sends >= FAST_PATH_THRESHOLD


def chooses_backend(schedule, dispatch):
    return schedule.num_sends > dispatch.FAST_PATH_THRESHOLD
