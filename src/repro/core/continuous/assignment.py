"""Block-cyclic processor assignments (Sections 3.2-3.3).

A :class:`BlockCyclicAssignment` solves the problem instance ``I(t)``:
one block of ``r`` processors per internal node of the optimal tree with
``r`` children, each block carrying a legal word of ``r - 1`` lowercase
letters, plus a single receive-only processor with a one-letter word —
together consuming the per-step letter census exactly.

Solving strategy (mirrors the paper's §3.3 but machine-checked):

* **Base cases** — :func:`solve_instance` runs a DFS over legal words
  (enumerated exhaustively with census pruning; the largest block may be
  restricted to Lemma 3.1's ``a^{L-2}(ca)^p b^q`` normal form so the
  inductive step below stays well-founded).
* **Induction** — ``I(t)`` is the disjoint union of ``I(t-1)`` and
  ``I(t-L)`` except that the largest block of ``I(t-1)`` grows by one.
  :func:`solve` finds ``L`` consecutive normal-form base cases (the
  paper's ``t(L)``) and then stitches: append the ``b`` contributed by
  ``I(t-L)``'s receive-only processor to the largest word of ``I(t-1)``,
  and keep ``I(t-1)``'s own ``b`` for the new receive-only processor.

Every assignment returned by this module has been re-validated: word
legality per block and exact census cover (:meth:`BlockCyclicAssignment.validate`).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from functools import lru_cache

from repro.core.continuous.relative import Instance, instance_for
from repro.core.continuous.words import (
    enumerate_legal_words,
    family_f1,
    is_legal_word,
    word_to_str,
)

__all__ = [
    "Block",
    "BlockCyclicAssignment",
    "solve_instance",
    "find_base_cases",
    "solve",
    "min_base_t",
]

Word = tuple[int, ...]


@dataclass(frozen=True)
class Block:
    """One block: ``size`` processors cyclically sharing the uppercase duty
    for one internal tree node, receiving ``word`` in the off-phases."""

    size: int
    word: Word

    def __post_init__(self) -> None:
        if len(self.word) != self.size - 1:
            raise ValueError(
                f"block of size {self.size} needs a word of length "
                f"{self.size - 1}, got {word_to_str(self.word)!r}"
            )

    def pattern(self, L: int) -> tuple[int, ...]:
        """Full per-phase offset pattern (uppercase first)."""
        from repro.core.continuous.relative import uppercase_offset

        return (uppercase_offset(self.size, L), *self.word)


@dataclass
class BlockCyclicAssignment:
    """A complete block-cyclic solution for ``I(t)``."""

    L: int
    t: int
    blocks: list[Block]
    receive_only: int  # lowercase offset received every step

    @property
    def delay(self) -> int:
        """Per-item delay achieved: the optimal ``L + t`` (Theorem 3.3)."""
        return self.L + self.t

    @property
    def num_processors(self) -> int:
        """Non-source processors covered: block sizes plus receive-only."""
        return sum(b.size for b in self.blocks) + 1

    def consumed_census(self) -> Counter:
        census: Counter = Counter()
        for block in self.blocks:
            census.update(block.word)
        census[self.receive_only] += 1
        return census

    def validate(self, instance: Instance | None = None) -> None:
        """Check word legality and exact cover of the instance's census."""
        if instance is None:
            instance = instance_for(self.t, self.L)
        sizes = Counter(b.size for b in self.blocks)
        if sizes != instance.block_sizes:
            raise ValueError(
                f"block sizes {dict(sizes)} do not match instance "
                f"{dict(instance.block_sizes)}"
            )
        for block in self.blocks:
            if not is_legal_word(block.size, block.word, self.L):
                raise ValueError(
                    f"illegal word {word_to_str(block.word)!r} for block "
                    f"size {block.size}"
                )
        if not 0 <= self.receive_only < self.L:
            raise ValueError(f"receive-only offset {self.receive_only} out of range")
        consumed = self.consumed_census()
        if consumed != instance.letter_census:
            raise ValueError(
                f"census mismatch: consumed {dict(consumed)}, "
                f"instance has {dict(instance.letter_census)}"
            )

    def describe(self) -> str:
        parts = [
            f"R{b.size}+{word_to_str(b.word) or 'ε'}" for b in sorted(
                self.blocks, key=lambda b: -b.size
            )
        ]
        parts.append(f"recv-only:{chr(ord('a') + self.receive_only)}")
        return "  ".join(parts)


def _is_f1_form(word: Word, L: int) -> bool:
    """True iff ``word`` matches ``a^{L-2}(ca)^p b^q``."""
    i = 0
    base = L - 2
    if word[:base] != (0,) * base:
        return False
    i = base
    while i + 1 < len(word) and word[i] == 2 and word[i + 1] == 0:
        i += 2
    return all(m == 1 for m in word[i:])


def solve_instance(
    instance: Instance,
    normal_form: bool = False,
    max_candidates: int = 20000,
) -> BlockCyclicAssignment | None:
    """DFS search for a block-cyclic solution of ``instance``.

    With ``normal_form=True`` the receive-only processor must take letter
    ``b`` and the (unique) largest block a word of F1 form — the shape the
    inductive step of :func:`solve` requires.  Returns ``None`` when no
    solution exists (e.g. ``L=4, t=8``, the paper's counterexample).
    """
    L = instance.L
    sizes = sorted(instance.block_sizes.elements(), reverse=True)
    census = Counter(instance.letter_census)
    if normal_form:
        if census[1] < 1:
            return None
        census[1] -= 1  # reserve the receive-only 'b'

    failed: set[tuple[int, tuple[int, ...]]] = set()

    def census_key(c: Counter) -> tuple[int, ...]:
        return tuple(c[m] for m in range(L))

    def candidates(index: int, size: int, remaining: Counter) -> list[Word]:
        words: list[Word]
        if normal_form and index == 0:
            words = [
                w
                for w in family_f1(size, L)
                if all(Counter(w)[m] <= remaining[m] for m in range(L))
            ]
        else:
            words = enumerate_legal_words(
                size, L, census=remaining, limit=max_candidates
            )
        return words

    def dfs(index: int, remaining: Counter, chosen: list[Word]) -> bool:
        if index == len(sizes):
            return sum(remaining.values()) == (0 if normal_form else 1)
        key = (index, census_key(remaining))
        if key in failed:
            return False
        size = sizes[index]
        prev_word = (
            chosen[index - 1]
            if index > 0 and sizes[index - 1] == size and not (normal_form and index == 1)
            else None
        )
        for word in candidates(index, size, remaining):
            if prev_word is not None and word > prev_word:
                continue  # symmetry breaking among equal-size blocks
            for m in word:
                remaining[m] -= 1
            if min(remaining.values(), default=0) >= 0:
                chosen.append(word)
                if dfs(index + 1, remaining, chosen):
                    return True
                chosen.pop()
            for m in word:
                remaining[m] += 1
        failed.add(key)
        return False

    chosen: list[Word] = []
    if not dfs(0, census, chosen):
        return None

    if normal_form:
        receive_only = 1
    else:
        # on success dfs leaves `census` holding exactly the leftover letter
        (receive_only,) = [m for m in range(L) for _ in range(census[m])]
    blocks = [Block(size=s, word=w) for s, w in zip(sizes, chosen)]
    assignment = BlockCyclicAssignment(
        L=L, t=instance.t, blocks=blocks, receive_only=receive_only
    )
    assignment.validate(instance)
    return assignment


def min_base_t(L: int) -> int:
    """Smallest ``t`` at which a normal-form solution could exist: the
    largest block's F1 word needs length ``t - L >= L - 2``."""
    return 2 * L - 2


# Bounded since PR 7 (keyed by (L, search_limit); the paper verifies
# L <= 10, so 64 entries is effectively unlimited while keeping a
# long-running server's memo tables capped).
# Exposed via repro.serve's /stats endpoint (core_cache_stats).
@lru_cache(maxsize=64)
def find_base_cases(L: int, search_limit: int = 60) -> tuple[int, ...]:
    """Find the paper's ``t(L)``: the start of ``L`` consecutive values of
    ``t`` whose instances admit normal-form solutions.

    Returns the tuple ``(t(L), ..., t(L) + L - 1)``.  Raises if none found
    below ``search_limit`` (the paper verified existence for ``L <= 10``).
    """
    if L < 3:
        raise ValueError("block-cyclic base cases require L >= 3 (Thm 3.3/3.4)")
    run: list[int] = []
    for t in range(min_base_t(L), search_limit):
        if solve_instance(instance_for(t, L), normal_form=True) is not None:
            run.append(t)
            if len(run) == L:
                return tuple(run)
        else:
            run = []
    raise RuntimeError(f"no {L} consecutive base cases found for L={L} below t={search_limit}")


# Bounded since PR 7: the induction recurses on (t-1, t-L), so entries
# grow with the largest t ever requested; 4096 holds every t the serve
# bench and the continuous sweeps reach, and an evicted prefix is
# recomputed from the base cases (slower, still exact).
# Exposed via repro.serve's /stats endpoint (core_cache_stats).
@lru_cache(maxsize=4096)
def _solve_cached(t: int, L: int) -> BlockCyclicAssignment | None:
    base_ts = find_base_cases(L)
    if t < base_ts[0]:
        return solve_instance(instance_for(t, L), normal_form=False)
    if t in base_ts:
        return solve_instance(instance_for(t, L), normal_form=True)
    prev = _solve_cached(t - 1, L)
    older = _solve_cached(t - L, L)
    if prev is None or older is None:  # pragma: no cover - induction is total
        return None
    # Graft: largest block of I(t-1) grows by one, absorbing one 'b'.
    blocks = sorted(prev.blocks, key=lambda b: -b.size)
    largest = blocks[0]
    grown = Block(size=largest.size + 1, word=largest.word + (1,))
    merged = [grown] + blocks[1:] + list(older.blocks)
    assignment = BlockCyclicAssignment(
        L=L, t=t, blocks=merged, receive_only=1
    )
    # Full validation is O(P(t)) per induction level (it materializes the
    # tree); the induction is proved correct by the N(x) = N(x-1) + N(x-L)
    # recurrence, so at large t we only validate on demand.
    if t <= 20:
        assignment.validate()
    return assignment


def solve(t: int, L: int) -> BlockCyclicAssignment | None:
    """Solve ``I(t)`` for latency ``L`` (Theorem 3.3 machinery).

    For ``t >= t(L)`` a solution always exists (built inductively); for
    smaller ``t`` a direct search is attempted and may legitimately return
    ``None`` — block-cyclic schedules cannot always achieve minimum delay
    (the paper's ``L=4, t=8`` example).
    """
    return _solve_cached(t, L)
