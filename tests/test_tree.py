"""Tests for the universal optimal broadcast tree (Definitions 2.3/2.4)."""

import networkx as nx
import pytest

from repro.core.fib import broadcast_time, reachable
from repro.core.tree import optimal_tree, tree_for_time
from repro.params import LogPParams, postal


class TestOptimalTree:
    def test_fig1_shape(self, fig1_params):
        tree = optimal_tree(fig1_params)
        assert sorted(tree.delays()) == [0, 10, 14, 18, 20, 22, 24, 24]
        assert tree.completion_time == 24

    def test_root_is_node_zero(self, fig1_params):
        tree = optimal_tree(fig1_params)
        assert tree.root.delay == 0 and tree.root.parent is None

    def test_completion_equals_broadcast_time(self):
        for P in (1, 2, 3, 5, 9, 17, 33):
            for params in (
                postal(P=P, L=3),
                LogPParams(P=P, L=6, o=2, g=4),
                LogPParams(P=P, L=2, o=1, g=2),
            ):
                tree = optimal_tree(params)
                assert tree.completion_time == broadcast_time(P, params)

    def test_validate_accepts_own_trees(self):
        for P in (1, 2, 7, 20):
            optimal_tree(postal(P=P, L=4)).validate()

    def test_children_ordered_by_delay(self):
        tree = optimal_tree(postal(P=30, L=3))
        for node in tree.nodes:
            delays = [tree.nodes[c].delay for c in node.children]
            assert delays == sorted(delays)

    def test_child_labeling_rule(self):
        # child j of a node at delay d sits at d + j*g + L + 2o
        params = LogPParams(P=20, L=5, o=1, g=3)
        tree = optimal_tree(params)
        for node in tree.nodes:
            for j, c in enumerate(node.children):
                assert tree.nodes[c].delay == node.delay + j * params.g + params.send_cost

    def test_single_node(self):
        tree = optimal_tree(postal(P=1, L=3))
        assert len(tree) == 1 and tree.root.is_leaf


class TestTreeForTime:
    def test_t9_matches_paper(self):
        # Figure 2's T9: L=3, t=7 -> 9 nodes, delays and degrees as printed
        t9 = tree_for_time(7, postal(P=1, L=3))
        assert len(t9) == 9
        assert sorted(t9.delays()) == [0, 3, 4, 5, 6, 6, 7, 7, 7]
        assert t9.out_degree_census() == {5: 1, 2: 1, 1: 1, 0: 6}

    def test_size_is_reachable(self):
        for L in (1, 2, 3, 5):
            p = postal(P=1, L=L)
            for t in range(10):
                assert len(tree_for_time(t, p)) == reachable(t, p)

    def test_general_logp(self):
        p = LogPParams(P=1, L=6, o=2, g=4)
        tree = tree_for_time(24, p)
        assert len(tree) == 8
        tree.validate()

    def test_internal_iff_delay_small(self):
        # postal: a node is internal iff delay <= t - L
        t, L = 9, 3
        tree = tree_for_time(t, postal(P=1, L=L))
        for node in tree.nodes:
            assert bool(node.children) == (node.delay <= t - L)

    def test_degree_formula(self):
        # internal node at delay d has t - d - L + 1 children (postal)
        t, L = 10, 4
        tree = tree_for_time(t, postal(P=1, L=L))
        for node in tree.internal_nodes():
            assert node.out_degree == t - node.delay - L + 1

    def test_rejects_negative_t(self):
        with pytest.raises(ValueError):
            tree_for_time(-1, postal(P=1, L=3))


class TestConversions:
    def test_networkx_roundtrip(self):
        tree = optimal_tree(postal(P=12, L=3))
        g = tree.to_networkx()
        assert g.number_of_nodes() == 12
        assert g.number_of_edges() == 11
        assert nx.is_arborescence(g)
        for node in tree.nodes:
            assert g.nodes[node.index]["delay"] == node.delay

    def test_child_rank(self):
        tree = tree_for_time(7, postal(P=1, L=3))
        for node in tree.nodes:
            for j, c in enumerate(node.children):
                assert tree.child_rank(c) == j
        with pytest.raises(ValueError):
            tree.child_rank(0)  # the root

    def test_censuses_consistent(self):
        tree = tree_for_time(8, postal(P=1, L=3))
        assert sum(tree.delay_census().values()) == len(tree)
        assert sum(tree.out_degree_census().values()) == len(tree)
        assert len(tree.leaves()) + len(tree.internal_nodes()) == len(tree)
