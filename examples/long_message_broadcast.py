#!/usr/bin/env python3
"""Segment a large buffer for broadcast (LogGP extension).

Scenario: broadcasting model weights (a multi-kilobyte buffer) across a
cluster.  Sending it whole serializes the tree; cutting it into segments
turns the problem into the paper's k-item broadcast, and the pipelined
optimal schedule overlaps segments down the tree.  This example sweeps
segment sizes, shows the trade-off curve, and picks the optimum.

Run:  python examples/long_message_broadcast.py
"""

from repro.loggp import LogGPParams, plan_broadcast, segment_sweep

MACHINE = LogGPParams(P=16, L=20, o=2, g=4, G=1)
MESSAGE_BYTES = 4096


def main() -> None:
    print(f"machine: {MACHINE}")
    print(f"message: {MESSAGE_BYTES} bytes\n")

    rows = segment_sweep(MACHINE, MESSAGE_BYTES, max_segments=48)
    print("segments  seg-bytes  spacing  Lhat  cycles")
    best = min(rows, key=lambda r: r["cycles"])
    for row in rows:
        marker = "  <- best" if row is best else ""
        bar = "#" * max(1, row["cycles"] // 400)
        print(
            f"{row['segments']:<10}{row['segment_bytes']:<11}"
            f"{row['spacing']:<9}{row['Lhat']:<6}{row['cycles']:<7}{bar}{marker}"
        )

    plan = plan_broadcast(MACHINE, MESSAGE_BYTES, max_segments=48)
    print(f"\nchosen plan: {plan.describe()}")
    single = next(r["cycles"] for r in rows if r["segments"] == 1)
    print(f"vs unsegmented broadcast: {single} cycles "
          f"({single / plan.completion_cycles:.1f}x slower)")

    print("\nhow the optimum moves with message size:")
    for M in (64, 256, 1024, 4096, 16384):
        p = plan_broadcast(MACHINE, M, max_segments=64)
        print(f"  {M:>6} B -> {p.segments:>3} segments of {p.segment_bytes:>4} B, "
              f"{p.completion_cycles} cycles")


if __name__ == "__main__":
    main()
