"""Tests for the LogGP long-message segmentation planner."""

import pytest

from repro.loggp import LogGPParams, plan_broadcast, segment_sweep


class TestParams:
    def test_spacing_and_latency(self):
        m = LogGPParams(P=8, L=20, o=2, g=4, G=1)
        assert m.segment_spacing(1) == 4          # gap dominates tiny segments
        assert m.segment_spacing(100) == 2 + 99   # bytes dominate big ones
        assert m.segment_latency(1) == 24
        assert m.segment_latency(10) == 33

    def test_rejects_negative_G(self):
        with pytest.raises(ValueError):
            LogGPParams(P=4, L=5, o=1, g=2, G=-1)


class TestPlanner:
    def test_single_byte_is_plain_broadcast(self):
        m = LogGPParams(P=8, L=10, o=1, g=2, G=1)
        plan = plan_broadcast(m, 1)
        assert plan.segments == 1

    def test_large_messages_segment(self):
        m = LogGPParams(P=16, L=20, o=2, g=4, G=1)
        plan = plan_broadcast(m, 4096)
        assert plan.segments > 1

    def test_segmentation_improves_large_messages(self):
        m = LogGPParams(P=16, L=20, o=2, g=4, G=1)
        rows = segment_sweep(m, 2048, max_segments=16)
        single = next(r for r in rows if r["segments"] == 1)
        best = min(r["cycles"] for r in rows)
        assert best < single["cycles"] / 2  # pipelining at least halves it

    def test_zero_G_prefers_moderate_segments(self):
        # with G = 0 every segment costs the same: more segments never help
        # beyond per-item pipelining of the fixed latency
        m = LogGPParams(P=8, L=6, o=1, g=2, G=0)
        plan = plan_broadcast(m, 100)
        # all segment sizes give k items of identical cost; the planner
        # should pick k=1 (one send of the whole message dominates)
        assert plan.segments == 1

    def test_plan_monotone_in_message_size(self):
        m = LogGPParams(P=8, L=15, o=2, g=3, G=1)
        times = [plan_broadcast(m, M).completion_cycles for M in (8, 64, 256, 1024)]
        assert times == sorted(times)

    def test_schedule_validated(self):
        m = LogGPParams(P=10, L=12, o=1, g=2, G=1)
        plan = plan_broadcast(m, 300)
        # plan_broadcast replays the winning schedule internally; verify
        # the schedule's item count matches the segmentation
        items = {op.item for op in plan.schedule.sends}
        assert len(items) == plan.segments

    def test_rejects_empty_message(self):
        with pytest.raises(ValueError):
            plan_broadcast(LogGPParams(P=4, L=5, o=1, g=2, G=1), 0)


class TestSweep:
    def test_rows_cover_distinct_sizes(self):
        m = LogGPParams(P=8, L=10, o=1, g=2, G=2)
        rows = segment_sweep(m, 64, max_segments=10)
        sizes = [r["segment_bytes"] for r in rows]
        assert len(sizes) == len(set(sizes))

    def test_tradeoff_shape(self):
        # completion as a function of segment count should fall then rise
        # (or at least not be monotone increasing from k=1)
        m = LogGPParams(P=16, L=30, o=3, g=4, G=2)
        rows = segment_sweep(m, 512, max_segments=24)
        cycles = [r["cycles"] for r in rows]
        assert min(cycles) < cycles[0]
