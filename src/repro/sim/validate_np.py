"""Vectorized (numpy) LogP legality checking — the validator fast path.

:func:`violations_np` re-implements every check of
:func:`repro.sim.validate.violations` over struct-of-arrays send tables
(:class:`repro.schedule.analysis_np.ScheduleColumns`) instead of per-op
Python loops: causality, send gap, receive gap, overhead exclusivity and
per-endpoint capacity.  It produces the *same violation strings* as the
scalar path (property-tested for multiset equality), so callers cannot
tell which engine ran; only violating ops are ever formatted in Python,
so legal schedules stay entirely in numpy.

:func:`repro.sim.validate.violations` dispatches here automatically for
large schedules (the cutoff lives in the :mod:`repro.dispatch` policy);
at the P=256 all-to-all scale (65,280 sends) the speedup over the scalar
validator is roughly 7-8x (see ``BENCH_PR1.json``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.machine.model import MachineModel

from repro.schedule.analysis_np import (
    ScheduleColumns,
    availability_arrays,
    columns,
)
from repro.schedule.implicit import DEFAULT_CHUNK_SENDS, ImplicitSchedule
from repro.schedule.ops import Schedule

__all__ = ["violations_np", "violations_np_implicit"]


def _causality(
    schedule: Schedule, cols: ScheduleColumns, problems: list[str]
) -> None:
    n = len(cols.times)
    avail_keys, avail_times, item_ids, n_items = availability_arrays(
        schedule, cols
    )
    # look up availability of (src, item) for every send
    send_keys = cols.srcs * n_items + cols.items
    pos = np.searchsorted(avail_keys, send_keys)
    pos_c = np.minimum(pos, len(avail_keys) - 1)
    found = (len(avail_keys) > 0) & (avail_keys[pos_c] == send_keys)
    have = np.where(found, avail_times[pos_c], 0)
    never = ~found
    early = found & (cols.times < have)
    selfsend = cols.srcs == cols.dsts
    if not (never.any() or early.any() or selfsend.any()):
        return
    # format in the scalar path's order: replay order (time, src, dst)
    # with positional tie-break, causality before self-send per op
    rev = [None] * n_items
    for item, idx in item_ids.items():
        rev[idx] = item
    order = np.lexsort((cols.dsts, cols.srcs, cols.times))
    flagged = order[(never | early | selfsend)[order]]
    for i in flagged.tolist():
        t, src, dst = int(cols.times[i]), int(cols.srcs[i]), int(cols.dsts[i])
        item = rev[int(cols.items[i])]
        if never[i]:
            problems.append(
                f"causality: proc {src} sends item {item!r} at t={t} "
                f"but never holds it"
            )
        elif early[i]:
            problems.append(
                f"causality: proc {src} sends item {item!r} at t={t} "
                f"but only holds it from t={int(have[i])}"
            )
        if selfsend[i]:
            problems.append(f"self-send: proc {src} at t={t}")


def _adjacent_gap(
    procs: np.ndarray,
    starts: np.ndarray,
    minor: np.ndarray,
    g: int,
    fmt: str,
    problems: list[str],
) -> None:
    """Report adjacent same-proc event pairs closer than ``g`` apart."""
    order = np.lexsort((minor, starts, procs))
    p, s = procs[order], starts[order]
    bad = (p[1:] == p[:-1]) & (s[1:] - s[:-1] < g)
    for i in np.flatnonzero(bad).tolist():
        problems.append(fmt.format(proc=int(p[i]), prev=int(s[i]), cur=int(s[i + 1])))


def _overhead(
    send_starts: np.ndarray,
    send_procs: np.ndarray,
    recv_starts: np.ndarray,
    recv_procs: np.ndarray,
    o: int,
    problems: list[str],
) -> None:
    # busy intervals: send overhead [t, t+o) at src, receive overhead
    # [t+o+L, t+o+L+o) at dst; all have length o, so sorted adjacency
    # suffices for overlap detection (as in the scalar path)
    starts = np.concatenate([send_starts, recv_starts])
    procs = np.concatenate([send_procs, recv_procs])
    # scalar sorts (start, end, label) tuples; "recv@..." < "send@..."
    kind = np.concatenate(
        [
            np.ones(len(send_starts), np.int64),
            np.zeros(len(recv_starts), np.int64),
        ]
    )
    order = np.lexsort((kind, starts, procs))
    p, s, k = procs[order], starts[order], kind[order]
    bad = (p[1:] == p[:-1]) & (s[1:] < s[:-1] + o)
    for i in np.flatnonzero(bad).tolist():
        what_a = f"send@{int(s[i])}" if k[i] else f"recv@{int(s[i])}"
        what_b = f"send@{int(s[i + 1])}" if k[i + 1] else f"recv@{int(s[i + 1])}"
        problems.append(
            f"overhead overlap: proc {int(p[i])} busy with {what_a} and {what_b}"
        )


def _capacity_peaks(procs: np.ndarray, t0: np.ndarray, t1: np.ndarray):
    """Per-proc peak of simultaneously open [t0, t1) intervals."""
    ev_proc = np.concatenate([procs, procs])
    ev_time = np.concatenate([t0, t1])
    ev_delta = np.concatenate(
        [np.ones(len(t0), np.int64), -np.ones(len(t1), np.int64)]
    )
    # -1 sorts before +1 at equal times, matching the scalar (t, delta) sort
    order = np.lexsort((ev_delta, ev_time, ev_proc))
    p, d = ev_proc[order], ev_delta[order]
    running = np.cumsum(d)
    starts = np.flatnonzero(np.concatenate(([True], p[1:] != p[:-1])))
    base = np.concatenate(([0], running[starts[1:] - 1]))
    counts = np.diff(np.concatenate((starts, [len(p)])))
    in_group = running - np.repeat(base, counts)
    return p[starts], np.maximum.reduceat(in_group, starts)


def _violations_machine(
    schedule: Schedule,
    cols: ScheduleColumns,
    machine: "MachineModel",
    check_capacity: bool = True,
) -> list[str]:
    """Per-level legality checks for non-flat machines (DESIGN S38).

    Each level of the machine is an *independent interface*: gap,
    overhead-exclusivity, and capacity constraints bind only among sends
    of the same level, each priced with that level's ``(L, o, g)`` — a
    node leader may drive its inter-node NIC and its intra-node bus in
    the same cycle.  Causality and self-send are global and consume the
    per-edge ``cols.arrivals``, and on a fault-masked machine any send
    touching a dead rank is illegal outright.
    """
    problems: list[str] = []
    _causality(schedule, cols, problems)

    alive = machine.alive_np()
    if len(alive) < machine.num_procs:
        for role, procs in (("sends", cols.srcs), ("receives", cols.dsts)):
            bad = ~np.isin(procs, alive)
            for i in np.flatnonzero(bad).tolist():
                problems.append(
                    f"dead rank: proc {int(procs[i])} {role} at "
                    f"t={int(cols.times[i])} but is masked out"
                )

    edge_levels = machine.edge_levels_np(cols.srcs, cols.dsts)
    for level, p in enumerate(machine.levels):
        mask = edge_levels == level
        if not mask.any():
            continue
        times = cols.times[mask]
        srcs = cols.srcs[mask]
        dsts = cols.dsts[mask]
        recv_starts = cols.arrivals[mask] - p.o

        _adjacent_gap(
            srcs,
            times,
            dsts,
            p.g,
            "send gap: proc {proc} sends at t={prev} and t={cur} "
            f"(< g={p.g} apart)",
            problems,
        )
        _adjacent_gap(
            dsts,
            recv_starts,
            srcs,
            p.g,
            "receive gap: proc {proc} receives at t={prev} and t={cur} "
            f"(< g={p.g} apart)",
            problems,
        )
        if p.o > 0:
            _overhead(times, srcs, recv_starts, dsts, p.o, problems)
        if check_capacity:
            cap = p.capacity
            t0 = times + p.o
            t1 = t0 + p.L
            for direction, endpoint in (("from", srcs), ("to", dsts)):
                procs, peaks = _capacity_peaks(endpoint, t0, t1)
                for proc in procs[peaks > cap].tolist():
                    problems.append(
                        f"capacity: > {cap} messages in transit "
                        f"{direction} proc {proc}"
                    )
    return problems


def violations_np(schedule: Schedule, check_capacity: bool = True) -> list[str]:
    """Vectorized equivalent of :func:`repro.sim.validate.violations`.

    Returns the same violation strings as the scalar checker (the order of
    unrelated violations may differ); empty list means the schedule is a
    legal LogP execution.
    """
    params = schedule.params
    problems: list[str] = []
    cols = columns(schedule)
    if len(cols.times) == 0:
        return problems

    machine = schedule.machine
    if machine is not None and not machine.is_flat:
        return _violations_machine(
            schedule, cols, machine, check_capacity=check_capacity
        )

    _causality(schedule, cols, problems)

    _adjacent_gap(
        cols.srcs,
        cols.times,
        cols.dsts,
        params.g,
        "send gap: proc {proc} sends at t={prev} and t={cur} "
        f"(< g={params.g} apart)",
        problems,
    )

    recv_starts = cols.arrivals - params.o
    _adjacent_gap(
        cols.dsts,
        recv_starts,
        cols.srcs,
        params.g,
        "receive gap: proc {proc} receives at t={prev} and t={cur} "
        f"(< g={params.g} apart)",
        problems,
    )

    if params.o > 0:
        _overhead(cols.times, cols.srcs, recv_starts, cols.dsts, params.o, problems)

    if check_capacity:
        cap = params.capacity
        t0 = cols.times + params.o
        t1 = t0 + params.L
        for direction, endpoint in (("from", cols.srcs), ("to", cols.dsts)):
            procs, peaks = _capacity_peaks(endpoint, t0, t1)
            for proc in procs[peaks > cap].tolist():
                problems.append(
                    f"capacity: > {cap} messages in transit "
                    f"{direction} proc {proc}"
                )

    return problems


def violations_np_implicit(
    implicit: ImplicitSchedule, max_sends: int = DEFAULT_CHUNK_SENDS
) -> list[str]:
    """Chunk-streamed legality checks for an implicit plan.

    Runs, in memory bounded by ``max_sends`` and never by ``P``:

    * **causality** (exact): each edge's send time against the sender's
      closed-form hold time (``ChunkFacts.send_avail``), plus self-sends
      — same strings as :func:`violations_np`;
    * **send gap / receive gap** (chunk-local): adjacency within each
      streamed block.  Every report is a genuine violation (two
      same-endpoint events < ``g`` apart stay < ``g`` apart globally),
      but a pair split across a chunk boundary is not seen — this check
      is *sound, not complete*.

    Overhead exclusivity and capacity need globally sorted busy
    intervals, so they are whole-schedule only: run
    ``violations_np(implicit.materialize())`` when full fidelity
    matters (the property suite does, at small P).
    """
    params = implicit.params
    problems: list[str] = []
    if max_sends < 1:
        raise ValueError(f"max_sends must be >= 1, got {max_sends}")
    for lo in range(0, implicit.num_sends, max_sends):
        hi = min(lo + max_sends, implicit.num_sends)
        facts = implicit.chunk_with_facts(lo, hi)
        cols = facts.cols
        early = cols.times < facts.send_avail
        selfsend = cols.srcs == cols.dsts
        if early.any() or selfsend.any():
            order = np.lexsort((cols.dsts, cols.srcs, cols.times))
            flagged = order[(early | selfsend)[order]]
            for i in flagged.tolist():
                t, src = int(cols.times[i]), int(cols.srcs[i])
                item = cols.table.items[int(cols.items[i])]
                if early[i]:
                    problems.append(
                        f"causality: proc {src} sends item {item!r} at t={t} "
                        f"but only holds it from t={int(facts.send_avail[i])}"
                    )
                if selfsend[i]:
                    problems.append(f"self-send: proc {src} at t={t}")
        _adjacent_gap(
            cols.srcs,
            cols.times,
            cols.dsts,
            params.g,
            "send gap: proc {proc} sends at t={prev} and t={cur} "
            f"(< g={params.g} apart)",
            problems,
        )
        _adjacent_gap(
            cols.dsts,
            cols.arrivals - params.o,
            cols.srcs,
            params.g,
            "receive gap: proc {proc} receives at t={prev} and t={cur} "
            f"(< g={params.g} apart)",
            problems,
        )
    return problems
