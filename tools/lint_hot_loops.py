#!/usr/bin/env python3
"""AST gate: no Python-level loops over sends in the vectorized hot path.

This tool is now a thin shim over the :mod:`repro.checkers` framework
(``repro check``): the hot-loop gate is rule REPRO001 and the dispatch
threshold gate is rule REPRO002.  The command line, the default target
list, the message text and the exit codes (0 = clean, 1 = violations,
2 = a listed file is missing) are preserved byte-for-byte so existing
CI jobs and muscle memory keep working; new rules land in ``repro
check``, not here.

Usage::

    python tools/lint_hot_loops.py            # check the default allowlist
    python tools/lint_hot_loops.py src/a.py   # check specific files

Prefer the full sweep::

    python -m repro.cli check src/repro
"""

from __future__ import annotations

import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from repro.checkers.context import FileContext  # noqa: E402
from repro.checkers.engine import check_context  # noqa: E402
from repro.checkers.profiles import (  # noqa: E402
    BANNED_CALLS,
    DISPATCH_OWNER,
    HOT_MODULES,
    HOT_PACKAGES,
    THRESHOLD_NAME,
)
from repro.checkers.registry import resolve_checkers  # noqa: E402

__all__ = [
    "HOT_MODULES",
    "HOT_PACKAGES",
    "BANNED_CALLS",
    "DISPATCH_OWNER",
    "THRESHOLD_NAME",
    "check_file",
    "dispatch_gate_targets",
    "main",
]

#: The two ported gates this shim still runs.
SHIM_RULES = ("REPRO001", "REPRO002")


def _is_dispatch_owner(path: Path, root: Path) -> bool:
    try:
        return path.resolve() == (root / DISPATCH_OWNER).resolve()
    except OSError:  # pragma: no cover - unresolvable path
        return False


def dispatch_gate_targets(root: Path) -> list[Path]:
    """Every package module except the dispatch policy itself."""
    return sorted(
        p
        for p in (root / "src" / "repro").rglob("*.py")
        if not _is_dispatch_owner(p, root)
    )


def check_file(path: Path, root: Path | None = None) -> list[str]:
    """REPRO001/REPRO002 findings for one file, in the legacy format."""
    ctx = FileContext.load(path, display=str(path))
    diagnostics, _ = check_context(ctx, resolve_checkers(select=SHIM_RULES))
    return [f"{d.path}:{d.line}: {d.message}" for d in diagnostics]


def main(argv: list[str]) -> int:
    root = _ROOT
    if argv:
        targets = [Path(arg) for arg in argv]
    else:
        hot = [root / mod for mod in HOT_MODULES]
        for pkg in HOT_PACKAGES:
            hot.extend(sorted((root / pkg).rglob("*.py")))
        targets = hot + [
            p for p in dispatch_gate_targets(root) if p not in hot
        ]
    missing = [str(p) for p in targets if not p.is_file()]
    if missing:
        print("lint-hot-loops: missing files:", ", ".join(missing))
        return 2
    problems: list[str] = []
    for path in targets:
        problems.extend(check_file(path, root))
    if problems:
        print(f"lint-hot-loops: {len(problems)} violation(s):")
        for line in problems:
            print(f"  {line}")
        return 1
    print(f"lint-hot-loops: {len(targets)} module(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
