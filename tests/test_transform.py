"""Tests for schedule transformations (legality-preserving algebra)."""

import pytest

from repro.core.fib import broadcast_time
from repro.core.single_item import optimal_broadcast_schedule
from repro.params import LogPParams, postal
from repro.schedule.analysis import availability, broadcast_delay_per_proc, completion_time
from repro.schedule.transform import concat, remap, restrict, reverse, shift
from repro.sim.machine import replay

FIG1 = LogPParams(P=8, L=6, o=2, g=4)


class TestShift:
    def test_preserves_legality_and_shape(self):
        s = optimal_broadcast_schedule(FIG1)
        moved = shift(s, 7)
        replay(moved)
        assert completion_time(moved) == completion_time(s) + 7

    def test_negative_shift_bounded(self):
        s = shift(optimal_broadcast_schedule(FIG1), 5)
        back = shift(s, -5)
        replay(back)
        with pytest.raises(ValueError):
            shift(back, -1)


class TestRemap:
    def test_rotation(self):
        s = optimal_broadcast_schedule(postal(P=6, L=2))
        rotated = remap(s, {p: (p + 2) % 6 for p in range(6)})
        replay(rotated)
        delays = broadcast_delay_per_proc(rotated)
        assert delays[2] == 0  # old root is now processor 2

    def test_non_injective_rejected(self):
        s = optimal_broadcast_schedule(postal(P=4, L=2))
        with pytest.raises(ValueError):
            remap(s, {0: 1, 1: 1})


class TestReverse:
    def test_broadcast_becomes_reduction(self):
        s = optimal_broadcast_schedule(FIG1)
        red = reverse(s)
        replay(red)
        av = availability(red)
        root_done = max(t for (p, _i), t in av.items() if p == 0)
        assert root_done == broadcast_time(8, FIG1)

    def test_double_reverse_times(self):
        s = optimal_broadcast_schedule(postal(P=9, L=3))
        rr = reverse(reverse(s))
        assert sorted(op.time for op in rr.sends) == sorted(
            op.time for op in s.sends
        )

    def test_empty(self):
        from repro.schedule.ops import Schedule

        empty = Schedule(params=postal(P=2, L=1))
        assert len(reverse(empty)) == 0

    def test_source_items_record_leaf_creation(self):
        # regression: reverse used to drop source_items entirely, so the
        # lint context treated every reversed item as never created
        s = optimal_broadcast_schedule(FIG1)
        red = reverse(s)
        assert red.source_items
        for item, when in red.source_items.items():
            first_send = min(op.time for op in red.sends if op.item == item)
            assert when == first_send


class TestConcat:
    def test_two_broadcasts_back_to_back(self):
        a = optimal_broadcast_schedule(postal(P=6, L=2))
        from repro.core.single_item import schedule_from_tree
        from repro.core.tree import optimal_tree

        b = schedule_from_tree(optimal_tree(postal(P=6, L=2)), item=1)
        combined = concat(a, b)
        replay(combined)
        assert len(combined) == len(a) + len(b)
        # the second broadcast completes after the first
        arrivals_b = [
            op.arrival(combined.params) for op in combined.sends if op.item == 1
        ]
        arrivals_a = [
            op.arrival(combined.params) for op in combined.sends if op.item == 0
        ]
        assert min(arrivals_b) > max(arrivals_a)

    def test_different_machines_rejected(self):
        a = optimal_broadcast_schedule(postal(P=4, L=2))
        b = optimal_broadcast_schedule(postal(P=4, L=3))
        with pytest.raises(ValueError):
            concat(a, b)

    def test_spacing_is_max_g_o(self):
        # the docstring promises a max(g, o) gap after the first
        # schedule's completion; g >= 1 makes the old max(g, o, 1)
        # floor unreachable, so the code now matches the docs
        a = optimal_broadcast_schedule(FIG1)
        from repro.core.single_item import schedule_from_tree
        from repro.core.tree import optimal_tree

        b = schedule_from_tree(optimal_tree(FIG1), item=1)
        combined = concat(a, b)
        finish = max(op.arrival(FIG1) for op in a.sends)
        second_start = min(op.time for op in combined.sends if op.item == 1)
        assert second_start == finish + max(FIG1.g, FIG1.o)

    def test_conflicting_source_items_rejected(self):
        from repro.schedule.ops import Schedule, SendOp

        params = postal(P=2, L=1)
        a = Schedule(
            params=params,
            sends=[SendOp(time=0, src=0, dst=1, item=0)],
            initial={0: {0}},
            source_items={0: 0},
        )
        b = Schedule(
            params=params,
            sends=[SendOp(time=0, src=0, dst=1, item=0)],
            initial={0: {0}},
            source_items={0: 0},
        )
        # after shifting, the second copy claims item 0 was created at a
        # different cycle than the first — silently overwriting would
        # corrupt the lint context, so concat refuses
        with pytest.raises(ValueError, match="conflicting source_items"):
            concat(a, b)


class TestRestrict:
    def test_subtree_survives(self):
        s = optimal_broadcast_schedule(postal(P=9, L=3))
        sub = restrict(s, {0, 1, 2, 3})
        replay(sub)
        assert all(op.src in {0, 1, 2, 3} and op.dst in {0, 1, 2, 3} for op in sub.sends)
        assert len(sub) < len(s)
