"""Cache keys: canonical plan requests and content addressing.

The plan cache (:mod:`repro.serve.cache`) needs two identities:

* a **request key** — the byte-stable canonical form of *what was
  asked for*.  :func:`canonical_request` resolves collective aliases
  through the registry's :class:`~repro.registry.spec.CollectiveSpec`,
  validates and normalizes the per-collective extras against the spec's
  declared domain (so ``plan_many`` requests fail with the same one-line
  errors as :func:`repro.registry.plan`), and defaults ``family`` for
  implicit storage.  Nothing about the dispatch environment
  (``REPRO_DISPATCH`` / ``REPRO_FAST_PATH_THRESHOLD`` / ``backend=``)
  enters the key: the serialized plan is byte-identical across storage
  backends (pinned by the columnar twins since PR 2), so requests that
  differ only in how they would be *computed* share one cache entry.

* a **content hash** — sha-256 of the plan's canonical serialized form
  (:func:`plan_content`).  Distinct requests that produce byte-identical
  plans (e.g. ``storage="columnar"`` vs ``storage="implicit"`` at small
  ``P``, where the universal tree and its closed-form twin emit the same
  sends) deduplicate onto one stored blob.  The canonical form drops
  ``source_items`` entries at time 0 — :meth:`Schedule.creation_time
  <repro.schedule.ops.Schedule.creation_time>` defaults to 0, so such
  entries are semantically redundant and only differ between builders
  that record the root item's creation explicitly and those that do not.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Mapping

from repro import registry
from repro.params import LogPParams
from repro.schedule.ops import Schedule
from repro.schedule.serialize import CANONICAL_DUMPS, schedule_payload

__all__ = [
    "PlanRequest",
    "canonical_request",
    "request_from_mapping",
    "request_key",
    "request_key_hash",
    "plan_content",
    "content_hash",
    "build_plan",
]

MATERIALIZED = "materialized"
IMPLICIT = "implicit"


@dataclass(frozen=True)
class PlanRequest:
    """A fully canonicalized plan request — hashable, alias-free.

    ``extra`` is the spec-validated collective parameter dict as a
    sorted tuple of pairs; ``family`` is only set for implicit storage
    (defaulted to the builder's default so ``family=None`` and the
    explicit default produce the same key).
    """

    collective: str
    params: LogPParams
    extra: tuple[tuple[str, int], ...] = ()
    storage: str = MATERIALIZED
    family: str | None = None
    #: Optional machine topology (a frozen
    #: ``repro.machine.model.MachineModel``).  ``None`` means the classic
    #: flat machine; its canonical doc joins the request key, so equal
    #: flat params with different topologies never collide.
    machine: Any | None = None


def canonical_request(
    name: str,
    params: LogPParams | None = None,
    *,
    storage: str = MATERIALIZED,
    family: str | None = None,
    machine: Any | None = None,
    **kwargs: Any,
) -> PlanRequest:
    """Canonicalize a plan request (same surface as :func:`registry.plan`).

    Machine parameters come as ``params=LogPParams(...)`` or as
    ``P``/``L``/``o``/``g`` keywords; everything else is validated
    against the collective's spec.  Raises one-line ``ValueError``\\ s
    identical in spirit to the registry's for anything out of domain.
    """
    spec = registry.get_spec(name)
    if machine is not None:
        if not spec.machine_aware and not machine.is_flat:
            aware = ", ".join(
                s.name for s in registry.specs() if s.machine_aware
            )
            raise ValueError(
                f"{spec.name}: does not accept a machine topology "
                f"(machine-aware collectives: {aware})"
            )
        if storage == IMPLICIT:
            raise ValueError(
                f"{spec.name}: machine= does not apply to "
                f"storage='implicit' (per-edge pricing needs materialized "
                f"columns)"
            )
        if params is None:
            params = machine.flat_params
        elif params != machine.flat_params:
            raise ValueError(
                f"{spec.name}: params {params} conflict with the machine's "
                f"flat envelope {machine.flat_params}"
            )
    if params is None:
        P = kwargs.pop("P", None)
        L = kwargs.pop("L", None)
        if P is None or L is None:
            raise ValueError(
                f"{spec.name}: machine parameters missing — pass "
                f"params=LogPParams(...) or at least P= and L="
            )
        params = LogPParams(
            P=P, L=L, o=kwargs.pop("o", 0), g=kwargs.pop("g", 1)
        )
    elif "P" in kwargs or "L" in kwargs:
        raise ValueError(
            f"{spec.name}: give either params=LogPParams(...) or "
            f"P=/L= keywords, not both"
        )
    if storage not in (MATERIALIZED, IMPLICIT):
        raise ValueError(
            f"{spec.name}: storage must be {MATERIALIZED!r} or "
            f"{IMPLICIT!r}, got {storage!r}"
        )
    if storage == IMPLICIT:
        if spec.implicit_build is None:
            supported = ", ".join(
                s.name for s in registry.specs() if s.implicit_build is not None
            )
            raise ValueError(
                f"{spec.name}: no implicit builder "
                f"(storage='implicit' is supported by: {supported})"
            )
        if family is None:
            family = "optimal"
        else:
            from repro.schedule.implicit import implicit_families

            if family not in implicit_families():
                known = ", ".join(implicit_families())
                raise ValueError(
                    f"{spec.name}: unknown implicit family {family!r} "
                    f"(known: {known})"
                )
    elif family is not None:
        raise ValueError(
            f"{spec.name}: family= only applies to storage='implicit'"
        )
    if spec.check_machine is not None:
        spec.check_machine(params)
    extra = spec.validate_extra(params, kwargs)
    return PlanRequest(
        collective=spec.name,
        params=params,
        extra=tuple(sorted(extra.items())),
        storage=storage,
        family=family,
        machine=machine,
    )


def request_from_mapping(doc: Mapping[str, Any]) -> PlanRequest:
    """Canonicalize a JSON-shaped request document (the HTTP wire form).

    Expected keys: ``collective`` (required), ``P``/``L``/``o``/``g``,
    optional ``storage``/``family``, plus the collective's extras
    (``k``/``n``/``t``).  Unknown keys are rejected by the spec's domain
    validation.
    """
    body = dict(doc)
    name = body.pop("collective", None)
    if not isinstance(name, str):
        raise ValueError("request must name a 'collective'")
    storage = body.pop("storage", MATERIALIZED)
    family = body.pop("family", None)
    machine_doc = body.pop("machine", None)
    machine = None
    if machine_doc is not None:
        from repro.machine.model import machine_from_doc

        if not isinstance(machine_doc, Mapping):
            raise ValueError(
                f"'machine' must be a canonical machine doc, got "
                f"{machine_doc!r}"
            )
        machine = machine_from_doc(machine_doc)
    return canonical_request(
        name, storage=storage, family=family, machine=machine, **body
    )


def request_key(request: PlanRequest) -> str:
    """The byte-stable canonical key string for a request."""
    doc = {
        "collective": request.collective,
        "params": [
            request.params.P,
            request.params.L,
            request.params.o,
            request.params.g,
        ],
        "extra": dict(request.extra),
        "storage": request.storage,
        "family": request.family,
    }
    if request.machine is not None:
        # only present for machine-attached requests, so every existing
        # flat key (and its on-disk index hash) stays byte-identical
        doc["machine"] = request.machine.canonical_doc()
    return json.dumps(doc, **CANONICAL_DUMPS)


def request_key_hash(request: PlanRequest) -> str:
    """sha-256 of the canonical key (the on-disk index filename)."""
    return hashlib.sha256(request_key(request).encode()).hexdigest()


def plan_content(schedule: Schedule) -> str:
    """The plan's canonical content: the cached (and served) byte form.

    Canonical JSON (sorted keys, compact separators) of the serialized
    payload, with semantically redundant time-0 ``source_items`` entries
    dropped (creation time defaults to 0), so builders that record the
    root item's creation explicitly and builders that do not hash to the
    same content address.
    """
    payload = schedule_payload(schedule)
    payload["source_items"] = [
        entry for entry in payload["source_items"] if entry[1] != 0
    ]
    return json.dumps(payload, **CANONICAL_DUMPS)


def content_hash(content: str) -> str:
    """sha-256 of a plan's canonical content (its blob address)."""
    return hashlib.sha256(content.encode()).hexdigest()


def build_plan(request: PlanRequest) -> str:
    """Plan the request from scratch and return its canonical content.

    Calls the spec's builder directly: ``request.extra`` is already
    validated *and normalized* (e.g. summation carries both ``n`` and
    ``t`` after canonicalization, which the registry front door would
    reject as over-specified).  The storage backend follows the dispatch
    policy — a compute choice only; the serialized bytes are
    backend-identical, which is why the policy stays out of the key.

    Implicit requests are materialized: the service's product is a
    transportable serialized plan, and at equal parameters the
    materialized bytes are what content addressing deduplicates on.
    """
    from repro import dispatch

    spec = registry.get_spec(request.collective)
    extra = dict(request.extra)
    if request.storage == IMPLICIT:
        assert spec.implicit_build is not None  # canonical_request checked
        implicit = spec.implicit_build(
            request.params, family=request.family, **extra
        )
        return plan_content(implicit.materialize())
    if spec.machine_aware:
        extra["machine"] = request.machine
    if len(spec.backends) > 1:
        extra["backend"] = dispatch.builder_backend(spec.backends)
    built: Schedule = spec.build(request.params, **extra)
    return plan_content(built)
