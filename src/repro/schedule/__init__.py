"""Schedule IR and analysis helpers."""

from repro.schedule.analysis import (
    availability,
    broadcast_delay_per_proc,
    completion_time,
    item_completion_times,
    item_delays,
    max_delay,
)
from repro.schedule.columnar import ItemTable, ScheduleColumns
from repro.schedule.ops import ComputeOp, Schedule, SendOp

__all__ = [
    "Schedule", "SendOp", "ComputeOp", "ItemTable", "ScheduleColumns",
    "availability", "completion_time", "item_completion_times",
    "item_delays", "max_delay", "broadcast_delay_per_proc",
]
