"""Tests for workload-trace planning and the SVG renderer."""

import pytest

from repro.core.single_item import optimal_broadcast_schedule
from repro.params import LogPParams, postal
from repro.viz.svg import save_svg, schedule_to_svg
from repro.workload import CollectiveOp, WorkloadTrace, plan_workload


class TestTrace:
    def test_builder(self):
        trace = WorkloadTrace("app", postal(P=9, L=3))
        trace.add("bcast", count=3).add("allreduce").add("compute", arg=100)
        assert trace.total_ops() == 5

    def test_rejects_zero_count(self):
        with pytest.raises(ValueError):
            CollectiveOp("bcast", count=0)


class TestPlanning:
    def trace(self):
        t = WorkloadTrace("cg-solver", postal(P=9, L=3))
        t.add("bcast", count=2)
        t.add("allreduce", count=10)  # dot products per iteration
        t.add("kitem_bcast", count=1, arg=6)
        t.add("compute", count=1, arg=500)
        return t

    def test_totals_add_up(self):
        report = plan_workload(self.trace())
        assert report.optimal_total == sum(r["optimal"] for r in report.rows)
        assert report.baseline_total == sum(r["baseline"] for r in report.rows)

    def test_optimal_never_worse(self):
        report = plan_workload(self.trace())
        for row in report.rows:
            assert row["optimal"] <= row["baseline"], row
        assert report.speedup >= 1.0

    def test_allreduce_dominant_savings(self):
        # P = 9 = P(7) for L=3: combining (7 steps) vs binomial
        # reduce-then-broadcast (2 x 10 steps) — nearly 3x per allreduce
        report = plan_workload(self.trace())
        allreduce = next(r for r in report.rows if r["kind"] == "allreduce")
        assert allreduce["optimal"] * 2 <= allreduce["baseline"]

    def test_compute_neutral(self):
        report = plan_workload(self.trace())
        compute = next(r for r in report.rows if r["kind"] == "compute")
        assert compute["optimal"] == compute["baseline"] == 500

    def test_unknown_kind(self):
        t = WorkloadTrace("x", postal(P=4, L=2)).add("teleport")
        with pytest.raises(ValueError):
            plan_workload(t)

    def test_render(self):
        text = plan_workload(self.trace()).render()
        assert "cg-solver" in text and "allreduce" in text


class TestSVG:
    def test_valid_svg_document(self):
        s = optimal_broadcast_schedule(LogPParams(P=8, L=6, o=2, g=4))
        svg = schedule_to_svg(s, title="Figure 1 machine")
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "Figure 1 machine" in svg
        assert svg.count("<rect") > 8  # activity bars present

    def test_rows_per_processor(self):
        s = optimal_broadcast_schedule(postal(P=5, L=2))
        svg = schedule_to_svg(s)
        for p in range(5):
            assert f">P{p}<" in svg

    def test_file_output(self, tmp_path):
        s = optimal_broadcast_schedule(postal(P=4, L=2))
        path = tmp_path / "plan.svg"
        save_svg(s, str(path), title="test")
        content = path.read_text()
        assert "<svg" in content

    def test_escaping(self):
        s = optimal_broadcast_schedule(postal(P=3, L=2))
        svg = schedule_to_svg(s, title="a < b & c")
        assert "a &lt; b &amp; c" in svg
