"""The two-tier content-addressed plan cache.

Layout::

    PlanCache
      ├── LRUCache    in-memory, bounded, key -> content string
      └── DiskCache   content-addressed, survives restarts
            index/<sha256(key)>.json   {"key": ..., "content": <hash>}
            blobs/<content-hash>.json  canonical plan JSON

The memory tier answers the hot path with one dict lookup.  The disk
tier maps request keys to content hashes through a small index and
stores each distinct plan *once*: requests whose plans are byte-identical
(alias pairs, or columnar/implicit twins at small ``P``) share a blob.

Durability rules:

* writes are atomic — content goes to a same-directory temp file and is
  ``os.replace``\\ d into place, so a crashed writer never leaves a
  half-written entry under the final name;
* reads are corruption-tolerant — a missing file, malformed JSON, an
  index whose recorded key does not match the request, or a blob whose
  bytes do not hash to their filename all count as a miss (tallied in
  ``corrupt_reads`` when the entry existed but was bad), and the caller
  replans and rewrites.  A corrupt cache can cost time, never
  correctness.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path

from repro.schedule.serialize import CANONICAL_DUMPS
from repro.serve.keys import content_hash

__all__ = ["LRUCache", "DiskCache", "PlanCache"]


class LRUCache:
    """A bounded, thread-safe LRU over ``key -> content`` strings."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._data: OrderedDict[str, str] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: str) -> str | None:
        with self._lock:
            value = self._data.get(key)
            if value is None:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: str, value: str) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            if len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._data),
                "capacity": self.capacity,
            }


def _atomic_write(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via a same-directory temp + rename."""
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class DiskCache:
    """The content-addressed on-disk tier."""

    def __init__(self, directory: str | Path) -> None:
        self.root = Path(directory)
        self.index_dir = self.root / "index"
        self.blob_dir = self.root / "blobs"
        self.index_dir.mkdir(parents=True, exist_ok=True)
        self.blob_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.corrupt_reads = 0
        self.writes = 0

    def _index_path(self, key_hash: str) -> Path:
        return self.index_dir / f"{key_hash}.json"

    def _blob_path(self, blob_hash: str) -> Path:
        return self.blob_dir / f"{blob_hash}.json"

    def read_blob(self, blob_hash: str) -> str | None:
        """The verified content stored at ``blob_hash``, or ``None``.

        Verification re-hashes the bytes: a truncated or garbled blob
        cannot masquerade as the plan it was filed under.
        """
        try:
            text = self._blob_path(blob_hash).read_text()
        except FileNotFoundError:
            return None
        except OSError:
            with self._lock:
                self.corrupt_reads += 1
            return None
        if content_hash(text) != blob_hash:
            with self._lock:
                self.corrupt_reads += 1
            return None
        return text

    def get(self, key: str, key_hash: str) -> str | None:
        index_path = self._index_path(key_hash)
        try:
            entry = json.loads(index_path.read_text())
            stored_key = entry["key"]
            blob_hash = entry["content"]
        except FileNotFoundError:
            with self._lock:
                self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            with self._lock:
                self.corrupt_reads += 1
                self.misses += 1
            return None
        if stored_key != key or not isinstance(blob_hash, str):
            with self._lock:
                self.corrupt_reads += 1
                self.misses += 1
            return None
        content = self.read_blob(blob_hash)
        with self._lock:
            if content is None:
                self.misses += 1
            else:
                self.hits += 1
        return content

    def put(self, key: str, key_hash: str, content: str) -> str:
        """Store ``content`` under ``key``; returns its content hash.

        The blob write is skipped when an intact copy already exists
        (content addressing: many keys, one blob); a corrupt existing
        copy is overwritten in place.
        """
        blob_hash = content_hash(content)
        if self.read_blob(blob_hash) is None:
            _atomic_write(self._blob_path(blob_hash), content)
        _atomic_write(
            self._index_path(key_hash),
            json.dumps({"key": key, "content": blob_hash}, **CANONICAL_DUMPS),
        )
        with self._lock:
            self.writes += 1
        return blob_hash

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "corrupt_reads": self.corrupt_reads,
                "writes": self.writes,
                "index_entries": sum(
                    1 for _ in self.index_dir.glob("*.json")
                ),
                "blobs": sum(1 for _ in self.blob_dir.glob("*.json")),
            }


class PlanCache:
    """Memory LRU stacked over an optional disk tier.

    ``lookup`` / ``store`` operate on canonical key strings and content
    strings; the planner-facing wrapper lives in
    :class:`repro.serve.service.PlanService`.
    """

    def __init__(
        self,
        capacity: int = 1024,
        directory: str | Path | None = None,
    ) -> None:
        self.memory = LRUCache(capacity)
        self.disk = DiskCache(directory) if directory is not None else None

    def lookup(self, key: str, key_hash: str) -> str | None:
        content = self.memory.get(key)
        if content is not None:
            return content
        if self.disk is None:
            return None
        content = self.disk.get(key, key_hash)
        if content is not None:
            self.memory.put(key, content)
        return content

    def store(self, key: str, key_hash: str, content: str) -> None:
        self.memory.put(key, content)
        if self.disk is not None:
            self.disk.put(key, key_hash, content)

    def stats(self) -> dict[str, object]:
        return {
            "memory": self.memory.stats(),
            "disk": self.disk.stats() if self.disk is not None else None,
        }
