"""Per-file analysis context: one parse, one classification, all rules.

A :class:`FileContext` is built once per checked file (mirroring
:class:`repro.analyze.context.LintContext`'s parse-once discipline at
the schedule tier): the source is read once, the AST is parsed once,
profiles and suppression comments are extracted once, and every
applicable rule walks the same tree.

Suppressions are ruff-``noqa``-style same-line comments::

    return json.dumps(payload)  # repro: ignore[REPRO005] -- default form

``ignore[A,B]`` suppresses several rules at once; anything after the
closing bracket is free-text rationale.  The engine tracks which
suppressions actually matched a diagnostic and reports stale ones as
:data:`~repro.checkers.diagnostics.UNUSED_SUPPRESSION` warnings.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.checkers.profiles import classify, pragma_profiles

__all__ = ["FileContext", "parse_suppressions", "SUPPRESSION_RE"]

#: ``# repro: ignore[REPRO001]`` / ``# repro: ignore[REPRO001,REPRO005]``.
SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*ignore\[\s*([A-Za-z0-9_,\s-]+?)\s*\]"
)


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map 1-indexed line number -> rule ids suppressed on that line."""
    out: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = SUPPRESSION_RE.search(line)
        if match is None:
            continue
        rules = {
            part.strip() for part in match.group(1).split(",") if part.strip()
        }
        if rules:
            out[lineno] = rules
    return out


@dataclass
class FileContext:
    """Everything the rules need to know about one file."""

    path: str
    source: str
    tree: ast.Module
    profiles: frozenset[str]
    suppressions: dict[int, set[str]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: str | Path, display: str | None = None) -> "FileContext":
        """Read, parse and classify ``path``.

        ``display`` overrides the path recorded on diagnostics (used to
        render repo-relative paths regardless of how the file was
        reached).  Raises ``ValueError`` with a one-line message for
        unreadable or syntactically invalid files.
        """
        shown = display if display is not None else Path(path).as_posix()
        try:
            source = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise ValueError(f"{shown}: cannot read file: {exc}") from None
        return cls.from_source(source, shown, origin=path)

    @classmethod
    def from_source(
        cls,
        source: str,
        display: str,
        origin: str | Path | None = None,
    ) -> "FileContext":
        """Build a context from in-memory source (tests, tooling)."""
        try:
            tree = ast.parse(source, filename=display)
        except SyntaxError as exc:
            raise ValueError(
                f"{display}:{exc.lineno}: cannot parse: {exc.msg}"
            ) from None
        pragma = pragma_profiles(source)
        profiles = (
            pragma
            if pragma is not None
            else classify(origin if origin is not None else display)
        )
        return cls(
            path=display,
            source=source,
            tree=tree,
            profiles=profiles,
            suppressions=parse_suppressions(source),
        )
