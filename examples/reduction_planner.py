#!/usr/bin/env python3
"""Right-size a parallel summation (Section 5 applied).

Scenario: you must reduce ``n`` partial results (e.g. per-shard gradient
norms) on a LogP machine and want the provably fastest plan — including
the decision of *how many* processors to involve and *how to deal the
operands out* (the optimal distribution is lopsided: early-sending leaf
processors get fewer operands).

Run:  python examples/reduction_planner.py
"""

from repro import LogPParams, replay
from repro.baselines.summation import binary_reduction_time, sequential_time
from repro.core.summation.capacity import (
    min_summation_time,
    operand_distribution,
    summation_capacity,
)
from repro.core.summation.schedule import summation_schedule, verify_summation
from repro.viz.ascii import render_schedule_activity

MACHINE = LogPParams(P=8, L=5, o=2, g=4)
WORKLOADS = [4, 16, 79, 300, 1200]


def main() -> None:
    print(f"machine: {MACHINE}\n")
    print(f"{'n':>6} {'optimal':>8} {'binary-tree':>12} {'sequential':>11}")
    for n in WORKLOADS:
        t_opt = min_summation_time(n, MACHINE)
        t_bin = binary_reduction_time(n, MACHINE)
        t_seq = sequential_time(n)
        print(f"{n:>6} {t_opt:>8} {t_bin:>12} {t_seq:>11}")

    # build and verify the full plan for the paper's Figure 6 instance
    n = 79
    t = min_summation_time(n, MACHINE)
    plan = summation_schedule(t, MACHINE, operands=list(range(1, n + 1)))
    total = verify_summation(plan)
    replay(plan.to_schedule())
    print(f"\nplan for n={n}: t={t} cycles, result={total} "
          f"(= {n * (n + 1) // 2}, functionally verified)")

    print("\noptimal operand distribution (processor -> #operands):")
    dist = operand_distribution(t, MACHINE)
    for proc, count in enumerate(dist):
        print(f"  P{proc}: {'#' * count} ({count})")

    print("\nexecution timeline (+ = addition, r = receive, s = send):")
    print(render_schedule_activity(plan.to_schedule()))

    # marginal value of time: capacity grows by P per extra cycle
    print("\ncapacity n(t) near the chosen t:")
    for tt in range(t - 2, t + 3):
        try:
            print(f"  t={tt}: n={summation_capacity(tt, MACHINE)}")
        except ValueError:
            print(f"  t={tt}: infeasible (receive slots don't fit)")


if __name__ == "__main__":
    main()
