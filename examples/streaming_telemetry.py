#!/usr/bin/env python3
"""Continuous broadcast for a telemetry stream (Section 3.1-3.3 applied).

Scenario: a head node produces one telemetry record per network step and
every worker must see every record with minimal, *bounded* staleness —
exactly the paper's continuous broadcast problem.  This example sizes
the worker pool to a P(t) value, solves the block-cyclic assignment,
expands a window of records into an explicit schedule, validates it on
the simulator, and reports the staleness guarantee (the per-item delay
L + B(P-1), which no schedule can beat).

Run:  python examples/streaming_telemetry.py
"""

from repro import (
    continuous_delay_lower_bound,
    expand_assignment,
    instance_for,
    reachable_postal,
    replay,
    solve,
    solve_instance,
)
from repro.schedule.analysis import item_delays
from repro.sim.validate import single_reception_violations
from repro.viz.tables import reception_table, render_reception_table

LATENCY = 3          # network latency in steps
WINDOW = 12          # records in the analysis window


def main() -> None:
    # pick the largest P(t) pool of <= 50 workers
    t = 0
    while reachable_postal(t + 1, LATENCY) <= 50:
        t += 1
    workers = reachable_postal(t, LATENCY)
    print(f"worker pool: {workers} workers (= P({t}) for L={LATENCY}), "
          f"plus the head node")

    assignment = solve(t, LATENCY) or solve_instance(instance_for(t, LATENCY))
    if assignment is None:
        raise SystemExit("no block-cyclic solution for these parameters")
    print(f"block-cyclic roles: {assignment.describe()}")

    schedule = expand_assignment(assignment, num_items=WINDOW)
    replay(schedule)
    assert not single_reception_violations(schedule)

    delays = item_delays(schedule, procs=set(range(1, workers + 1)))
    staleness = max(delays.values())
    bound = continuous_delay_lower_bound(workers + 1, LATENCY)
    print(f"staleness of every record: {staleness} steps "
          f"(provable lower bound: {bound})")
    assert staleness == bound

    print("\nfirst records' reception pattern (workers 1-9 shown):")
    table = reception_table(schedule)
    print(render_reception_table(
        table,
        procs=list(range(1, min(10, workers + 1))),
        time_range=(LATENCY, LATENCY + t + 4),
    ))

    # capacity planning: what does a bigger pool cost in staleness?
    print("\npool size vs staleness (records/step is always 1):")
    for tt in range(max(1, t - 3), t + 4):
        w = reachable_postal(tt, LATENCY)
        print(f"  {w:>5} workers -> staleness {LATENCY + tt} steps")


if __name__ == "__main__":
    main()
