"""Parameter sweeps validating the paper's theorems in bulk.

Each sweep returns a list of row dicts (one per parameter point) suitable
for tabular printing; the benchmark suite asserts the paper's claims on
every row.  Run standalone::

    python -m repro.experiments.sweeps
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.kitem import (
    repeated_broadcast_schedule,
    scatter_allgather_schedule,
    staggered_binomial_schedule,
)
from repro.baselines.summation import binary_reduction_capacity
from repro.baselines.trees import baseline_broadcast, baseline_reduction
from repro.core.combining import combining_time, reduction_schedule, simulate_combining
from repro.core.fib import (
    broadcast_time,
    broadcast_time_postal,
    fib,
    reachable,
    reachable_postal,
)
from repro.core.kitem.bounds import kitem_lower_bound, kitem_upper_bound
from repro.core.kitem.single_sending import single_sending_schedule
from repro.core.single_item import optimal_broadcast_schedule
from repro.core.summation.capacity import summation_capacity, summation_tree
from repro.params import LogPParams, postal
from repro.schedule.analysis import (
    broadcast_delay_per_proc,
    completion_time,
    item_completion_times,
)
from repro.sim.machine import replay

__all__ = [
    "broadcast_vs_baselines",
    "reduction_vs_baselines",
    "kitem_bounds_sweep",
    "combining_sweep",
    "summation_capacity_sweep",
    "pt_recurrence_sweep",
]


def pt_recurrence_sweep(Ls=(1, 2, 3, 4, 5), t_max: int = 14) -> list[dict]:
    """Theorem 2.2: P(t) computed by tree counting equals ``f_t``."""
    rows = []
    for L in Ls:
        for t in range(t_max + 1):
            rows.append(
                {
                    "L": L,
                    "t": t,
                    "P(t)_tree": reachable(t, postal(P=1, L=L)),
                    "f_t": fib(L, t),
                }
            )
    return rows


def broadcast_vs_baselines(machines=None) -> list[dict]:
    """Optimal single-item broadcast vs flat/chain/binary/binomial."""
    if machines is None:
        machines = [
            LogPParams(P=8, L=6, o=2, g=4),  # Figure 1
            LogPParams(P=16, L=4, o=1, g=2),
            LogPParams(P=32, L=2, o=1, g=1),
            postal(P=16, L=1),
            postal(P=41, L=3),
        ]
    rows = []
    for machine in machines:
        row = {
            "P": machine.P,
            "L": machine.L,
            "o": machine.o,
            "g": machine.g,
            "optimal": broadcast_time(machine.P, machine),
        }
        opt_schedule = optimal_broadcast_schedule(machine)
        replay(opt_schedule)
        for name in ("flat", "chain", "binary", "binomial"):
            schedule = baseline_broadcast(name, machine)
            replay(schedule)
            row[name] = max(broadcast_delay_per_proc(schedule).values())
        rows.append(row)
    return rows


def reduction_vs_baselines(machines=None) -> list[dict]:
    """§4.2 correspondence in bulk: reduction mirrors broadcast exactly.

    Every schedule here is produced by the verified pass pipeline
    (``reverse{tag=red}`` through :class:`repro.passes.PassManager`), so
    the sweep doubles as an end-to-end exercise of the framework: the
    optimal reduction must finish in exactly ``B(P)`` cycles, and each
    baseline reduction must tie its broadcast counterpart tree-for-tree.
    """
    if machines is None:
        machines = [
            LogPParams(P=8, L=6, o=2, g=4),  # Figure 1
            LogPParams(P=16, L=4, o=1, g=2),
            postal(P=16, L=1),
            postal(P=41, L=3),
        ]
    rows = []
    for machine in machines:
        optimal = reduction_schedule(machine)
        replay(optimal)
        row = {
            "P": machine.P,
            "L": machine.L,
            "o": machine.o,
            "g": machine.g,
            "B(P)": broadcast_time(machine.P, machine),
            "optimal": completion_time(optimal),
        }
        for name in ("flat", "chain", "binary", "binomial"):
            reduction = baseline_reduction(name, machine)
            replay(reduction)
            row[name] = completion_time(reduction)
        rows.append(row)
    return rows


def kitem_bounds_sweep(
    Ls=(1, 2, 3, 4), Ps=(2, 4, 5, 9, 10, 13, 14, 22), k: int = 6
) -> list[dict]:
    """Theorems 3.1/3.6: measured single-sending time sits in the sandwich,
    and the baselines show the pipelining win."""
    rows = []
    for L in Ls:
        for P in Ps:
            schedule = single_sending_schedule(k, P, L)
            replay(schedule)
            done = max(item_completion_times(schedule, set(range(P))).values())
            naive = repeated_broadcast_schedule(k, P, L)
            naive_done = max(
                item_completion_times(naive, set(range(P))).values()
            )
            stag = staggered_binomial_schedule(k, P, L)
            stag_done = max(item_completion_times(stag, set(range(P))).values())
            rows.append(
                {
                    "L": L,
                    "P": P,
                    "k": k,
                    "lower_bound": kitem_lower_bound(P, L, k),
                    "ours": done,
                    "upper_bound_thm36": kitem_upper_bound(P, L, k),
                    "repeated_bcast": naive_done,
                    "staggered_binomial": stag_done,
                }
            )
    return rows


def combining_sweep(Ls=(1, 2, 3, 4), extra: int = 5) -> list[dict]:
    """Theorem 4.1: combining broadcast reaches P(T) processors in T steps
    — half the reduce-then-broadcast cost ``2 B(P)``."""
    rows = []
    for L in Ls:
        for T in range(L, L + extra):
            run = simulate_combining(T, L)
            rows.append(
                {
                    "L": L,
                    "T": T,
                    "P": run.P,
                    "complete": run.complete(),
                    "invariant": run.theorem_41_invariant(),
                    "reduce_then_broadcast": 2 * combining_time(run.P, L),
                }
            )
    return rows


def summation_capacity_sweep(machine: LogPParams | None = None, ts=None) -> list[dict]:
    """Lemma 5.1 capacity vs the binary-tree-reduction baseline."""
    if machine is None:
        machine = LogPParams(P=8, L=5, o=2, g=4)
    tree = summation_tree(machine)
    t_min = max(
        node.delay + (machine.o + 1) * node.out_degree for node in tree.nodes
    )
    if ts is None:
        ts = [t_min, t_min + 2, 28, 34, 40, 50]
    rows = []
    for t in sorted(set(ts)):
        rows.append(
            {
                "t": t,
                "optimal_n": summation_capacity(t, machine),
                "binary_reduction_n": binary_reduction_capacity(t, machine),
            }
        )
    return rows


def _print(rows: list[dict], title: str) -> None:  # pragma: no cover
    print(f"\n== {title} ==")
    if not rows:
        return
    keys = list(rows[0])
    print("  ".join(f"{k:>18}" for k in keys))
    for row in rows:
        print("  ".join(f"{str(row[k]):>18}" for k in keys))


if __name__ == "__main__":  # pragma: no cover
    _print(pt_recurrence_sweep(), "P(t) vs f_t (Thm 2.2)")
    _print(broadcast_vs_baselines(), "single-item broadcast vs baselines")
    _print(reduction_vs_baselines(), "reversed reduction vs baselines (§4.2)")
    _print(kitem_bounds_sweep(), "k-item bounds sandwich (Thms 3.1/3.6)")
    _print(combining_sweep(), "combining broadcast (Thm 4.1)")
    _print(summation_capacity_sweep(), "summation capacity (Lemma 5.1)")
