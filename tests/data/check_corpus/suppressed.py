# repro: profile=keying
"""Suppression mechanics: one honored ignore, one stale ignore."""

import json


def legacy_key(payload):
    # the checked-in v0 index format predates canonical dumps
    return json.dumps(payload)  # repro: ignore[REPRO005]


def sorted_key(payload):
    return sorted(payload)  # repro: ignore[REPRO006]
